// Chaos soak: long missions with Poisson hardware faults, probabilistic
// design-fault activation, and periodic recovery-line audits — the
// paper's theorems as standing invariants under everything at once.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

struct ChaosCase {
  std::uint64_t seed;
  double fault_mean_gap;  // seconds between hardware faults (mean)
};

class ChaosSoak : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSoak, LinesStayConsistentThroughEverything) {
  const ChaosCase cc = GetParam();
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = cc.seed;
  c.workload.p1_internal_rate = 3.0;
  c.workload.p2_internal_rate = 3.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.workload.step_rate = 1.0;
  c.sw_fault.activation_per_send = 0.001;
  c.tb.interval = Duration::seconds(10);
  c.repair_latency = Duration::seconds(2);

  System system(c);
  Rng rng(cc.seed * 977 + 5);
  const Duration horizon = Duration::seconds(600);
  system.start(TimePoint::origin() + horizon);

  // Poisson hardware faults on random nodes (skipped while repairing).
  TimePoint t = TimePoint::origin() + Duration::seconds(30);
  while (t < TimePoint::origin() + horizon - Duration::seconds(30)) {
    system.schedule_hw_fault(
        t, NodeId{static_cast<std::uint32_t>(rng.uniform_int(0, 2))});
    t += rng.exponential(Duration::from_seconds(cc.fault_mean_gap));
  }

  // Periodic line audits.
  std::size_t violations = 0;
  std::size_t lines = 0;
  for (int s = 15; s < 600; s += 15) {
    system.sim().schedule_at(TimePoint::origin() + Duration::seconds(s),
                             [&] {
                               const GlobalState line =
                                   system.stable_line_state();
                               violations +=
                                   check_consistency(line).size() +
                                   check_recoverability(line).size() +
                                   check_software_recoverability(line).size();
                               ++lines;
                             });
  }
  system.run();

  EXPECT_EQ(violations, 0u) << "seed " << cc.seed;
  EXPECT_GE(lines, 30u);
  EXPECT_GE(system.hw_recoveries().size(), 1u);

  // Ground truth: with perfect AT coverage, no erroneous value ever
  // reaches the device, through any number of recoveries.
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted) << "seed " << cc.seed;
  }
  // And if the design fault struck, the survivors ended clean.
  if (system.sw_recovery().has_value()) {
    for (const auto& p : system.live_state().processes) {
      EXPECT_FALSE(p.app_tainted) << "seed " << cc.seed;
    }
  }
}

std::vector<ChaosCase> chaos_cases() {
  return {
      {1, 120.0}, {2, 120.0}, {3, 120.0}, {4, 60.0},
      {5, 60.0},  {6, 200.0}, {7, 90.0},  {8, 150.0},
  };
}

INSTANTIATE_TEST_SUITE_P(Soak, ChaosSoak, ::testing::ValuesIn(chaos_cases()),
                         [](const ::testing::TestParamInfo<ChaosCase>& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_gap" +
                                  std::to_string(static_cast<int>(
                                      info.param.fault_mean_gap));
                         });

// ---------------------------------------------------------------------------
// Injector-driven chaos: the network adversary is on, the assumption
// monitor is installed, and the paper's oracles must still hold.
// ---------------------------------------------------------------------------
TEST(InjectedChaosTest, DeliveryBoundViolationTriggersDegradation) {
  // Injected delays beyond tmax break the delivery-delay bound the
  // blocking periods are computed from. The monitor must detect every
  // breach and degrade by widening the assumed bound (longer tau(b),
  // intact guarantees) — and the mission must end with clean oracles.
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 301;
  c.net_faults.delay_probability = 0.05;
  c.net_faults.delay_factor_max = 4.0;
  c.enable_monitor = true;
  c.workload.p1_internal_rate = 3.0;
  c.workload.p2_internal_rate = 3.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();

  ASSERT_NE(system.faulty_net(), nullptr);
  EXPECT_GT(system.faulty_net()->injected_delays(), 0u);
  ASSERT_NE(system.monitor(), nullptr);
  const MonitorStats& stats = system.monitor()->stats();
  EXPECT_GT(stats.bound_violations, 0u);
  EXPECT_GT(stats.tau_widenings, 0u);  // the degradation actually fired

  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
  for (const auto& e : system.device().entries) EXPECT_FALSE(e.tainted);
}

TEST(InjectedChaosTest, FullInjectorStackStaysClean) {
  // Everything at once — drops, duplicates, reorders, delays, bit-flips,
  // storage write errors, torn writes, latent corruption, plus hardware
  // faults — against the hardened coordinated scheme. The paper's oracles
  // must hold at every audit, and no corrupted record may crash anything.
  for (std::uint64_t seed : {401u, 402u, 403u}) {
    SystemConfig c;
    c.scheme = Scheme::kCoordinated;
    c.seed = seed;
    c.net_faults.drop_probability = 0.01;
    c.net_faults.duplicate_probability = 0.01;
    c.net_faults.reorder_probability = 0.02;
    c.net_faults.delay_probability = 0.002;
    c.net_faults.bitflip_probability = 0.005;
    c.sstore.faults.write_error_probability = 0.05;
    c.sstore.faults.torn_write_probability = 0.02;
    c.sstore.faults.latent_corruption_probability = 0.01;
    c.enable_monitor = true;
    c.harden_recovery = true;
    c.workload.p1_internal_rate = 3.0;
    c.workload.p2_internal_rate = 3.0;
    c.workload.p1_external_rate = 0.3;
    c.workload.p2_external_rate = 0.3;
    c.tb.interval = Duration::seconds(10);
    c.repair_latency = Duration::seconds(2);
    System system(c);
    const Duration horizon = Duration::seconds(400);
    system.start(TimePoint::origin() + horizon);
    system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(150),
                             NodeId{static_cast<std::uint32_t>(seed % 3)});

    std::size_t violations = 0;
    for (int s = 45; s < 400; s += 45) {
      system.sim().schedule_at(
          TimePoint::origin() + Duration::seconds(s), [&] {
            const GlobalState line = system.stable_line_state();
            violations += check_consistency(line).size() +
                          check_recoverability(line).size() +
                          check_software_recoverability(line).size();
          });
    }
    system.run();

    EXPECT_EQ(violations, 0u) << "seed " << seed;
    ASSERT_NE(system.faulty_net(), nullptr);
    EXPECT_GT(system.faulty_net()->injected_total(), 0u) << "seed " << seed;
    ASSERT_NE(system.monitor(), nullptr);
    EXPECT_GT(system.monitor()->stats().violations(), 0u) << "seed " << seed;
    for (const auto& e : system.device().entries) {
      EXPECT_FALSE(e.tainted) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Imperfect acceptance tests: with coverage < 1 the protocols cannot
// guarantee taint-freedom (missed detections legitimately slip through),
// but the *structural* properties must still hold.
// ---------------------------------------------------------------------------
TEST(ImperfectCoverageTest, StructuralPropertiesHoldAnyway) {
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 77;
  c.at.coverage = 0.6;
  c.sw_fault.activation_per_send = 0.01;
  c.workload.p1_internal_rate = 2.0;
  c.workload.p2_internal_rate = 2.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(150),
                           NodeId{1});
  system.run();

  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
}

TEST(FalseAlarmTest, SpuriousAtFailureStillRecoversCleanly) {
  // A false alarm (AT rejects a correct output) triggers a takeover that
  // was not strictly necessary — the system must survive it identically.
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 78;
  c.at.false_alarm = 0.05;
  c.workload.p1_internal_rate = 2.0;
  c.workload.p2_internal_rate = 2.0;
  c.workload.p1_external_rate = 0.5;
  c.workload.p2_external_rate = 0.5;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();
  ASSERT_TRUE(system.sw_recovery().has_value());  // a false alarm struck
  EXPECT_TRUE(system.p1sdw().active());
  for (const auto& p : system.live_state().processes) {
    EXPECT_FALSE(p.dirty);
    EXPECT_FALSE(p.app_tainted);
  }
  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
}

}  // namespace
}  // namespace synergy
