#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/simulator.hpp"

namespace synergy {
namespace {

NetworkParams fast_net() {
  NetworkParams p;
  p.tmin = Duration::millis(1);
  p.tmax = Duration::millis(5);
  return p;
}

TEST(NetworkTest, DeliversWithinBounds) {
  Simulator sim;
  Network net(sim, fast_net(), Rng(1));
  std::vector<TimePoint> deliveries;
  net.attach(ProcessId{1}, [&](const Message&) {
    deliveries.push_back(sim.now());
  });
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.sender = ProcessId{0};
    m.receiver = ProcessId{1};
    net.send(m);
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 50u);
  for (auto t : deliveries) {
    EXPECT_GE(t - TimePoint::origin(), Duration::millis(1));
    EXPECT_LE(t - TimePoint::origin(), Duration::millis(5));
  }
  EXPECT_EQ(net.delivered(), 50u);
}

TEST(NetworkTest, FifoPerPair) {
  Simulator sim;
  Network net(sim, fast_net(), Rng(2));
  std::vector<std::uint64_t> payloads;
  net.attach(ProcessId{1}, [&](const Message& m) {
    payloads.push_back(m.payload);
  });
  for (std::uint64_t i = 0; i < 100; ++i) {
    Message m;
    m.sender = ProcessId{0};
    m.receiver = ProcessId{1};
    m.payload = i;
    net.send(m);
  }
  sim.run();
  ASSERT_EQ(payloads.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(payloads[i], i);
}

TEST(NetworkTest, DetachedReceiverDropsMessages) {
  Simulator sim;
  Network net(sim, fast_net(), Rng(3));
  Message m;
  m.receiver = ProcessId{9};
  net.send(m);
  sim.run();
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_EQ(net.delivered(), 0u);
}

TEST(NetworkTest, DropInTransitTo) {
  Simulator sim;
  Network net(sim, fast_net(), Rng(4));
  int got = 0;
  net.attach(ProcessId{1}, [&](const Message&) { ++got; });
  Message m;
  m.receiver = ProcessId{1};
  net.send(m);
  net.send(m);
  EXPECT_EQ(net.in_transit(), 2u);
  net.drop_in_transit_to(ProcessId{1});
  EXPECT_EQ(net.in_transit(), 0u);
  sim.run();
  EXPECT_EQ(got, 0);
}

TEST(NetworkTest, LossProbabilityDrops) {
  Simulator sim;
  NetworkParams p = fast_net();
  p.loss_probability = 1.0;
  Network net(sim, p, Rng(5));
  int got = 0;
  net.attach(ProcessId{1}, [&](const Message&) { ++got; });
  Message m;
  m.receiver = ProcessId{1};
  net.send(m);
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.dropped(), 1u);
}

// Expose the protected inject() so tests can schedule deliveries with
// chosen (deterministic) delays instead of depending on the rng draw.
class InjectableNetwork : public Network {
 public:
  using Network::Network;
  void inject_at(Message m, Duration delay, bool respect_fifo) {
    m.sent_at = sim().now();
    inject(std::move(m), delay, respect_fifo);
  }
  Simulator& simulator() { return sim(); }
};

TEST(NetworkTest, CrashPrunesFifoWatermarkForReattachedProcess) {
  // Regression: a crash used to leave the (sender, receiver) FIFO
  // watermark behind after its in-transit deliveries were cancelled, so
  // the first post-restart message was serialized behind a delivery that
  // never happened — arriving at the phantom's (future) time instead of
  // its own. The watermark must die with the deliveries backing it.
  Simulator sim;
  InjectableNetwork net(sim, fast_net(), Rng(6));
  std::vector<TimePoint> deliveries;
  const auto record = [&](const Message&) { deliveries.push_back(sim.now()); };
  net.attach(ProcessId{1}, record);

  Message m;
  m.sender = ProcessId{0};
  m.receiver = ProcessId{1};
  // A slow in-flight message pushes the watermark out to t=50ms...
  net.inject_at(m, Duration::millis(50), /*respect_fifo=*/true);
  // ...then the receiver crashes and restarts before it arrives.
  net.detach(ProcessId{1});
  net.attach(ProcessId{1}, record);
  // The restart's first message takes 2ms. With the stale watermark it
  // would be held until t=50ms; pruned, it arrives at its own time.
  net.inject_at(m, Duration::millis(2), /*respect_fifo=*/true);
  sim.run();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0] - TimePoint::origin(), Duration::millis(2));
  EXPECT_EQ(net.dropped_cancelled(), 1u);
}

TEST(NetworkTest, DroppedCounterSplitsByCause) {
  Simulator sim;
  NetworkParams p = fast_net();
  p.loss_probability = 1.0;
  Network lossy(sim, p, Rng(7));
  Message m;
  m.sender = ProcessId{0};
  m.receiver = ProcessId{1};
  lossy.send(m);
  EXPECT_EQ(lossy.dropped_loss(), 1u);
  EXPECT_EQ(lossy.dropped_no_receiver(), 0u);
  EXPECT_EQ(lossy.dropped_cancelled(), 0u);

  Network net(sim, fast_net(), Rng(8));
  net.send(m);  // nobody attached at ProcessId{1}
  sim.run();
  EXPECT_EQ(net.dropped_no_receiver(), 1u);

  int got = 0;
  net.attach(ProcessId{2}, [&](const Message&) { ++got; });
  m.receiver = ProcessId{2};
  net.send(m);
  net.drop_in_transit_to(ProcessId{2});
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.dropped_cancelled(), 1u);
  // The conflated figure is exactly the sum of the causes.
  EXPECT_EQ(net.dropped(),
            net.dropped_loss() + net.dropped_no_receiver() +
                net.dropped_cancelled());
  EXPECT_EQ(net.dropped(), 2u);
}

TEST(NetworkTest, SameTickBatchPreservesPerMessageOrder) {
  // Messages landing on the same (receiver, tick) share one scheduled
  // event. The batch is only appendable while nothing else has entered
  // the event queue, so observable order must be identical to the
  // one-event-per-message schedule: chained frames fire in send order,
  // and an event scheduled *between* two same-tick sends still fires
  // between them.
  Simulator sim;
  InjectableNetwork net(sim, fast_net(), Rng(9));
  std::vector<std::uint64_t> order;
  net.attach(ProcessId{1}, [&](const Message& m) { order.push_back(m.payload); });

  Message m;
  m.sender = ProcessId{0};
  m.receiver = ProcessId{1};
  for (std::uint64_t i = 0; i < 3; ++i) {
    m.payload = i;
    net.inject_at(m, Duration::millis(4), /*respect_fifo=*/false);
  }
  // An unrelated event at the same tick, scheduled after the three sends:
  // it must run after all three (their batch event has the earlier seq).
  sim.schedule_after(Duration::millis(4), [&] { order.push_back(99); });
  // A fourth same-tick message sent after that event cannot join the
  // batch (the queue moved); it gets its own, later event.
  m.payload = 3;
  net.inject_at(m, Duration::millis(4), /*respect_fifo=*/false);
  sim.run();

  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 99, 3}));
}

TEST(NetworkTest, FramePoolRecyclesAcrossBursts) {
  // Steady-state allocation freedom depends on frames actually returning
  // to the free list: after any burst drains, in_transit is zero and the
  // next burst reuses the pool (verified indirectly — delivery still
  // works and counts stay exact across many bursts).
  Simulator sim;
  Network net(sim, fast_net(), Rng(10));
  std::uint64_t got = 0;
  net.attach(ProcessId{1}, [&](const Message&) { ++got; });
  Message m;
  m.sender = ProcessId{0};
  m.receiver = ProcessId{1};
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 8; ++i) net.send(m);
    sim.run();
    EXPECT_EQ(net.in_transit(), 0u);
  }
  EXPECT_EQ(got, 160u);
  EXPECT_EQ(net.delivered(), 160u);
}

TEST(MessageTest, SerializationRoundTrip) {
  Message m;
  m.kind = MsgKind::kPassedAt;
  m.sender = kP2;
  m.receiver = kP1Sdw;
  m.transport_seq = 77;
  m.sn = 12;
  m.ndc = 3;
  m.dirty = true;
  m.payload = 0xFEEDFACE;
  m.tainted = true;
  m.ack_of = 5;
  m.epoch = 2;
  m.sent_at = TimePoint{123456};

  ByteWriter w;
  m.serialize(w);
  ByteReader r(w.data());
  const Message back = Message::deserialize(r);
  EXPECT_EQ(back.kind, m.kind);
  EXPECT_EQ(back.sender, m.sender);
  EXPECT_EQ(back.receiver, m.receiver);
  EXPECT_EQ(back.transport_seq, m.transport_seq);
  EXPECT_EQ(back.sn, m.sn);
  EXPECT_EQ(back.ndc, m.ndc);
  EXPECT_EQ(back.dirty, m.dirty);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_EQ(back.tainted, m.tainted);
  EXPECT_EQ(back.ack_of, m.ack_of);
  EXPECT_EQ(back.epoch, m.epoch);
  EXPECT_EQ(back.sent_at, m.sent_at);
}

class EndpointFixture : public ::testing::Test {
 protected:
  EndpointFixture()
      : net_(sim_, fast_net(), Rng(10)),
        a_(net_, ProcessId{0}, [this](const Message& m) { a_inbox_.push_back(m); }),
        b_(net_, ProcessId{1}, [this](const Message& m) { b_inbox_.push_back(m); }) {}

  Message mk(ProcessId to, std::uint64_t payload = 0) {
    Message m;
    m.kind = MsgKind::kInternal;
    m.receiver = to;
    m.payload = payload;
    return m;
  }

  Simulator sim_;
  Network net_;
  ReliableEndpoint a_;
  ReliableEndpoint b_;
  std::vector<Message> a_inbox_;
  std::vector<Message> b_inbox_;
};

TEST_F(EndpointFixture, UnackedUntilAcked) {
  a_.send(mk(ProcessId{1}, 42));
  EXPECT_EQ(a_.unacked_count(), 1u);
  sim_.run();
  // Delivered but not consumed: still unacked.
  ASSERT_EQ(b_inbox_.size(), 1u);
  EXPECT_EQ(a_.unacked_count(), 1u);

  // Consumption alone does not acknowledge (validation-gated acks are the
  // engine's call); the explicit ack does.
  EXPECT_TRUE(b_.consume(b_inbox_[0]));
  sim_.run();
  EXPECT_EQ(a_.unacked_count(), 1u);
  b_.ack(b_inbox_[0]);
  sim_.run();
  EXPECT_EQ(a_.unacked_count(), 0u);
}

TEST_F(EndpointFixture, DuplicateConsumeSuppressed) {
  a_.send(mk(ProcessId{1}, 1));
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 1u);
  EXPECT_TRUE(b_.consume(b_inbox_[0]));
  EXPECT_FALSE(b_.consume(b_inbox_[0]));
  EXPECT_EQ(b_.duplicates_suppressed(), 1u);
}

TEST_F(EndpointFixture, ResendDeliversAgainAndDedups) {
  a_.send(mk(ProcessId{1}, 7));
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 1u);
  EXPECT_TRUE(b_.consume(b_inbox_[0]));
  sim_.run();

  // Simulate recovery on A's side: pretend the ack was lost by restoring
  // the unacked log from before.
  Message original = b_inbox_[0];
  const Message log[] = {original};
  a_.restore_unacked(log);
  EXPECT_EQ(a_.resend_unacked(1), 1u);
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 2u);
  // B already consumed the original: the re-send is a duplicate.
  EXPECT_FALSE(b_.consume(b_inbox_[1]));
}

TEST_F(EndpointFixture, ResendRestampsEpoch) {
  a_.send(mk(ProcessId{1}, 9));
  sim_.run();
  a_.resend_unacked(5);
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 2u);
  EXPECT_EQ(b_inbox_[0].epoch, 0u);
  EXPECT_EQ(b_inbox_[1].epoch, 5u);
}

TEST_F(EndpointFixture, SnapshotRestoreDedupState) {
  a_.send(mk(ProcessId{1}, 1));
  sim_.run();
  EXPECT_TRUE(b_.consume(b_inbox_[0]));
  const Bytes snap = b_.snapshot_state();

  a_.send(mk(ProcessId{1}, 2));
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 2u);
  EXPECT_TRUE(b_.consume(b_inbox_[1]));

  // Roll B back to the snapshot: message 2's consumption is forgotten,
  // message 1's is remembered.
  b_.restore_state(snap);
  EXPECT_FALSE(b_.consume(b_inbox_[0]));
  EXPECT_TRUE(b_.consume(b_inbox_[1]));
}

TEST_F(EndpointFixture, RestoreUnackedRewindsSequenceSafely) {
  a_.send(mk(ProcessId{1}, 1));
  a_.send(mk(ProcessId{1}, 2));
  sim_.run();
  auto unacked = a_.unacked();
  ASSERT_EQ(unacked.size(), 2u);
  a_.restore_unacked(unacked);
  // New sends must not collide with restored transport_seqs.
  a_.send(mk(ProcessId{1}, 3));
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 3u);
  EXPECT_GT(b_inbox_[2].transport_seq, unacked[1].transport_seq);
}

TEST_F(EndpointFixture, DeviceMessagesAreFireAndForget) {
  a_.send([this] {
    Message m = mk(kDeviceId, 1);
    m.kind = MsgKind::kExternal;
    return m;
  }());
  EXPECT_EQ(a_.unacked_count(), 0u);
}

TEST_F(EndpointFixture, DetachReattach) {
  a_.send(mk(ProcessId{1}, 1));
  b_.detach_network();
  sim_.run();
  EXPECT_TRUE(b_inbox_.empty());
  b_.reattach_network();
  a_.send(mk(ProcessId{1}, 2));
  sim_.run();
  ASSERT_EQ(b_inbox_.size(), 1u);
  EXPECT_EQ(b_inbox_[0].payload, 2u);
}

}  // namespace
}  // namespace synergy
