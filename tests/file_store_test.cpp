#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "storage/file_store.hpp"

namespace synergy {
namespace {

namespace fs = std::filesystem;

class FileStoreFixture : public ::testing::Test {
 protected:
  FileStoreFixture()
      : dir_(fs::temp_directory_path() /
             ("synergy_fs_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name())) {
    fs::remove_all(dir_);
  }
  ~FileStoreFixture() override { fs::remove_all(dir_); }

  CheckpointRecord record(StableSeq ndc) {
    CheckpointRecord rec;
    rec.kind = CkptKind::kStable;
    rec.owner = kP2;
    rec.ndc = ndc;
    rec.state_time = TimePoint{static_cast<std::int64_t>(ndc) * 1000};
    rec.app_state = Bytes{static_cast<std::uint8_t>(ndc), 2, 3};
    return rec;
  }

  fs::path dir_;
};

TEST_F(FileStoreFixture, CommitAndReadBack) {
  FileStableStore store(dir_, kP2);
  store.commit(record(1));
  const auto back = store.latest_committed();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ndc, 1u);
  EXPECT_EQ(back->owner, kP2);
  EXPECT_EQ(back->app_state, (Bytes{1, 2, 3}));
}

TEST_F(FileStoreFixture, EmptyStoreHasNothing) {
  FileStableStore store(dir_, kP2);
  EXPECT_FALSE(store.latest_committed().has_value());
  EXPECT_EQ(store.latest_ndc(), 0u);
  EXPECT_TRUE(store.retained().empty());
}

TEST_F(FileStoreFixture, HistoryRetainedAndQueryableByIndex) {
  FileStableStore store(dir_, kP2);
  for (StableSeq n = 1; n <= 5; ++n) store.commit(record(n));
  EXPECT_EQ(store.latest_ndc(), 5u);
  EXPECT_EQ(store.retained().size(), 5u);
  const auto third = store.committed_for(3);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->state_time, TimePoint{3000});
  EXPECT_FALSE(store.committed_for(99).has_value());
}

TEST_F(FileStoreFixture, PrunesBeyondRetentionDepth) {
  FileStableStore store(dir_, kP2);
  for (StableSeq n = 1; n <= 12; ++n) store.commit(record(n));
  const auto retained = store.retained();
  EXPECT_EQ(retained.size(), 8u);
  EXPECT_EQ(retained.front(), 5u);
  EXPECT_EQ(retained.back(), 12u);
  EXPECT_FALSE(store.committed_for(1).has_value());
}

TEST_F(FileStoreFixture, SameIndexRecommitReplaces) {
  FileStableStore store(dir_, kP2);
  store.commit(record(4));
  CheckpointRecord updated = record(4);
  updated.app_state = Bytes{9, 9};
  store.commit(updated);
  EXPECT_EQ(store.retained().size(), 1u);
  EXPECT_EQ(store.committed_for(4)->app_state, (Bytes{9, 9}));
}

TEST_F(FileStoreFixture, SurvivesReopen) {
  {
    FileStableStore store(dir_, kP2);
    store.commit(record(7));
  }
  // A fresh process (new store object) finds the persisted checkpoint —
  // this is the property the simulated node-crash model abstracts.
  FileStableStore reopened(dir_, kP2);
  ASSERT_TRUE(reopened.latest_committed().has_value());
  EXPECT_EQ(reopened.latest_committed()->ndc, 7u);
}

TEST_F(FileStoreFixture, PerOwnerNamespacing) {
  FileStableStore p2(dir_, kP2);
  FileStableStore p1(dir_, kP1Act);
  p2.commit(record(1));
  EXPECT_FALSE(p1.latest_committed().has_value());
  EXPECT_TRUE(p2.latest_committed().has_value());
}

TEST_F(FileStoreFixture, WipeRemovesEverything) {
  FileStableStore store(dir_, kP2);
  store.commit(record(1));
  store.commit(record(2));
  store.wipe();
  EXPECT_TRUE(store.retained().empty());
}

TEST_F(FileStoreFixture, TrailingGarbageInFileRejected) {
  // A checkpoint file holds exactly one record. Appended bytes (partial
  // overwrite of a longer predecessor, filesystem-level damage) must fail
  // the read even though the record's own CRC still verifies, and the
  // reader must fall back to the previous intact checkpoint.
  FileStableStore store(dir_, kP2);
  store.commit(record(1));
  store.commit(record(2));
  {
    std::ofstream out(dir_ / "ckpt-2-2.bin",
                      std::ios::binary | std::ios::app);
    out << "JUNK";
  }
  EXPECT_FALSE(store.committed_for(2).has_value());
  const auto back = store.latest_committed();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ndc, 1u);
}

TEST_F(FileStoreFixture, LeftoverTempFilesIgnored) {
  FileStableStore store(dir_, kP2);
  store.commit(record(1));
  // Simulate a crash mid-write: a stray .tmp file must not confuse reads.
  std::ofstream(dir_ / "ckpt-2-2.bin.tmp") << "garbage";
  EXPECT_EQ(store.retained().size(), 1u);
  EXPECT_EQ(store.latest_ndc(), 1u);
}

}  // namespace
}  // namespace synergy
