// Generalized protocol: topologies, contamination vectors, multi-source
// validation, multi-shadow recovery, and coordination with the adapted TB
// engine — the paper's reference-[5] direction.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "general/system.hpp"

namespace synergy {
namespace {

GeneralConfig quiet_config(std::uint64_t seed = 1) {
  GeneralConfig c;
  c.seed = seed;
  c.tb.interval = Duration::seconds(1'000'000);  // TB out of the way
  return c;
}

GeneralConfig live_config(std::uint64_t seed = 1) {
  GeneralConfig c;
  c.seed = seed;
  c.tb.interval = Duration::seconds(10);
  return c;
}

Topology quiet_topology(Topology t) {
  // Zero autonomous workload: tests drive engines by hand.
  std::vector<ComponentSpec> specs = t.components();
  for (auto& s : specs) {
    s.internal_rate = 0.0;
    s.external_rate = 0.0;
  }
  return Topology(std::move(specs));
}

// ---- Contamination vector algebra ------------------------------------------

TEST(ContamVectorTest, MergeTakesPointwiseMax) {
  ContamVector a{{0, 5}, {1, 2}};
  contam_merge(a, ContamVector{{1, 7}, {2, 1}});
  EXPECT_EQ(a, (ContamVector{{0, 5}, {1, 7}, {2, 1}}));
}

TEST(ContamVectorTest, CoverageIsPointwise) {
  const ContamVector contam{{0, 5}, {1, 2}};
  EXPECT_TRUE(contam_covered(contam, ContamVector{{0, 5}, {1, 3}}));
  EXPECT_FALSE(contam_covered(contam, ContamVector{{0, 4}, {1, 3}}));
  EXPECT_FALSE(contam_covered(contam, ContamVector{{0, 9}}));
  EXPECT_TRUE(contam_covered(ContamVector{}, ContamVector{}));
}

TEST(ContamVectorTest, SerializationRoundTrip) {
  const ContamVector v{{3, 11}, {7, 42}};
  ByteWriter w;
  contam_serialize(v, w);
  ByteReader r(w.data());
  EXPECT_EQ(contam_deserialize(r), v);
  EXPECT_EQ(contam_to_string(v), "3:11,7:42");
}

// ---- Topology ---------------------------------------------------------------

TEST(TopologyTest, CanonicalLayout) {
  const Topology t = Topology::canonical();
  EXPECT_EQ(t.component_count(), 2u);
  EXPECT_EQ(t.process_count(), 3u);  // low active + its shadow + high
  EXPECT_TRUE(t.has_shadow(0));
  EXPECT_FALSE(t.has_shadow(1));
  EXPECT_EQ(t.shadow_of(0), ProcessId{2});
  EXPECT_TRUE(t.is_shadow(ProcessId{2}));
  EXPECT_EQ(t.component_of(ProcessId{2}), 0u);
  EXPECT_EQ(t.process_name(ProcessId{2}), "C1.sdw");
}

TEST(TopologyTest, DualGuardedHasTwoShadows) {
  const Topology t = Topology::dual_guarded();
  EXPECT_EQ(t.process_count(), 5u);
  EXPECT_EQ(t.shadow_of(0), ProcessId{3});
  EXPECT_EQ(t.shadow_of(1), ProcessId{4});
}

TEST(TopologyTest, StarAndChainShapes) {
  const Topology star = Topology::star(4);
  EXPECT_EQ(star.component_count(), 5u);
  EXPECT_EQ(star.components()[0].peers.size(), 4u);
  const Topology chain = Topology::chain(4);
  EXPECT_EQ(chain.components()[1].peers.size(), 2u);
  EXPECT_EQ(chain.components()[3].peers.size(), 1u);
}

// ---- Engine behaviour ---------------------------------------------------------

class GeneralFixture : public ::testing::Test {
 protected:
  void build(Topology t, const GeneralConfig& c = quiet_config()) {
    system_ = std::make_unique<GeneralSystem>(quiet_topology(std::move(t)), c);
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }
  void component_send(std::uint32_t c, bool external,
                      std::uint64_t input = 1) {
    system_->engine(system_->topology().active_of(c))
        .on_app_send(external, input);
    if (system_->topology().has_shadow(c)) {
      system_->engine(system_->topology().shadow_of(c))
          .on_app_send(external, input);
    }
  }
  void settle() {
    system_->run_until(system_->sim().now() + Duration::seconds(1));
  }
  std::unique_ptr<GeneralSystem> system_;
};

TEST_F(GeneralFixture, DirtyInternalSendContaminatesPeer) {
  build(Topology::canonical());
  component_send(0, false);
  settle();
  GeneralEngine& high = system_->engine(ProcessId{1});
  EXPECT_TRUE(high.dirty());
  EXPECT_EQ(high.absorbed(), (ContamVector{{0, 1}}));
  // Type-1 checkpoint anchored the contamination.
  ASSERT_TRUE(high.latest_volatile().has_value());
  EXPECT_FALSE(high.latest_volatile()->dirty_bit);
}

TEST_F(GeneralFixture, ValidationBroadcastClearsCoveredDirt) {
  build(Topology::canonical());
  component_send(0, false);
  settle();
  ASSERT_TRUE(system_->engine(ProcessId{1}).dirty());
  component_send(0, true);  // AT pass covers {0: <=2}
  settle();
  EXPECT_FALSE(system_->engine(ProcessId{1}).dirty());
  EXPECT_FALSE(system_->engine(ProcessId{0}).pseudo_dirty());
  // The shadow reclaimed its suppressed log.
  EXPECT_TRUE(system_->engine(ProcessId{2}).suppressed_log().empty());
}

TEST_F(GeneralFixture, MultiSourceContaminationNeedsBothValidations) {
  build(Topology::dual_guarded());
  component_send(0, false);  // source A contaminates S
  component_send(1, false);  // source B contaminates S
  settle();
  GeneralEngine& shared = system_->engine(ProcessId{2});
  ASSERT_TRUE(shared.dirty());
  EXPECT_EQ(shared.absorbed().size(), 2u);

  component_send(0, true);  // validates source A only
  settle();
  EXPECT_TRUE(shared.dirty()) << "source B still uncovered";
  component_send(1, true);  // validates source B
  settle();
  EXPECT_FALSE(shared.dirty());
}

TEST_F(GeneralFixture, SecondHopPropagatesTheSourceVector) {
  build(Topology::chain(3));  // C0(low) -> C1 -> C2
  component_send(0, false);   // contaminate C1
  settle();
  ASSERT_TRUE(system_->engine(ProcessId{1}).dirty());
  component_send(1, false);   // C1 (dirty) multicasts to C0 and C2
  settle();
  GeneralEngine& c2 = system_->engine(ProcessId{2});
  EXPECT_TRUE(c2.dirty());
  // C2's dirt names the ORIGINAL source (component 0), not C1.
  ASSERT_EQ(c2.absorbed().size(), 1u);
  EXPECT_EQ(c2.absorbed().begin()->first, 0u);
  // One validation by C0 clears the whole chain.
  component_send(0, true);
  settle();
  EXPECT_FALSE(system_->engine(ProcessId{1}).dirty());
  EXPECT_FALSE(c2.dirty());
}

TEST_F(GeneralFixture, ShadowSuppressesAndMirrors) {
  build(Topology::canonical());
  component_send(0, false);
  component_send(0, false);
  EXPECT_EQ(system_->engine(ProcessId{2}).suppressed_log().size(), 2u);
  settle();
  // The shadow receives the high component's replies like the active does.
  component_send(1, false);
  settle();
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, ProcessId{2}), 1u);
}

TEST_F(GeneralFixture, SoftwareRecoveryFailsOverEveryGuardedComponent) {
  build(Topology::dual_guarded());
  component_send(0, false);
  settle();
  // Corrupt source A and force its AT.
  system_->schedule_sw_error(system_->sim().now() + Duration::seconds(1), 0);
  settle();
  ASSERT_TRUE(system_->sw_recovery().has_value());
  // Both guarded components failed over to their shadows.
  EXPECT_FALSE(system_->engine(ProcessId{0}).alive());
  EXPECT_FALSE(system_->engine(ProcessId{1}).alive());
  EXPECT_TRUE(system_->engine(ProcessId{3}).active_role());
  EXPECT_TRUE(system_->engine(ProcessId{4}).active_role());
  // The contaminated shared component rolled back to a clean state.
  EXPECT_FALSE(system_->engine(ProcessId{2}).dirty());
  EXPECT_FALSE(system_->app(ProcessId{2}).tainted());
}

TEST_F(GeneralFixture, StarTopologyFanOut) {
  build(Topology::star(3));
  component_send(0, false);  // hub multicasts to all leaves
  settle();
  for (std::uint32_t leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_TRUE(system_->engine(ProcessId{leaf}).dirty()) << leaf;
  }
  component_send(0, true);
  settle();
  for (std::uint32_t leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_FALSE(system_->engine(ProcessId{leaf}).dirty()) << leaf;
  }
}

// ---- TB coordination & hardware recovery ---------------------------------------

TEST(GeneralSystemTest, AdaptedTbCoordinatesGeneralEngines) {
  Topology t = Topology::dual_guarded();
  std::vector<ComponentSpec> specs = t.components();
  for (auto& s : specs) {
    s.internal_rate = 1.0;
    s.external_rate = 0.2;
  }
  GeneralSystem system(Topology(std::move(specs)), live_config(3));
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run();
  for (std::uint32_t p = 0; p < system.topology().process_count(); ++p) {
    EXPECT_GE(system.tb(ProcessId{p}).checkpoints_taken(), 18u) << p;
  }
  const GlobalState line = system.stable_line_state();
  const auto consistency = check_consistency(line);
  EXPECT_TRUE(consistency.empty()) << consistency.front().describe();
  const auto recover = check_recoverability(line);
  EXPECT_TRUE(recover.empty()) << recover.front().describe();
}

TEST(GeneralSystemTest, HardwareRecoveryRestoresEveryProcess) {
  Topology t = Topology::chain(3);
  std::vector<ComponentSpec> specs = t.components();
  for (auto& s : specs) {
    s.internal_rate = 1.0;
    s.external_rate = 0.2;
  }
  GeneralSystem system(Topology(std::move(specs)), live_config(4));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(150),
                           ProcessId{1});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  for (const auto d : system.hw_recoveries()[0].rollback_distance) {
    EXPECT_GE(d, Duration::zero());
    EXPECT_LE(d, Duration::seconds(60));
  }
  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
  EXPECT_TRUE(check_software_recoverability(line).empty() ||
              !line.processes.empty());
}

struct GeneralPropertyCase {
  std::uint64_t seed;
  int topology;  // 0 canonical, 1 dual, 2 star, 3 chain
};

class GeneralProperty
    : public ::testing::TestWithParam<GeneralPropertyCase> {};

TEST_P(GeneralProperty, RecoveryLineStaysConsistent) {
  const auto pc = GetParam();
  Topology base = pc.topology == 0   ? Topology::canonical()
                  : pc.topology == 1 ? Topology::dual_guarded()
                  : pc.topology == 2 ? Topology::star(3)
                                     : Topology::chain(4);
  std::vector<ComponentSpec> specs = base.components();
  for (auto& s : specs) {
    s.internal_rate = 2.0;
    s.external_rate = 0.3;
  }
  GeneralConfig c = live_config(pc.seed);
  GeneralSystem system(Topology(std::move(specs)), c);
  Rng rng(pc.seed * 131 + 9);
  system.start(TimePoint::origin() + Duration::seconds(250));
  system.schedule_hw_fault(
      TimePoint::origin() +
          rng.uniform(Duration::seconds(50), Duration::seconds(200)),
      ProcessId{static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(system.topology().process_count()) -
                 1))});
  system.run();

  const GlobalState line = system.stable_line_state();
  for (const auto& v : check_consistency(line)) {
    ADD_FAILURE() << "seed " << pc.seed << " topo " << pc.topology << ": "
                  << v.describe();
  }
  for (const auto& v : check_recoverability(line)) {
    ADD_FAILURE() << "seed " << pc.seed << " topo " << pc.topology << ": "
                  << v.describe();
  }
}

std::vector<GeneralPropertyCase> general_cases() {
  std::vector<GeneralPropertyCase> cases;
  std::uint64_t seed = 1;
  for (int topo = 0; topo < 4; ++topo) {
    for (int rep = 0; rep < 3; ++rep) {
      cases.push_back(GeneralPropertyCase{seed++, topo});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralProperty, ::testing::ValuesIn(general_cases()),
    [](const ::testing::TestParamInfo<GeneralPropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_topo" +
             std::to_string(info.param.topology);
    });

}  // namespace
}  // namespace synergy
