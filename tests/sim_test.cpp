#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace synergy {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{30}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{20}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{30});
}

TEST(SimulatorTest, FifoAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_at(TimePoint{50}, [&] {
    sim.schedule_after(Duration{25}, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint{75});
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(TimePoint{10}, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint{10}, [&] { ++fired; });
  sim.schedule_at(TimePoint{100}, [&] { ++fired; });
  sim.run_until(TimePoint{50});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{50});
  sim.run_until(TimePoint{200});
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.run_until(TimePoint{1000});
  EXPECT_EQ(sim.now(), TimePoint{1000});
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_after(Duration{5}, chain);
  };
  sim.schedule_at(TimePoint{0}, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), TimePoint{45});
}

TEST(SimulatorTest, PendingCountsNonCancelled) {
  Simulator sim;
  auto h1 = sim.schedule_at(TimePoint{10}, [] {});
  sim.schedule_at(TimePoint{20}, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(TimePoint{1}, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace synergy
