#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace synergy {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{30}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{20}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{30});
}

TEST(SimulatorTest, FifoAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_at(TimePoint{50}, [&] {
    sim.schedule_after(Duration{25}, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint{75});
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(TimePoint{10}, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint{10}, [&] { ++fired; });
  sim.schedule_at(TimePoint{100}, [&] { ++fired; });
  sim.run_until(TimePoint{50});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{50});
  sim.run_until(TimePoint{200});
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.run_until(TimePoint{1000});
  EXPECT_EQ(sim.now(), TimePoint{1000});
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_after(Duration{5}, chain);
  };
  sim.schedule_at(TimePoint{0}, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), TimePoint{45});
}

TEST(SimulatorTest, PendingCountsNonCancelled) {
  Simulator sim;
  auto h1 = sim.schedule_at(TimePoint{10}, [] {});
  sim.schedule_at(TimePoint{20}, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(TimePoint{1}, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_at(TimePoint{10}, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(h));  // event already fired
  EXPECT_FALSE(sim.cancel(EventHandle{}));  // default handle is inert
}

TEST(SimulatorTest, StaleHandleCannotCancelReusedSlot) {
  Simulator sim;
  bool a_ran = false;
  bool b_ran = false;
  EventHandle a = sim.schedule_at(TimePoint{10}, [&] { a_ran = true; });
  EXPECT_TRUE(sim.cancel(a));
  // The freed slot is recycled for b; a's stale handle must not reach it.
  EventHandle b = sim.schedule_at(TimePoint{20}, [&] { b_ran = true; });
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
  // And after b fired, both handles are dead.
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_FALSE(sim.cancel(a));
}

TEST(SimulatorTest, HandleSurvivesManySlotReuses) {
  Simulator sim;
  EventHandle first = sim.schedule_at(TimePoint{1}, [] {});
  EXPECT_TRUE(sim.cancel(first));
  for (int i = 0; i < 1000; ++i) {
    EventHandle h = sim.schedule_at(TimePoint{1}, [] {});
    EXPECT_FALSE(sim.cancel(first));  // generation tag blocks the stale handle
    EXPECT_TRUE(sim.cancel(h));
  }
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, CancelChurnKeepsQueueDepthBounded) {
  // The old engine left one tombstone per cancel in the heap forever; a
  // million paired schedule/cancel cycles grew the queue to ~10^6 entries.
  // The compaction invariant bounds the heap at 2x the live event count
  // (plus a small constant floor for tiny heaps).
  Simulator sim;
  std::uint64_t fired = 0;
  constexpr std::size_t kLive = 1000;
  for (std::size_t i = 0; i < kLive; ++i) {
    sim.schedule_at(TimePoint{1'000'000'000 + static_cast<std::int64_t>(i)},
                    [&] { ++fired; });
  }
  std::size_t peak_depth = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    EventHandle h = sim.schedule_at(TimePoint{2'000'000'000}, [&] { ++fired; });
    ASSERT_TRUE(sim.cancel(h));
    peak_depth = std::max(peak_depth, sim.queue_depth());
  }
  EXPECT_EQ(sim.pending(), kLive);
  EXPECT_LE(sim.queue_depth(), 2 * sim.pending());
  EXPECT_LE(peak_depth, 2 * (kLive + 1) + 1);  // never exceeded 2x live
  sim.run();
  EXPECT_EQ(fired, kLive);
  EXPECT_EQ(sim.queue_depth(), 0u);
}

TEST(SimulatorTest, CompactionPreservesFifoOrder) {
  // Cancel every other event to force compactions mid-stream, then check
  // the survivors still fire in exact (time, seq) order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    // Many ties at each time to stress the seq tiebreak across compaction.
    handles.push_back(sim.schedule_at(TimePoint{i / 10},
                                      [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(handles[i]));
  }
  sim.run();
  ASSERT_EQ(order.size(), 250u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);
  }
}

TEST(SimulatorTest, LargeCaptureCallbacksStillWork) {
  // Captures bigger than SmallFn's inline buffer take the heap fallback.
  Simulator sim;
  std::array<std::uint64_t, 16> payload{};
  payload.fill(7);
  std::uint64_t sum = 0;
  Simulator::Callback big = [payload, &sum] {
    for (auto v : payload) sum += v;
  };
  EXPECT_FALSE(big.is_inline());
  sim.schedule_at(TimePoint{1}, std::move(big));
  SmallFn small = [&sum] { ++sum; };
  EXPECT_TRUE(small.is_inline());
  sim.schedule_at(TimePoint{2}, std::move(small));
  sim.run();
  EXPECT_EQ(sum, 16u * 7u + 1u);
}

TEST(SimulatorTest, RunUntilSkipsTombstonesWithoutAdvancingTime) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(TimePoint{10}, [&] { ran = true; });
  sim.cancel(h);
  sim.schedule_at(TimePoint{100}, [&] { ran = true; });
  sim.run_until(TimePoint{50});
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), TimePoint{50});
  EXPECT_EQ(sim.pending(), 1u);
}

}  // namespace
}  // namespace synergy
