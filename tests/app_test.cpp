#include <gtest/gtest.h>

#include "app/acceptance_test.hpp"
#include "app/fault.hpp"
#include "app/state.hpp"
#include "app/workload.hpp"
#include "sim/simulator.hpp"

namespace synergy {
namespace {

TEST(ApplicationStateTest, DeterministicEvolution) {
  ApplicationState a(42);
  ApplicationState b(42);
  for (int i = 0; i < 20; ++i) {
    a.local_step(i);
    b.local_step(i);
    a.apply_message(i * 3, false);
    b.apply_message(i * 3, false);
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.output(), b.output());
}

TEST(ApplicationStateTest, DifferentSeedsDiverge) {
  ApplicationState a(1);
  ApplicationState b(2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ApplicationStateTest, SnapshotRestoreRoundTrip) {
  ApplicationState a(7);
  for (int i = 0; i < 10; ++i) a.local_step(i);
  const Bytes snap = a.snapshot();
  const std::uint64_t fp = a.fingerprint();
  a.local_step(99);
  EXPECT_NE(a.fingerprint(), fp);
  a.restore(snap);
  EXPECT_EQ(a.fingerprint(), fp);
}

TEST(ApplicationStateTest, TaintPropagatesFromMessage) {
  ApplicationState a(7);
  EXPECT_FALSE(a.tainted());
  a.apply_message(5, /*payload_tainted=*/true);
  EXPECT_TRUE(a.tainted());
}

TEST(ApplicationStateTest, CorruptTaintsAndChangesState) {
  ApplicationState a(7);
  const std::uint64_t fp = a.fingerprint();
  a.corrupt(12345);
  EXPECT_TRUE(a.tainted());
  EXPECT_NE(a.fingerprint(), fp);
}

TEST(ApplicationStateTest, RollbackClearsTaint) {
  ApplicationState a(7);
  const Bytes clean = a.snapshot();
  a.corrupt(1);
  a.restore(clean);
  EXPECT_FALSE(a.tainted());
}

TEST(AcceptanceTestTest, PerfectCoverageDetectsAllErrors) {
  AtParams p;
  p.coverage = 1.0;
  AcceptanceTest at(p, Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(at.run(/*message_tainted=*/true));
    EXPECT_TRUE(at.run(/*message_tainted=*/false));
  }
  EXPECT_EQ(at.missed_detections(), 0u);
  EXPECT_EQ(at.false_alarms(), 0u);
}

TEST(AcceptanceTestTest, PartialCoverageMissesSomeErrors) {
  AtParams p;
  p.coverage = 0.5;
  AcceptanceTest at(p, Rng(2));
  int passes = 0;
  for (int i = 0; i < 10'000; ++i) passes += at.run(true);
  EXPECT_NEAR(passes / 10'000.0, 0.5, 0.05);
  EXPECT_EQ(at.missed_detections(), static_cast<std::uint64_t>(passes));
}

TEST(AcceptanceTestTest, FalseAlarmsRejectCleanMessages) {
  AtParams p;
  p.false_alarm = 0.1;
  AcceptanceTest at(p, Rng(3));
  int failures = 0;
  for (int i = 0; i < 10'000; ++i) failures += !at.run(false);
  EXPECT_NEAR(failures / 10'000.0, 0.1, 0.02);
}

TEST(SoftwareFaultModelTest, ZeroRateNeverActivates) {
  SoftwareFaultModel model(SoftwareFaultParams{}, Rng(1));
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_FALSE(model.on_send().has_value());
    EXPECT_FALSE(model.on_step().has_value());
  }
}

TEST(SoftwareFaultModelTest, ActivationRateApproximatelyCorrect) {
  SoftwareFaultParams p;
  p.activation_per_send = 0.2;
  SoftwareFaultModel model(p, Rng(2));
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += model.on_send().has_value();
  EXPECT_NEAR(hits / 10'000.0, 0.2, 0.02);
  EXPECT_EQ(model.activations(), static_cast<std::uint64_t>(hits));
}

TEST(HardwareFaultPlanTest, PoissonPlanSortedAndBounded) {
  const auto plan = HardwareFaultPlan::poisson(
      Duration::seconds(10), TimePoint::origin() + Duration::seconds(1000), 3,
      Rng(5));
  EXPECT_GT(plan.events().size(), 50u);
  TimePoint prev = TimePoint::origin();
  for (const auto& ev : plan.events()) {
    EXPECT_GE(ev.at, prev);
    EXPECT_LT(ev.at, TimePoint::origin() + Duration::seconds(1000));
    EXPECT_LT(ev.node.value(), 3u);
    prev = ev.at;
  }
}

TEST(WorkloadDriverTest, GeneratesApproximatePoissonRates) {
  Simulator sim;
  WorkloadParams p;
  p.p1_internal_rate = 10.0;
  p.p1_external_rate = 1.0;
  p.p2_internal_rate = 5.0;
  p.p2_external_rate = 0.0;
  p.step_rate = 0.0;
  WorkloadDriver driver(sim, p, Rng(7));
  int c1_int = 0, c1_ext = 0, p2_int = 0, p2_ext = 0;
  driver.set_component1_send([&](bool ext, std::uint64_t) {
    (ext ? c1_ext : c1_int)++;
  });
  driver.set_p2_send([&](bool ext, std::uint64_t) {
    (ext ? p2_ext : p2_int)++;
  });
  driver.start(TimePoint::origin() + Duration::seconds(200));
  sim.run();
  EXPECT_NEAR(c1_int / 200.0, 10.0, 1.0);
  EXPECT_NEAR(c1_ext / 200.0, 1.0, 0.3);
  EXPECT_NEAR(p2_int / 200.0, 5.0, 0.7);
  EXPECT_EQ(p2_ext, 0);
}

TEST(WorkloadDriverTest, StopHaltsGeneration) {
  Simulator sim;
  WorkloadParams p;
  p.p1_internal_rate = 100.0;
  WorkloadDriver driver(sim, p, Rng(8));
  int count = 0;
  driver.set_component1_send([&](bool, std::uint64_t) { ++count; });
  driver.start(TimePoint::origin() + Duration::seconds(100));
  sim.schedule_at(TimePoint::origin() + Duration::seconds(1),
                  [&] { driver.stop(); });
  sim.run();
  EXPECT_NEAR(count, 100, 40);
}

}  // namespace
}  // namespace synergy
