// MDCD engine behaviour, driven directly (no workload) through the System
// facade for exact control over event order.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig quiet_config(Scheme scheme, std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};  // manual driving only
  c.tb.interval = Duration::seconds(1'000'000);  // keep TB out of the way
  return c;
}

class MdcdFixture : public ::testing::Test {
 protected:
  void build(Scheme scheme, std::uint64_t seed = 1) {
    system_ = std::make_unique<System>(quiet_config(scheme, seed));
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }

  // Drive one component-1 send event into both replicas, like the
  // workload would.
  void c1_send(bool external, std::uint64_t input = 1) {
    system_->p1act().on_app_send(external, input);
    system_->p1sdw().on_app_send(external, input);
  }

  void settle() { system_->sim().run_until(system_->sim().now() + Duration::seconds(1)); }

  std::unique_ptr<System> system_;
};

TEST_F(MdcdFixture, P1ActPseudoCheckpointBeforeFirstInternalSend) {
  build(Scheme::kCoordinated);
  EXPECT_FALSE(system_->p1act().pseudo_dirty());
  c1_send(false);
  EXPECT_TRUE(system_->p1act().pseudo_dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP1Act), 1u);
  ASSERT_TRUE(system_->p1act().latest_volatile().has_value());
  EXPECT_EQ(system_->p1act().latest_volatile()->kind, CkptKind::kPseudo);

  // Subsequent internal sends do not checkpoint again.
  c1_send(false);
  c1_send(false);
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP1Act), 1u);
}

TEST_F(MdcdFixture, P1ActAtPassClearsPseudoAndBroadcasts) {
  build(Scheme::kCoordinated);
  c1_send(false);
  ASSERT_TRUE(system_->p1act().pseudo_dirty());
  c1_send(true);  // external: AT runs and passes (no fault configured)
  EXPECT_FALSE(system_->p1act().pseudo_dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kAtPass, kP1Act), 1u);
  settle();
  // Both P1sdw and P2 got the notification; P1sdw updated VR.
  EXPECT_EQ(system_->p1sdw().vr_p1act(), system_->p1act().msg_sn());

  // The next internal send re-establishes a pseudo checkpoint.
  c1_send(false);
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP1Act), 2u);
}

TEST_F(MdcdFixture, P2Type1CheckpointOnFirstDirtyMessageOnly) {
  build(Scheme::kCoordinated);
  EXPECT_FALSE(system_->p2().dirty());
  c1_send(false);
  settle();
  EXPECT_TRUE(system_->p2().dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP2), 1u);
  ASSERT_TRUE(system_->p2().latest_volatile().has_value());
  EXPECT_EQ(system_->p2().latest_volatile()->kind, CkptKind::kType1);
  // The Type-1 checkpoint precedes contamination: restored state is clean.
  EXPECT_FALSE(system_->p2().latest_volatile()->dirty_bit);

  c1_send(false);
  c1_send(false);
  settle();
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP2), 1u);
}

TEST_F(MdcdFixture, P2AtPassClearsDirtyAndNotifiesComponent1) {
  build(Scheme::kCoordinated);
  c1_send(false);
  settle();
  ASSERT_TRUE(system_->p2().dirty());

  system_->p2().on_app_send(/*external=*/true, 42);
  EXPECT_FALSE(system_->p2().dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kAtPass, kP2), 1u);
  settle();
  // P2's notification carried the last P1act SN it saw; P1sdw reclaims.
  EXPECT_EQ(system_->p1sdw().vr_p1act(), system_->p2().p1act_sn_seen());
  EXPECT_TRUE(system_->p1sdw().suppressed_log().empty());
}

TEST_F(MdcdFixture, ContaminationPropagatesToShadowViaP2) {
  build(Scheme::kCoordinated);
  c1_send(false);  // P1act dirties P2
  settle();
  EXPECT_FALSE(system_->p1sdw().dirty());
  system_->p2().on_app_send(/*external=*/false, 5);  // dirty multicast
  settle();
  EXPECT_TRUE(system_->p1sdw().dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP1Sdw), 1u);
}

TEST_F(MdcdFixture, ShadowSuppressesAndLogs) {
  build(Scheme::kCoordinated);
  c1_send(false);
  c1_send(false);
  EXPECT_EQ(system_->p1sdw().suppressed_log().size(), 2u);
  EXPECT_EQ(system_->trace().count(TraceKind::kSuppressSend, kP1Sdw), 2u);
  settle();
  // P2 received only P1act's copies.
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), 2u);
}

TEST_F(MdcdFixture, VrReclaimsOnlyValidatedPrefix) {
  build(Scheme::kCoordinated);
  c1_send(false);  // sn 1
  c1_send(true);   // sn 2, AT pass -> VR = 2
  settle();
  c1_send(false);  // sn 3
  c1_send(false);  // sn 4
  EXPECT_EQ(system_->p1sdw().vr_p1act(), 2u);
  ASSERT_EQ(system_->p1sdw().suppressed_log().size(), 2u);
  EXPECT_EQ(system_->p1sdw().suppressed_log()[0].sn, 3u);
  EXPECT_EQ(system_->p1sdw().suppressed_log()[1].sn, 4u);
}

TEST_F(MdcdFixture, NdcGateRejectsMismatchedNotifications) {
  build(Scheme::kCoordinated);
  c1_send(false);
  settle();
  ASSERT_TRUE(system_->p2().dirty());

  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 999'001;
  note.sn = 1;
  note.ndc = 57;  // never matches the local Ndc (0: no TB expiry yet)
  system_->p2().on_message(note);
  EXPECT_TRUE(system_->p2().dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kNdcGateReject, kP2), 1u);

  // A matching Ndc is accepted.
  note.transport_seq = 999'002;
  note.ndc = 0;
  system_->p2().on_message(note);
  EXPECT_FALSE(system_->p2().dirty());
}

TEST_F(MdcdFixture, OriginalVariantIgnoresNdc) {
  build(Scheme::kNaive);  // original MDCD
  c1_send(false);
  settle();
  ASSERT_TRUE(system_->p2().dirty());
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 999'003;
  note.sn = 1;
  note.ndc = 1234;  // ignored by the original protocol
  system_->p2().on_message(note);
  EXPECT_FALSE(system_->p2().dirty());
}

TEST_F(MdcdFixture, OriginalVariantEstablishesType2) {
  build(Scheme::kNaive);
  c1_send(false);
  settle();
  system_->p2().on_app_send(/*external=*/true, 1);  // AT pass while dirty
  const auto ckpts = system_->trace().of_kind(TraceKind::kCkptVolatile);
  bool found_type2 = false;
  for (const auto& e : ckpts) {
    if (e.process == kP2 && e.detail == "type2") found_type2 = true;
  }
  EXPECT_TRUE(found_type2);
}

TEST_F(MdcdFixture, ModifiedVariantHasNoType2) {
  build(Scheme::kCoordinated);
  c1_send(false);
  settle();
  system_->p2().on_app_send(/*external=*/true, 1);
  for (const auto& e : system_->trace().of_kind(TraceKind::kCkptVolatile)) {
    EXPECT_NE(e.detail, "type2");
  }
}

TEST_F(MdcdFixture, DuplicateDeliverySuppressedAtConsumption) {
  build(Scheme::kCoordinated);
  c1_send(false);
  settle();
  const std::size_t delivered =
      system_->trace().count(TraceKind::kDeliverApp, kP2);

  Message dup;
  dup.kind = MsgKind::kInternal;
  dup.sender = kP1Act;
  dup.receiver = kP2;
  dup.transport_seq = 1;  // the first message P1act's endpoint sent
  dup.sn = 1;
  dup.dirty = true;
  system_->p2().on_message(dup);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), delivered);
  EXPECT_GE(system_->trace().count(TraceKind::kDuplicate, kP2), 1u);
}

TEST_F(MdcdFixture, TaintedPayloadsTaintReceivers) {
  build(Scheme::kCoordinated);
  system_->node(kP1Act).app().corrupt(99);
  c1_send(false);
  settle();
  EXPECT_TRUE(system_->p2().dirty());
  EXPECT_TRUE(system_->node(kP2).app().tainted());
  // The shadow computed from clean state: not tainted.
  EXPECT_FALSE(system_->node(kP1Sdw).app().tainted());
}

TEST_F(MdcdFixture, ProtocolStateSnapshotRoundTrip) {
  build(Scheme::kCoordinated);
  c1_send(false);
  c1_send(false);
  settle();
  MdcdEngine& p2 = system_->p2();
  const Bytes snap = p2.snapshot_protocol_state();
  const bool dirty = p2.dirty();
  const MsgSeq sn = p2.msg_sn();
  const std::size_t recv = p2.recv_views().size();

  c1_send(false);
  settle();
  EXPECT_GT(p2.recv_views().size(), recv);

  p2.restore_protocol_state(snap);
  EXPECT_EQ(p2.dirty(), dirty);
  EXPECT_EQ(p2.msg_sn(), sn);
  EXPECT_EQ(p2.recv_views().size(), recv);
}

}  // namespace
}  // namespace synergy
