#include <gtest/gtest.h>

#include <cstdlib>

#include "clock/drift_clock.hpp"
#include "clock/ensemble.hpp"
#include "clock/timer_service.hpp"
#include "sim/simulator.hpp"

namespace synergy {
namespace {

TEST(DriftClockTest, NoDriftNoOffsetIsIdentity) {
  DriftClock clock(TimePoint{0}, Duration::zero(), 0.0);
  EXPECT_EQ(clock.local_time(TimePoint{12345}), TimePoint{12345});
  EXPECT_EQ(clock.true_time_of(TimePoint{777}), TimePoint{777});
}

TEST(DriftClockTest, OffsetShiftsReading) {
  DriftClock clock(TimePoint{0}, Duration::micros(500), 0.0);
  EXPECT_EQ(clock.local_time(TimePoint{1000}), TimePoint{1500});
  EXPECT_EQ(clock.offset_at(TimePoint{1000}), Duration::micros(500));
}

TEST(DriftClockTest, DriftAccumulates) {
  DriftClock clock(TimePoint{0}, Duration::zero(), 1e-3);
  // After 1 simulated second, a +1e-3 drift clock is 1 ms ahead.
  const TimePoint t = TimePoint{1'000'000};
  EXPECT_EQ(clock.local_time(t), TimePoint{1'001'000});
}

TEST(DriftClockTest, InverseMappingRoundTrips) {
  DriftClock clock(TimePoint{1000}, Duration::micros(-300), 5e-4);
  for (std::int64_t t : {2'000LL, 500'000LL, 10'000'000LL}) {
    const TimePoint true_t{1000 + t};
    const TimePoint local = clock.local_time(true_t);
    const TimePoint back = clock.true_time_of(local);
    EXPECT_LE(std::llabs((back - true_t).count()), 1);
  }
}

TEST(DriftClockTest, ResyncReanchors) {
  DriftClock clock(TimePoint{0}, Duration::micros(900), 0.0);
  clock.resync(TimePoint{5000}, Duration::micros(-100));
  EXPECT_EQ(clock.local_time(TimePoint{5000}), TimePoint{4900});
  EXPECT_EQ(clock.last_resync_true_time(), TimePoint{5000});
}

TEST(TimerServiceTest, FiresAtLocalDeadline) {
  Simulator sim;
  DriftClock clock(TimePoint{0}, Duration::micros(100), 0.0);
  LocalTimerService timers(sim, clock);
  TimePoint fired_true;
  // Local deadline 1000 corresponds to true time 900 (clock 100 ahead).
  timers.schedule_at_local(TimePoint{1000}, [&] { fired_true = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_true, TimePoint{900});
}

TEST(TimerServiceTest, CancelWorks) {
  Simulator sim;
  DriftClock clock(TimePoint{0}, Duration::zero(), 0.0);
  LocalTimerService timers(sim, clock);
  bool ran = false;
  auto id = timers.schedule_after_local(Duration{100}, [&] { ran = true; });
  EXPECT_TRUE(timers.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(TimerServiceTest, RemapsAfterResync) {
  Simulator sim;
  DriftClock clock(TimePoint{0}, Duration::zero(), 0.0);
  LocalTimerService timers(sim, clock);
  TimePoint fired_true;
  timers.schedule_at_local(TimePoint{10'000}, [&] { fired_true = sim.now(); });
  // At true 2000 the clock jumps 3000 ahead: local deadline 10000 now
  // corresponds to true 2000 + (10000 - 5000) = 7000.
  sim.schedule_at(TimePoint{2000}, [&] {
    clock.resync(TimePoint{2000}, Duration::micros(3000));
    timers.on_clock_adjusted();
  });
  sim.run();
  EXPECT_EQ(fired_true, TimePoint{7000});
}

TEST(TimerServiceTest, PastDeadlineFiresImmediately) {
  Simulator sim;
  DriftClock clock(TimePoint{0}, Duration::zero(), 0.0);
  LocalTimerService timers(sim, clock);
  sim.run_until(TimePoint{500});
  bool ran = false;
  timers.schedule_at_local(TimePoint{100}, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), TimePoint{500});
}

TEST(ClockEnsembleTest, OffsetsWithinDelta) {
  Simulator sim;
  ClockParams params;
  params.delta = Duration::millis(4);
  params.rho = 0.0;
  ClockEnsemble ensemble(sim, params, 3, Rng(42));
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      const Duration gap = ensemble.clock(ProcessId{i}).offset_at(sim.now()) -
                           ensemble.clock(ProcessId{j}).offset_at(sim.now());
      EXPECT_LE(std::llabs(gap.count()), params.delta.count());
    }
  }
}

TEST(ClockEnsembleTest, DeviationBoundGrowsWithEps) {
  Simulator sim;
  ClockParams params;
  params.delta = Duration::millis(1);
  params.rho = 1e-4;
  ClockEnsemble ensemble(sim, params, 2, Rng(1));
  const Duration b0 = ensemble.deviation_bound(Duration::zero());
  const Duration b1 = ensemble.deviation_bound(Duration::seconds(100));
  EXPECT_EQ(b0, params.delta);
  // 2 * 1e-4 * 100s = 20 ms extra.
  EXPECT_EQ(b1, params.delta + Duration::millis(20));
}

TEST(ClockEnsembleTest, ResyncResetsElapsedAndNotifies) {
  Simulator sim;
  ClockEnsemble ensemble(sim, ClockParams{}, 2, Rng(3));
  int notified = 0;
  ensemble.on_resync([&] { ++notified; });
  sim.run_until(TimePoint{5'000'000});
  EXPECT_EQ(ensemble.elapsed_since_resync(), Duration::seconds(5));
  ensemble.resync_all();
  EXPECT_EQ(ensemble.elapsed_since_resync(), Duration::zero());
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(ensemble.resync_count(), 1u);
}

}  // namespace
}  // namespace synergy
