#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace synergy {
namespace {

RollbackExperimentConfig tiny_config(Scheme scheme) {
  RollbackExperimentConfig config;
  config.base.scheme = scheme;
  config.base.record_history = false;
  config.base.workload.p1_internal_rate = 0.01;
  config.base.workload.p2_internal_rate = 0.01;
  config.base.workload.p1_external_rate = 0.0;
  config.base.workload.p2_external_rate = 0.05;
  config.base.workload.step_rate = 0.0;
  config.base.tb.interval = Duration::seconds(30);
  config.horizon = Duration::seconds(4'000);
  config.fault_earliest = Duration::seconds(1'000);
  config.fault_latest = Duration::seconds(3'500);
  config.replications = 6;
  config.seed0 = 321;
  return config;
}

TEST(ExperimentTest, EveryReplicationProducesOneFault) {
  const auto result = measure_rollback(tiny_config(Scheme::kCoordinated));
  EXPECT_EQ(result.faults, 6u);
  EXPECT_EQ(result.overall.count(), 18u);  // 3 processes per fault
}

TEST(ExperimentTest, DeterministicForFixedSeed) {
  const auto a = measure_rollback(tiny_config(Scheme::kCoordinated));
  const auto b = measure_rollback(tiny_config(Scheme::kCoordinated));
  EXPECT_EQ(a.overall.mean(), b.overall.mean());
  EXPECT_EQ(a.overall.max(), b.overall.max());
}

TEST(ExperimentTest, CoordinatedBeatsWriteThroughInRareContaminationRegime) {
  auto co = tiny_config(Scheme::kCoordinated);
  auto wt = tiny_config(Scheme::kWriteThrough);
  co.replications = wt.replications = 10;
  const auto rco = measure_rollback(co);
  const auto rwt = measure_rollback(wt);
  EXPECT_LT(rco.overall.mean(), rwt.overall.mean());
}

TEST(ExperimentTest, OraclesCleanWhenRequested) {
  auto config = tiny_config(Scheme::kCoordinated);
  config.base.record_history = true;
  config.check_oracles = true;
  const auto result = measure_rollback(config);
  EXPECT_EQ(result.consistency_violations, 0u);
  EXPECT_EQ(result.recoverability_violations, 0u);
  EXPECT_EQ(result.dirty_restores, 0u);
}

TEST(ExperimentTest, RollbackBoundedByHorizon) {
  const auto result = measure_rollback(tiny_config(Scheme::kCoordinated));
  EXPECT_GE(result.overall.min(), 0.0);
  EXPECT_LE(result.overall.max(), 4'000.0);
}

}  // namespace
}  // namespace synergy
