#include <gtest/gtest.h>

#include "trace/timeline.hpp"
#include "trace/trace.hpp"

namespace synergy {
namespace {

TEST(TraceLogTest, RecordAndQuery) {
  TraceLog log;
  log.record(TimePoint{10}, kP2, TraceKind::kDirtySet);
  log.record(TimePoint{20}, kP2, TraceKind::kDirtyClear);
  log.record(TimePoint{30}, kP1Sdw, TraceKind::kDirtySet);
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.count(TraceKind::kDirtySet), 2u);
  EXPECT_EQ(log.count(TraceKind::kDirtySet, kP2), 1u);
  EXPECT_EQ(log.of_kind(TraceKind::kDirtyClear).size(), 1u);
  EXPECT_EQ(log.of_process(kP2).size(), 2u);
}

TEST(TraceLogTest, DumpContainsEventNames) {
  TraceLog log;
  log.record(TimePoint{1'000'000}, kP1Act, TraceKind::kAtPass, "external", 3);
  const std::string dump = log.dump();
  EXPECT_NE(dump.find("P1act"), std::string::npos);
  EXPECT_NE(dump.find("at_pass"), std::string::npos);
  EXPECT_NE(dump.find("external"), std::string::npos);
}

TEST(TimelineTest, RendersLanesAndMarkers) {
  TraceLog log;
  log.record(TimePoint{0}, kP2, TraceKind::kDirtySet);
  log.record(TimePoint{50}, kP2, TraceKind::kCkptVolatile, "type1");
  log.record(TimePoint{100}, kP2, TraceKind::kDirtyClear);
  log.record(TimePoint{100}, kP1Sdw, TraceKind::kAtPass);
  const std::string out = render_timeline(log, {kP1Sdw, kP2});
  EXPECT_NE(out.find("P1sdw"), std::string::npos);
  EXPECT_NE(out.find("P2"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);  // type-1 marker
  EXPECT_NE(out.find('A'), std::string::npos);  // AT pass marker
  EXPECT_NE(out.find('='), std::string::npos);  // dirty interval
}

TEST(TimelineTest, EmptyTraceHandled) {
  TraceLog log;
  EXPECT_EQ(render_timeline(log, {kP2}), "(empty trace)\n");
}

}  // namespace
}  // namespace synergy
