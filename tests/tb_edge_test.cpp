// TB engine edges: absolute timer schedules, resynchronization effects,
// restart semantics, and the Figure-2 ablation knobs at the unit level.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig tb_config(std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = seed;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};
  c.tb.interval = Duration::seconds(10);
  return c;
}

TEST(TbEdgeTest, TimersSitOnTheAbsoluteSchedule) {
  // All processes aim for the same k*Delta instants: expiries cluster
  // within the clock-deviation bound, not at arbitrary phases.
  SystemConfig c = tb_config(3);
  c.clock.delta = Duration::millis(40);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(35));
  system.run();
  std::vector<double> first_expiry(3, -1);
  for (const auto& e : system.trace().of_kind(TraceKind::kStableBegin)) {
    auto& t = first_expiry[e.process.value()];
    if (t < 0) t = e.t.to_seconds();
  }
  for (double t : first_expiry) {
    ASSERT_GT(t, 0);
    // First expiry at ~10 s, within the deviation bound.
    EXPECT_NEAR(t, 10.0, 0.05);
  }
  const double spread =
      *std::max_element(first_expiry.begin(), first_expiry.end()) -
      *std::min_element(first_expiry.begin(), first_expiry.end());
  EXPECT_LE(spread, 0.05);
  EXPECT_GT(spread, 0.0);  // clocks do differ
}

TEST(TbEdgeTest, ResyncShrinksTheDeviationBound) {
  SystemConfig c = tb_config(4);
  c.clock.rho = 1e-4;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(100));
  system.run_until(TimePoint::origin() + Duration::seconds(50));
  TbEngine* tb = system.node(kP2).tb();
  const Duration before = tb->blocking_period(false);
  system.clocks().resync_all();
  const Duration after = tb->blocking_period(false);
  EXPECT_LT(after, before);  // eps reset to ~0
}

TEST(TbEdgeTest, NdcMonotoneAcrossRecoveries) {
  SystemConfig c = tb_config(5);
  c.workload.p1_internal_rate = 1.0;
  c.workload.p2_internal_rate = 1.0;
  c.workload.p1_external_rate = 0.2;
  c.workload.p2_external_rate = 0.2;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(95),
                           NodeId{2});
  std::vector<StableSeq> samples;
  for (int s = 20; s < 300; s += 20) {
    system.sim().schedule_at(TimePoint::origin() + Duration::seconds(s),
                             [&] { samples.push_back(
                                       system.node(kP2).tb()->ndc()); });
  }
  system.run();
  // Ndc may step back to the recovery line once but must then resume
  // monotonically and keep growing.
  EXPECT_GT(samples.back(), samples.front());
  std::size_t decreases = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i] < samples[i - 1]) ++decreases;
  }
  EXPECT_LE(decreases, 1u);
}

TEST(TbEdgeTest, StopCancelsPendingWork) {
  System system(tb_config(6));
  system.start(TimePoint::origin() + Duration::seconds(1'000));
  system.run_until(TimePoint::origin() + Duration::seconds(5));
  TbEngine* tb = system.node(kP2).tb();
  tb->stop();
  system.run_until(TimePoint::origin() + Duration::seconds(40));
  EXPECT_EQ(tb->checkpoints_taken(), 0u);
  // And restarting re-arms on the absolute schedule.
  tb->reset_after_recovery(0);
  system.run_until(TimePoint::origin() + Duration::seconds(61));
  EXPECT_GE(tb->checkpoints_taken(), 2u);
}

TEST(TbEdgeTest, OmitUnackedLogKnobClearsRecords) {
  SystemConfig c = tb_config(7);
  c.workload.p1_internal_rate = 30.0;
  c.workload.p2_internal_rate = 30.0;
  c.net.tmax = Duration::millis(100);  // keep messages in flight
  c.tb.omit_unacked_log = true;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(25));
  system.run();
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto rec = system.node(ProcessId{i}).sstore().latest_committed();
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->unacked.empty());
  }
}

TEST(TbEdgeTest, BlockingNoneNeverBlocks) {
  SystemConfig c = tb_config(8);
  c.tb.blocking_model = BlockingModel::kNone;
  c.workload.p1_internal_rate = 5.0;
  c.workload.p2_internal_rate = 5.0;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(60));
  system.run();
  EXPECT_EQ(system.trace().count(TraceKind::kBlockStart), 0u);
  EXPECT_GT(system.node(kP2).tb()->checkpoints_taken(), 3u);
}

TEST(TbEdgeTest, CheckpointContentsSurviveSerializationSizes) {
  // A record with a large view history round-trips, and the per-KiB
  // latency model scales accordingly.
  SystemConfig c = tb_config(9);
  c.workload.p1_internal_rate = 50.0;
  c.workload.p2_internal_rate = 50.0;
  c.sstore.write_per_kib = Duration::micros(200);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(45));
  system.run();
  // The live engine's record holds thousands of view entries by now.
  const CheckpointRecord rec = system.p2().make_record(CkptKind::kStable);
  EXPECT_GT(rec.encoded_size(), 10'000u);
  ByteWriter w;
  rec.serialize(w);
  ByteReader r(w.data());
  const CheckpointRecord back = CheckpointRecord::deserialize(r);
  EXPECT_EQ(back.encoded_size(), rec.encoded_size());
  const Duration latency = system.node(kP2).sstore().write_latency_for(rec);
  EXPECT_GT(latency, c.sstore.write_base_latency + Duration::millis(1));
}

}  // namespace
}  // namespace synergy
