// Injector-layer tests: the FaultyNetwork decorator, the seeded timed
// fault schedule, and the campaign driver's deterministic replay — the
// machinery behind `synergy chaos`.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/campaign.hpp"
#include "inject/fault_schedule.hpp"
#include "inject/faulty_network.hpp"
#include "net/reliable.hpp"
#include "sim/simulator.hpp"

namespace synergy {
namespace {

Message internal_to(ProcessId receiver) {
  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = receiver;
  return m;
}

TEST(FaultyNetworkTest, DropSilencesTheMessageButNotTheUnackedLog) {
  Simulator sim;
  NetFaultParams f;
  f.drop_probability = 1.0;
  FaultyNetwork net(sim, NetworkParams{}, f, Rng(1));
  int delivered = 0;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message&) { ++delivered; });
  a.send(internal_to(b.self()));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.injected_drops(), 1u);
  // The drop is invisible to the sender's transport, so the message stays
  // in the unacked log — which is exactly what re-send recovery needs.
  EXPECT_EQ(a.unacked_count(), 1u);
}

TEST(FaultyNetworkTest, DuplicateArrivesTwiceAndIsConsumedOnce) {
  Simulator sim;
  NetFaultParams f;
  f.duplicate_probability = 1.0;
  FaultyNetwork net(sim, NetworkParams{}, f, Rng(2));
  std::vector<Message> inbox;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message& m) { inbox.push_back(m); });
  a.send(internal_to(b.self()));
  sim.run();
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(net.injected_duplicates(), 1u);
  EXPECT_TRUE(b.consume(inbox[0]));
  EXPECT_FALSE(b.consume(inbox[1]));  // transport_seq dedup
}

TEST(FaultyNetworkTest, BitflipIsCaughtByTheFrameCrcAndDiscarded) {
  Simulator sim;
  NetFaultParams f;
  f.bitflip_probability = 1.0;
  FaultyNetwork net(sim, NetworkParams{}, f, Rng(3));
  int delivered = 0;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message&) { ++delivered; });
  a.send(internal_to(b.self()));
  sim.run();
  // The damaged frame never reaches the receiver as data: the CRC check
  // discards it, leaving the message unacked for re-send recovery.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.injected_bitflips(), 1u);
  EXPECT_EQ(net.corrupt_frames_dropped(), 1u);
  EXPECT_EQ(a.unacked_count(), 1u);
}

TEST(FaultyNetworkTest, InjectedDelayBreachesTheDeliveryBound) {
  Simulator sim;
  NetFaultParams f;
  f.delay_probability = 1.0;
  f.delay_factor_max = 4.0;
  NetworkParams np;
  FaultyNetwork net(sim, np, f, Rng(4));
  std::size_t late = 0;
  Duration worst = Duration::zero();
  net.set_delivery_bound_observer([&](const Message&, Duration lateness) {
    ++late;
    worst = std::max(worst, lateness);
  });
  int delivered = 0;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message&) { ++delivered; });
  a.send(internal_to(b.self()));
  sim.run();
  EXPECT_EQ(delivered, 1);  // delayed, not lost
  EXPECT_EQ(net.injected_delays(), 1u);
  EXPECT_GE(late, 1u);
  EXPECT_GT(worst, Duration::zero());
}

TEST(FaultyNetworkTest, SameSeedInjectsTheSamePattern) {
  // The per-message fault stream is a pure function of the seed: two
  // identical traffic sequences see identical injections.
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    NetFaultParams f;
    f.drop_probability = 0.2;
    f.duplicate_probability = 0.2;
    f.reorder_probability = 0.2;
    f.delay_probability = 0.1;
    f.bitflip_probability = 0.1;
    FaultyNetwork net(sim, NetworkParams{}, f, Rng(seed));
    std::vector<Message> inbox;
    ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
    ReliableEndpoint b(net, ProcessId{1},
                       [&](const Message& m) { inbox.push_back(m); });
    for (int i = 0; i < 200; ++i) a.send(internal_to(b.self()));
    sim.run();
    return std::tuple{net.injected_drops(), net.injected_duplicates(),
                      net.injected_reorders(), net.injected_delays(),
                      net.injected_bitflips(), inbox.size()};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultScheduleTest, GenerationIsDeterministicInTheSeed) {
  InjectorRates rates = default_injector_rates();
  const auto gen = [&](std::uint64_t seed) {
    return FaultSchedule::generate(seed, rates, TimePoint::origin(),
                                   Duration::seconds(600), 1e-5, 3);
  };
  const FaultSchedule s1 = gen(7);
  const FaultSchedule s2 = gen(7);
  const FaultSchedule s3 = gen(8);
  ASSERT_EQ(s1.events().size(), s2.events().size());
  for (std::size_t i = 0; i < s1.events().size(); ++i) {
    EXPECT_EQ(s1.events()[i].kind, s2.events()[i].kind);
    EXPECT_EQ(s1.events()[i].at, s2.events()[i].at);
    EXPECT_EQ(s1.events()[i].target, s2.events()[i].target);
  }
  EXPECT_EQ(s1.to_json(), s2.to_json());
  EXPECT_NE(s1.to_json(), s3.to_json());
  // The default rates actually schedule adversity.
  EXPECT_FALSE(s1.events().empty());
}

TEST(FaultScheduleTest, ExcursionsAndBlackoutsComeInPairs) {
  InjectorRates rates = default_injector_rates();
  const FaultSchedule s = FaultSchedule::generate(
      11, rates, TimePoint::origin(), Duration::seconds(600), 1e-5, 3);
  std::size_t starts = 0, ends = 0, on = 0, off = 0;
  for (const FaultEvent& e : s.events()) {
    switch (e.kind) {
      case FaultEvent::Kind::kDriftExcursion: ++starts; break;
      case FaultEvent::Kind::kDriftRestore: ++ends; break;
      case FaultEvent::Kind::kBlackoutStart: ++on; break;
      case FaultEvent::Kind::kBlackoutEnd: ++off; break;
      default: break;
    }
  }
  EXPECT_EQ(starts, ends);
  EXPECT_EQ(on, off);
}

TEST(CampaignTest, MissionReplayIsExact) {
  // The acceptance property behind `chaos --replay`: re-running a mission
  // seed reproduces the mission bit-for-bit, adversity counters included.
  CampaignConfig config;
  config.mission = Duration::seconds(120);
  const MissionReport r1 = run_mission(config, 12345);
  const MissionReport r2 = run_mission(config, 12345);
  EXPECT_EQ(r1.ok, r2.ok);
  EXPECT_EQ(r1.injected_net, r2.injected_net);
  EXPECT_EQ(r1.late_deliveries, r2.late_deliveries);
  EXPECT_EQ(r1.write_retries, r2.write_retries);
  EXPECT_EQ(r1.torn_writes, r2.torn_writes);
  EXPECT_EQ(r1.latent_corruptions, r2.latent_corruptions);
  EXPECT_EQ(r1.corrupt_reads, r2.corrupt_reads);
  EXPECT_EQ(r1.hw_faults, r2.hw_faults);
  EXPECT_EQ(r1.monitor.violations(), r2.monitor.violations());
  EXPECT_EQ(r1.monitor.degradations(), r2.monitor.degradations());
}

TEST(CampaignTest, ShortCampaignRunsCleanUnderTheDefaultAdversary) {
  CampaignConfig config;
  config.seed = 1;
  config.reps = 3;
  config.mission = Duration::seconds(300);
  std::ostringstream out;
  const CampaignResult result = run_campaign(config, &out);
  EXPECT_EQ(result.failed, 0u) << out.str();
  EXPECT_EQ(result.oracle_violations, 0u) << out.str();
  // The adversary was actually on: detections happened and were degraded
  // around (a silent campaign would mean the injectors are disconnected).
  EXPECT_GT(result.detections, 0u);
  EXPECT_GT(result.degradations, 0u);
  ASSERT_EQ(result.missions.size(), 3u);
  for (const MissionReport& m : result.missions) {
    EXPECT_TRUE(m.ok);
    EXPECT_GT(m.injected_net, 0u) << "seed " << m.seed;
    EXPECT_GT(m.hw_faults, 0u) << "seed " << m.seed;
  }
}

TEST(CampaignTest, FailedMissionReportCarriesTheReplayableSchedule) {
  // Cripple the recoverability mechanism on purpose: the checkpoints omit
  // the unacked-send log (the Table 1 ablation) while the network drops a
  // tenth of all traffic, so dropped messages can never be re-sent and the
  // recoverability oracle fails. The report must be complete: seed,
  // failure descriptions, and the full schedule JSON.
  CampaignConfig config;
  config.seed = 5;
  config.reps = 1;
  config.mission = Duration::seconds(120);
  config.rates.net.drop_probability = 0.10;
  config.base.tb.omit_unacked_log = true;
  config.base.monitor.degrade = false;
  std::ostringstream out;
  const CampaignResult result = run_campaign(config, &out);
  ASSERT_EQ(result.failed, 1u)
      << "a mission that drops 10% of traffic without an unacked log "
         "cannot keep the recoverability oracle";
  const MissionReport& m = result.missions[0];
  EXPECT_FALSE(m.ok);
  EXPECT_FALSE(m.failures.empty());
  EXPECT_NE(m.schedule_json.find("\"seed\""), std::string::npos);
  EXPECT_NE(m.schedule_json.find("drop"), std::string::npos);
  // The campaign printed the replay instructions for the failing seed.
  EXPECT_NE(out.str().find("--replay"), std::string::npos);
  // And the printed seed replays to the same verdict.
  const MissionReport replay = run_mission(config, m.seed);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.failures.size(), m.failures.size());
}

}  // namespace
}  // namespace synergy
