#include <gtest/gtest.h>

#include "net/transport_core.hpp"

namespace synergy {
namespace {

Message internal_to(ProcessId to, std::uint64_t payload = 0) {
  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = to;
  m.payload = payload;
  return m;
}

TEST(TransportCoreTest, PrepareSendStampsMonotoneSequences) {
  TransportCore core(kP1Act);
  const Message a = core.prepare_send(internal_to(kP2));
  const Message b = core.prepare_send(internal_to(kP2));
  EXPECT_EQ(a.sender, kP1Act);
  EXPECT_EQ(a.transport_seq + 1, b.transport_seq);
}

TEST(TransportCoreTest, UnackedTracksNonAckNonDeviceOnly) {
  TransportCore core(kP1Act);
  core.prepare_send(internal_to(kP2));
  EXPECT_EQ(core.unacked_count(), 1u);

  Message ext = internal_to(kDeviceId);
  ext.kind = MsgKind::kExternal;
  core.prepare_send(ext);
  EXPECT_EQ(core.unacked_count(), 1u);  // device: fire-and-forget

  Message ack;
  ack.kind = MsgKind::kAck;
  ack.receiver = kP2;
  core.prepare_send(ack);
  EXPECT_EQ(core.unacked_count(), 1u);  // acks are not acked
}

TEST(TransportCoreTest, AckSettlesEntry) {
  TransportCore core(kP1Act);
  const Message m = core.prepare_send(internal_to(kP2));
  core.on_ack(kP2, m.transport_seq);
  EXPECT_EQ(core.unacked_count(), 0u);
  core.on_ack(kP2, m.transport_seq);  // idempotent
  EXPECT_EQ(core.unacked_count(), 0u);
}

TEST(TransportCoreTest, AckMatchesPerDestinationStream) {
  TransportCore core(kP1Act);
  const Message to_p2 = core.prepare_send(internal_to(kP2));
  const Message to_sdw = core.prepare_send(internal_to(kP1Sdw));
  // Independent streams: both firsts carry seq 1, but an ack from P2
  // settles only the P2 entry.
  EXPECT_EQ(to_p2.transport_seq, to_sdw.transport_seq);
  core.on_ack(kP2, to_p2.transport_seq);
  EXPECT_EQ(core.unacked_count(), 1u);
  core.on_ack(kP1Sdw, to_sdw.transport_seq);
  EXPECT_EQ(core.unacked_count(), 0u);
}

TEST(TransportCoreTest, AcksRideUnstampedAndOffTheStream) {
  TransportCore core(kP1Act);
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.receiver = kP2;
  EXPECT_EQ(core.prepare_send(ack).transport_seq, 0u);
  // The data stream to the same peer is unperturbed: dense from 1.
  EXPECT_EQ(core.prepare_send(internal_to(kP2)).transport_seq, 1u);
}

TEST(TransportCoreTest, MakeAckAddressesSender) {
  Message m = internal_to(kP2);
  m.sender = kP1Act;
  m.transport_seq = 77;
  const Message ack = TransportCore::make_ack(m);
  EXPECT_EQ(ack.kind, MsgKind::kAck);
  EXPECT_EQ(ack.receiver, kP1Act);
  EXPECT_EQ(ack.ack_of, 77u);
}

TEST(TransportCoreTest, DuplicateDetectionPerSender) {
  TransportCore core(kP2);
  Message m = internal_to(kP2);
  m.sender = kP1Act;
  m.transport_seq = 5;
  EXPECT_FALSE(core.already_consumed(m));
  core.mark_consumed(m);
  EXPECT_TRUE(core.already_consumed(m));
  // Same seq from a different sender is distinct.
  m.sender = kP1Sdw;
  EXPECT_FALSE(core.already_consumed(m));
  EXPECT_EQ(core.duplicates_suppressed(), 1u);
}

TEST(TransportCoreTest, RestoreUnackedRewindsSequenceCounter) {
  TransportCore core(kP1Act);
  const Message a = core.prepare_send(internal_to(kP2));
  const Message b = core.prepare_send(internal_to(kP2));
  const Message log[] = {a, b};
  core.restore_unacked(log);
  const Message c = core.prepare_send(internal_to(kP2));
  EXPECT_GT(c.transport_seq, b.transport_seq);
  EXPECT_EQ(core.unacked_count(), 3u);
}

TEST(TransportCoreTest, PrepareResendRestampsEpoch) {
  TransportCore core(kP1Act);
  core.prepare_send(internal_to(kP2));
  core.prepare_send(internal_to(kP2));
  const auto resend = core.prepare_resend(9);
  ASSERT_EQ(resend.size(), 2u);
  for (const auto& m : resend) EXPECT_EQ(m.epoch, 9u);
  // The stored copies are re-stamped too (a second resend keeps epoch 9+).
  EXPECT_EQ(core.prepare_resend(9)[0].epoch, 9u);
}

TEST(TransportCoreTest, SnapshotRestoreRoundTripsDedupState) {
  TransportCore core(kP2);
  Message m = internal_to(kP2);
  m.sender = kP1Act;
  m.transport_seq = 3;
  core.mark_consumed(m);
  const Bytes snap = core.snapshot_state();

  m.transport_seq = 4;
  core.mark_consumed(m);
  core.restore_state(snap);
  m.transport_seq = 3;
  EXPECT_TRUE(core.already_consumed(m));
  m.transport_seq = 4;
  EXPECT_FALSE(core.already_consumed(m));
}

TEST(TransportCoreTest, RestoreStateNeverLowersSequenceCounter) {
  TransportCore core(kP1Act);
  const Bytes early = core.snapshot_state();
  const Message a = core.prepare_send(internal_to(kP2));
  core.restore_state(early);
  const Message b = core.prepare_send(internal_to(kP2));
  // Monotone even across a restore to an earlier snapshot: live sequence
  // numbers must never be reused.
  EXPECT_GT(b.transport_seq, a.transport_seq);
}

}  // namespace
}  // namespace synergy
