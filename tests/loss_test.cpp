// Message loss: the paper's protocols assume reliable channels, but the
// transport's unacked log gives the system a degree of loss resilience —
// a silently dropped message stays unacknowledged forever and is
// re-delivered by the next hardware recovery's re-send phase. These tests
// pin the transport-level behaviour and that bounded loss does not break
// the structural properties.
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/checkers.hpp"
#include "core/system.hpp"
#include "inject/faulty_network.hpp"

namespace synergy {
namespace {

TEST(LossTest, LostMessageStaysUnacked) {
  Simulator sim;
  NetworkParams np;
  np.loss_probability = 1.0;  // everything vanishes
  Network net(sim, np, Rng(1));
  int delivered = 0;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message&) { ++delivered; });
  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = ProcessId{1};
  a.send(m);
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(a.unacked_count(), 1u);  // restorable: recovery will re-send
}

TEST(LossTest, LostAckRedeliversAndDedups) {
  // The data message arrives; its ACK is lost. The sender's unacked log
  // keeps it; a re-send reaches the receiver, which suppresses the
  // duplicate and re-acks.
  Simulator sim;
  Network net(sim, NetworkParams{}, Rng(2));
  std::vector<Message> inbox;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message& m) { inbox.push_back(m); });
  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = ProcessId{1};
  a.send(m);
  sim.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_TRUE(b.consume(inbox[0]));
  // "Lose" the ack: simply never send it; sender re-sends.
  EXPECT_EQ(a.unacked_count(), 1u);
  a.resend_unacked(0);
  sim.run();
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_FALSE(b.consume(inbox[1]));  // duplicate suppressed
  b.ack(inbox[1]);                    // re-ack settles the sender
  sim.run();
  EXPECT_EQ(a.unacked_count(), 0u);
}

TEST(LossTest, HardwareRecoveryRedeliversLostTraffic) {
  // With mild loss, some application messages vanish silently. They stay
  // in their senders' unacked logs, land in the next stable checkpoints,
  // and the next hardware recovery re-sends them: the recovery line
  // remains recoverable by construction.
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 9;
  c.net.loss_probability = 0.02;
  c.workload.p1_internal_rate = 5.0;
  c.workload.p2_internal_rate = 5.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(150),
                           NodeId{2});
  system.run();

  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  EXPECT_GT(system.hw_recoveries()[0].resent_messages, 0u);
  const GlobalState line = system.stable_line_state();
  const auto rec = check_recoverability(line);
  EXPECT_TRUE(rec.empty()) << rec.front().describe();
}

TEST(LossTest, DuplicateReorderStormDedupsThroughDetachReattach) {
  // An adversarial link that duplicates and reorders half of everything:
  // the receiver must consume each message exactly once — including across
  // a detach/reattach cycle (crash-and-restart at the NIC level) with a
  // full unacked-log re-send, the recovery path that deliberately floods
  // the receiver with messages it may already have consumed.
  Simulator sim;
  NetFaultParams f;
  f.duplicate_probability = 0.5;
  f.reorder_probability = 0.5;
  FaultyNetwork net(sim, NetworkParams{}, f, Rng(21));
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  std::unordered_set<std::uint64_t> consumed;
  std::size_t deliveries = 0;
  ReliableEndpoint* bp = nullptr;
  ReliableEndpoint b(net, ProcessId{1}, [&](const Message& m) {
    ++deliveries;
    if (bp->consume(m)) {
      EXPECT_TRUE(consumed.insert(m.transport_seq).second)
          << "message consumed twice";
      bp->ack(m);
    }
  });
  bp = &b;

  constexpr int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MsgKind::kInternal;
    m.receiver = b.self();
    m.payload = static_cast<std::uint64_t>(i);
    a.send(m);
  }
  sim.run();
  EXPECT_GT(net.injected_duplicates(), 0u);
  EXPECT_GT(net.injected_reorders(), 0u);
  EXPECT_GT(deliveries, consumed.size());  // the storm did deliver extras

  // Crash-and-restart the receiver's attachment; the sender re-sends its
  // whole unacked log (acks can be outstanding). Nothing may be consumed a
  // second time afterwards.
  const std::size_t consumed_before = consumed.size();
  b.detach_network();
  b.reattach_network();
  a.resend_unacked(1);
  sim.run();
  EXPECT_GE(consumed.size(), consumed_before);  // late originals may land
  // Drain until the storm settles: every message eventually consumed
  // exactly once, and every consumption acknowledged.
  for (int round = 0; round < 10 && a.unacked_count() > 0; ++round) {
    a.resend_unacked(1);
    sim.run();
  }
  EXPECT_EQ(consumed.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(a.unacked_count(), 0u);
}

TEST(LossTest, TornStableWriteIsRecoveredFromHistory) {
  // A torn write commits a truncated blob as if whole. The CRC catches it
  // at read time: the store never returns the damaged record, never
  // crashes, and falls back to the previous retained checkpoint.
  Simulator sim;
  StableStoreParams sp;
  sp.write_base_latency = Duration::millis(1);
  StableStore store(sim, sp);
  CheckpointRecord r1;
  r1.kind = CkptKind::kStable;
  r1.ndc = 1;
  r1.app_state = Bytes(64, 0xAB);
  CheckpointRecord r2 = r1;
  r2.ndc = 2;
  store.commit_now(r1);
  store.commit_now(r2);
  ASSERT_TRUE(store.truncate_retained(2, 10));  // tear the newest record

  const auto latest = store.latest_committed();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->ndc, 1u);  // fell back to the intact predecessor
  EXPECT_FALSE(store.committed_for(2).has_value());
  EXPECT_FALSE(store.has_valid(2));
  EXPECT_EQ(store.latest_valid_ndc(), 1u);
  EXPECT_GT(store.corrupt_reads(), 0u);
}

TEST(LossTest, ChecksumMismatchFallsBackToPreviousRecord) {
  // Latent single-bit corruption of a committed record: detected by the
  // record checksum, skipped, previous record served.
  Simulator sim;
  StableStoreParams sp;
  StableStore store(sim, sp);
  for (StableSeq n = 1; n <= 3; ++n) {
    CheckpointRecord r;
    r.kind = CkptKind::kStable;
    r.ndc = n;
    r.app_state = Bytes(128, static_cast<std::uint8_t>(n));
    store.commit_now(r);
  }
  ASSERT_TRUE(store.corrupt_retained(3));  // flip one bit in the newest

  EXPECT_FALSE(store.has_valid(3));
  const auto best = store.best_valid_at_most(3);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->ndc, 2u);
  const auto latest = store.latest_committed();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->ndc, 2u);
  // The middle record is untouched and still served verbatim.
  const auto mid = store.committed_for(2);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->app_state, Bytes(128, 2));
}

TEST(LossTest, NonFifoNetworkStillConverges) {
  // FIFO is the paper's assumption; the engines tolerate reordering of
  // independent messages (SN tracking is max-based, dedup is per-seq).
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 10;
  c.net.fifo = false;
  c.net.tmin = Duration::millis(1);
  c.net.tmax = Duration::millis(50);  // heavy reordering
  c.workload.p1_internal_rate = 5.0;
  c.workload.p2_internal_rate = 5.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run();
  EXPECT_GT(system.device().entries.size(), 50u);
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted);
  }
  EXPECT_FALSE(system.sw_recovery().has_value());
}

}  // namespace
}  // namespace synergy
