// Message loss: the paper's protocols assume reliable channels, but the
// transport's unacked log gives the system a degree of loss resilience —
// a silently dropped message stays unacknowledged forever and is
// re-delivered by the next hardware recovery's re-send phase. These tests
// pin the transport-level behaviour and that bounded loss does not break
// the structural properties.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

TEST(LossTest, LostMessageStaysUnacked) {
  Simulator sim;
  NetworkParams np;
  np.loss_probability = 1.0;  // everything vanishes
  Network net(sim, np, Rng(1));
  int delivered = 0;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message&) { ++delivered; });
  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = ProcessId{1};
  a.send(m);
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(a.unacked_count(), 1u);  // restorable: recovery will re-send
}

TEST(LossTest, LostAckRedeliversAndDedups) {
  // The data message arrives; its ACK is lost. The sender's unacked log
  // keeps it; a re-send reaches the receiver, which suppresses the
  // duplicate and re-acks.
  Simulator sim;
  Network net(sim, NetworkParams{}, Rng(2));
  std::vector<Message> inbox;
  ReliableEndpoint a(net, ProcessId{0}, [](const Message&) {});
  ReliableEndpoint b(net, ProcessId{1},
                     [&](const Message& m) { inbox.push_back(m); });
  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = ProcessId{1};
  a.send(m);
  sim.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_TRUE(b.consume(inbox[0]));
  // "Lose" the ack: simply never send it; sender re-sends.
  EXPECT_EQ(a.unacked_count(), 1u);
  a.resend_unacked(0);
  sim.run();
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_FALSE(b.consume(inbox[1]));  // duplicate suppressed
  b.ack(inbox[1]);                    // re-ack settles the sender
  sim.run();
  EXPECT_EQ(a.unacked_count(), 0u);
}

TEST(LossTest, HardwareRecoveryRedeliversLostTraffic) {
  // With mild loss, some application messages vanish silently. They stay
  // in their senders' unacked logs, land in the next stable checkpoints,
  // and the next hardware recovery re-sends them: the recovery line
  // remains recoverable by construction.
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 9;
  c.net.loss_probability = 0.02;
  c.workload.p1_internal_rate = 5.0;
  c.workload.p2_internal_rate = 5.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(150),
                           NodeId{2});
  system.run();

  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  EXPECT_GT(system.hw_recoveries()[0].resent_messages, 0u);
  const GlobalState line = system.stable_line_state();
  const auto rec = check_recoverability(line);
  EXPECT_TRUE(rec.empty()) << rec.front().describe();
}

TEST(LossTest, NonFifoNetworkStillConverges) {
  // FIFO is the paper's assumption; the engines tolerate reordering of
  // independent messages (SN tracking is max-based, dedup is per-seq).
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 10;
  c.net.fifo = false;
  c.net.tmin = Duration::millis(1);
  c.net.tmax = Duration::millis(50);  // heavy reordering
  c.workload.p1_internal_rate = 5.0;
  c.workload.p2_internal_rate = 5.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run();
  EXPECT_GT(system.device().entries.size(), 50u);
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted);
  }
  EXPECT_FALSE(system.sw_recovery().has_value());
}

}  // namespace
}  // namespace synergy
