// Scale guarantees of the generalized engine (DESIGN.md §17): the flat
// ContamVector is differential-tested against the std::map oracle it
// replaced, the sharded star-64 campaign is bit-identical across --jobs,
// and the anchor ring stays bounded under adversarial churn while keeping
// the newest covered candidate promotable.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "general/campaign.hpp"
#include "general/system.hpp"

namespace synergy {
namespace {

// ---- Differential fuzz: flat ContamVector vs std::map oracle ---------------

using OracleMap = std::map<std::uint32_t, MsgSeq>;

void oracle_raise(OracleMap& m, std::uint32_t source, MsgSeq sn) {
  auto [it, inserted] = m.emplace(source, sn);
  if (!inserted && it->second < sn) it->second = sn;
}

void oracle_merge(OracleMap& into, const OracleMap& other) {
  for (const auto& [source, sn] : other) oracle_raise(into, source, sn);
}

bool oracle_covered(const OracleMap& contam, const OracleMap& validated) {
  for (const auto& [source, sn] : contam) {
    const auto it = validated.find(source);
    if (it == validated.end() || it->second < sn) return false;
  }
  return true;
}

// The encoding the map representation produced: count, then (source, sn)
// in ascending source order — the flat form must stay byte-identical.
Bytes oracle_serialize(const OracleMap& m) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [source, sn] : m) {
    w.u32(source);
    w.u64(sn);
  }
  return w.take();
}

struct FuzzPair {
  ContamVector flat;
  OracleMap oracle;
};

FuzzPair random_pair(Rng& rng) {
  FuzzPair p;
  // Sources drawn from a small domain so collisions (max-merge paths) are
  // common; occasional large ones exercise the heap spill past
  // kContamInline.
  const auto entries = static_cast<std::size_t>(rng.uniform_int(0, 8));
  for (std::size_t i = 0; i < entries; ++i) {
    const auto source = static_cast<std::uint32_t>(rng.uniform_int(0, 9));
    const auto sn = static_cast<MsgSeq>(rng.uniform_int(0, 1'000'000));
    p.flat.raise(source, sn);
    oracle_raise(p.oracle, source, sn);
  }
  return p;
}

void expect_same(const ContamVector& flat, const OracleMap& oracle) {
  ASSERT_EQ(flat.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [source, sn] : flat) {
    ASSERT_EQ(source, it->first);
    ASSERT_EQ(sn, it->second);
    ++it;
  }
}

TEST(ContamDifferentialFuzz, FlatMatchesMapOracle) {
  Rng rng(20260808);
  for (int iter = 0; iter < 100'000; ++iter) {
    FuzzPair a = random_pair(rng);
    const FuzzPair b = random_pair(rng);

    // Same contents, same order.
    expect_same(a.flat, a.oracle);

    // Byte-identical encoding, and the flat decoder round-trips it.
    ByteWriter w;
    contam_serialize(a.flat, w);
    const Bytes& flat_bytes = w.data();
    ASSERT_EQ(flat_bytes, oracle_serialize(a.oracle));
    ByteReader r(flat_bytes);
    ASSERT_EQ(contam_deserialize(r), a.flat);

    // Coverage agrees in both directions.
    ASSERT_EQ(contam_covered(a.flat, b.flat),
              oracle_covered(a.oracle, b.oracle));
    ASSERT_EQ(contam_covered(b.flat, a.flat),
              oracle_covered(b.oracle, a.oracle));

    // Pointwise-max merge agrees, including the changed-bit: the oracle
    // changed iff the merged map differs from the pre-merge one.
    const OracleMap before = a.oracle;
    oracle_merge(a.oracle, b.oracle);
    const bool changed = contam_merge(a.flat, b.flat);
    ASSERT_EQ(changed, a.oracle != before);
    expect_same(a.flat, a.oracle);
  }
}

// ---- Sharded star-64 campaign: determinism across --jobs -------------------

TEST(GeneralCampaignTest, Star64BitIdenticalAcrossJobs) {
  GeneralCampaignConfig config;
  config.shape = GeneralShape::kStar;
  config.size = 64;
  config.reps = 4;
  config.mission = Duration::seconds(20);
  config.verbose = true;

  config.jobs = 1;
  const GeneralCampaignResult serial = run_general_campaign(config, nullptr);
  config.jobs = 4;
  const GeneralCampaignResult sharded = run_general_campaign(config, nullptr);

  ASSERT_EQ(serial.missions.size(), config.reps);
  ASSERT_EQ(sharded.missions.size(), config.reps);
  for (std::size_t i = 0; i < config.reps; ++i) {
    const GeneralMissionReport& a = serial.missions[i];
    const GeneralMissionReport& b = sharded.missions[i];
    EXPECT_EQ(a, b) << "mission " << i << " diverged across jobs";
    // The published text (what CI diffs) matches too.
    EXPECT_EQ(format_general_mission(config, i, a),
              format_general_mission(config, i, b));
    // Every mission ran the full protocol and stayed clean.
    EXPECT_TRUE(a.ok);
    EXPECT_EQ(a.consistency_violations, 0u);
    EXPECT_EQ(a.recoverability_violations, 0u);
    EXPECT_GT(a.events, 0u);
    EXPECT_EQ(a.processes, 66u);  // 64 leaves + hub active + hub shadow
  }
  EXPECT_EQ(serial.failed, 0u);
  EXPECT_EQ(sharded.failed, 0u);
  EXPECT_EQ(serial.events_total, sharded.events_total);
}

// ---- Anchor ring under adversarial churn -----------------------------------

class RingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<ComponentSpec> specs = Topology::canonical().components();
    for (auto& s : specs) {
      s.internal_rate = 0.0;
      s.external_rate = 0.0;
    }
    GeneralConfig c;
    c.seed = 1;
    c.tb.interval = Duration::seconds(1'000'000);
    system_ = std::make_unique<GeneralSystem>(Topology(std::move(specs)), c);
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }
  void guarded_send(std::uint64_t input) {
    system_->engine(system_->topology().active_of(0))
        .on_app_send(false, input);
    system_->engine(system_->topology().shadow_of(0))
        .on_app_send(false, input);
    system_->run_until(system_->sim().now() + Duration::seconds(1));
  }
  std::unique_ptr<GeneralSystem> system_;
};

TEST_F(RingFixture, RingBoundedAndNewestCoveredCandidatePromotable) {
  // 200 unvalidated sends: one candidate captured before each, far past
  // the ring capacity — eviction keeps the oldest (the last promotable
  // state) plus the newest window.
  constexpr int kSends = 200;
  static_assert(kSends > GeneralEngine::kMaxAnchorCandidates + 1);
  for (int i = 0; i < kSends; ++i) guarded_send(static_cast<std::uint64_t>(i));

  GeneralEngine& active = system_->engine(ProcessId{0});
  ASSERT_TRUE(active.pseudo_dirty());
  EXPECT_LE(active.anchor_candidate_count(),
            GeneralEngine::kMaxAnchorCandidates);

  // Validate a prefix that lands inside the surviving newest window: the
  // promoted anchor must be the newest covered candidate — the state just
  // before send 151 — even though candidates 2..137 were evicted.
  constexpr MsgSeq kCovered = 150;
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = ProcessId{1};
  note.receiver = ProcessId{0};
  note.transport_seq = 990'001;
  {
    ByteWriter w;
    contam_serialize(ContamVector{{0, kCovered}}, w);
    note.aux = w.take();
  }
  active.on_message(note);
  ASSERT_TRUE(active.pseudo_dirty());  // sends 151..200 still uncovered

  const auto& anchor = active.latest_volatile();
  ASSERT_TRUE(anchor.has_value());
  const ProcessFacts facts = general_facts_from_record(*anchor);
  std::size_t sends_in_anchor = 0;
  for (const auto& v : facts.sent.entries()) {
    if (v.kind == MsgKind::kInternal) {
      ++sends_in_anchor;
      EXPECT_FALSE(v.suspect) << "covered prefix must normalize to VALID";
    }
  }
  EXPECT_EQ(sends_in_anchor, kCovered);
}

TEST_F(RingFixture, FullCoverageAfterEvictionPromotesNewestCandidate) {
  for (int i = 0; i < 100; ++i) guarded_send(static_cast<std::uint64_t>(i));
  GeneralEngine& active = system_->engine(ProcessId{0});
  ASSERT_TRUE(active.pseudo_dirty());

  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = ProcessId{1};
  note.receiver = ProcessId{0};
  note.transport_seq = 990'002;
  {
    ByteWriter w;
    contam_serialize(ContamVector{{0, 100}}, w);
    note.aux = w.take();
  }
  active.on_message(note);
  EXPECT_FALSE(active.pseudo_dirty());

  // The newest candidate (before send 100) is now covered and promoted.
  const auto& anchor = active.latest_volatile();
  ASSERT_TRUE(anchor.has_value());
  const ProcessFacts facts = general_facts_from_record(*anchor);
  std::size_t sends_in_anchor = 0;
  for (const auto& v : facts.sent.entries()) {
    if (v.kind == MsgKind::kInternal) ++sends_in_anchor;
  }
  EXPECT_EQ(sends_in_anchor, 99u);
}

}  // namespace
}  // namespace synergy
