// Parallel campaign executor: --jobs N must be indistinguishable from
// --jobs 1 in every mission report and every byte of per-mission output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/campaign.hpp"

namespace synergy {
namespace {

CampaignConfig short_campaign(std::size_t jobs) {
  CampaignConfig config;
  config.seed = 1;
  config.reps = 20;
  config.mission = Duration::seconds(45);
  config.verbose = true;
  config.jobs = jobs;
  return config;
}

/// Campaign output minus the trailing `timing:` line (host-clock, the one
/// line allowed to differ across jobs values).
std::string strip_timing(const std::string& text) {
  std::istringstream in(text);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("timing:", 0) == 0) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(CampaignParallel, JobsFourMatchesJobsOneBitForBit) {
  std::ostringstream seq_out, par_out;
  const CampaignResult seq = run_campaign(short_campaign(1), &seq_out);
  const CampaignResult par = run_campaign(short_campaign(4), &par_out);

  ASSERT_EQ(seq.missions.size(), par.missions.size());
  for (std::size_t i = 0; i < seq.missions.size(); ++i) {
    EXPECT_TRUE(seq.missions[i] == par.missions[i]) << "mission " << i;
  }
  EXPECT_EQ(seq.failed, par.failed);
  EXPECT_EQ(seq.oracle_violations, par.oracle_violations);
  EXPECT_EQ(seq.detections, par.detections);
  EXPECT_EQ(seq.degradations, par.degradations);

  // Buffered + ordered emission: identical bytes, not just identical sums.
  EXPECT_EQ(strip_timing(seq_out.str()), strip_timing(par_out.str()));
}

TEST(CampaignParallel, RepeatedParallelRunsAreIdentical) {
  std::ostringstream a_out, b_out;
  const CampaignResult a = run_campaign(short_campaign(4), &a_out);
  const CampaignResult b = run_campaign(short_campaign(4), &b_out);
  ASSERT_EQ(a.missions.size(), b.missions.size());
  for (std::size_t i = 0; i < a.missions.size(); ++i) {
    EXPECT_TRUE(a.missions[i] == b.missions[i]) << "mission " << i;
  }
  EXPECT_EQ(strip_timing(a_out.str()), strip_timing(b_out.str()));
}

TEST(CampaignParallel, PerMissionOutputMatchesFormatter) {
  const CampaignConfig config = short_campaign(2);
  std::ostringstream out;
  const CampaignResult result = run_campaign(config, &out);
  std::string expected;
  for (std::size_t i = 0; i < result.missions.size(); ++i) {
    expected += format_mission_report(config, i, result.missions[i]);
  }
  const std::string text = strip_timing(out.str());
  // Everything before the summary line is exactly the concatenated
  // per-mission blocks, in mission order.
  const auto summary = text.find("campaign: ");
  ASSERT_NE(summary, std::string::npos);
  EXPECT_EQ(text.substr(0, summary), expected);
}

TEST(CampaignParallel, ThroughputFieldsPopulated) {
  const CampaignResult result = run_campaign(short_campaign(2), nullptr);
  EXPECT_EQ(result.jobs, 2u);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.mission_seconds_total, 0.0);
  EXPECT_GT(result.missions_per_sec, 0.0);
  EXPECT_GT(result.speedup, 0.0);
}

TEST(CampaignParallel, JobsZeroUsesHardwareConcurrency) {
  CampaignConfig config = short_campaign(0);
  config.reps = 4;
  const CampaignResult result = run_campaign(config, nullptr);
  EXPECT_GE(result.jobs, 1u);
  EXPECT_EQ(result.missions.size(), 4u);
}

TEST(CampaignParallel, JobsClampedToReps) {
  CampaignConfig config = short_campaign(16);
  config.reps = 3;
  const CampaignResult result = run_campaign(config, nullptr);
  EXPECT_EQ(result.jobs, 3u);
}

}  // namespace
}  // namespace synergy
