// Redundant-execution protection family: DWC/TMR lane voting, CFCSS
// signature monitoring, the masked/detected/silent accounting, and the
// coordination with MDCD (confidence-loss events, recovery-line
// rollbacks). Unit tests drive a bare LaneSet; the System-level tests
// check the wiring through engines, schedules and campaigns.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/system.hpp"
#include "inject/fault_schedule.hpp"
#include "redundant/lanes.hpp"

namespace synergy {
namespace {

// ---- LaneSet unit tests -----------------------------------------------------

TEST(LaneSetTest, FanOutKeepsReplicasInLockstep) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  lanes.apply_message(5, false);
  lanes.local_step(9);
  lanes.local_step(11);
  EXPECT_EQ(lanes.vote(), VoteOutcome::kAgree);
  EXPECT_EQ(lanes.active_lanes(), 3u);
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.votes, 1u);
  EXPECT_EQ(s.injected, 0u);
  EXPECT_EQ(s.sig_mismatches, 0u);
  // Every lane's CFCSS chain tracks the golden signature.
  for (std::size_t i = 0; i < lanes.lane_count(); ++i) {
    EXPECT_EQ(lanes.lane_signature(i), lanes.golden_signature());
  }
}

TEST(LaneSetTest, TmrMasksPrimaryFlipAndRepairsInPlace) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  lanes.local_step(1);
  lanes.inject_state_flip(0, 42);
  ASSERT_TRUE(app.tainted());  // ground truth: the engine's state is bad
  EXPECT_EQ(lanes.vote(), VoteOutcome::kMasked);
  // The outvoted primary was repaired from the (untainted) majority.
  EXPECT_FALSE(app.tainted());
  EXPECT_EQ(lanes.vote(), VoteOutcome::kAgree);
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.injected, 1u);
  EXPECT_EQ(s.masked, 1u);
  EXPECT_EQ(s.detected, 0u);
  EXPECT_EQ(s.silent, 0u);
  EXPECT_EQ(s.masked_votes, 1u);
  EXPECT_EQ(s.resyncs, 1u);
}

TEST(LaneSetTest, TmrParksOutvotedReplicaUntilValidationResync) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  lanes.inject_state_flip(2, 42);
  EXPECT_EQ(lanes.vote(), VoteOutcome::kMasked);
  EXPECT_TRUE(lanes.parked(2));
  EXPECT_EQ(lanes.active_lanes(), 2u);  // degraded to a DWC pair
  // Parked lanes skip the fan-out; the survivors keep running.
  lanes.local_step(3);
  EXPECT_EQ(lanes.vote(), VoteOutcome::kAgree);
  // The validation event revives the parked lane from the primary.
  EXPECT_EQ(lanes.resync_parked(), 1u);
  EXPECT_FALSE(lanes.parked(2));
  EXPECT_EQ(lanes.active_lanes(), 3u);
  lanes.local_step(4);
  EXPECT_EQ(lanes.vote(), VoteOutcome::kAgree);
  EXPECT_EQ(lanes.stats().masked, 1u);
}

TEST(LaneSetTest, DwcDivergenceAbortsSendAndFiresRollback) {
  ApplicationState app(7);
  LaneSet lanes(app, 2, nullptr, ProcessId{0}, {});
  int rollbacks = 0;
  lanes.set_rollback_handler([&] { ++rollbacks; });
  lanes.inject_state_flip(1, 42);
  // Two lanes disagree: no majority, the send must not go out.
  EXPECT_FALSE(lanes.vote_for_send());
  EXPECT_EQ(rollbacks, 1);
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.injected, 1u);
  EXPECT_EQ(s.detected, 1u);
  EXPECT_EQ(s.masked, 0u);
  EXPECT_EQ(s.divergences, 1u);
}

TEST(LaneSetTest, TmrDoubleFaultSplitFallsBackToRollback) {
  // Two lanes corrupted (differently) between votes: a 1-1-1 split has no
  // majority — TMR must detect and degrade to compare-and-rollback, never
  // pick a winner.
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  int rollbacks = 0;
  lanes.set_rollback_handler([&] { ++rollbacks; });
  lanes.inject_state_flip(0, 0);  // reg 0, bit 0
  lanes.inject_state_flip(1, 1);  // reg 0, bit 1 — a *different* corruption
  EXPECT_FALSE(lanes.vote_for_send());
  EXPECT_EQ(rollbacks, 1);
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.injected, 2u);
  EXPECT_EQ(s.detected, 2u);
  EXPECT_EQ(s.masked, 0u);
  EXPECT_EQ(s.divergences, 1u);
}

TEST(LaneSetTest, SignatureFaultOnReplicaParksAndRaisesConfidenceLoss) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  int losses = 0;
  lanes.set_confidence_loss_handler([&] { ++losses; });
  lanes.inject_signature_fault(1, 0xDEAD);
  EXPECT_EQ(lanes.scan_signatures(), 1u);
  EXPECT_TRUE(lanes.parked(1));
  EXPECT_EQ(losses, 1);
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.sig_mismatches, 1u);
  EXPECT_EQ(s.detected, 1u);
}

TEST(LaneSetTest, SignatureFaultOnPrimaryRepairsFromHealthyDonor) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  int losses = 0;
  lanes.set_confidence_loss_handler([&] { ++losses; });
  lanes.inject_signature_fault(0, 0xBEEF);
  EXPECT_EQ(lanes.scan_signatures(), 1u);
  EXPECT_EQ(losses, 1);
  // The primary is never parked — it was realigned from a healthy replica.
  EXPECT_FALSE(lanes.parked(0));
  EXPECT_EQ(lanes.vote(), VoteOutcome::kAgree);
  EXPECT_EQ(lanes.stats().resyncs, 1u);
}

TEST(LaneSetTest, PrimarySignatureFaultWithNoDonorRollsBack) {
  ApplicationState app(7);
  LaneSet lanes(app, 2, nullptr, ProcessId{0}, {});
  int losses = 0;
  int rollbacks = 0;
  lanes.set_confidence_loss_handler([&] { ++losses; });
  lanes.set_rollback_handler([&] { ++rollbacks; });
  // Both chains broken in the same scan window: the primary finds no
  // healthy donor and the only safe exit is the recovery line.
  lanes.inject_signature_fault(0, 0x10);
  lanes.inject_signature_fault(1, 0x20);
  EXPECT_EQ(lanes.scan_signatures(), 2u);
  EXPECT_EQ(rollbacks, 1);
  EXPECT_EQ(losses, 2);  // every mismatch raises its own event
}

TEST(LaneSetTest, AccountingInvariantInjectedEqualsMaskedDetectedSilent) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  lanes.inject_state_flip(1, 42);
  EXPECT_EQ(lanes.vote(), VoteOutcome::kMasked);  // adjudicated: masked
  lanes.inject_state_flip(2, 43);                 // still pending: silent
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.injected, 2u);
  EXPECT_EQ(s.masked, 1u);
  EXPECT_EQ(s.detected, 0u);
  EXPECT_EQ(s.silent, 1u);
  EXPECT_EQ(s.injected, s.masked + s.detected + s.silent);
}

TEST(LaneSetTest, ResyncAfterRestoreWipesPendingFaultsAsSilent) {
  ApplicationState app(7);
  LaneSet lanes(app, 3, nullptr, ProcessId{0}, {});
  lanes.inject_state_flip(1, 42);
  // A checkpoint restore realigns every lane with the primary; the fault
  // was never caught by anyone — the accounting must say "silent", not
  // forget it.
  lanes.resync_after_restore();
  EXPECT_EQ(lanes.vote(), VoteOutcome::kAgree);
  const LaneStats s = lanes.stats();
  EXPECT_EQ(s.injected, 1u);
  EXPECT_EQ(s.silent, 1u);
  EXPECT_EQ(s.injected, s.masked + s.detected + s.silent);
}

// ---- System-level wiring ----------------------------------------------------

SystemConfig lane_system_config(Scheme scheme, std::uint64_t seed) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload.p1_internal_rate = 1.0;
  c.workload.p2_internal_rate = 1.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  return c;
}

TEST(SystemLaneTest, TmrSchemeMasksSingleLaneFlip) {
  System system(lane_system_config(Scheme::kMdcdTmr, 21));
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.schedule_lane_fault(TimePoint::origin() + Duration::seconds(90),
                             kP2, /*lane=*/0, /*sig_fault=*/false, 42);
  system.run();

  const LaneStats s = system.lane_stats();
  EXPECT_EQ(s.injected, 1u);
  EXPECT_EQ(s.masked, 1u);
  // Masked means *no* rollback was needed — the mission never noticed.
  EXPECT_EQ(system.lane_rollbacks(), 0u);
  EXPECT_EQ(system.unprotected_flips(), 0u);
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted);
  }
}

TEST(SystemLaneTest, DwcSchemeDetectsFlipAndRollsBackToRecoveryLine) {
  System system(lane_system_config(Scheme::kMdcdDwc, 22));
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.schedule_lane_fault(TimePoint::origin() + Duration::seconds(90),
                             kP2, /*lane=*/1, /*sig_fault=*/false, 42);
  system.run();

  const LaneStats s = system.lane_stats();
  EXPECT_EQ(s.injected, 1u);
  EXPECT_GE(s.detected, 1u);
  EXPECT_EQ(s.masked, 0u);  // a pair can detect, never mask
  // The divergence aborted the send and rode the hardware recovery line.
  EXPECT_GE(system.lane_rollbacks(), 1u);
  EXPECT_GE(system.hw_recoveries().size(), 1u);
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted);
  }
}

TEST(SystemLaneTest, SingleLaneSchemeCountsUnprotectedFlips) {
  System system(lane_system_config(Scheme::kMdcdOnly, 23));
  system.start(TimePoint::origin() + Duration::seconds(60));
  system.schedule_lane_fault(TimePoint::origin() + Duration::seconds(20),
                             kP2, /*lane=*/0, /*sig_fault=*/false, 42);
  // A signature fault has nothing to corrupt without lanes: no-op.
  system.schedule_lane_fault(TimePoint::origin() + Duration::seconds(30),
                             kP2, /*lane=*/0, /*sig_fault=*/true, 7);
  system.run();

  EXPECT_EQ(system.unprotected_flips(), 1u);
  const LaneStats s = system.lane_stats();
  EXPECT_EQ(s.injected, 0u);  // no lane machinery ran
  EXPECT_EQ(system.lane_rollbacks(), 0u);
}

TEST(SystemLaneTest, ConfidenceLossIsDeferredDuringBlockingNotDropped) {
  // Satellite scenario: a CFCSS mismatch lands while the engine is inside
  // a blocking period. MDCD's rule is that only passed_AT notifications
  // are processed during blocking — the confidence-loss event must be
  // queued and processed at end_blocking, never dropped.
  System system(lane_system_config(Scheme::kMdcdTmr, 24));
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run_until(TimePoint::origin() + Duration::seconds(50));

  ProcessNode& node = system.node(kP2);
  LaneSet* lanes = node.lanes();
  ASSERT_NE(lanes, nullptr);
  MdcdEngine& engine = node.engine();
  ASSERT_FALSE(engine.in_blocking());

  const auto count = [&](TraceKind kind, const char* detail) {
    std::size_t n = 0;
    for (const auto& ev : system.trace().events()) {
      n += ev.process == kP2 && ev.kind == kind &&
           (detail == nullptr || ev.detail == detail);
    }
    return n;
  };
  ASSERT_EQ(count(TraceKind::kConfidenceLoss, nullptr), 0u);

  engine.begin_blocking();
  lanes->inject_signature_fault(1, 0x77);
  EXPECT_EQ(lanes->scan_signatures(), 1u);
  // Raised, held: the event is in the deferred queue, not processed.
  EXPECT_EQ(count(TraceKind::kHoldBlocked, "confidence_loss"), 1u);
  EXPECT_EQ(count(TraceKind::kConfidenceLoss, nullptr), 0u);

  engine.end_blocking();
  // The drain processed it: the state is marked suspect until the next
  // covering validation.
  EXPECT_EQ(count(TraceKind::kConfidenceLoss, nullptr), 1u);
  EXPECT_TRUE(engine.dirty());
}

// ---- Scheme naming (round-trip) ---------------------------------------------

TEST(SchemeTest, ToStringRoundTripsThroughParser) {
  for (Scheme s : kAllSchemes) {
    const auto parsed = scheme_from_string(to_string(s));
    ASSERT_TRUE(parsed.has_value()) << to_string(s);
    EXPECT_EQ(*parsed, s);
  }
}

TEST(SchemeTest, CombinationAliasAndRejection) {
  // "mdcd+tb" completes the combination grammar: it is the coordinated
  // scheme under its constructive name.
  ASSERT_TRUE(scheme_from_string("mdcd+tb").has_value());
  EXPECT_EQ(*scheme_from_string("mdcd+tb"), Scheme::kCoordinated);
  // Unknown or stale spellings are rejected, never defaulted.
  EXPECT_FALSE(scheme_from_string("").has_value());
  EXPECT_FALSE(scheme_from_string("mdcd").has_value());
  EXPECT_FALSE(scheme_from_string("tmr").has_value());
  EXPECT_FALSE(scheme_from_string("coordinated ").has_value());
  EXPECT_FALSE(scheme_from_string("MDCD+TMR").has_value());
}

TEST(SchemeTest, LaneSchemesAlwaysHaveAStableLineToRollTo) {
  // A lane divergence rolls back to the hardware recovery line, so every
  // multi-lane scheme must populate stable storage somehow.
  for (Scheme s : kAllSchemes) {
    if (scheme_lane_count(s) > 1) {
      EXPECT_TRUE(scheme_writes_through(s) || scheme_has_tb(s))
          << to_string(s);
    }
  }
}

// ---- Seeded lane-fault schedules --------------------------------------------

TEST(LaneScheduleTest, LaneEventsAreSeededAndCarryLaneFields) {
  InjectorRates rates;  // all other adversity off
  rates.timed.hw_fault_mean_gap = Duration::zero();
  rates.timed.lane_flip_mean_gap = Duration::seconds(30);
  rates.timed.sig_fault_mean_gap = Duration::seconds(60);
  const auto gen = [&](std::uint64_t seed) {
    return FaultSchedule::generate(seed, rates, TimePoint::origin(),
                                   Duration::seconds(600), 1e-5, 3);
  };
  const FaultSchedule s1 = gen(9);
  const FaultSchedule s2 = gen(9);
  EXPECT_EQ(s1.to_json(), s2.to_json());

  std::size_t flips = 0, sig_faults = 0;
  for (const FaultEvent& e : s1.events()) {
    switch (e.kind) {
      case FaultEvent::Kind::kLaneFlip: ++flips; break;
      case FaultEvent::Kind::kSigFault: ++sig_faults; break;
      default: FAIL() << "only lane kinds were enabled";
    }
    EXPECT_LT(e.target, 3u);
    EXPECT_LT(e.lane, 3u);
  }
  EXPECT_GT(flips, 0u);
  EXPECT_GT(sig_faults, 0u);
  // The replayable description covers the new adversary knobs.
  EXPECT_NE(s1.to_json().find("\"lane_flip_gap_s\""), std::string::npos);
  EXPECT_NE(s1.to_json().find("\"lane\""), std::string::npos);
}

TEST(LaneScheduleTest, DefaultRatesScheduleNoLaneFaults) {
  // Pre-existing campaigns must replay bit-identically: the lane streams
  // are off by default and drawn after the existing ones.
  const FaultSchedule s =
      FaultSchedule::generate(3, default_injector_rates(), TimePoint::origin(),
                              Duration::seconds(600), 1e-5, 3);
  for (const FaultEvent& e : s.events()) {
    EXPECT_NE(e.kind, FaultEvent::Kind::kLaneFlip);
    EXPECT_NE(e.kind, FaultEvent::Kind::kSigFault);
  }
}

// ---- Campaign integration ---------------------------------------------------

CampaignConfig lane_campaign_config(Scheme scheme) {
  CampaignConfig config;
  config.scheme = scheme;
  config.mission = Duration::seconds(300);
  // Only the lane adversary: makes masked==injected a hard property (any
  // other fault class could wipe a pending flip into "silent").
  config.rates = InjectorRates{};
  config.rates.timed.hw_fault_mean_gap = Duration::zero();
  config.rates.timed.lane_flip_mean_gap = Duration::seconds(45);
  return config;
}

TEST(LaneCampaignTest, MissionReplayIncludesLaneCounters) {
  CampaignConfig config = lane_campaign_config(Scheme::kMdcdTmr);
  config.rates.timed.sig_fault_mean_gap = Duration::seconds(90);
  const MissionReport r1 = run_mission(config, 777);
  const MissionReport r2 = run_mission(config, 777);
  EXPECT_TRUE(r1 == r2);  // operator== covers the lane counters
  EXPECT_GT(r1.lane_injected, 0u);
  EXPECT_EQ(r1.lane_injected,
            r1.lane_masked + r1.lane_detected + r1.lane_silent);
}

TEST(LaneCampaignTest, TmrMasksTheScheduleThatBreaksUnprotectedMdcd) {
  // The headline property: under the *same* seeded bit-flip schedule, TMR
  // completes every mission with the faults masked (zero attributable
  // rollbacks), while unprotected MDCD lets corruption reach the device.
  CampaignConfig tmr = lane_campaign_config(Scheme::kMdcdTmr);
  tmr.seed = 42;
  tmr.reps = 5;
  const CampaignResult masked = run_campaign(tmr, nullptr);
  EXPECT_EQ(masked.failed, 0u);
  std::uint64_t injected = 0;
  for (const MissionReport& m : masked.missions) {
    EXPECT_TRUE(m.ok) << "seed " << m.seed;
    EXPECT_EQ(m.lane_rollbacks, 0u) << "seed " << m.seed;
    EXPECT_EQ(m.lane_injected, m.lane_masked) << "seed " << m.seed;
    injected += m.lane_injected;
  }
  EXPECT_GT(injected, 0u);

  CampaignConfig bare = lane_campaign_config(Scheme::kMdcdOnly);
  bare.seed = 42;
  bare.reps = 5;
  const CampaignResult exposed = run_campaign(bare, nullptr);
  std::uint64_t unprotected = 0;
  for (const MissionReport& m : exposed.missions) {
    unprotected += m.lane_unprotected;
  }
  EXPECT_GT(unprotected, 0u);
  // AT coverage is the only (probabilistic) defense left: some mission in
  // the batch lets an erroneous value out or dies trying.
  EXPECT_GT(exposed.failed, 0u);
}

}  // namespace
}  // namespace synergy
