// ThreadPool: ordering, exception propagation, stealing under skew.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pool.hpp"

namespace synergy {
namespace {

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(2);
  auto a = pool.async([] { return 7; });
  auto b = pool.async([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, AsyncPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, RunIndexedRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.run_indexed(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, RunIndexedResultsLandAtTheirIndex) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 200;
  std::vector<std::size_t> out(kN, 0);
  // Each task writes only its own slot: the stable-order contract the
  // campaign relies on for bit-identical reports.
  pool.run_indexed(kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i) << i;
}

TEST(ThreadPool, RunIndexedRethrowsTaskException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run_indexed(50,
                       [&](std::size_t i) {
                         if (i == 17) throw std::runtime_error("task 17");
                         ++completed;
                       }),
      std::runtime_error);
  // The other tasks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPool, StealsWorkUnderSkewedTaskLengths) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::mutex mu;
  std::set<std::thread::id> participants;
  // Task 0 hogs its worker; the short tail must be stolen by the others.
  pool.run_indexed(kN, [&](std::size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    std::lock_guard<std::mutex> lk(mu);
    participants.insert(std::this_thread::get_id());
  });
  EXPECT_GE(participants.size(), 2u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool must not drop queued work
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.run_indexed(10, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, ManySmallTasksStress) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kN = 5000;
  pool.run_indexed(kN, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace synergy
