// Mobile/intermittent-connectivity mission family: seeded disconnection
// epochs with correlated burst loss, base-station handoffs that re-home a
// node's stable store mid-mission, and the monitor's graceful-degradation
// hooks (delivery-bound deferral during declared epochs, unacked-log
// bound, reconnect drain).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/system.hpp"
#include "analysis/checkers.hpp"
#include "inject/fault_schedule.hpp"
#include "inject/faulty_network.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "storage/stable_store.hpp"

namespace synergy {
namespace {

TEST(FaultEventKindTest, ToStringFromStringRoundTripsExhaustively) {
  for (FaultEvent::Kind k : kAllFaultEventKinds) {
    const auto back = fault_event_kind_from_string(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(fault_event_kind_from_string("bogus").has_value());
  EXPECT_FALSE(fault_event_kind_from_string("").has_value());
}

// ---- Schedule generation ---------------------------------------------------

InjectorRates mobile_only_rates() {
  InjectorRates r;
  r.timed.hw_fault_mean_gap = Duration::zero();  // timed defaults off
  r.mobile.disconnect_mean_gap = Duration::seconds(60);
  r.mobile.disconnect_mean_len = Duration::seconds(15);
  r.mobile.handoff_mean_gap = Duration::seconds(120);
  return r;
}

TEST(MobileScheduleTest, DisconnectionEpochsArePairedAndOrdered) {
  const FaultSchedule schedule = FaultSchedule::generate(
      99, mobile_only_rates(), TimePoint::origin(), Duration::seconds(600),
      1e-5, 3);
  std::size_t downs = 0, ups = 0, handoffs = 0;
  TimePoint prev = TimePoint::origin();
  for (const FaultEvent& e : schedule.events()) {
    EXPECT_GE(e.at, prev);  // stable time order
    prev = e.at;
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown:
        ++downs;
        // Every epoch hits at least one direction; blackout epochs carry
        // the full flag, degraded ones a usable burst-loss fraction.
        EXPECT_NE(e.noise & (kLinkRx | kLinkTx), 0u);
        if ((e.noise & kLinkFull) == 0) {
          EXPECT_GT(e.drift, 0.0);
          EXPECT_LE(e.drift, 1.0);
        }
        EXPECT_LT(e.target, 3u);
        break;
      case FaultEvent::Kind::kLinkUp: ++ups; break;
      case FaultEvent::Kind::kHandoff: ++handoffs; break;
      default: ADD_FAILURE() << "unexpected kind " << to_string(e.kind);
    }
  }
  EXPECT_GT(downs, 3u);
  EXPECT_EQ(downs, ups);  // every epoch ends
  EXPECT_GT(handoffs, 0u);
}

TEST(MobileScheduleTest, GenerationIsDeterministicAndGatedOnRates) {
  const FaultSchedule a = FaultSchedule::generate(
      5, mobile_only_rates(), TimePoint::origin(), Duration::seconds(300),
      1e-5, 3);
  const FaultSchedule b = FaultSchedule::generate(
      5, mobile_only_rates(), TimePoint::origin(), Duration::seconds(300),
      1e-5, 3);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_EQ(a.events()[i].noise, b.events()[i].noise);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
  // Mobile rates off: no link events, and the JSON omits the mobile block
  // (pre-mobile schedule descriptions stay byte-compatible).
  InjectorRates off_rates;
  off_rates.timed.hw_fault_mean_gap = Duration::zero();
  const FaultSchedule off = FaultSchedule::generate(
      5, off_rates, TimePoint::origin(), Duration::seconds(300), 1e-5, 3);
  EXPECT_TRUE(off.events().empty());
  EXPECT_EQ(off.to_json().find("mobile"), std::string::npos);
  EXPECT_NE(a.to_json().find("mobile"), std::string::npos);
}

// ---- Link-state faults in the network --------------------------------------

NetworkParams fast_net() {
  NetworkParams p;
  p.tmin = Duration::millis(1);
  p.tmax = Duration::millis(5);
  return p;
}

Message msg(std::uint32_t from, std::uint32_t to) {
  Message m;
  m.sender = ProcessId{from};
  m.receiver = ProcessId{to};
  return m;
}

TEST(LinkFaultTest, BlackoutDropsEverythingUntilRestored) {
  Simulator sim;
  FaultyNetwork net(sim, fast_net(), NetFaultParams{}, Rng(1));
  std::size_t delivered = 0;
  net.attach(ProcessId{1}, [&](const Message&) { ++delivered; });

  net.set_link_down(ProcessId{1}, /*rx=*/true, /*tx=*/true, /*full=*/true,
                    0.0);
  EXPECT_TRUE(net.link_impaired(ProcessId{1}));
  for (int i = 0; i < 20; ++i) net.send(msg(0, 1));
  sim.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.disconnect_drops(), 20u);
  EXPECT_EQ(net.link_epochs(), 1u);

  net.set_link_up(ProcessId{1});
  EXPECT_FALSE(net.link_impaired(ProcessId{1}));
  EXPECT_EQ(net.link_last_restored(ProcessId{1}), sim.now());
  for (int i = 0; i < 20; ++i) net.send(msg(0, 1));
  sim.run();
  EXPECT_EQ(delivered, 20u);
}

TEST(LinkFaultTest, DirectionsAreAsymmetric) {
  Simulator sim;
  FaultyNetwork net(sim, fast_net(), NetFaultParams{}, Rng(2));
  std::size_t to_one = 0, to_zero = 0;
  net.attach(ProcessId{1}, [&](const Message&) { ++to_one; });
  net.attach(ProcessId{0}, [&](const Message&) { ++to_zero; });

  // Node 1 can still hear (rx up) but cannot speak (tx blackout).
  net.set_link_down(ProcessId{1}, /*rx=*/false, /*tx=*/true, /*full=*/true,
                    0.0);
  for (int i = 0; i < 10; ++i) net.send(msg(0, 1));
  for (int i = 0; i < 10; ++i) net.send(msg(1, 0));
  sim.run();
  EXPECT_EQ(to_one, 10u);
  EXPECT_EQ(to_zero, 0u);
  EXPECT_EQ(net.disconnect_drops(), 10u);
}

TEST(LinkFaultTest, DegradedEpochLosesInCorrelatedBursts) {
  Simulator sim;
  FaultyNetwork net(sim, fast_net(), NetFaultParams{}, Rng(3));
  std::size_t delivered = 0;
  net.attach(ProcessId{1}, [&](const Message&) { ++delivered; });

  net.set_link_down(ProcessId{1}, /*rx=*/true, /*tx=*/false, /*full=*/false,
                    /*burst_loss=*/0.5);
  const int kSent = 400;
  for (int i = 0; i < kSent; ++i) net.send(msg(0, 1));
  sim.run();
  // Neither a blackout nor lossless: the Gilbert-Elliott chain drops a
  // substantial correlated fraction and passes the rest.
  EXPECT_GT(net.burst_drops(), static_cast<std::size_t>(kSent) / 5);
  EXPECT_GT(delivered, static_cast<std::size_t>(kSent) / 5);
  EXPECT_EQ(delivered + net.burst_drops(), static_cast<std::size_t>(kSent));
  EXPECT_EQ(net.disconnect_drops(), 0u);
}

// ---- Stable-store handoff --------------------------------------------------

CheckpointRecord handoff_record(std::uint64_t ndc) {
  CheckpointRecord rec;
  rec.kind = CkptKind::kStable;
  rec.owner = kP2;
  rec.ndc = ndc;
  rec.app_state = Bytes{1, 2, 3};
  return rec;
}

StableStoreParams handoff_store_params() {
  StableStoreParams p;
  p.write_base_latency = Duration::millis(10);
  p.write_per_kib = Duration::zero();
  return p;
}

TEST(StableStoreHandoffTest, NearlyCompleteWriteDrains) {
  Simulator sim;
  StableStore store(sim, handoff_store_params());
  store.begin_write(handoff_record(1));
  // Commit expected at +10ms, well inside a 20ms drain window.
  const auto out = store.handoff(/*keep_depth=*/4, Duration::millis(20));
  EXPECT_TRUE(out.write_drained);
  EXPECT_FALSE(out.write_abandoned);
  EXPECT_TRUE(store.write_in_progress());
  sim.run();
  ASSERT_TRUE(store.latest_committed().has_value());
  EXPECT_EQ(store.latest_committed()->ndc, 1u);
  EXPECT_EQ(store.handoffs(), 1u);
}

TEST(StableStoreHandoffTest, SlowWriteIsAbandonedAndClaimable) {
  Simulator sim;
  StableStore store(sim, handoff_store_params());
  store.begin_write(handoff_record(7));
  // The handoff gap closes in 2ms; the write needs 10ms: abandon it.
  const auto out = store.handoff(/*keep_depth=*/4, Duration::millis(2));
  EXPECT_FALSE(out.write_drained);
  EXPECT_TRUE(out.write_abandoned);
  EXPECT_FALSE(store.write_in_progress());
  EXPECT_EQ(store.failed_writes(), 1u);
  sim.run();
  EXPECT_FALSE(store.latest_committed().has_value());
  // The abandoned record rides the same watchdog path as a retry-exhausted
  // write: the monitor claims it and forces it through at the new home.
  const auto abandoned = store.take_abandoned();
  ASSERT_TRUE(abandoned.has_value());
  EXPECT_EQ(abandoned->ndc, 7u);
}

TEST(StableStoreHandoffTest, MigrationKeepsNewestHistory) {
  Simulator sim;
  StableStore store(sim, handoff_store_params());
  for (std::uint64_t ndc = 1; ndc <= 5; ++ndc) {
    store.commit_now(handoff_record(ndc));
  }
  const auto out = store.handoff(/*keep_depth=*/2, Duration::millis(20));
  EXPECT_EQ(out.dropped, 3u);
  EXPECT_EQ(out.migrated, 2u);
  EXPECT_FALSE(store.committed_for(3).has_value());
  ASSERT_TRUE(store.committed_for(4).has_value());
  ASSERT_TRUE(store.committed_for(5).has_value());
  EXPECT_EQ(store.latest_committed()->ndc, 5u);
}

// ---- Handoff in the full system --------------------------------------------

TEST(SystemHandoffTest, HandoffAbandonsSlowWriteAndRecoveryLineSurvives) {
  // Writes take ~seconds (per-KiB latency dominates); the handoff lands
  // right after a TB boundary, mid-write, with a drain window of only
  // 2 x base latency — the in-progress checkpoint must be abandoned, then
  // forced through by the monitor's write-timeout watchdog at the new
  // home, and the mission-end recovery line must still validate.
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = 11;
  c.tb.interval = Duration::seconds(10);
  c.sstore.write_base_latency = Duration::millis(5);
  c.sstore.write_per_kib = Duration::seconds(1);
  c.enable_monitor = true;

  System system(c);
  system.schedule_handoff(TimePoint::origin() + Duration::seconds(10) +
                              Duration::millis(50),
                          ProcessId{2});
  system.start(TimePoint::origin() + Duration::seconds(60));
  system.run();

  EXPECT_EQ(system.handoffs(), 1u);
  EXPECT_EQ(system.handoff_aborted_writes(), 1u);
  ASSERT_NE(system.monitor(), nullptr);
  // The abandoned record was claimed and forced through.
  EXPECT_GE(system.monitor()->stats().write_timeouts, 1u);
  EXPECT_GE(system.monitor()->stats().forced_write_throughs, 1u);

  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
}

// ---- Campaign integration --------------------------------------------------

CampaignConfig mobile_campaign() {
  CampaignConfig config;
  config.seed = 1;
  config.reps = 6;
  config.mission = Duration::seconds(200);
  config.rates.mobile.disconnect_mean_gap = Duration::seconds(80);
  config.rates.mobile.disconnect_mean_len = Duration::seconds(12);
  config.rates.mobile.handoff_mean_gap = Duration::seconds(150);
  return config;
}

TEST(MobileCampaignTest, CommittedMissionSurvivesEpochsAndHandoff) {
  // The committed mobile replay seed: >= 3 disconnection epochs and a
  // base-station handoff in one mission, clean oracle verdict. Replay:
  //   synergy chaos --replay 12966619160104079557 --duration 300 \
  //     --disconnect-gap 90 --disconnect-len 12 --handoff-gap 150
  CampaignConfig config;
  config.mission = Duration::seconds(300);
  config.rates.mobile.disconnect_mean_gap = Duration::seconds(90);
  config.rates.mobile.disconnect_mean_len = Duration::seconds(12);
  config.rates.mobile.handoff_mean_gap = Duration::seconds(150);
  const MissionReport r = run_mission(config, 12966619160104079557u);
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures.front());
  EXPECT_GE(r.link_epochs, 3u);
  EXPECT_GE(r.handoffs, 1u);
  EXPECT_GT(r.disconnect_drops + r.burst_drops, 0u);
}

TEST(MobileCampaignTest, MonitorDefersDeliveryBoundDuringEpochs) {
  const CampaignResult result = run_campaign(mobile_campaign(), nullptr);
  std::uint64_t deferred = 0, epochs = 0;
  for (const MissionReport& r : result.missions) {
    EXPECT_TRUE(r.ok) << "seed " << r.seed;
    deferred += r.monitor.disconnect_deferrals;
    epochs += r.link_epochs;
  }
  EXPECT_GT(epochs, 0u);
  // Parked traffic during declared epochs defers instead of tripping the
  // delivery-bound violation.
  EXPECT_GT(deferred, 0u);
}

TEST(MobileCampaignTest, DeferralsAreNeitherViolationsNorDegradations) {
  MonitorStats stats;
  const auto violations = stats.violations();
  const auto degradations = stats.degradations();
  stats.disconnect_deferrals = 42;
  EXPECT_EQ(stats.violations(), violations);
  EXPECT_EQ(stats.degradations(), degradations);
  // The unacked bound, by contrast, is a real monitored violation.
  stats.unacked_overflows = 1;
  EXPECT_EQ(stats.violations(), violations + 1);
}

TEST(MobileCampaignTest, UnackedLogIsBoundedUnderMultiEpochPartition) {
  // Heavy traffic into long blackout epochs: senders pointing at the
  // downed node grow their unacked logs past the monitored bound, which
  // must be counted and drained rather than growing without limit.
  CampaignConfig config;
  config.seed = 3;
  config.reps = 4;
  config.mission = Duration::seconds(240);
  config.base.workload.p1_internal_rate = 12.0;
  config.base.workload.p2_internal_rate = 12.0;
  config.rates.mobile.disconnect_mean_gap = Duration::seconds(70);
  config.rates.mobile.disconnect_mean_len = Duration::seconds(45);
  config.rates.mobile.disconnect_full_fraction = 1.0;
  const CampaignResult result = run_campaign(config, nullptr);

  std::uint64_t overflows = 0, high_water = 0;
  for (const MissionReport& r : result.missions) {
    overflows += r.monitor.unacked_overflows;
    high_water = std::max(high_water, r.unacked_high_water);
  }
  EXPECT_GT(high_water, 256u);  // the bound was genuinely exercised...
  EXPECT_GT(overflows, 0u);     // ...and the monitor saw the excursion
}

TEST(MobileCampaignTest, JobsFourMatchesJobsOneFieldForField) {
  CampaignConfig seq_config = mobile_campaign();
  seq_config.verbose = true;
  CampaignConfig par_config = seq_config;
  seq_config.jobs = 1;
  par_config.jobs = 4;

  std::ostringstream seq_out, par_out;
  const CampaignResult seq = run_campaign(seq_config, &seq_out);
  const CampaignResult par = run_campaign(par_config, &par_out);
  ASSERT_EQ(seq.missions.size(), par.missions.size());
  for (std::size_t i = 0; i < seq.missions.size(); ++i) {
    EXPECT_TRUE(seq.missions[i] == par.missions[i]) << "mission " << i;
  }
  std::string seq_text = seq_out.str(), par_text = par_out.str();
  seq_text.resize(seq_text.rfind("timing:"));
  par_text.resize(par_text.rfind("timing:"));
  EXPECT_EQ(seq_text, par_text);
}

TEST(MobileCampaignTest, ReportEqualityCoversMobileCounters) {
  MissionReport a, b;
  EXPECT_TRUE(a == b);
  b.link_epochs = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.handoff_aborted_writes = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.unacked_high_water = 9;
  EXPECT_FALSE(a == b);
  b = a;
  b.monitor.unacked_overflows = 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace synergy
