// End-to-end smoke tests: the full three-node guarded system running each
// scheme under workload, with the paper's properties checked on the stable
// recovery line.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig smoke_config(Scheme scheme, std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload.p1_internal_rate = 1.0;
  c.workload.p1_external_rate = 0.2;
  c.workload.p2_internal_rate = 1.0;
  c.workload.p2_external_rate = 0.2;
  c.workload.step_rate = 2.0;
  c.tb.interval = Duration::seconds(10);
  c.sstore.write_base_latency = Duration::millis(5);
  return c;
}

TEST(SystemSmokeTest, CoordinatedRunsFaultFree) {
  System system(smoke_config(Scheme::kCoordinated));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();

  // Traffic flowed and the device saw validated external messages.
  EXPECT_GT(system.device().entries.size(), 20u);
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted);  // no software fault configured
  }

  // TB checkpointing ran on every node (~30 intervals).
  for (std::uint32_t i = 0; i < 3; ++i) {
    TbEngine* tb = system.node(ProcessId{i}).tb();
    ASSERT_NE(tb, nullptr);
    EXPECT_GE(tb->checkpoints_taken(), 25u);
    EXPECT_LE(tb->checkpoints_taken(), 35u);
  }

  // No AT failures, no recoveries.
  EXPECT_EQ(system.at_failures_observed(), 0u);
  EXPECT_FALSE(system.sw_recovery().has_value());
  EXPECT_TRUE(system.hw_recoveries().empty());
}

TEST(SystemSmokeTest, CoordinatedStableLineSatisfiesProperties) {
  System system(smoke_config(Scheme::kCoordinated, 7));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();

  const GlobalState line = system.stable_line_state();
  ASSERT_EQ(line.processes.size(), 3u);
  const auto consistency = check_consistency(line);
  const auto recoverability = check_recoverability(line);
  EXPECT_TRUE(consistency.empty())
      << consistency.front().describe();
  EXPECT_TRUE(recoverability.empty())
      << recoverability.front().describe();
  // Coordinated stable checkpoints never carry contaminated states.
  EXPECT_TRUE(check_software_recoverability(line).empty());
}

TEST(SystemSmokeTest, WriteThroughRunsFaultFree) {
  System system(smoke_config(Scheme::kWriteThrough, 3));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();
  ASSERT_NE(system.write_through(), nullptr);
  EXPECT_GT(system.write_through()->stable_writes(), 10u);
  EXPECT_EQ(system.node(kP1Act).tb(), nullptr);  // no TB under write-through
}

TEST(SystemSmokeTest, NaiveRunsFaultFree) {
  System system(smoke_config(Scheme::kNaive, 4));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();
  EXPECT_GT(system.node(kP2).tb()->checkpoints_taken(), 20u);
}

TEST(SystemSmokeTest, MdcdOnlyRunsFaultFree) {
  System system(smoke_config(Scheme::kMdcdOnly, 5));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();
  EXPECT_FALSE(system.node(kP2).has_stable_storage());
  // Volatile checkpointing driven by contamination transitions happened.
  EXPECT_GT(system.p2().volatile_checkpoints(), 0u);
}

TEST(SystemSmokeTest, ShadowSuppressesAllOutput) {
  System system(smoke_config(Scheme::kCoordinated, 6));
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run();
  // No device entry may originate from the shadow.
  for (const auto& e : system.device().entries) {
    EXPECT_NE(e.from, kP1Sdw);
  }
  // The shadow logged its suppressed messages (reclaimed up to VR).
  EXPECT_GT(system.trace().count(TraceKind::kSuppressSend, kP1Sdw), 0u);
}

TEST(SystemSmokeTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    System system(smoke_config(Scheme::kCoordinated, seed));
    system.start(TimePoint::origin() + Duration::seconds(120));
    system.run();
    return std::make_tuple(system.sim().events_executed(),
                           system.device().entries.size(),
                           system.p2().msg_sn(),
                           system.node(kP2).app().fingerprint());
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(std::get<3>(run_once(11)), std::get<3>(run_once(12)));
}

TEST(SystemSmokeTest, PseudoCheckpointsOnlyUnderModifiedProtocol) {
  System coordinated(smoke_config(Scheme::kCoordinated, 8));
  coordinated.start(TimePoint::origin() + Duration::seconds(200));
  coordinated.run();
  EXPECT_GT(coordinated.trace().count(TraceKind::kCkptVolatile, kP1Act), 0u);

  System naive(smoke_config(Scheme::kNaive, 8));
  naive.start(TimePoint::origin() + Duration::seconds(200));
  naive.run();
  // Original MDCD: P1act exempt from checkpointing.
  EXPECT_EQ(naive.trace().count(TraceKind::kCkptVolatile, kP1Act), 0u);
  // ... and Type-2 checkpoints exist (eliminated under the modified one).
  EXPECT_GT(naive.trace().count(TraceKind::kCkptVolatile, kP2), 0u);
}

TEST(SystemSmokeTest, BlockingDefersApplicationTraffic) {
  SystemConfig c = smoke_config(Scheme::kCoordinated, 9);
  c.workload.p1_internal_rate = 20.0;  // dense traffic to hit blocking
  c.workload.p2_internal_rate = 20.0;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(120));
  system.run();
  EXPECT_GT(system.trace().count(TraceKind::kBlockStart), 10u);
  // Every blocking period ends, except those cut off by the horizon (at
  // most one per process).
  const auto starts = system.trace().count(TraceKind::kBlockStart);
  const auto ends = system.trace().count(TraceKind::kBlockEnd);
  EXPECT_GE(ends + 3, starts);
  EXPECT_LE(ends, starts);
}

}  // namespace
}  // namespace synergy
