// End-to-end contracts of the sweep driver (src/sweep): deterministic
// grid construction, seed-stable shard partitioning, fragment round-trip
// through JSON, and the headline guarantee — merging shard fragments
// reproduces the single-process full-grid document byte-for-byte.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/fragment.hpp"
#include "sweep/grid.hpp"
#include "sweep/runner.hpp"

using namespace synergy;
using namespace synergy::sweep;

namespace {

/// A small but non-trivial sweep: 2 schemes x 2 fault scales x 1 coverage
/// x 2 intervals = 8 cells, a few short missions each. Fast enough for
/// the tier-1 suite, busy enough that rollback/blocking reservoirs fill.
SweepConfig small_config() {
  SweepConfig config;
  config.seed = 11;
  config.reps = 3;
  config.mission = Duration::seconds(20);
  config.axes.schemes = {Scheme::kCoordinated, Scheme::kMdcdOnly};
  config.axes.fault_scales = {1.0, 2.0};
  config.axes.coverages = {1.0};
  config.axes.intervals_s = {10.0, 20.0};
  return config;
}

}  // namespace

TEST(SweepGrid, CanonicalOrderAndStableSeeds) {
  const SweepConfig config = small_config();
  const std::vector<SweepCell> grid = build_grid(config);
  ASSERT_EQ(grid.size(), grid_size(config.axes));
  ASSERT_EQ(grid.size(), 8u);

  // Nesting order: scheme-major, then fault scale, coverage, interval.
  EXPECT_EQ(grid[0].scheme, Scheme::kCoordinated);
  EXPECT_DOUBLE_EQ(grid[0].fault_scale, 1.0);
  EXPECT_DOUBLE_EQ(grid[0].interval.to_seconds(), 10.0);
  EXPECT_EQ(grid[1].interval.to_seconds(), 20.0);
  EXPECT_DOUBLE_EQ(grid[2].fault_scale, 2.0);
  EXPECT_EQ(grid[4].scheme, Scheme::kMdcdOnly);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, i);
    EXPECT_EQ(grid[i].seed, cell_seed(config.seed, i));
  }
  // Seeds are pairwise distinct and sweep-seed dependent.
  std::set<std::uint64_t> seeds;
  for (const SweepCell& c : grid) seeds.insert(c.seed);
  EXPECT_EQ(seeds.size(), grid.size());
  EXPECT_NE(cell_seed(11, 0), cell_seed(12, 0));
}

TEST(SweepGrid, ShardPartitionCoversEveryCellExactlyOnce) {
  // The shard hash is a pure function of (sweep seed, cell index): for
  // any shard count, every cell lands in exactly one shard, and the
  // assignment is stable across calls.
  for (std::uint32_t shards : {1u, 2u, 3u, 5u, 8u}) {
    std::size_t covered = 0;
    for (std::size_t index = 0; index < 64; ++index) {
      const std::uint32_t s = cell_shard(11, index, shards);
      ASSERT_LT(s, shards);
      EXPECT_EQ(s, cell_shard(11, index, shards));
      ++covered;
    }
    EXPECT_EQ(covered, 64u);
  }
  // Different sweep seeds shuffle the partition (seed-stability, not a
  // fixed index stripe).
  bool any_differs = false;
  for (std::size_t index = 0; index < 64 && !any_differs; ++index) {
    any_differs = cell_shard(11, index, 3) != cell_shard(99, index, 3);
  }
  EXPECT_TRUE(any_differs);
}

TEST(SweepGrid, CampaignConfigAppliesCellAxes) {
  const SweepConfig config = small_config();
  const std::vector<SweepCell> grid = build_grid(config);
  const SweepCell& cell = grid[6];  // mdcd_only, scale 2, interval 10
  const CampaignConfig cc = cell_campaign_config(config, cell);
  EXPECT_EQ(cc.seed, cell.seed);
  EXPECT_EQ(cc.reps, config.reps);
  EXPECT_EQ(cc.scheme, Scheme::kMdcdOnly);
  EXPECT_EQ(cc.base.tb.interval, cell.interval);
  EXPECT_DOUBLE_EQ(cc.base.at.coverage, cell.coverage);
  // Fault scale 2: per-message probabilities double (clamped), timed mean
  // gaps halve.
  const InjectorRates def = default_injector_rates();
  EXPECT_DOUBLE_EQ(cc.rates.net.drop_probability,
                   def.net.drop_probability * 2.0);
  EXPECT_EQ(cc.rates.timed.hw_fault_mean_gap.to_seconds(),
            def.timed.hw_fault_mean_gap.to_seconds() / 2.0);
}

TEST(SweepRunner, ShardsPartitionTheGridAndMergeByteIdentical) {
  // The tentpole contract: run the full grid in one process, run the
  // same sweep as three independent shard fragments, merge the fragments
  // — the two JSON documents must be byte-identical. (The CI sweep-merge
  // job re-checks this cross-machine; this is the in-tree guard.)
  const SweepConfig config = small_config();
  const ShardResult full = run_sweep(config, nullptr);
  ASSERT_EQ(full.cells.size(), 8u);
  EXPECT_EQ(full.missions_run, 8u * config.reps);

  std::vector<ShardResult> fragments;
  std::size_t sharded_cells = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    SweepConfig shard = config;
    shard.shard_index = i;
    shard.shard_count = 3;
    fragments.push_back(run_sweep(shard, nullptr));
    sharded_cells += fragments.back().cells.size();
  }
  EXPECT_EQ(sharded_cells, 8u);

  // Merge in an adversarial order: permuted fragments, same bytes.
  std::vector<ShardResult> permuted = {fragments[2], fragments[0],
                                       fragments[1]};
  const ShardResult merged = merge_fragments(permuted);
  EXPECT_EQ(to_json(merged), to_json(full));
}

TEST(SweepRunner, JobsFanOutDoesNotChangeTheBytes)
{
  // In-cell parallelism must be invisible in the output (the reorder
  // buffer folds reports in mission-index order).
  SweepConfig config = small_config();
  config.axes.schemes = {Scheme::kCoordinated};
  config.axes.intervals_s = {10.0};
  config.reps = 6;
  const ShardResult serial = run_sweep(config, nullptr);
  config.jobs = 4;
  const ShardResult parallel = run_sweep(config, nullptr);
  EXPECT_EQ(to_json(parallel), to_json(serial));
}

TEST(SweepFragment, JsonRoundTripIsExact) {
  // Fragment -> JSON -> parse -> JSON must be a fixed point: %.17g
  // round-trips the moment state, u64 tokens round-trip the priorities.
  SweepConfig config = small_config();
  config.shard_index = 1;
  config.shard_count = 3;
  const ShardResult shard = run_sweep(config, nullptr);
  const std::string json = to_json(shard);
  const ShardResult reloaded = parse_fragment(json);
  EXPECT_EQ(to_json(reloaded), json);
  EXPECT_EQ(reloaded.missions_run, shard.missions_run);
  EXPECT_EQ(reloaded.cells.size(), shard.cells.size());
}

TEST(SweepFragment, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(parse_fragment("not json"), std::runtime_error);
  EXPECT_THROW(parse_fragment("{}"), std::runtime_error);
  EXPECT_THROW(parse_fragment(R"({"schema": "something-else"})"),
               std::runtime_error);
}

TEST(SweepFragment, MergeValidatesHeadersAndCompleteness) {
  const SweepConfig config = small_config();
  std::vector<ShardResult> fragments;
  for (std::uint32_t i = 0; i < 3; ++i) {
    SweepConfig shard = config;
    shard.shard_index = i;
    shard.shard_count = 3;
    fragments.push_back(run_sweep(shard, nullptr));
  }

  // Missing shard: the error lists the lost cells and says to re-run.
  std::vector<ShardResult> incomplete = {fragments[0], fragments[2]};
  try {
    merge_fragments(incomplete);
    FAIL() << "merge accepted an incomplete fragment set";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("missing"), std::string::npos) << msg;
    EXPECT_NE(msg.find("re-run"), std::string::npos) << msg;
  }

  // Duplicate cells: the same fragment twice must be rejected.
  std::vector<ShardResult> duplicated = {fragments[0], fragments[0],
                                         fragments[1], fragments[2]};
  EXPECT_THROW(merge_fragments(duplicated), std::runtime_error);

  // Header mismatch: a fragment from a different sweep seed cannot merge.
  SweepConfig other = config;
  other.seed = 12;
  other.shard_index = 0;
  other.shard_count = 3;
  std::vector<ShardResult> mixed = {fragments[0],
                                    run_sweep(other, nullptr)};
  EXPECT_THROW(merge_fragments(mixed), std::runtime_error);

  EXPECT_THROW(merge_fragments({}), std::runtime_error);
}

TEST(SweepFragment, SingleShardMergeIsIdentity) {
  // Degenerate but legal: merging the one-and-only fragment of a 1-shard
  // sweep reproduces the document (modulo the normalized shard header,
  // which for 1/1 is already normalized).
  const SweepConfig config = small_config();
  const ShardResult full = run_sweep(config, nullptr);
  const ShardResult merged = merge_fragments({full});
  EXPECT_EQ(to_json(merged), to_json(full));
}

TEST(SweepFragment, EmptyCellsSerializeCleanly) {
  // A shard that owns zero cells (possible for small grids) must still
  // emit a valid, parseable fragment that merges with its siblings.
  SweepConfig config = small_config();
  config.axes.schemes = {Scheme::kCoordinated};
  config.axes.fault_scales = {1.0};
  config.axes.intervals_s = {10.0};  // 1-cell grid
  std::vector<ShardResult> fragments;
  std::size_t populated = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    SweepConfig shard = config;
    shard.shard_index = i;
    shard.shard_count = 3;
    fragments.push_back(run_sweep(shard, nullptr));
    if (!fragments.back().cells.empty()) ++populated;
    // Round-trip even the empty fragments.
    EXPECT_EQ(to_json(parse_fragment(to_json(fragments.back()))),
              to_json(fragments.back()));
  }
  EXPECT_EQ(populated, 1u);

  const ShardResult merged = merge_fragments(fragments);
  const ShardResult full = run_sweep(config, nullptr);
  EXPECT_EQ(to_json(merged), to_json(full));
}
