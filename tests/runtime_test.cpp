// Threaded GSU middleware: the same MDCD engines on real threads.
#include <gtest/gtest.h>

#include <chrono>

#include "mdcd/p1sdw.hpp"
#include "runtime/middleware.hpp"

namespace synergy {
namespace {

using namespace std::chrono_literals;

MiddlewareConfig default_config(std::uint64_t seed = 1) {
  MiddlewareConfig c;
  c.seed = seed;
  return c;
}

TEST(ThreadBusTest, PostAndPoll) {
  ThreadBus bus;
  bus.register_process(kP2);
  Message m;
  m.kind = MsgKind::kInternal;
  m.sender = kP1Act;
  m.receiver = kP2;
  m.payload = 42;
  bus.post(m);
  const auto item = bus.poll(kP2, 100ms);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->kind, MailboxItem::Kind::kMessage);
  EXPECT_EQ(item->message.payload, 42u);
}

TEST(ThreadBusTest, PollTimesOutWhenEmpty) {
  ThreadBus bus;
  bus.register_process(kP2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(bus.poll(kP2, 20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
}

TEST(ThreadBusTest, DeviceMessagesAccumulate) {
  ThreadBus bus;
  Message m;
  m.kind = MsgKind::kExternal;
  m.sender = kP2;
  m.receiver = kDeviceId;
  bus.post(m);
  bus.post(m);
  EXPECT_EQ(bus.device_log().size(), 2u);
}

TEST(ThreadBusTest, UnregisteredReceiverCountsAsDrop) {
  ThreadBus bus;
  Message m;
  m.receiver = ProcessId{55};
  bus.post(m);
  EXPECT_EQ(bus.dropped(), 1u);
}

TEST(GsuMiddlewareTest, FaultFreeOperationDeliversValidatedOutputs) {
  GsuMiddleware mw(default_config(3));
  mw.start();
  for (int i = 0; i < 20; ++i) {
    mw.component1_send(false, i);
    mw.p2_send(false, 100 + i);
  }
  mw.component1_send(true, 777);  // AT-validated external output
  ASSERT_TRUE(mw.wait_idle(5000ms));
  mw.stop();

  const auto device = mw.device_log();
  ASSERT_EQ(device.size(), 1u);
  EXPECT_EQ(device[0].sender, kP1Act);
  EXPECT_FALSE(device[0].tainted);
  EXPECT_FALSE(mw.sw_recovered());

  // The shadow suppressed everything and reclaimed its log up to VR.
  const TraceLog trace = mw.merged_trace();
  EXPECT_GT(trace.count(TraceKind::kSuppressSend, kP1Sdw), 0u);
  EXPECT_GT(trace.count(TraceKind::kAtPass, kP1Act), 0u);
}

TEST(GsuMiddlewareTest, ContaminationTracksAcrossThreads) {
  GsuMiddleware mw(default_config(4));
  mw.start();
  mw.component1_send(false, 1);  // dirty internal message contaminates P2
  ASSERT_TRUE(mw.wait_idle(5000ms));
  EXPECT_TRUE(mw.engine(kP2).dirty());
  mw.component1_send(true, 2);  // AT pass broadcasts the validation
  ASSERT_TRUE(mw.wait_idle(5000ms));
  EXPECT_FALSE(mw.engine(kP2).dirty());
  mw.stop();
}

TEST(GsuMiddlewareTest, DesignFaultTriggersStopTheWorldRecovery) {
  GsuMiddleware mw(default_config(5));
  mw.start();
  for (int i = 0; i < 10; ++i) mw.component1_send(false, i);
  mw.inject_design_fault(12345);
  mw.component1_send(true, 99);  // tainted external: AT fails
  // Recovery runs on the supervisor thread; give it a moment.
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (!mw.sw_recovered() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(mw.sw_recovered());
  ASSERT_TRUE(mw.wait_idle(5000ms));

  const auto stats = mw.recovery_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->detector, kP1Act);
  EXPECT_FALSE(mw.engine(kP1Act).alive());

  // The mission continues on the shadow-turned-active.
  mw.component1_send(true, 1000);
  ASSERT_TRUE(mw.wait_idle(5000ms));
  mw.stop();

  bool shadow_output = false;
  for (const auto& m : mw.device_log()) {
    EXPECT_FALSE(m.tainted);  // nothing erroneous ever reached the device
    if (m.sender == kP1Sdw) shadow_output = true;
  }
  EXPECT_TRUE(shadow_output);
}

TEST(GsuMiddlewareTest, DirtyProcessesRollBackOnRecovery) {
  GsuMiddleware mw(default_config(6));
  mw.start();
  mw.inject_design_fault(77);
  mw.component1_send(false, 1);  // tainted internal contaminates P2
  ASSERT_TRUE(mw.wait_idle(5000ms));
  ASSERT_TRUE(mw.engine(kP2).dirty());

  mw.component1_send(true, 2);  // AT failure -> recovery
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (!mw.sw_recovered() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(mw.sw_recovered());
  ASSERT_TRUE(mw.wait_idle(5000ms));
  const auto stats = mw.recovery_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->p2_rolled_back);
  EXPECT_FALSE(mw.engine(kP2).dirty());
  mw.stop();
}

TEST(GsuMiddlewareTest, StopIsIdempotentAndJoinsCleanly) {
  GsuMiddleware mw(default_config(7));
  mw.start();
  mw.component1_send(false, 1);
  mw.stop();
  mw.stop();  // no-op
  SUCCEED();
}

}  // namespace
}  // namespace synergy
