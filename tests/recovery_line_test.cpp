// Regression pins for the recovery-line discipline (DESIGN.md §7,
// finding 6): boundary-derived checkpoint indices, repair-window freezes,
// and purge-above-line semantics.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig base_config(std::uint64_t seed) {
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = seed;
  c.workload.p1_internal_rate = 3.0;
  c.workload.p2_internal_rate = 3.0;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.workload.step_rate = 1.0;
  c.tb.interval = Duration::seconds(10);
  c.repair_latency = Duration::seconds(2);
  return c;
}

TEST(RecoveryLineTest, IndicesStayBoundaryAlignedAcrossSwRecovery) {
  // A software recovery landing between two processes' expiries must not
  // step-misalign their checkpoint schedules: afterwards every process
  // commits index k at ~k*Delta.
  SystemConfig c = base_config(23);
  c.sw_fault.activation_per_send = 0.0;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  // Fire the error as close to a boundary as possible.
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(100) +
                           Duration::micros(50));
  system.run();
  ASSERT_TRUE(system.sw_recovery().has_value());

  // Post-recovery stable begins: same index within milliseconds on both
  // survivors, at the boundary instants.
  std::map<std::uint64_t, std::vector<double>> begin_times;
  for (const auto& e : system.trace().of_kind(TraceKind::kStableBegin)) {
    const double t = e.t.to_seconds();
    // Exclude the horizon edge, where one survivor's expiry may be cut off.
    if (t > 112 && t < 288) begin_times[e.a].push_back(t);
  }
  ASSERT_GE(begin_times.size(), 5u);
  for (const auto& [ndc, times] : begin_times) {
    ASSERT_EQ(times.size(), 2u) << "index " << ndc;  // two survivors
    EXPECT_LT(std::abs(times[0] - times[1]), 0.1) << "index " << ndc;
    // Boundary alignment: index k begins at ~k*10 s.
    EXPECT_NEAR(times[0], static_cast<double>(ndc) * 10.0, 0.1)
        << "index " << ndc;
  }
}

TEST(RecoveryLineTest, SurvivorCheckpointingFreezesDuringRepair) {
  SystemConfig c = base_config(24);
  c.repair_latency = Duration::seconds(25);  // spans two boundaries
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(200));
  // Fault just before a boundary: without the freeze, survivors would
  // commit during the repair window.
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(100) -
                               Duration::millis(50),
                           NodeId{1});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  std::size_t commits_in_window = 0;
  for (const auto& e : system.trace().of_kind(TraceKind::kStableCommit)) {
    const double t = e.t.to_seconds();
    if (t > 99.96 && t < 124.95) ++commits_in_window;
  }
  EXPECT_EQ(commits_in_window, 0u);
  // And checkpointing resumed on the boundary after the restart.
  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
}

TEST(RecoveryLineTest, StableStoreDiscardAbove) {
  Simulator sim;
  StableStore store(sim, StableStoreParams{});
  for (StableSeq n = 1; n <= 5; ++n) {
    CheckpointRecord rec;
    rec.owner = kP2;
    rec.ndc = n;
    store.commit_now(std::move(rec));
  }
  store.discard_above(3);
  EXPECT_EQ(store.latest_ndc(), 3u);
  EXPECT_FALSE(store.committed_for(4).has_value());
  EXPECT_TRUE(store.committed_for(2).has_value());
}

TEST(RecoveryLineTest, AuditUsesCommonIndexLikeRecovery) {
  // Immediately after a fault+repair straddling an expiry, the survivors
  // may briefly hold a higher index than the victim ever reached; the
  // audit surface must pair records at the common index only.
  SystemConfig c = base_config(25);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(400));
  for (int k = 0; k < 6; ++k) {
    system.schedule_hw_fault(TimePoint::origin() +
                                 Duration::seconds(50 + 50 * k) -
                                 Duration::millis(k * 7),
                             NodeId{static_cast<std::uint32_t>(k % 3)});
  }
  std::size_t violations = 0;
  for (int s = 12; s < 400; s += 7) {
    system.sim().schedule_at(
        TimePoint::origin() + Duration::seconds(s), [&] {
          const GlobalState line = system.stable_line_state();
          violations += check_consistency(line).size() +
                        check_recoverability(line).size();
        });
  }
  system.run();
  EXPECT_EQ(violations, 0u);
  EXPECT_GE(system.hw_recoveries().size(), 4u);
}

}  // namespace
}  // namespace synergy
