// CRC-32 dispatch coverage: the hardware (PCLMUL) path, the portable
// slicing-by-8 path, and the seam between them must all be bit-identical
// to the byte-at-a-time reference. The fuzz sweep is the ground truth for
// the folding constants in crc32_pclmul.cpp — a wrong constant cannot
// produce the reference CRC across this many lengths and alignments.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace synergy {
namespace {

// Restore the real dispatch no matter how a test exits.
struct ForcePortable {
  explicit ForcePortable(bool force) { crc32_force_portable(force); }
  ~ForcePortable() { crc32_force_portable(false); }
};

Bytes random_buffer(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes buf(n);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  return buf;
}

// Every length 0..512 catches seam bugs around the 64-byte hardware
// threshold and the 16-byte folding granularity; sparse larger lengths up
// to 8 KiB catch the 64-byte four-accumulator loop. All 8 alignments,
// because the kernel uses unaligned loads and must not care.
void fuzz_against_reference() {
  const Bytes buf = random_buffer(8192 + 8, 0x5EED);
  for (std::size_t offset = 0; offset < 8; ++offset) {
    for (std::size_t len = 0; len <= 512; ++len) {
      ASSERT_EQ(crc32(buf.data() + offset, len),
                crc32_reference(buf.data() + offset, len))
          << "len=" << len << " offset=" << offset;
    }
    for (std::size_t len : {513u, 1000u, 1024u, 2048u, 4095u, 4096u, 4097u,
                            6000u, 8191u, 8192u}) {
      ASSERT_EQ(crc32(buf.data() + offset, len),
                crc32_reference(buf.data() + offset, len))
          << "len=" << len << " offset=" << offset;
    }
  }
}

TEST(Crc32DispatchTest, DefaultDispatchMatchesReference) {
  fuzz_against_reference();
}

TEST(Crc32DispatchTest, ForcedPortableMatchesReference) {
  // On PCLMUL hosts the portable path would otherwise only ever see
  // sub-64-byte buffers; force it so CI covers its large-buffer loop too.
  ForcePortable guard(true);
  EXPECT_FALSE(crc32_hw_active());
  fuzz_against_reference();
}

TEST(Crc32DispatchTest, HardwareAndPortableAgree) {
  // Meaningful on PCLMUL hosts (both paths actually differ); trivially
  // true elsewhere. Either way the assertion is the same: dispatch is
  // invisible in the output.
  const Bytes buf = random_buffer(4096, 0xF00D);
  const std::uint32_t dispatched = crc32(buf);
  ForcePortable guard(true);
  EXPECT_EQ(crc32(buf), dispatched);
}

TEST(Crc32DispatchTest, ForceFlagRestores) {
  const bool before = crc32_hw_active();
  {
    ForcePortable guard(true);
    EXPECT_FALSE(crc32_hw_active());
  }
  EXPECT_EQ(crc32_hw_active(), before);
}

TEST(Crc32DispatchTest, KnownAnswerThroughHardwarePath) {
  // A 64-byte-plus vector with a precomputable CRC: 96 'a' bytes. The
  // reference implementation is the oracle; the point is that the value
  // flows through the PCLMUL kernel when available.
  Bytes buf(96, static_cast<std::uint8_t>('a'));
  EXPECT_EQ(crc32(buf), crc32_reference(buf.data(), buf.size()));
}

}  // namespace
}  // namespace synergy
