#include <gtest/gtest.h>

#include <sstream>

#include "trace/export.hpp"

namespace synergy {
namespace {

TEST(CsvEscapeTest, PlainStringsUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommasAndQuotesQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(JsonEscapeTest, SpecialsEscaped) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceExportTest, CsvHasHeaderAndRows) {
  TraceLog log;
  log.record(TimePoint{1'000'000}, kP2, TraceKind::kDirtySet, "x,y", 1, 2);
  std::ostringstream out;
  write_trace_csv(log, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("t_seconds,process,kind,detail,a,b"), std::string::npos);
  EXPECT_NE(s.find("1,P2,dirty_set,\"x,y\",1,2"), std::string::npos);
}

TEST(TraceExportTest, JsonlOneObjectPerEvent) {
  TraceLog log;
  log.record(TimePoint{500'000}, kP1Act, TraceKind::kAtPass, "external", 3);
  log.record(TimePoint{600'000}, kP2, TraceKind::kSend);
  std::ostringstream out;
  write_trace_jsonl(log, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("{\"t\":0.5,\"process\":\"P1act\",\"kind\":\"at_pass\""),
            std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

}  // namespace
}  // namespace synergy
