#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace synergy {
namespace {

TEST(DurationTest, ArithmeticAndComparison) {
  const Duration a = Duration::seconds(2);
  const Duration b = Duration::millis(500);
  EXPECT_EQ((a + b).count(), 2'500'000);
  EXPECT_EQ((a - b).count(), 1'500'000);
  EXPECT_EQ((a * 3).count(), 6'000'000);
  EXPECT_EQ((a / 2).count(), 1'000'000);
  EXPECT_LT(b, a);
  EXPECT_EQ((-b).count(), -500'000);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.5).count(), 1'500'000);
  EXPECT_EQ(Duration::from_seconds(-0.25).count(), -250'000);
  EXPECT_EQ(Duration::from_seconds(1e-6).count(), 1);
}

TEST(TimePointTest, AffineArithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::seconds(10);
  EXPECT_EQ((t1 - t0).count(), 10'000'000);
  EXPECT_EQ((t1 - Duration::seconds(4)).count(), 6'000'000);
  EXPECT_GT(TimePoint::max(), t1);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng root(5);
  Rng a = root.split();
  Rng b = root.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(SerializeTest, RoundTripPrimitives) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.bytes(Bytes{1, 2, 3});

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, FingerprintDistinguishesContent) {
  EXPECT_NE(fingerprint(Bytes{1, 2, 3}), fingerprint(Bytes{1, 2, 4}));
  EXPECT_EQ(fingerprint(Bytes{1, 2, 3}), fingerprint(Bytes{1, 2, 3}));
}

TEST(SerializeTest, WriterClearKeepsEncodingIdentical) {
  ByteWriter w;
  w.u64(1);
  w.str("warmup");
  const Bytes first = [] {
    ByteWriter fresh;
    fresh.u32(7);
    fresh.str("abc");
    return fresh.take();
  }();
  w.clear();
  w.u32(7);
  w.str("abc");
  EXPECT_EQ(w.data(), first);  // scratch reuse never changes the bytes
  w.clear();
  EXPECT_EQ(w.size(), 0u);
}

TEST(SerializeTest, ViewReadsMatchCopyingReads) {
  ByteWriter w;
  w.bytes(Bytes{9, 8, 7});
  w.str("view");
  w.u8(0x5A);
  w.u32(123);

  ByteReader copy(w.data());
  ByteReader view(w.data());
  EXPECT_EQ(copy.bytes(), (Bytes{9, 8, 7}));
  const ByteView bv = view.bytes_view();
  EXPECT_EQ(Bytes(bv.begin(), bv.end()), (Bytes{9, 8, 7}));
  EXPECT_EQ(copy.str(), "view");
  EXPECT_EQ(view.str_view(), "view");
  (void)copy.u8();
  view.skip(1);  // inspection paths may skip fields they ignore
  EXPECT_EQ(copy.u32(), view.u32());
  const ByteView rest = view.rest_view();
  EXPECT_TRUE(rest.empty());
  EXPECT_TRUE(view.exhausted());
  EXPECT_TRUE(view.ok());
}

TEST(SerializeTest, SharedBytesAliasesWithoutCopying) {
  const SharedBytes a{Bytes{1, 2, 3}};
  const SharedBytes b = a;  // refcount bump, same buffer
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  EXPECT_EQ((Bytes{1, 2, 3}), b);
  EXPECT_EQ(a.get().data(), b.get().data());

  const SharedBytes c{Bytes{1, 2, 3}};  // equal content, distinct buffer
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a.shares_buffer_with(c));

  SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.shares_buffer_with(empty));  // null never "shares"
}

TEST(SnapshotCacheTest, ReencodesOnlyOnVersionChange) {
  SnapshotCache cache;
  int encodes = 0;
  auto encode = [&encodes] {
    ++encodes;
    return Bytes{1, 2, 3};
  };
  const SharedBytes first = cache.get(1, encode);
  const SharedBytes again = cache.get(1, encode);
  EXPECT_EQ(encodes, 1);
  EXPECT_TRUE(first.shares_buffer_with(again));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const SharedBytes moved = cache.get(2, encode);
  EXPECT_EQ(encodes, 2);
  EXPECT_FALSE(first.shares_buffer_with(moved));
  EXPECT_EQ(cache.bytes_encoded(), 6u);

  cache.invalidate();
  (void)cache.get(2, encode);  // same version, but invalidated: re-encode
  EXPECT_EQ(encodes, 3);
}

// ---- CRC-32 ----------------------------------------------------------------

TEST(Crc32Test, KnownAnswerVector) {
  // The IEEE 802.3 check value: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32Test, SlicedMatchesReferenceAcrossLengthsAndAlignments) {
  // The slicing-by-8 hot path must be bit-identical to the byte-at-a-time
  // reference for every tail length (0..7 residues) and for unaligned
  // starts, or existing stable blobs would stop verifying.
  Rng rng(21);
  Bytes buf(4096 + 16);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  for (std::size_t len : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 63u,
                          64u, 65u, 255u, 1024u, 4095u, 4096u}) {
    for (std::size_t offset : {0u, 1u, 3u, 5u}) {
      EXPECT_EQ(crc32(buf.data() + offset, len),
                crc32_reference(buf.data() + offset, len))
          << "len=" << len << " offset=" << offset;
    }
  }
}

TEST(Crc32Test, DetectsSingleBitCorruption) {
  Rng rng(33);
  Bytes buf(512);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  const std::uint32_t clean = crc32(buf);
  for (std::size_t byte : {0u, 255u, 511u}) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes corrupted = buf;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(corrupted), clean) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(Crc32Test, DetectsTruncation) {
  Rng rng(34);
  Bytes buf(512);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  const std::uint32_t clean = crc32(buf);
  for (std::size_t keep : {0u, 1u, 256u, 511u}) {
    EXPECT_NE(crc32(buf.data(), keep), clean) << "keep=" << keep;
  }
}

TEST(StatsTest, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(StatsTest, HistogramQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 10.0);
}

TEST(StatsTest, HistogramClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(StatsTest, RunningStatsEmptyMinMaxAborts) {
  RunningStats s;
  EXPECT_DEATH(static_cast<void>(s.min()), "precondition");
  EXPECT_DEATH(static_cast<void>(s.max()), "precondition");
  s.add(1.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 1.0);
}

TEST(StatsTest, HistogramRejectsNonFiniteSamples) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.rejected(), 3u);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.rejected(), 3u);
  EXPECT_EQ(h.bin_count(2), 1u);  // finite samples still bin normally
}

TEST(StatsTest, HistogramQuantileClampsToLastNonEmptyBin) {
  // Bottom-heavy: all mass in the first bin of [0, 100). The extreme
  // quantile must report the top of that bin, never hi_ = 100.
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 50; ++i) h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_LE(h.quantile(0.999), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(TypesTest, RolesAndCanonicalIds) {
  EXPECT_EQ(role_of(kP1Act), Role::kP1Act);
  EXPECT_EQ(role_of(kP1Sdw), Role::kP1Sdw);
  EXPECT_EQ(role_of(kP2), Role::kP2);
  EXPECT_STREQ(to_string(Role::kP1Act), "P1act");
  EXPECT_EQ(to_string(kP2), "P2");
  EXPECT_NE(kP1Act, kP1Sdw);
}

}  // namespace
}  // namespace synergy
