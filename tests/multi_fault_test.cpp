// Fault sequences: repeated hardware faults, faults on every node, faults
// interleaved with software recovery, fault plans, and cross-scheme
// recovery behaviour over long horizons.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig long_config(Scheme scheme, std::uint64_t seed) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload.p1_internal_rate = 1.0;
  c.workload.p1_external_rate = 0.2;
  c.workload.p2_internal_rate = 1.0;
  c.workload.p2_external_rate = 0.2;
  c.workload.step_rate = 1.0;
  c.tb.interval = Duration::seconds(10);
  c.repair_latency = Duration::seconds(2);
  return c;
}

TEST(MultiFaultTest, RepeatedFaultsAllRecover) {
  System system(long_config(Scheme::kCoordinated, 1));
  system.start(TimePoint::origin() + Duration::seconds(1'200));
  for (int k = 0; k < 5; ++k) {
    system.schedule_hw_fault(
        TimePoint::origin() + Duration::seconds(150 + 200 * k),
        NodeId{static_cast<std::uint32_t>(k % 3)});
  }
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 5u);
  for (const auto& rec : system.hw_recoveries()) {
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_FALSE(rec.restored_dirty[i]);
      EXPECT_GE(rec.rollback_distance[i], Duration::zero());
    }
  }
  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
}

TEST(MultiFaultTest, EveryNodeCanBeTheVictim) {
  for (std::uint32_t node = 0; node < 3; ++node) {
    System system(long_config(Scheme::kCoordinated, 10 + node));
    system.start(TimePoint::origin() + Duration::seconds(400));
    system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(200),
                             NodeId{node});
    system.run();
    ASSERT_EQ(system.hw_recoveries().size(), 1u) << "node " << node;
    EXPECT_EQ(system.hw_recoveries()[0].faulty_node, NodeId{node});
    // Traffic resumed after each recovery.
    bool resumed = false;
    for (const auto& e : system.device().entries) {
      resumed |= e.at > TimePoint::origin() + Duration::seconds(250);
    }
    EXPECT_TRUE(resumed) << "node " << node;
  }
}

TEST(MultiFaultTest, FaultDuringRepairOfAnotherIsSkipped) {
  SystemConfig c = long_config(Scheme::kCoordinated, 20);
  c.repair_latency = Duration::seconds(50);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(100),
                           NodeId{0});
  // Lands inside the first repair window: skipped by the single-fault
  // model rather than corrupting the recovery.
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(120),
                           NodeId{1});
  system.run();
  EXPECT_EQ(system.hw_recoveries().size(), 1u);
}

TEST(MultiFaultTest, PoissonFaultPlanThroughManager) {
  System system(long_config(Scheme::kCoordinated, 21));
  system.start(TimePoint::origin() + Duration::seconds(1'000));
  const auto plan = HardwareFaultPlan::poisson(
      Duration::seconds(200),
      TimePoint::origin() + Duration::seconds(900), 3, Rng(5));
  std::uint32_t epoch = 100;
  std::size_t recovered = 0;
  system.hw_manager().install_plan(
      plan, [&epoch] { return ++epoch; },
      [&recovered](const HwRecoveryStats&) { ++recovered; });
  system.run();
  EXPECT_EQ(recovered, system.hw_manager().faults_injected());
  EXPECT_GT(plan.events().size(), 0u);
}

TEST(MultiFaultTest, SwThenHwThenContinueCleanly) {
  System system(long_config(Scheme::kCoordinated, 22));
  system.start(TimePoint::origin() + Duration::seconds(900));
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(100));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(300),
                           NodeId{1});
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(600),
                           NodeId{2});
  system.run();
  ASSERT_TRUE(system.sw_recovery().has_value());
  ASSERT_EQ(system.hw_recoveries().size(), 2u);
  EXPECT_TRUE(system.p1sdw().active());
  EXPECT_TRUE(system.node(kP1Act).retired());
  for (const auto& p : system.live_state().processes) {
    EXPECT_FALSE(p.dirty);
    EXPECT_FALSE(p.app_tainted);
  }
}

TEST(MultiFaultTest, HwThenSwThenHw) {
  System system(long_config(Scheme::kCoordinated, 23));
  system.start(TimePoint::origin() + Duration::seconds(900));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(100),
                           NodeId{0});
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(400));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(700),
                           NodeId{2});
  system.run();
  ASSERT_TRUE(system.sw_recovery().has_value());
  ASSERT_EQ(system.hw_recoveries().size(), 2u);
  const GlobalState line = system.stable_line_state();
  EXPECT_EQ(line.processes.size(), 2u);  // P1act retired
  EXPECT_TRUE(check_consistency(line).empty());
  EXPECT_TRUE(check_recoverability(line).empty());
}

TEST(MultiFaultTest, WriteThroughSurvivesRepeatedFaults) {
  System system(long_config(Scheme::kWriteThrough, 24));
  system.start(TimePoint::origin() + Duration::seconds(900));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(300),
                           NodeId{2});
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(600),
                           NodeId{1});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 2u);
  // Write-through restores validated (Type-2) states: never contaminated.
  for (const auto& rec : system.hw_recoveries()) {
    EXPECT_FALSE(rec.restored_dirty[1]);
    EXPECT_FALSE(rec.restored_dirty[2]);
  }
}

TEST(MultiFaultTest, BackToBackFaultsOnSameNode) {
  System system(long_config(Scheme::kCoordinated, 25));
  system.start(TimePoint::origin() + Duration::seconds(700));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(200),
                           NodeId{2});
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(230),
                           NodeId{2});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 2u);
  // The second recovery rolls back to a line refreshed after the first.
  EXPECT_GE(system.hw_recoveries()[1].fault_time,
            system.hw_recoveries()[0].fault_time);
  const GlobalState line = system.stable_line_state();
  EXPECT_TRUE(check_consistency(line).empty());
}

}  // namespace
}  // namespace synergy
