// Property-based sweeps: randomized workloads, fault schedules and seeds;
// the paper's theorems — validity-concerned consistency and
// recoverability after every recovery — as invariants.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  double internal_rate;
  double external_rate;
};

class RecoveryProperty : public ::testing::TestWithParam<PropertyCase> {};

SystemConfig property_config(const PropertyCase& pc) {
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;  // corrected gate/tracking defaults
  c.seed = pc.seed;
  c.workload.p1_internal_rate = pc.internal_rate;
  c.workload.p2_internal_rate = pc.internal_rate;
  c.workload.p1_external_rate = pc.external_rate;
  c.workload.p2_external_rate = pc.external_rate;
  c.workload.step_rate = pc.internal_rate;
  c.tb.interval = Duration::seconds(10);
  c.repair_latency = Duration::seconds(1);
  return c;
}

TEST_P(RecoveryProperty, StableLineAlwaysConsistentAndRecoverable) {
  const PropertyCase pc = GetParam();
  System system(property_config(pc));
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.run();
  const GlobalState line = system.stable_line_state();
  for (const auto& v : check_consistency(line)) {
    ADD_FAILURE() << "seed " << pc.seed << ": " << v.describe();
  }
  for (const auto& v : check_recoverability(line)) {
    ADD_FAILURE() << "seed " << pc.seed << ": " << v.describe();
  }
  EXPECT_TRUE(check_software_recoverability(line).empty());
}

TEST_P(RecoveryProperty, HardwareRecoveryPreservesProperties) {
  const PropertyCase pc = GetParam();
  SystemConfig c = property_config(pc);
  System system(c);
  Rng rng(pc.seed * 31 + 7);
  system.start(TimePoint::origin() + Duration::seconds(400));
  const TimePoint fault =
      TimePoint::origin() +
      rng.uniform(Duration::seconds(50), Duration::seconds(300));
  system.schedule_hw_fault(
      fault, NodeId{static_cast<std::uint32_t>(rng.uniform_int(0, 2))});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);

  // The paper's properties are stated over recovery lines: audit the
  // stable line the recovery restored from (live views may transiently
  // disagree while a validation is in flight — that is inherent).
  const GlobalState line = system.stable_line_state();
  for (const auto& v : check_consistency(line)) {
    ADD_FAILURE() << "seed " << pc.seed << ": " << v.describe();
  }
  for (const auto& v : check_recoverability(line)) {
    ADD_FAILURE() << "seed " << pc.seed << ": " << v.describe();
  }
  for (bool dirty : system.hw_recoveries()[0].restored_dirty) {
    EXPECT_FALSE(dirty);
  }
}

TEST_P(RecoveryProperty, CombinedFaultsEndClean) {
  const PropertyCase pc = GetParam();
  SystemConfig c = property_config(pc);
  c.sw_fault.activation_per_send = 0.002;  // natural design-fault arrivals
  System system(c);
  Rng rng(pc.seed * 77 + 3);
  system.start(TimePoint::origin() + Duration::seconds(400));
  system.schedule_hw_fault(
      TimePoint::origin() +
          rng.uniform(Duration::seconds(50), Duration::seconds(200)),
      NodeId{static_cast<std::uint32_t>(rng.uniform_int(0, 2))});
  system.run();

  // Whatever combination of faults occurred, the stable recovery line
  // satisfies the properties, and (coverage = 1) no tainted state or
  // device output survives a completed software recovery.
  const GlobalState line = system.stable_line_state();
  for (const auto& v : check_consistency(line)) {
    ADD_FAILURE() << "seed " << pc.seed << ": " << v.describe();
  }
  for (const auto& v : check_recoverability(line)) {
    ADD_FAILURE() << "seed " << pc.seed << ": " << v.describe();
  }
  const GlobalState live = system.live_state();
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted) << "tainted external output, seed " << pc.seed;
  }
  if (system.sw_recovery().has_value()) {
    for (const auto& p : live.processes) {
      EXPECT_FALSE(p.app_tainted) << "seed " << pc.seed;
    }
  }
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const double internal_rates[] = {0.5, 2.0, 8.0};
  const double external_rates[] = {0.05, 0.5};
  std::uint64_t seed = 1;
  for (double ir : internal_rates) {
    for (double er : external_rates) {
      for (int rep = 0; rep < 4; ++rep) {
        cases.push_back(PropertyCase{seed++, ir, er});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryProperty, ::testing::ValuesIn(property_cases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      const auto& pc = info.param;
      return "seed" + std::to_string(pc.seed) + "_ir" +
             std::to_string(static_cast<int>(pc.internal_rate * 10)) +
             "_er" + std::to_string(static_cast<int>(pc.external_rate * 100));
    });

// ---------------------------------------------------------------------------
// Characterization of the paper-faithful algorithms: the equality Ndc gate
// and raw dirty-bit tracking admit recovery-line splits that the property
// sweeps above (corrected modes) never exhibit. This documents the gap the
// reproduction uncovered; the gate/tracking ablation bench quantifies it.
// ---------------------------------------------------------------------------
TEST(PaperFidelityTest, PaperModesCanSplitTheRecoveryLine) {
  // Sample the stable recovery line after every checkpoint interval: a
  // single end-of-run snapshot is too coarse to catch the race reliably.
  auto violations_for = [](bool corrected, std::uint64_t seed) {
    SystemConfig c;
    c.scheme = Scheme::kCoordinated;
    c.gate_mode =
        corrected ? NdcGateMode::kBlockingAware : NdcGateMode::kPaper;
    c.tracking = corrected ? ContaminationTracking::kWatermark
                           : ContaminationTracking::kPaperDirtyBit;
    c.seed = seed;
    c.workload.p1_internal_rate = 8.0;
    c.workload.p2_internal_rate = 8.0;
    c.workload.p1_external_rate = 0.5;
    c.workload.p2_external_rate = 0.5;
    c.tb.interval = Duration::seconds(10);
    System system(c);
    system.start(TimePoint::origin() + Duration::seconds(300));
    std::size_t violations = 0;
    for (int s = 15; s < 300; s += 10) {
      system.sim().schedule_at(
          TimePoint::origin() + Duration::seconds(s), [&system, &violations] {
            const GlobalState line = system.stable_line_state();
            violations += check_consistency(line).size() +
                          check_recoverability(line).size();
          });
    }
    system.run();
    return violations;
  };

  std::size_t paper_violations = 0;
  std::size_t corrected_violations = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    paper_violations += violations_for(false, seed);
    corrected_violations += violations_for(true, seed);
  }
  EXPECT_EQ(corrected_violations, 0u);
  EXPECT_GT(paper_violations, 0u)
      << "expected the paper-faithful modes to exhibit the documented "
         "recovery-line race on at least one seed";
}

}  // namespace
}  // namespace synergy
