// The sweep's mergeable statistics: Welford/Chan moments and the
// priority-ranked reservoir. These carry the shard/merge byte-identity
// contract, so the tests are about *exactness*: bit-for-bit commutative
// merges, insertion-order independence, and agreement with a two-pass
// oracle on large streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "sweep/stats.hpp"

using namespace synergy;
using namespace synergy::sweep;

namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

bool bitwise_equal(const Moments& a, const Moments& b) {
  return a.n == b.n && bits_of(a.mean) == bits_of(b.mean) &&
         bits_of(a.m2) == bits_of(b.m2) && bits_of(a.min) == bits_of(b.min) &&
         bits_of(a.max) == bits_of(b.max);
}

double uniform(Rng& rng) {
  // 53-bit mantissa draw in [0, 1).
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

}  // namespace

TEST(SweepMoments, MatchesTwoPassOracleOnMillionSamples) {
  // Streaming mean/variance vs the textbook two-pass computation over
  // 10^6 mixed-scale samples. Welford is famously stable; hold it to
  // tight relative error against the oracle.
  constexpr std::size_t kN = 1'000'000;
  Rng rng(20260808);
  std::vector<double> xs;
  xs.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    // Mix magnitudes so cancellation would expose a naive sum-of-squares.
    xs.push_back(1000.0 + uniform(rng) - 0.5);
  }

  Moments m;
  for (double x : xs) m.add(x);

  double sum = 0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(kN);
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(kN - 1);

  ASSERT_EQ(m.n, kN);
  EXPECT_NEAR(m.mean, mean, std::abs(mean) * 1e-12);
  EXPECT_NEAR(m.variance(), var, var * 1e-9);
  EXPECT_DOUBLE_EQ(m.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(m.max, *std::max_element(xs.begin(), xs.end()));
  // CI half-width: 1.96 * sqrt(var/n) against the oracle variance.
  EXPECT_NEAR(m.ci95_halfwidth(),
              1.96 * std::sqrt(var / static_cast<double>(kN)),
              m.ci95_halfwidth() * 1e-9);
}

TEST(SweepMoments, ChanMergeIsCommutativeBitForBit) {
  // The merge contract: merge(a, b) and merge(b, a) must be the *same
  // bits*, not merely close — fragment order on the merge command line
  // must not perturb the output document.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    Moments a, b;
    const std::size_t na = 1 + (rng.next() % 50);
    const std::size_t nb = 1 + (rng.next() % 50);
    for (std::size_t i = 0; i < na; ++i) a.add(uniform(rng) * 100.0);
    for (std::size_t i = 0; i < nb; ++i) b.add(uniform(rng) * 0.01);
    const Moments ab = merge(a, b);
    const Moments ba = merge(b, a);
    ASSERT_TRUE(bitwise_equal(ab, ba)) << "trial " << trial;
  }
}

TEST(SweepMoments, MergeWithEmptyIsIdentity) {
  Moments a;
  a.add(3.0);
  a.add(-1.5);
  const Moments e;
  EXPECT_TRUE(bitwise_equal(merge(a, e), a));
  EXPECT_TRUE(bitwise_equal(merge(e, a), a));
  EXPECT_TRUE(bitwise_equal(merge(e, e), e));
}

TEST(SweepMoments, MergeAgreesWithSequentialFold) {
  // Chan-merging two halves equals folding the concatenation, within
  // floating-point tolerance (the emitters rely on *identical grouping*
  // for byte identity — this checks the math, not the bytes).
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) xs.push_back(uniform(rng) * 10.0);

  Moments whole, lo, hi;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < xs.size() / 2 ? lo : hi).add(xs[i]);
  }
  const Moments merged = merge(lo, hi);
  ASSERT_EQ(merged.n, whole.n);
  EXPECT_NEAR(merged.mean, whole.mean, std::abs(whole.mean) * 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), whole.variance() * 1e-9);
  EXPECT_DOUBLE_EQ(merged.min, whole.min);
  EXPECT_DOUBLE_EQ(merged.max, whole.max);
}

TEST(SweepMoments, SingleSampleEdgeCases) {
  Moments m;
  m.add(5.0);
  EXPECT_EQ(m.n, 1u);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.ci95_halfwidth(), 0.0);
  EXPECT_DOUBLE_EQ(m.min, 5.0);
  EXPECT_DOUBLE_EQ(m.max, 5.0);

  Moments other;
  other.add(-2.0);
  const Moments merged = merge(m, other);
  EXPECT_EQ(merged.n, 2u);
  EXPECT_DOUBLE_EQ(merged.mean, 1.5);
  EXPECT_DOUBLE_EQ(merged.min, -2.0);
  EXPECT_DOUBLE_EQ(merged.max, 5.0);
}

TEST(SweepReservoir, KeepsTopKByPriorityRegardlessOfInsertionOrder) {
  // Offer the same 500 samples in three different orders; the retained
  // set (and its serialization order) must be identical, and must equal
  // the true top-K by priority.
  constexpr std::size_t kCap = 16;
  Rng rng(99);
  std::vector<WeightedSample> samples;
  for (std::uint64_t i = 0; i < 500; ++i) {
    samples.push_back(
        WeightedSample{uniform(rng), mix64(i * 977 + 13), i % 7, i});
  }

  std::vector<WeightedSample> shuffled = samples;
  std::reverse(shuffled.begin(), shuffled.end());
  std::vector<WeightedSample> interleaved;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    interleaved.push_back(samples[(i * 263) % samples.size()]);
  }

  Reservoir a(kCap), b(kCap), c(kCap);
  for (const auto& s : samples) a.add(s);
  for (const auto& s : shuffled) b.add(s);
  for (const auto& s : interleaved) c.add(s);

  std::vector<WeightedSample> expected = samples;
  std::sort(expected.begin(), expected.end(), sample_outranks);
  expected.resize(kCap);

  for (const Reservoir* r : {&a, &b, &c}) {
    ASSERT_EQ(r->size(), kCap);
    for (std::size_t i = 0; i < kCap; ++i) {
      EXPECT_EQ(r->ranked()[i].priority, expected[i].priority);
      EXPECT_EQ(r->ranked()[i].ordinal, expected[i].ordinal);
      EXPECT_EQ(bits_of(r->ranked()[i].value), bits_of(expected[i].value));
    }
  }
}

TEST(SweepReservoir, UnionIsExactAndPermutationInvariant) {
  // Split a sample stream across three "shards", each with its own
  // reservoir; merging the shard reservoirs in any order must reproduce
  // the single-reservoir result exactly — the union of per-shard top-Ks
  // contains the global top-K.
  constexpr std::size_t kCap = 12;
  Rng rng(123);
  std::vector<WeightedSample> all;
  for (std::uint64_t i = 0; i < 300; ++i) {
    all.push_back(WeightedSample{uniform(rng) * 4.0,
                                 mix64(0xABCDull ^ (i * 31)), i % 9, i});
  }

  Reservoir global(kCap);
  Reservoir shard[3] = {Reservoir(kCap), Reservoir(kCap), Reservoir(kCap)};
  for (std::size_t i = 0; i < all.size(); ++i) {
    global.add(all[i]);
    shard[i % 3].add(all[i]);
  }

  const int orders[][3] = {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}};
  for (const auto& order : orders) {
    Reservoir merged(kCap);
    for (int idx : order) merged.merge(shard[idx]);
    ASSERT_EQ(merged.size(), global.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged.ranked()[i].priority, global.ranked()[i].priority);
      EXPECT_EQ(bits_of(merged.ranked()[i].value),
                bits_of(global.ranked()[i].value));
    }
  }
}

TEST(SweepReservoir, EmptyAndSingleSampleEdges) {
  Reservoir r(8);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_DOUBLE_EQ(r.quantile(0.5), 0.0);  // empty => 0 by contract

  Reservoir other(8);
  r.merge(other);  // empty-with-empty is a no-op
  EXPECT_EQ(r.size(), 0u);

  r.add(2.5, 7, 0, 0);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 2.5);
  EXPECT_DOUBLE_EQ(r.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 2.5);

  other.merge(r);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_DOUBLE_EQ(other.ranked()[0].value, 2.5);
}

TEST(SweepReservoir, QuantilesInterpolateOverRetainedValues) {
  Reservoir r(64);
  for (std::uint64_t i = 0; i < 5; ++i) {
    // values 1..5, priorities arbitrary
    r.add(static_cast<double>(i + 1), mix64(i), 0, i);
  }
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.25), 2.0);
}

TEST(SweepStats, Mix64IsTheSplitMix64Finalizer) {
  // Anchor the hash: cell seeds, shard assignment and sample priorities
  // are all derived from it, so silently changing it would orphan every
  // committed fragment. Reference values from the SplitMix64 stream.
  EXPECT_EQ(mix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(mix64(1), 0x910A2DEC89025CC1ull);
  EXPECT_EQ(mix64(2), 0x975835DE1C9756CEull);
}
