// SmallVec unit tests: inline/heap transitions, move stealing, and the
// mutation surface the message-path containers rely on (sorted insert,
// range erase, assign). The payload tracking below exists because the
// container manually constructs/destroys elements — a missed destructor
// or double-destroy is invisible to the happy-path tests.

#include <gtest/gtest.h>

#include <string>

#include "common/small_vec.hpp"

namespace synergy {
namespace {

struct Tracked {
  static int live;
  std::string tag;

  explicit Tracked(std::string t = "") : tag(std::move(t)) { ++live; }
  Tracked(const Tracked& o) : tag(o.tag) { ++live; }
  Tracked(Tracked&& o) noexcept : tag(std::move(o.tag)) { ++live; }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { --live; }

  friend bool operator==(const Tracked& a, const Tracked& b) {
    return a.tag == b.tag;
  }
};
int Tracked::live = 0;

TEST(SmallVecTest, StaysInlineUpToN) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, GrowsPastInlinePreservingElements) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 40; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_GE(v.capacity(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, InsertShiftsTail) {
  SmallVec<int, 4> v;
  v.push_back(1);
  v.push_back(3);
  v.insert(v.begin() + 1, 2);
  v.insert(v.begin(), 0);
  v.insert(v.end(), 4);
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, EraseSingleAndRange) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  v.erase(v.begin() + 1);  // 0 2 3 4 5 6 7
  EXPECT_EQ(v[1], 2);
  v.erase(v.begin() + 2, v.begin() + 5);  // 0 2 6 7
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 6);
  EXPECT_EQ(v[3], 7);
}

TEST(SmallVecTest, MoveStealsHeapBuffer) {
  SmallVec<Tracked, 2> v;
  for (int i = 0; i < 6; ++i) v.emplace_back(std::to_string(i));
  const Tracked* heap = v.data();
  SmallVec<Tracked, 2> w = std::move(v);
  EXPECT_EQ(w.data(), heap);  // stolen, not copied
  EXPECT_TRUE(v.empty());
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(w[5].tag, "5");
}

TEST(SmallVecTest, MoveOfInlineElements) {
  SmallVec<Tracked, 4> v;
  v.emplace_back("a");
  v.emplace_back("b");
  SmallVec<Tracked, 4> w = std::move(v);
  EXPECT_TRUE(v.empty());
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].tag, "a");
  EXPECT_EQ(w[1].tag, "b");
}

TEST(SmallVecTest, NoLeaksAcrossLifecycle) {
  ASSERT_EQ(Tracked::live, 0);
  {
    SmallVec<Tracked, 2> v;
    for (int i = 0; i < 10; ++i) v.emplace_back(std::to_string(i));
    v.erase(v.begin(), v.begin() + 3);
    v.pop_back();
    SmallVec<Tracked, 2> w;
    w = std::move(v);
    SmallVec<Tracked, 2> c(w);
    EXPECT_EQ(Tracked::live, static_cast<int>(w.size() + c.size()));
    w.clear();
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(SmallVecTest, AssignReplacesContents) {
  SmallVec<int, 2> v;
  v.push_back(9);
  const int src[] = {1, 2, 3, 4, 5};
  v.assign(src, src + 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[4], 5);
}

TEST(SmallVecTest, EqualityIsElementwise) {
  SmallVec<int, 2> a;
  SmallVec<int, 2> b;
  for (int i = 0; i < 5; ++i) {
    a.push_back(i);
    b.push_back(i);
  }
  EXPECT_TRUE(a == b);
  b.back() = 99;
  EXPECT_FALSE(a == b);
  b.pop_back();
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace synergy
