#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "storage/stable_store.hpp"
#include "storage/volatile_store.hpp"

namespace synergy {
namespace {

CheckpointRecord sample_record(std::uint64_t ndc = 1) {
  CheckpointRecord rec;
  rec.kind = CkptKind::kStable;
  rec.owner = kP2;
  rec.established_at = TimePoint{1000};
  rec.state_time = TimePoint{900};
  rec.dirty_bit = true;
  rec.ndc = ndc;
  rec.app_state = Bytes{1, 2, 3};
  rec.protocol_state = Bytes{4, 5};
  rec.transport_state = Bytes{6};
  Message m;
  m.sender = kP2;
  m.receiver = kP1Sdw;
  m.transport_seq = 9;
  rec.unacked.push_back(m);
  return rec;
}

TEST(CheckpointTest, SerializationRoundTrip) {
  const CheckpointRecord rec = sample_record();
  ByteWriter w;
  rec.serialize(w);
  ByteReader r(w.data());
  const CheckpointRecord back = CheckpointRecord::deserialize(r);
  EXPECT_EQ(back.kind, rec.kind);
  EXPECT_EQ(back.owner, rec.owner);
  EXPECT_EQ(back.established_at, rec.established_at);
  EXPECT_EQ(back.state_time, rec.state_time);
  EXPECT_EQ(back.dirty_bit, rec.dirty_bit);
  EXPECT_EQ(back.ndc, rec.ndc);
  EXPECT_EQ(back.app_state, rec.app_state);
  EXPECT_EQ(back.protocol_state, rec.protocol_state);
  EXPECT_EQ(back.transport_state, rec.transport_state);
  ASSERT_EQ(back.unacked.size(), 1u);
  EXPECT_EQ(back.unacked[0].transport_seq, 9u);
}

// encoded_size() backs StableStore::write_latency_for, so a drift between it
// and serialize() silently changes simulated commit timing. Checkpoint.cpp
// promises this test keeps the two in lock-step.
TEST(CheckpointTest, EncodedSizeMatchesSerializedSize) {
  CheckpointRecord empty;
  ByteWriter we;
  empty.serialize(we);
  EXPECT_EQ(we.data().size(), empty.encoded_size());

  CheckpointRecord rec = sample_record();
  rec.unacked[0].aux = Bytes{9, 8, 7, 6, 5};
  Message extra;
  extra.sender = kP1Act;
  extra.receiver = kP2;
  extra.transport_seq = 17;
  rec.unacked.push_back(extra);
  ByteWriter w;
  rec.serialize(w);
  EXPECT_EQ(w.data().size(), rec.encoded_size());

  // Serializing into a dirty reused writer appends exactly encoded_size().
  w.u32(0xDEADBEEF);
  const std::size_t before = w.data().size();
  rec.serialize(w);
  EXPECT_EQ(w.data().size() - before, rec.encoded_size());
}

TEST(VolatileStoreTest, KeepsOnlyLatest) {
  VolatileStore store;
  EXPECT_FALSE(store.latest().has_value());
  store.save(sample_record(1));
  store.save(sample_record(2));
  ASSERT_TRUE(store.latest().has_value());
  EXPECT_EQ(store.latest()->ndc, 2u);
  EXPECT_EQ(store.saves(), 2u);
}

TEST(VolatileStoreTest, CrashErasesContents) {
  VolatileStore store;
  store.save(sample_record());
  store.crash_erase();
  EXPECT_FALSE(store.latest().has_value());
}

class StableStoreFixture : public ::testing::Test {
 protected:
  StableStoreFixture() : store_(sim_, params()) {}
  static StableStoreParams params() {
    StableStoreParams p;
    p.write_base_latency = Duration::millis(10);
    p.write_per_kib = Duration::zero();
    return p;
  }
  Simulator sim_;
  StableStore store_;
};

TEST_F(StableStoreFixture, WriteCommitsAfterLatency) {
  bool committed = false;
  store_.begin_write(sample_record(),
                     [&](const CheckpointRecord&) { committed = true; });
  EXPECT_TRUE(store_.write_in_progress());
  EXPECT_FALSE(store_.latest_committed().has_value());
  sim_.run();
  EXPECT_TRUE(committed);
  EXPECT_FALSE(store_.write_in_progress());
  ASSERT_TRUE(store_.latest_committed().has_value());
  EXPECT_EQ(store_.latest_committed()->ndc, 1u);
  EXPECT_EQ(sim_.now(), TimePoint{10'000});
}

TEST_F(StableStoreFixture, ReplaceInProgressSwapsContents) {
  store_.begin_write(sample_record(1));
  sim_.run_until(TimePoint{5'000});
  store_.replace_in_progress(sample_record(2));
  sim_.run();
  ASSERT_TRUE(store_.latest_committed().has_value());
  EXPECT_EQ(store_.latest_committed()->ndc, 2u);
  EXPECT_EQ(store_.aborts(), 1u);
  EXPECT_EQ(store_.commits(), 1u);
  // Replacement restarts the write latency.
  EXPECT_EQ(sim_.now(), TimePoint{15'000});
}

TEST_F(StableStoreFixture, CrashLosesInProgressKeepsCommitted) {
  store_.begin_write(sample_record(1));
  sim_.run();
  store_.begin_write(sample_record(2));
  sim_.run_until(sim_.now() + Duration::millis(5));
  store_.crash_abort_in_progress();
  sim_.run();
  ASSERT_TRUE(store_.latest_committed().has_value());
  EXPECT_EQ(store_.latest_committed()->ndc, 1u);
}

TEST_F(StableStoreFixture, CommitNowIsSynchronous) {
  store_.begin_write(sample_record(1));
  store_.commit_now(sample_record(7));
  EXPECT_FALSE(store_.write_in_progress());
  ASSERT_TRUE(store_.latest_committed().has_value());
  EXPECT_EQ(store_.latest_committed()->ndc, 7u);
}

TEST_F(StableStoreFixture, TrailingGarbageRejectedAtRecordBoundary) {
  // A stored blob is exactly one record. Bytes appended after a CRC-clean
  // record (overlong torn read, appended garbage on untrusted storage)
  // must fail the read, not silently decode the record and ignore the
  // junk — the reader has to land exactly on the record boundary.
  store_.commit_now(sample_record(1));
  store_.commit_now(sample_record(2));
  ASSERT_TRUE(store_.pad_retained(2, 5));
  EXPECT_FALSE(store_.has_valid(2));
  EXPECT_TRUE(store_.has_valid(1));
  // Fallback behaves exactly like any other corruption: skip to the
  // newest intact record.
  ASSERT_TRUE(store_.latest_committed().has_value());
  EXPECT_EQ(store_.latest_committed()->ndc, 1u);
  EXPECT_EQ(store_.latest_valid_ndc(), 1u);
  ASSERT_TRUE(store_.best_valid_at_most(2).has_value());
  EXPECT_EQ(store_.best_valid_at_most(2)->ndc, 1u);
  EXPECT_FALSE(store_.committed_for(2).has_value());
  EXPECT_GE(store_.corrupt_reads(), 1u);
}

TEST_F(StableStoreFixture, CommittedSurvivesAsBytes) {
  // latest_committed decodes from the persisted byte blob every time:
  // mutating the returned record must not affect the store.
  store_.commit_now(sample_record(3));
  auto rec = store_.latest_committed();
  rec->ndc = 999;
  EXPECT_EQ(store_.latest_committed()->ndc, 3u);
}

TEST(StableStoreLatencyTest, PerKibLatencyScalesWithSize) {
  Simulator sim;
  StableStoreParams p;
  p.write_base_latency = Duration::zero();
  p.write_per_kib = Duration::millis(1);
  StableStore store(sim, p);
  CheckpointRecord rec = sample_record();
  rec.app_state = Bytes(4096, 0xAA);
  const Duration latency = store.write_latency_for(rec);
  EXPECT_GE(latency, Duration::millis(4));
  EXPECT_LE(latency, Duration::millis(6));
}

}  // namespace
}  // namespace synergy
