// Hardware fault injection and recovery across schemes, including the
// naive-combination hazards of Figure 4.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig hw_config(Scheme scheme, std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload.p1_internal_rate = 1.0;
  c.workload.p1_external_rate = 0.2;
  c.workload.p2_internal_rate = 1.0;
  c.workload.p2_external_rate = 0.2;
  c.workload.step_rate = 1.0;
  c.tb.interval = Duration::seconds(10);
  c.repair_latency = Duration::seconds(2);
  return c;
}

TEST(HwRecoveryTest, CrashLosesVolatileAndDetaches) {
  System system(hw_config(Scheme::kCoordinated));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.run_until(TimePoint::origin() + Duration::seconds(55));
  ASSERT_TRUE(system.node(kP2).vstore().latest().has_value() ||
              !system.p2().dirty());
  system.node(kP2).crash();
  EXPECT_TRUE(system.node(kP2).crashed());
  EXPECT_FALSE(system.p2().alive());
  EXPECT_FALSE(system.node(kP2).vstore().latest().has_value());
}

TEST(HwRecoveryTest, CoordinatedRecoveryRestoresAllProcesses) {
  System system(hw_config(Scheme::kCoordinated, 2));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(120),
                           NodeId{2});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  const auto& rec = system.hw_recoveries()[0];
  EXPECT_EQ(rec.faulty_node, NodeId{2});
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(system.node(ProcessId{i}).engine().alive());
    EXPECT_FALSE(system.node(ProcessId{i}).crashed());
    // Coordination: restored states are never potentially contaminated.
    EXPECT_FALSE(rec.restored_dirty[i]);
  }
  EXPECT_EQ(system.trace().count(TraceKind::kHwRestore), 3u);
}

TEST(HwRecoveryTest, RollbackDistanceBoundedByIntervalPlusDirtyAge) {
  System system(hw_config(Scheme::kCoordinated, 3));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(300),
                           NodeId{0});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  for (const auto d : system.hw_recoveries()[0].rollback_distance) {
    // Interval (10s) + worst-case dirty age in this workload; generous cap.
    EXPECT_LE(d, Duration::seconds(60));
    EXPECT_GE(d, Duration::zero());
  }
}

TEST(HwRecoveryTest, SystemContinuesAfterRecovery) {
  System system(hw_config(Scheme::kCoordinated, 4));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(120),
                           NodeId{1});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  // Device traffic resumed after the repair.
  bool post_recovery_output = false;
  for (const auto& e : system.device().entries) {
    if (e.at > TimePoint::origin() + Duration::seconds(130)) {
      post_recovery_output = true;
    }
  }
  EXPECT_TRUE(post_recovery_output);
  // TB checkpointing resumed on every node.
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_GT(system.node(ProcessId{i}).tb()->ndc(),
              system.hw_recoveries()[0].fault_time ==
                      TimePoint::origin() + Duration::seconds(120)
                  ? 11u
                  : 0u);
  }
}

TEST(HwRecoveryTest, RecoveryLineSatisfiesProperties) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    System system(hw_config(Scheme::kCoordinated, seed));
    system.start(TimePoint::origin() + Duration::seconds(400));
    system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(200),
                             NodeId{static_cast<std::uint32_t>(seed % 3)});
    system.run();
    ASSERT_EQ(system.hw_recoveries().size(), 1u) << "seed " << seed;
    const GlobalState line = system.stable_line_state();
    const auto consistency = check_consistency(line);
    EXPECT_TRUE(consistency.empty())
        << "seed " << seed << ": " << consistency.front().describe();
    const auto recover = check_recoverability(line);
    EXPECT_TRUE(recover.empty())
        << "seed " << seed << ": " << recover.front().describe();
  }
}

TEST(HwRecoveryTest, UnackedMessagesResent) {
  SystemConfig c = hw_config(Scheme::kCoordinated, 8);
  // Keep messages in flight at the checkpoint instants: dense traffic and
  // slow delivery make the unacked log non-empty when the line is cut.
  c.workload.p1_internal_rate = 50.0;
  c.workload.p2_internal_rate = 50.0;
  c.net.tmax = Duration::millis(100);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(300));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(150),
                           NodeId{2});
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  EXPECT_GT(system.hw_recoveries()[0].resent_messages, 0u);
  EXPECT_GE(system.trace().count(TraceKind::kResendUnacked), 1u);
}

TEST(HwRecoveryTest, WriteThroughRecoversButRollsBackFurther) {
  // Same seed/workload; validation events are rare, so the write-through
  // recovery point is much older than the coordinated one (Figure 7's
  // mechanism, deterministic single-run form).
  SystemConfig base = hw_config(Scheme::kCoordinated, 9);
  base.workload.p1_internal_rate = 0.05;
  base.workload.p1_external_rate = 0.01;   // validations every ~50s
  base.workload.p2_internal_rate = 0.05;
  base.workload.p2_external_rate = 0.01;
  base.tb.interval = Duration::seconds(10);
  const TimePoint fault = TimePoint::origin() + Duration::seconds(500);

  auto measure = [&](Scheme scheme) {
    SystemConfig c = base;
    c.scheme = scheme;
    System system(c);
    system.start(TimePoint::origin() + Duration::seconds(800));
    system.schedule_hw_fault(fault, NodeId{2});
    system.run();
    EXPECT_EQ(system.hw_recoveries().size(), 1u);
    Duration total = Duration::zero();
    for (const auto d : system.hw_recoveries()[0].rollback_distance) {
      total += d;
    }
    return total / 3;
  };

  const Duration coordinated = measure(Scheme::kCoordinated);
  const Duration write_through = measure(Scheme::kWriteThrough);
  EXPECT_LT(coordinated, write_through);
}

TEST(HwRecoveryTest, NaiveCombinationCanRestoreDirtyStates) {
  // Figure 4(a): under the naive combination the stable checkpoint carries
  // the current (possibly contaminated) state; after a hardware fault the
  // system restarts contaminated with no volatile checkpoint to fall back
  // on. Sweep seeds until the hazard materializes.
  bool hazard_seen = false;
  for (std::uint64_t seed = 1; seed <= 30 && !hazard_seen; ++seed) {
    SystemConfig c = hw_config(Scheme::kNaive, seed);
    c.workload.p1_internal_rate = 2.0;
    c.workload.p1_external_rate = 0.02;  // long dirty periods
    c.workload.p2_external_rate = 0.02;
    System system(c);
    system.start(TimePoint::origin() + Duration::seconds(400));
    system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(200),
                             NodeId{2});
    system.run();
    if (system.hw_recoveries().empty()) continue;
    // Examine the high-confidence processes (P1act is definitionally
    // "dirty" under the original protocol and is not the hazard).
    const auto& restored = system.hw_recoveries()[0].restored_dirty;
    if (restored[1] || restored[2]) hazard_seen = true;
    if (hazard_seen) {
      const auto v = check_software_recoverability(system.live_state());
      EXPECT_FALSE(v.empty());
    }
  }
  EXPECT_TRUE(hazard_seen);
}

TEST(HwRecoveryTest, CoordinatedNeverRestoresDirtyStates) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SystemConfig c = hw_config(Scheme::kCoordinated, seed);
    c.workload.p1_external_rate = 0.02;
    c.workload.p2_external_rate = 0.02;
    System system(c);
    system.start(TimePoint::origin() + Duration::seconds(400));
    system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(200),
                             NodeId{static_cast<std::uint32_t>(seed % 3)});
    system.run();
    ASSERT_EQ(system.hw_recoveries().size(), 1u);
    for (bool dirty : system.hw_recoveries()[0].restored_dirty) {
      EXPECT_FALSE(dirty) << "seed " << seed;
    }
  }
}

TEST(HwRecoveryTest, SoftwareErrorAfterHardwareRecoveryStillRecoverable) {
  // The coordination promise: a hardware rollback must not destroy the
  // ability to recover from a subsequent software error.
  System system(hw_config(Scheme::kCoordinated, 12));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(100),
                           NodeId{2});
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(300));
  system.run();
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  ASSERT_TRUE(system.sw_recovery().has_value());
  EXPECT_TRUE(system.p1sdw().active());
  // Post-recovery world is clean.
  for (const auto& p : system.live_state().processes) {
    EXPECT_FALSE(p.dirty);
    EXPECT_FALSE(p.app_tainted);
  }
}

TEST(HwRecoveryTest, FaultOnRetiredNodeIsNoOp) {
  System system(hw_config(Scheme::kCoordinated, 13));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(50));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(100),
                           NodeId{0});  // P1act's node, already retired
  system.run();
  ASSERT_TRUE(system.sw_recovery().has_value());
  EXPECT_TRUE(system.hw_recoveries().empty());
}

TEST(HwRecoveryTest, HwFaultAfterSwRecoveryUsesPostTakeoverLine) {
  System system(hw_config(Scheme::kCoordinated, 14));
  system.start(TimePoint::origin() + Duration::seconds(600));
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(50));
  system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(200),
                           NodeId{2});
  system.run();
  ASSERT_TRUE(system.sw_recovery().has_value());
  ASSERT_EQ(system.hw_recoveries().size(), 1u);
  // The restored world still has the shadow active and P1act retired:
  // the recovery line never predates the takeover.
  EXPECT_TRUE(system.p1sdw().active());
  EXPECT_TRUE(system.node(kP1Act).retired());
  EXPECT_FALSE(system.p1sdw().guarded());
}

}  // namespace
}  // namespace synergy
