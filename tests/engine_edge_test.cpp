// Engine corner cases: blocking deferral order, epoch fencing,
// per-role state serialization, gate modes, watermark filtering,
// validation-gated acknowledgments.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig quiet(Scheme scheme, std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};
  c.tb.interval = Duration::seconds(1'000'000);
  return c;
}

class EngineEdgeFixture : public ::testing::Test {
 protected:
  void build(Scheme scheme, std::uint64_t seed = 1,
             SystemConfig (*tweak)(SystemConfig) = nullptr) {
    SystemConfig c = quiet(scheme, seed);
    if (tweak) c = tweak(c);
    system_ = std::make_unique<System>(c);
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }
  void c1_send(bool external, std::uint64_t input = 1) {
    system_->p1act().on_app_send(external, input);
    system_->p1sdw().on_app_send(external, input);
  }
  void settle() {
    system_->run_until(system_->sim().now() + Duration::seconds(1));
  }
  std::unique_ptr<System> system_;
};

TEST_F(EngineEdgeFixture, BlockingDefersOperationsInArrivalOrder) {
  build(Scheme::kCoordinated);
  MdcdEngine& p2 = system_->p2();
  p2.begin_blocking();
  // Interleave sends, steps and a delivered message while blocked.
  p2.on_app_send(false, 1);
  p2.on_local_step(2);
  Message m;
  m.kind = MsgKind::kInternal;
  m.sender = kP1Act;
  m.receiver = kP2;
  m.transport_seq = 900'500;
  m.sn = 1;
  m.dirty = true;
  m.contam_sn = 1;
  p2.on_message(m);
  p2.on_app_send(false, 3);
  EXPECT_EQ(p2.deferred_ops(), 4u);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), 0u);
  EXPECT_EQ(p2.msg_sn(), 0u);  // nothing sent yet

  p2.end_blocking();
  settle();
  // All four operations ran: two sends, one step, one delivery.
  EXPECT_EQ(p2.msg_sn(), 2u);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), 1u);
}

TEST_F(EngineEdgeFixture, DeadEngineIgnoresEverything) {
  build(Scheme::kCoordinated);
  system_->p1act().kill();
  system_->p1act().on_app_send(false, 1);
  system_->p1act().on_local_step(2);
  Message m;
  m.kind = MsgKind::kInternal;
  m.sender = kP2;
  m.receiver = kP1Act;
  m.transport_seq = 900'501;
  system_->p1act().on_message(m);
  settle();
  EXPECT_EQ(system_->p1act().msg_sn(), 0u);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP1Act), 0u);
}

TEST_F(EngineEdgeFixture, EpochFenceDropsAllWhenFencedAll) {
  build(Scheme::kCoordinated);
  MdcdEngine& p2 = system_->p2();
  p2.set_epoch(3);
  p2.fence_all_below(3);
  Message clean;
  clean.kind = MsgKind::kInternal;
  clean.sender = kP1Sdw;
  clean.receiver = kP2;
  clean.transport_seq = 900'502;
  clean.epoch = 2;  // stale incarnation
  p2.on_message(clean);
  EXPECT_EQ(system_->trace().count(TraceKind::kStaleDrop, kP2), 1u);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), 0u);

  clean.transport_seq = 900'503;
  clean.epoch = 3;  // current incarnation passes
  p2.on_message(clean);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), 1u);
}

TEST_F(EngineEdgeFixture, DirtyFenceDropsOnlyDirtyMessages) {
  build(Scheme::kCoordinated);
  MdcdEngine& p2 = system_->p2();
  p2.set_epoch(2);
  p2.fence_dirty_below(2);

  Message stale_clean;
  stale_clean.kind = MsgKind::kInternal;
  stale_clean.sender = kP1Sdw;
  stale_clean.receiver = kP2;
  stale_clean.transport_seq = 900'504;
  stale_clean.epoch = 1;
  p2.on_message(stale_clean);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), 1u);

  Message stale_dirty = stale_clean;
  stale_dirty.transport_seq = 900'505;
  stale_dirty.dirty = true;
  stale_dirty.contam_sn = 99;
  p2.on_message(stale_dirty);
  EXPECT_EQ(system_->trace().count(TraceKind::kStaleDrop, kP2), 1u);
}

TEST_F(EngineEdgeFixture, WatermarkFiltersStaleDirtyFlags) {
  build(Scheme::kCoordinated);
  // Validate P1act's messages up to sn 5 first.
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 900'506;
  note.sn = 5;
  system_->p2().on_message(note);

  // A dirty message whose contamination is covered: the raw flag still
  // contaminates (anchor alignment with the sender's copy contents), but
  // the validity VIEW records it as already valid.
  Message covered;
  covered.kind = MsgKind::kInternal;
  covered.sender = kP1Act;
  covered.receiver = kP2;
  covered.transport_seq = 900'507;
  covered.sn = 4;
  covered.dirty = true;
  covered.contam_sn = 4;
  system_->p2().on_message(covered);
  EXPECT_TRUE(system_->p2().dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kStaleDirtyIgnored, kP2), 1u);
  ASSERT_FALSE(system_->p2().recv_views().entries().empty());
  EXPECT_FALSE(system_->p2().recv_views().entries().back().suspect);

  // The false-alarm dirt is covered, so the next validation event clears
  // it (validation_covers_dirt holds trivially).
  Message note2 = covered;
  note2.kind = MsgKind::kPassedAt;
  note2.transport_seq = 900'508;
  note2.sn = 5;
  note2.dirty = false;
  system_->p2().on_message(note2);
  EXPECT_FALSE(system_->p2().dirty());

  // An uncovered dirty message contaminates and records a suspect view.
  Message fresh = covered;
  fresh.transport_seq = 900'509;
  fresh.sn = 6;
  fresh.contam_sn = 6;
  system_->p2().on_message(fresh);
  EXPECT_TRUE(system_->p2().dirty());
  EXPECT_TRUE(system_->p2().recv_views().entries().back().suspect);
}

TEST_F(EngineEdgeFixture, PartialValidationDoesNotClearDirt) {
  build(Scheme::kCoordinated);
  c1_send(false);  // sn 1
  c1_send(false);  // sn 2
  settle();
  ASSERT_TRUE(system_->p2().dirty());
  // A validation covering only sn 1 leaves sn 2's contamination in place.
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 900'509;
  note.sn = 1;
  system_->p2().on_message(note);
  EXPECT_TRUE(system_->p2().dirty());
  // Covering both clears.
  note.transport_seq = 900'510;
  note.sn = 2;
  system_->p2().on_message(note);
  EXPECT_FALSE(system_->p2().dirty());
}

TEST_F(EngineEdgeFixture, ValidationGatedAcksDeferWhileDirty) {
  build(Scheme::kCoordinated);
  c1_send(false);  // contaminates P2
  settle();
  ASSERT_TRUE(system_->p2().dirty());
  // P1act's internal message is consumed but NOT acked: still unacked.
  EXPECT_EQ(system_->node(kP1Act).endpoint().unacked_count(), 1u);

  // The validation clears P2's dirt and flushes the deferred ack.
  system_->p2().on_app_send(true, 9);  // AT pass
  settle();
  EXPECT_EQ(system_->node(kP1Act).endpoint().unacked_count(), 0u);
}

TEST_F(EngineEdgeFixture, PaperTrackingAcksImmediately) {
  build(Scheme::kCoordinated, 1, [](SystemConfig c) {
    c.tracking = ContaminationTracking::kPaperDirtyBit;
    return c;
  });
  c1_send(false);
  settle();
  ASSERT_TRUE(system_->p2().dirty());
  EXPECT_EQ(system_->node(kP1Act).endpoint().unacked_count(), 0u);
}

TEST_F(EngineEdgeFixture, RoleStateSerializationRoundTripsP1Sdw) {
  build(Scheme::kCoordinated);
  c1_send(false);
  c1_send(false);
  settle();
  P1SdwEngine& sdw = *system_->node(kP1Sdw).p1sdw();
  ASSERT_EQ(sdw.suppressed_log().size(), 2u);
  const Bytes snap = sdw.snapshot_protocol_state();

  c1_send(false);
  EXPECT_EQ(sdw.suppressed_log().size(), 3u);
  sdw.restore_protocol_state(snap);
  EXPECT_EQ(sdw.suppressed_log().size(), 2u);
  EXPECT_EQ(sdw.suppressed_log()[1].sn, 2u);
  EXPECT_FALSE(sdw.active());
}

TEST_F(EngineEdgeFixture, RoleStateSerializationRoundTripsP1Act) {
  build(Scheme::kCoordinated);
  c1_send(false);
  ASSERT_TRUE(system_->p1act().pseudo_dirty());
  const Bytes snap = system_->p1act().snapshot_protocol_state();
  c1_send(true);  // clears pseudo
  EXPECT_FALSE(system_->p1act().pseudo_dirty());
  system_->p1act().restore_protocol_state(snap);
  EXPECT_TRUE(system_->p1act().pseudo_dirty());
}

TEST_F(EngineEdgeFixture, BlockingAwareGateAcceptsPredecessorLineOnlyWhenDirtyBlocking) {
  build(Scheme::kCoordinated);
  MdcdEngine& p2 = system_->p2();
  // Make P2 dirty, then simulate an in-progress establishment by starting
  // a blocking period (the gate keys on blocking + contamination).
  c1_send(false);
  settle();
  ASSERT_TRUE(p2.dirty());

  // Not blocking: only the equal Ndc is accepted (both are 0 here).
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 900'520;
  note.sn = system_->node(kP2).p2()->p1act_sn_seen();
  note.ndc = 7;  // mismatched
  p2.on_message(note);
  EXPECT_TRUE(p2.dirty());
  EXPECT_EQ(system_->trace().count(TraceKind::kNdcGateReject, kP2), 1u);
}

TEST_F(EngineEdgeFixture, ContaminationFlagOfP1ActCoversReceivedDirt) {
  build(Scheme::kCoordinated);
  c1_send(false);  // sn 1: pseudo set
  c1_send(true);   // sn 2: AT pass clears pseudo
  ASSERT_FALSE(system_->p1act().pseudo_dirty());
  const auto ckpts_before =
      system_->trace().count(TraceKind::kCkptVolatile, kP1Act);

  // A dirty message from P2 carrying *uncovered* contamination: P1act
  // absorbs received dirt even though its pseudo bit is clear.
  Message m;
  m.kind = MsgKind::kInternal;
  m.sender = kP2;
  m.receiver = kP1Act;
  m.transport_seq = 900'530;
  m.sn = 1;
  m.dirty = true;
  m.contam_sn = 7;  // beyond P1act's validated watermark (2)
  system_->p1act().on_message(m);

  EXPECT_FALSE(system_->p1act().pseudo_dirty());
  EXPECT_TRUE(system_->p1act().recv_dirty());
  EXPECT_TRUE(system_->p1act().contamination_flag());
  // A Type-1 checkpoint anchored the received contamination.
  EXPECT_EQ(system_->trace().count(TraceKind::kCkptVolatile, kP1Act),
            ckpts_before + 1);
}

}  // namespace
}  // namespace synergy
