// Scripted scenarios reproducing the paper's illustrative figures as
// machine-checked event sequences (Figures 1, 3; Figure 2 and 4 hazards
// are exercised in tb/hw tests and the benches).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "trace/timeline.hpp"

namespace synergy {
namespace {

SystemConfig scenario_config(Scheme scheme) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = 100;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};
  c.tb.interval = Duration::seconds(1'000);
  return c;
}

/// The Figure 1 / Figure 3 message script:
///   m1: P1act -> P2 (internal)      ... B_k at P2 (Type-1)
///   m2: P2 -> component 1 (internal)
///   m3: P1act -> P2 (internal)
///   M1: P2 external, AT passes      ... validations broadcast
///   m4: P2 -> component 1 (internal)
///   m5: P1act -> P2 (internal)      ... B_{k+2} at P2
///   M2: P1act external, AT passes
struct FigureScript {
  System& system;

  void c1_send(bool external, std::uint64_t input) {
    system.p1act().on_app_send(external, input);
    system.p1sdw().on_app_send(external, input);
  }
  void settle() {
    system.run_until(system.sim().now() + Duration::seconds(1));
  }
  void run() {
    c1_send(false, 1);  // m1
    settle();
    system.p2().on_app_send(false, 2);  // m2
    settle();
    c1_send(false, 3);  // m3
    settle();
    system.p2().on_app_send(true, 4);  // M1 (AT)
    settle();
    system.p2().on_app_send(false, 5);  // m4
    settle();
    c1_send(false, 6);  // m5
    settle();
    c1_send(true, 7);  // M2 (AT at P1act)
    settle();
  }
};

TEST(ScenarioFig1Test, OriginalMdcdCheckpointPlacement) {
  System system(scenario_config(Scheme::kNaive));  // original MDCD
  system.start(TimePoint::origin() + Duration::seconds(10'000));
  FigureScript{system}.run();

  const auto ckpts = system.trace().of_kind(TraceKind::kCkptVolatile);
  // P2: Type-1 at m1, Type-2 at M1's AT pass, Type-1 at m5, Type-2 at M2's
  // notification.
  std::vector<std::string> p2_kinds;
  for (const auto& e : ckpts) {
    if (e.process == kP2) p2_kinds.push_back(e.detail);
  }
  EXPECT_EQ(p2_kinds,
            (std::vector<std::string>{"type1", "type2", "type1", "type2"}));

  // P1act exempt from checkpointing under the original protocol.
  EXPECT_EQ(system.trace().count(TraceKind::kCkptVolatile, kP1Act), 0u);

  // P1sdw: contaminated via m4 (dirty multicast from... m4 was sent while
  // P2 was clean, post-AT) — in this script P1sdw becomes dirty via m2
  // (P2 dirty after m1), then validates at M1 (Type-2).
  EXPECT_GE(system.trace().count(TraceKind::kCkptVolatile, kP1Sdw), 2u);
}

TEST(ScenarioFig3Test, ModifiedMdcdEliminatesType2AndAddsPseudo) {
  System system(scenario_config(Scheme::kCoordinated));
  system.start(TimePoint::origin() + Duration::seconds(10'000));
  FigureScript{system}.run();

  const auto ckpts = system.trace().of_kind(TraceKind::kCkptVolatile);
  std::size_t pseudo = 0, type1 = 0, type2 = 0;
  for (const auto& e : ckpts) {
    if (e.detail == "pseudo") ++pseudo;
    if (e.detail == "type1") ++type1;
    if (e.detail == "type2") ++type2;
  }
  // Pseudo checkpoints: C_i before m1 (first internal send after start)
  // and C_{i+1} before m5 (first after M1's validation).
  EXPECT_EQ(pseudo, 2u);
  EXPECT_EQ(type2, 0u);  // eliminated by the modified protocol
  EXPECT_GE(type1, 2u);  // B_k, B_{k+2} at P2 (plus P1sdw's)

  // Pseudo dirty bit transitions: set at m1 and m5, cleared at M1 and M2.
  EXPECT_EQ(system.trace().count(TraceKind::kPseudoDirtySet, kP1Act), 2u);
  EXPECT_EQ(system.trace().count(TraceKind::kPseudoDirtyClear, kP1Act), 2u);
}

TEST(ScenarioFig3Test, TimelineRendersTheFigure) {
  System system(scenario_config(Scheme::kCoordinated));
  system.start(TimePoint::origin() + Duration::seconds(10'000));
  FigureScript{system}.run();
  const std::string timeline =
      render_timeline(system.trace(), {kP1Act, kP1Sdw, kP2});
  // Lane markers present: pseudo ckpt (P), type-1 (1), AT pass (A).
  EXPECT_NE(timeline.find('P'), std::string::npos);
  EXPECT_NE(timeline.find('1'), std::string::npos);
  EXPECT_NE(timeline.find('A'), std::string::npos);
  EXPECT_NE(timeline.find("P1act"), std::string::npos);
}

TEST(ScenarioDirtyBitPiggybackTest, CleanP2MessagesDoNotContaminate) {
  System system(scenario_config(Scheme::kCoordinated));
  system.start(TimePoint::origin() + Duration::seconds(10'000));
  // P2 clean: its internal multicast must not dirty component 1.
  system.p2().on_app_send(false, 1);
  system.run_until(system.sim().now() + Duration::seconds(1));
  EXPECT_FALSE(system.p1sdw().dirty());
  EXPECT_EQ(system.trace().count(TraceKind::kCkptVolatile, kP1Sdw), 0u);
}

TEST(ScenarioValidityViewsTest, ViewsUpgradeOnValidation) {
  System system(scenario_config(Scheme::kCoordinated));
  system.start(TimePoint::origin() + Duration::seconds(10'000));
  FigureScript script{system};
  script.c1_send(false, 1);
  script.settle();
  // P2's receipt of m1 is suspect.
  ASSERT_EQ(system.p2().recv_views().size(), 1u);
  EXPECT_TRUE(system.p2().recv_views().entries()[0].suspect);
  // After P2's own AT pass, the view upgrades.
  system.p2().on_app_send(true, 2);
  EXPECT_FALSE(system.p2().recv_views().entries()[0].suspect);
  script.settle();
  // And P1act's sent view upgrades on the notification.
  ASSERT_GE(system.p1act().sent_views().size(), 1u);
  EXPECT_FALSE(system.p1act().sent_views().entries()[0].suspect);
}

}  // namespace
}  // namespace synergy
