#include <gtest/gtest.h>

#include "analysis/model.hpp"

namespace synergy {
namespace {

RollbackModelParams params(double ld, double lv, double delta_s = 60) {
  RollbackModelParams p;
  p.lambda_dirty = ld;
  p.lambda_valid = lv;
  p.interval = Duration::from_seconds(delta_s);
  return p;
}

TEST(RollbackModelTest, DirtyFractionLimits) {
  EXPECT_NEAR(dirty_fraction(params(1e-3, 1e-3)), 0.5, 1e-12);
  EXPECT_LT(dirty_fraction(params(1e-6, 1.0)), 1e-5);
  EXPECT_GT(dirty_fraction(params(1.0, 1e-6)), 0.999);
}

TEST(RollbackModelTest, CoordinatedApproachesHalfIntervalWhenCleanDominates) {
  // Contamination rare, validations fast: E[Dco] -> Delta/2.
  const double dco = expected_rollback_coordinated(params(1e-6, 1.0, 60));
  EXPECT_NEAR(dco, 30.0, 0.1);
}

TEST(RollbackModelTest, CoordinatedGrowsWithDirtyAge) {
  const double fast = expected_rollback_coordinated(params(1e-3, 1.0));
  const double slow = expected_rollback_coordinated(params(1e-3, 1e-2));
  EXPECT_GT(slow, fast);
}

TEST(RollbackModelTest, WriteThroughTracksRenewalAge) {
  // Contamination rare relative to validations: age ~ 1/lambda_dirty.
  const double dwt = expected_rollback_write_through(params(1e-3, 1e-1));
  EXPECT_NEAR(dwt, 1000.0, 20.0);
}

TEST(RollbackModelTest, WriteThroughEqualRatesClosedForm) {
  // ld = lv = L: E[X^2]/(2 E[X]) with X = sum of two Exp(L) = 1.5/L.
  const double dwt = expected_rollback_write_through(params(0.01, 0.01));
  EXPECT_NEAR(dwt, 150.0, 1e-6);
}

TEST(RollbackModelTest, CoordinationWinsInThePaperRegime) {
  for (double rate = 60; rate <= 200; rate += 20) {
    const auto p = params(rate / 100'000.0, 0.05, 60);
    EXPECT_GT(expected_rollback_write_through(p),
              5 * expected_rollback_coordinated(p))
        << "rate " << rate;
  }
}

TEST(RollbackModelTest, MonotoneInInternalRate) {
  // E[Dwt] declines as contamination (and with it validation episodes)
  // become more frequent.
  double prev = 1e18;
  for (double rate = 60; rate <= 200; rate += 20) {
    const double dwt =
        expected_rollback_write_through(params(rate / 100'000.0, 0.05));
    EXPECT_LT(dwt, prev);
    prev = dwt;
  }
}

}  // namespace
}  // namespace synergy
