// ABFT computed-coverage workload: the checksum-encoded block state, the
// computed AT verdict, and the campaign-level assumed-vs-computed coverage
// divergence. The load-bearing claims:
//
//  - every legitimate update (messages, local steps) maintains the row and
//    column checksums, so a clean state always passes the self-check;
//  - a raw bit flip breaks a row+column pair and is caught;
//  - a checksum-consistent wrong value (design fault, or taint arriving
//    through a correctly-applied message) passes — the encoding's honest
//    blind spot, which is what makes coverage a *measured* output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "app/acceptance_test.hpp"
#include "app/state.hpp"
#include "core/campaign.hpp"

namespace synergy {
namespace {

TEST(WorkloadKindTest, ToStringFromStringRoundTripsExhaustively) {
  for (WorkloadKind k : kAllWorkloadKinds) {
    const auto back = workload_kind_from_string(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(workload_kind_from_string("bogus").has_value());
  EXPECT_FALSE(workload_kind_from_string("").has_value());
  EXPECT_FALSE(workload_kind_from_string("Registers").has_value());
}

TEST(AbftStateTest, FreshStateIsEncodedConsistently) {
  ApplicationState s(42, WorkloadKind::kAbft);
  EXPECT_EQ(s.mode(), WorkloadKind::kAbft);
  EXPECT_TRUE(s.abft_check_ok());
  EXPECT_FALSE(s.tainted());
}

TEST(AbftStateTest, LegitimateUpdatesMaintainTheEncoding) {
  ApplicationState s(7, WorkloadKind::kAbft);
  for (std::uint64_t i = 0; i < 200; ++i) {
    s.apply_message(i * 0x9e3779b9u, /*payload_tainted=*/false);
    s.local_step(i);
    ASSERT_TRUE(s.abft_check_ok()) << "update " << i;
  }
  EXPECT_FALSE(s.tainted());
}

TEST(AbftStateTest, RawBitFlipBreaksTheEncoding) {
  // Sweep noise words that land on every encoded word class: block cells,
  // row sums, and column sums are all protected.
  for (std::uint64_t word = 0; word < 24; ++word) {
    ApplicationState s(word + 1, WorkloadKind::kAbft);
    const std::uint64_t noise = (word << 6) | (word % 64);
    s.flip_bit(noise);
    EXPECT_FALSE(s.abft_check_ok()) << "word " << word;
    EXPECT_TRUE(s.tainted());
  }
}

TEST(AbftStateTest, ChecksumConsistentCorruptionIsTheBlindSpot) {
  ApplicationState s(3, WorkloadKind::kAbft);
  s.corrupt(0xdeadbeefcafe1234u);
  EXPECT_TRUE(s.tainted());
  // The design fault applied a *wrong* value through the legitimate update
  // path, so the encoding still validates: ABFT cannot see it.
  EXPECT_TRUE(s.abft_check_ok());
}

TEST(AbftStateTest, TaintedMessagePropagatesTaintButKeepsEncoding) {
  ApplicationState s(5, WorkloadKind::kAbft);
  s.apply_message(99, /*payload_tainted=*/true);
  EXPECT_TRUE(s.tainted());
  EXPECT_TRUE(s.abft_check_ok());
}

TEST(AbftStateTest, SnapshotRestoreRoundTripsBlockState) {
  ApplicationState s(11, WorkloadKind::kAbft);
  for (std::uint64_t i = 0; i < 50; ++i) s.local_step(i);
  const Bytes snap = s.snapshot();

  ApplicationState t(0, WorkloadKind::kAbft);
  t.restore(snap);
  EXPECT_TRUE(t.equals(s));
  EXPECT_TRUE(t.abft_check_ok());

  // A flip after the snapshot must not leak into the restored copy.
  s.flip_bit(123);
  EXPECT_FALSE(s.equals(t));
  EXPECT_TRUE(t.abft_check_ok());
}

TEST(AbftStateTest, RegistersSnapshotLayoutIsUnchanged) {
  // The registers-mode encoding predates the ABFT variant; its byte layout
  // is pinned so pre-mobile replay seeds keep reproducing bit-for-bit.
  ApplicationState s(1);
  EXPECT_EQ(s.snapshot().size(), 8u * 8u + 8u + 1u);
  ApplicationState a(1, WorkloadKind::kAbft);
  EXPECT_EQ(a.snapshot().size(), (16u + 8u) * 8u + 8u + 1u);
}

TEST(AbftStateTest, OutputDependsOnBlockContent) {
  ApplicationState a(1, WorkloadKind::kAbft);
  ApplicationState b(1, WorkloadKind::kAbft);
  EXPECT_EQ(a.output(), b.output());
  a.local_step(77);
  EXPECT_NE(a.output(), b.output());
}

TEST(AcceptanceTestCheckerTest, CheckerOverridesProbabilisticVerdict) {
  // coverage=0 would never fail probabilistically; the checker must decide.
  AcceptanceTest at(AtParams{0.0, 0.0}, Rng(1));
  bool verdict = false;
  at.set_checker([&] { return verdict; });

  // Tainted state, checker fails the test: a real (computed) detection.
  EXPECT_FALSE(at.run(/*message_tainted=*/true));
  EXPECT_EQ(at.failures(), 1u);
  EXPECT_EQ(at.missed_detections(), 0u);

  // Tainted state, checker passes: a measured missed detection.
  verdict = true;
  EXPECT_TRUE(at.run(/*message_tainted=*/true));
  EXPECT_EQ(at.missed_detections(), 1u);

  // Clean state, checker fails: a measured false alarm.
  verdict = false;
  EXPECT_FALSE(at.run(/*message_tainted=*/false));
  EXPECT_EQ(at.false_alarms(), 1u);

  // Clean state, checker passes: nothing counted.
  verdict = true;
  EXPECT_TRUE(at.run(/*message_tainted=*/false));
  EXPECT_EQ(at.passes(), 2u);
  EXPECT_EQ(at.failures(), 2u);
  EXPECT_EQ(at.missed_detections(), 1u);
  EXPECT_EQ(at.false_alarms(), 1u);
}

CampaignConfig abft_campaign() {
  CampaignConfig config;
  config.seed = 1;
  config.reps = 10;
  config.mission = Duration::seconds(120);
  config.base.workload.kind = WorkloadKind::kAbft;
  return config;
}

TEST(AbftCampaignTest, DesignFaultTaintDivergesComputedCoverageToZero) {
  // Default chaos adversity taints state only through checksum-consistent
  // paths (design-fault corrupt(), propagated taint), so the computed
  // coverage collapses to zero while the assumed input coverage is 1.0 —
  // the divergence the ABFT family exists to measure.
  const CampaignConfig config = abft_campaign();
  const CampaignResult result = run_campaign(config, nullptr);

  std::uint64_t exposures = 0, detected = 0, missed = 0, false_alarms = 0;
  for (const MissionReport& r : result.missions) {
    EXPECT_TRUE(r.ok) << "seed " << r.seed;
    exposures += r.at_exposures;
    detected += r.at_detected;
    missed += r.at_missed;
    false_alarms += r.at_false_alarms;
  }
  ASSERT_GT(exposures, 0u);
  EXPECT_EQ(detected, 0u);
  EXPECT_EQ(missed, exposures);
  // Valid encodings never fail the computed check.
  EXPECT_EQ(false_alarms, 0u);
  const double computed =
      static_cast<double>(detected) / static_cast<double>(exposures);
  EXPECT_LT(computed, config.base.at.coverage);
}

TEST(AbftCampaignTest, RawFlipsAreComputedDetections) {
  // Arm the COAST state-flip stream on the single-lane scheme: flips land
  // raw on the live block, and the computed verdict catches them (unlike
  // the registers workload, where detection is an assumed-coverage draw).
  // Individual missions may fail — unprotected flips are the no-redundancy
  // baseline — but the coverage tallies are the measurement.
  CampaignConfig config = abft_campaign();
  config.rates.timed.lane_flip_mean_gap = Duration::seconds(40);
  const CampaignResult result = run_campaign(config, nullptr);

  std::uint64_t detected = 0, scrubs = 0;
  for (const MissionReport& r : result.missions) {
    detected += r.at_detected;
    scrubs += r.monitor.abft_scrub_detections;
  }
  EXPECT_GT(detected, 0u);
  // The monitor's between-AT scrub notices damaged encodings too.
  EXPECT_GT(scrubs, 0u);
}

TEST(AbftCampaignTest, JobsFourMatchesJobsOneFieldForField) {
  CampaignConfig seq_config = abft_campaign();
  seq_config.rates.timed.lane_flip_mean_gap = Duration::seconds(60);
  seq_config.verbose = true;
  CampaignConfig par_config = seq_config;
  seq_config.jobs = 1;
  par_config.jobs = 4;

  std::ostringstream seq_out, par_out;
  const CampaignResult seq = run_campaign(seq_config, &seq_out);
  const CampaignResult par = run_campaign(par_config, &par_out);
  ASSERT_EQ(seq.missions.size(), par.missions.size());
  for (std::size_t i = 0; i < seq.missions.size(); ++i) {
    EXPECT_TRUE(seq.missions[i] == par.missions[i]) << "mission " << i;
  }

  // The verbose mission lines carry the coverage tallies; they must be
  // byte-identical too (everything but the trailing timing: line).
  std::string seq_text = seq_out.str(), par_text = par_out.str();
  seq_text.resize(seq_text.rfind("timing:"));
  par_text.resize(par_text.rfind("timing:"));
  EXPECT_EQ(seq_text, par_text);
}

TEST(AbftCampaignTest, ReportEqualityCoversCoverageTallies) {
  MissionReport a, b;
  EXPECT_TRUE(a == b);
  b.at_missed = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.monitor.abft_scrub_detections = 2;
  EXPECT_FALSE(a == b);
  b = a;
  b.monitor.disconnect_deferrals = 3;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace synergy
