// Anchor-ring behaviour of the generalized engine (DESIGN.md §7, finding
// 6): prefix validations promote intermediate anchors, promotion
// normalizes frozen view flags, and fail-over knowledge survives
// rollbacks.
#include <gtest/gtest.h>

#include "general/system.hpp"

namespace synergy {
namespace {

Topology quiet(Topology t) {
  std::vector<ComponentSpec> specs = t.components();
  for (auto& s : specs) {
    s.internal_rate = 0.0;
    s.external_rate = 0.0;
  }
  return Topology(std::move(specs));
}

class AnchorFixture : public ::testing::Test {
 protected:
  void build(Topology t, std::uint64_t seed = 1) {
    GeneralConfig c;
    c.seed = seed;
    c.tb.interval = Duration::seconds(1'000'000);
    system_ = std::make_unique<GeneralSystem>(quiet(std::move(t)), c);
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }
  void component_send(std::uint32_t c, bool external,
                      std::uint64_t input = 1) {
    system_->engine(system_->topology().active_of(c))
        .on_app_send(external, input);
    if (system_->topology().has_shadow(c)) {
      system_->engine(system_->topology().shadow_of(c))
          .on_app_send(external, input);
    }
  }
  void settle() {
    system_->run_until(system_->sim().now() + Duration::seconds(1));
  }
  std::unique_ptr<GeneralSystem> system_;
};

TEST_F(AnchorFixture, PrefixValidationPromotesIntermediateAnchor) {
  build(Topology::dual_guarded());
  // S absorbs A's contamination, then B's.
  component_send(0, false);  // A -> S  (anchor candidate before {A:1})
  settle();
  const TimePoint after_a = system_->sim().now();
  settle();
  component_send(1, false);  // B -> S  (candidate before {A:1,B:1})
  settle();
  GeneralEngine& shared = system_->engine(ProcessId{2});
  ASSERT_TRUE(shared.dirty());

  // A validates: S's dirt w.r.t. A is covered, B's is not — the promoted
  // anchor must be the state just before absorbing B (which already
  // reflects consuming A's message).
  component_send(0, true);
  settle();
  ASSERT_TRUE(shared.dirty());  // B still uncovered
  const auto& anchor = shared.latest_volatile();
  ASSERT_TRUE(anchor.has_value());
  EXPECT_GT(anchor->state_time, after_a)
      << "anchor should have advanced past A's absorption";
  // The promoted anchor is a clean state (its dependencies are covered).
  EXPECT_FALSE(anchor->dirty_bit);
  const ProcessFacts facts = general_facts_from_record(*anchor);
  EXPECT_FALSE(facts.dirty);
  // ... and it reflects the receipt of A's message with a VALID view
  // (normalization upgraded the frozen suspect flag).
  bool found = false;
  for (const auto& v : facts.recv.entries()) {
    if (v.peer == ProcessId{0}) {
      found = true;
      EXPECT_FALSE(v.suspect);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnchorFixture, FullValidationClearsEverything) {
  build(Topology::dual_guarded());
  component_send(0, false);
  component_send(1, false);
  settle();
  component_send(0, true);
  component_send(1, true);
  settle();
  GeneralEngine& shared = system_->engine(ProcessId{2});
  EXPECT_FALSE(shared.dirty());
  EXPECT_TRUE(shared.absorbed().empty());
}

TEST_F(AnchorFixture, ActiveAnchorsBeforeEverySend) {
  build(Topology::canonical());
  GeneralEngine& active = system_->engine(ProcessId{0});
  component_send(0, false);  // sn 1
  component_send(0, false);  // sn 2
  settle();
  // A validation covering only sn 1 promotes the anchor captured before
  // send 2 — possible only because every send captured a candidate.
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = ProcessId{1};
  note.receiver = ProcessId{0};
  note.transport_seq = 990'001;
  {
    ByteWriter w;
    contam_serialize(ContamVector{{0, 1}}, w);
    note.aux = w.take();
  }
  active.on_message(note);
  ASSERT_TRUE(active.pseudo_dirty());  // sn 2 uncovered
  const auto& anchor = active.latest_volatile();
  ASSERT_TRUE(anchor.has_value());
  const ProcessFacts facts = general_facts_from_record(*anchor);
  // The anchor reflects send 1 (valid after normalization), not send 2.
  std::size_t sends_to_peer = 0;
  for (const auto& v : facts.sent.entries()) {
    if (v.kind == MsgKind::kInternal && v.peer == ProcessId{1}) {
      ++sends_to_peer;
      EXPECT_FALSE(v.suspect);
    }
  }
  EXPECT_EQ(sends_to_peer, 1u);
}

TEST_F(AnchorFixture, FailOverKnowledgeStopsTrafficToRetiredActives) {
  build(Topology::canonical());
  component_send(0, false);
  settle();
  system_->schedule_sw_error(system_->sim().now() + Duration::seconds(1), 0);
  settle();
  ASSERT_TRUE(system_->sw_recovery().has_value());
  // The high component now multicasts only to the shadow-turned-active.
  const auto sent_before =
      system_->engine(ProcessId{1}).sent_views().size();
  system_->engine(ProcessId{1}).on_app_send(false, 9);
  settle();
  const auto& views = system_->engine(ProcessId{1}).sent_views();
  ASSERT_GT(views.size(), sent_before);
  for (std::size_t i = sent_before; i < views.size(); ++i) {
    EXPECT_NE(views[i].peer, ProcessId{0}) << "sent to a retired active";
  }
  // The new active consumed it.
  EXPECT_GT(system_->engine(ProcessId{2}).recv_views().size(), 0u);
}

TEST_F(AnchorFixture, AnchorRingBoundedUnderSustainedContamination) {
  build(Topology::canonical());
  // 200 dirty messages with no validation: the candidate ring must stay
  // bounded and the promoted anchor remain the pre-contamination state.
  for (int i = 0; i < 200; ++i) component_send(0, false, i);
  settle();
  GeneralEngine& high = system_->engine(ProcessId{1});
  ASSERT_TRUE(high.dirty());
  const auto& anchor = high.latest_volatile();
  ASSERT_TRUE(anchor.has_value());
  const ProcessFacts facts = general_facts_from_record(*anchor);
  EXPECT_TRUE(facts.recv.entries().empty())
      << "promoted anchor must predate all uncovered contamination";
}

}  // namespace
}  // namespace synergy
