// Version-stamped snapshot caching: every mutating entry point must bump
// the source's version, so a cached encoded blob handed to a checkpoint
// record is never stale. The central oracle: after ANY driven event
// sequence, the cached blob must equal a fresh encode — a mismatch means a
// mutation path forgot its version bump (a stale checkpoint bug, paper-
// level incorrect recovery content). Cache-hit behaviour is asserted via
// SharedBytes::shares_buffer_with, not timing.
#include <gtest/gtest.h>

#include "app/state.hpp"
#include "core/system.hpp"
#include "net/transport_core.hpp"

namespace synergy {
namespace {

TEST(AppSnapshotCacheTest, RepeatedSnapshotsShareOneBuffer) {
  ApplicationState app(1);
  const SharedBytes first = app.snapshot_shared();
  const SharedBytes second = app.snapshot_shared();
  EXPECT_TRUE(first.shares_buffer_with(second));
  EXPECT_EQ(first, app.snapshot());
  EXPECT_EQ(app.snapshot_cache_misses(), 1u);
  EXPECT_EQ(app.snapshot_cache_hits(), 1u);
}

TEST(AppSnapshotCacheTest, EveryMutatorInvalidates) {
  ApplicationState app(1);
  const auto expect_fresh = [&app](const char* what) {
    const std::uint64_t before = app.version();
    const SharedBytes cached = app.snapshot_shared();
    EXPECT_EQ(cached, app.snapshot()) << "stale cache after " << what;
    EXPECT_EQ(app.version(), before) << "snapshot must not mutate";
  };
  expect_fresh("construction");

  const SharedBytes before = app.snapshot_shared();
  app.apply_message(42, /*payload_tainted=*/false);
  EXPECT_FALSE(app.snapshot_shared().shares_buffer_with(before));
  expect_fresh("apply_message");

  app.local_step(7);
  expect_fresh("local_step");

  app.corrupt(99);
  expect_fresh("corrupt");

  const Bytes clean = app.snapshot();
  app.corrupt(123);
  app.restore(clean);
  expect_fresh("restore");
  EXPECT_EQ(app.snapshot(), clean);
}

TEST(TransportCoreSnapshotCacheTest, EveryMutatorInvalidates) {
  TransportCore core(kP1Act);
  const auto expect_fresh = [&core](const char* what) {
    EXPECT_EQ(core.snapshot_state_shared(), core.snapshot_state())
        << "stale cache after " << what;
  };
  expect_fresh("construction");

  Message m;
  m.kind = MsgKind::kInternal;
  m.receiver = kP2;
  const Message stamped = core.prepare_send(m);
  expect_fresh("prepare_send");  // send counter is snapshotted state

  Message recv = stamped;
  recv.sender = kP2;
  core.mark_consumed(recv);
  expect_fresh("mark_consumed");

  const Bytes state = core.snapshot_state();
  core.mark_consumed([&] {
    Message other = recv;
    other.transport_seq = 999;
    return other;
  }());
  core.restore_state(state);
  expect_fresh("restore_state");

  const Message log[] = {stamped};
  core.restore_unacked(log);
  expect_fresh("restore_unacked");
}

TEST(TransportCoreSnapshotCacheTest, UnchangedStateHitsCache) {
  TransportCore core(kP1Act);
  const SharedBytes a = core.snapshot_state_shared();
  const SharedBytes b = core.snapshot_state_shared();
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_EQ(core.snapshot_cache_hits(), 1u);
  EXPECT_EQ(core.snapshot_cache_misses(), 1u);
}

// ---- Engine-level: records built from cached blobs are never stale ---------

SystemConfig quiet_config(std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = Scheme::kCoordinated;
  c.seed = seed;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};  // manual driving only
  c.tb.interval = Duration::seconds(1'000'000);  // keep TB out of the way
  return c;
}

class SnapshotCacheFixture : public ::testing::Test {
 protected:
  void build() {
    system_ = std::make_unique<System>(quiet_config());
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }

  void c1_send(bool external, std::uint64_t input = 1) {
    system_->p1act().on_app_send(external, input);
    system_->p1sdw().on_app_send(external, input);
  }

  void settle() {
    system_->sim().run_until(system_->sim().now() + Duration::seconds(1));
  }

  /// The stale-hit oracle: a record built from the caches must match
  /// fresh encodes of all three snapshot sources.
  void expect_records_fresh(const char* what) {
    for (ProcessId p : {kP1Act, kP1Sdw, kP2}) {
      ProcessNode& n = system_->node(p);
      const CheckpointRecord rec = n.engine().make_record(CkptKind::kStable);
      EXPECT_EQ(rec.app_state, n.app().snapshot())
          << "stale app blob for P" << p.value() << " after " << what;
      EXPECT_EQ(rec.protocol_state, n.engine().snapshot_protocol_state())
          << "stale protocol blob for P" << p.value() << " after " << what;
      EXPECT_EQ(rec.transport_state, n.endpoint().snapshot_state())
          << "stale transport blob for P" << p.value() << " after " << what;
    }
  }

  std::unique_ptr<System> system_;
};

TEST_F(SnapshotCacheFixture, CleanStateRecordsShareBuffers) {
  build();
  // Two records of an unchanged process alias the same immutable blobs —
  // the clean-state TB-expiry path establishes records without
  // re-serializing anything.
  const CheckpointRecord a = system_->p2().make_record(CkptKind::kStable);
  const CheckpointRecord b = system_->p2().make_record(CkptKind::kStable);
  EXPECT_TRUE(a.app_state.shares_buffer_with(b.app_state));
  EXPECT_TRUE(a.protocol_state.shares_buffer_with(b.protocol_state));
  EXPECT_TRUE(a.transport_state.shares_buffer_with(b.transport_state));
  expect_records_fresh("repeated clean records");
}

TEST_F(SnapshotCacheFixture, MessageTrafficInvalidates) {
  build();
  const CheckpointRecord before = system_->p2().make_record(CkptKind::kStable);
  c1_send(false);  // P1act dirties P2 (Type-1 + state application)
  settle();
  const CheckpointRecord after = system_->p2().make_record(CkptKind::kStable);
  EXPECT_FALSE(before.app_state.shares_buffer_with(after.app_state));
  EXPECT_FALSE(before.protocol_state.shares_buffer_with(after.protocol_state));
  EXPECT_FALSE(
      before.transport_state.shares_buffer_with(after.transport_state));
  expect_records_fresh("internal send + delivery");
}

TEST_F(SnapshotCacheFixture, ValidationAndClearPathsInvalidate) {
  build();
  c1_send(false);
  settle();
  // External send: AT pass, note_validation, pseudo/recv dirty clears,
  // passed-AT broadcast and its consumption at P1sdw/P2.
  c1_send(true);
  settle();
  expect_records_fresh("AT pass + passed-AT broadcast");
}

TEST_F(SnapshotCacheFixture, CorruptionAndRestoreInvalidate) {
  build();
  c1_send(false);
  settle();
  ProcessNode& p2node = system_->node(kP2);
  const CheckpointRecord rec = system_->p2().make_record(CkptKind::kStable);

  p2node.app().corrupt(0xBEEF);
  expect_records_fresh("app corruption");

  system_->p2().restore_from_record(rec);
  expect_records_fresh("restore_from_record");
}

TEST_F(SnapshotCacheFixture, TakeoverInvalidates) {
  build();
  c1_send(false);  // shadow logs a suppressed message (serialized role state)
  settle();
  system_->p1act().kill();
  system_->p1sdw().set_guarded(false);
  system_->p1sdw().takeover();
  settle();
  expect_records_fresh("shadow takeover");
}

}  // namespace
}  // namespace synergy
