// TB checkpointing behaviour: timer-driven stable writes, content
// selection, blocking periods, abort-and-replace (the paper's Figure 5 and
// Figure 6 cases), and resynchronization requests.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig tb_config(Scheme scheme, std::uint64_t seed = 1) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};
  c.tb.interval = Duration::seconds(10);
  c.sstore.write_base_latency = Duration::millis(2);
  return c;
}

class TbFixture : public ::testing::Test {
 protected:
  void build(Scheme scheme, std::uint64_t seed = 1,
             SystemConfig (*mk)(Scheme, std::uint64_t) = tb_config) {
    system_ = std::make_unique<System>(mk(scheme, seed));
    system_->start(TimePoint::origin() + Duration::seconds(1'000'000));
  }

  void c1_send(bool external, std::uint64_t input = 1) {
    system_->p1act().on_app_send(external, input);
    system_->p1sdw().on_app_send(external, input);
  }

  /// Run until the given node's TB engine enters a blocking period.
  bool run_until_blocking(ProcessId p, Duration limit) {
    const TimePoint deadline = system_->sim().now() + limit;
    while (system_->sim().now() < deadline) {
      if (system_->node(p).tb()->blocking_active()) return true;
      if (!system_->sim().step()) return false;
    }
    return system_->node(p).tb()->blocking_active();
  }

  std::unique_ptr<System> system_;
};

TEST_F(TbFixture, TimersDriveCheckpointsEveryInterval) {
  build(Scheme::kCoordinated);
  system_->run_until(TimePoint::origin() + Duration::seconds(95));
  for (std::uint32_t i = 0; i < 3; ++i) {
    TbEngine* tb = system_->node(ProcessId{i}).tb();
    EXPECT_EQ(tb->checkpoints_taken(), 9u);
    EXPECT_EQ(tb->ndc(), 9u);
    EXPECT_GE(system_->node(ProcessId{i}).sstore().commits(), 9u);
  }
}

TEST_F(TbFixture, CleanExpirySavesCurrentState) {
  build(Scheme::kCoordinated);
  system_->run_until(TimePoint::origin() + Duration::seconds(15));
  TbEngine* tb = system_->node(kP2).tb();
  EXPECT_EQ(tb->current_contents(), 1u);
  EXPECT_EQ(tb->copy_contents(), 0u);
  const auto rec = system_->node(kP2).sstore().latest_committed();
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->dirty_bit);
  // Current-state contents: established within the first interval.
  EXPECT_GE(rec->state_time, TimePoint::origin() + Duration::seconds(9));
}

TEST_F(TbFixture, DirtyExpiryCopiesVolatileCheckpoint) {
  build(Scheme::kCoordinated);
  // Contaminate P2 at ~2s, well before its first expiry at ~10s.
  system_->run_until(TimePoint::origin() + Duration::seconds(2));
  c1_send(false);
  system_->run_until(TimePoint::origin() + Duration::seconds(15));

  TbEngine* tb = system_->node(kP2).tb();
  EXPECT_EQ(tb->copy_contents(), 1u);
  const auto rec = system_->node(kP2).sstore().latest_committed();
  ASSERT_TRUE(rec.has_value());
  // The copied volatile checkpoint reflects the pre-contamination state.
  EXPECT_FALSE(rec->dirty_bit);
  EXPECT_LE(rec->state_time, TimePoint::origin() + Duration::seconds(3));
}

TEST_F(TbFixture, P1ActUsesPseudoDirtyBitForContents) {
  build(Scheme::kCoordinated);
  system_->run_until(TimePoint::origin() + Duration::seconds(2));
  c1_send(false);  // sets pseudo_dirty, pseudo checkpoint
  system_->run_until(TimePoint::origin() + Duration::seconds(15));
  TbEngine* tb = system_->node(kP1Act).tb();
  EXPECT_EQ(tb->copy_contents(), 1u);
  const auto rec = system_->node(kP1Act).sstore().latest_committed();
  ASSERT_TRUE(rec.has_value());
  EXPECT_LE(rec->state_time, TimePoint::origin() + Duration::seconds(3));
}

TEST_F(TbFixture, BlockingPeriodAdaptsToContamination) {
  build(Scheme::kCoordinated);
  TbEngine* tb = system_->node(kP2).tb();
  const Duration clean = tb->blocking_period(false);
  const Duration dirty = tb->blocking_period(true);
  // tau(1) - tau(0) = tmax + tmin (Table 1).
  EXPECT_EQ(dirty - clean,
            system_->config().net.tmax + system_->config().net.tmin);
}

TEST_F(TbFixture, OriginalVariantUsesOneBlockingFormula) {
  build(Scheme::kNaive);
  TbEngine* tb = system_->node(kP2).tb();
  EXPECT_EQ(tb->blocking_period(false), tb->blocking_period(true));
}

TEST_F(TbFixture, AbortAndReplaceOnValidationDuringBlocking) {
  build(Scheme::kCoordinated);
  system_->run_until(TimePoint::origin() + Duration::seconds(2));
  c1_send(false);  // P2 dirty
  ASSERT_TRUE(run_until_blocking(kP2, Duration::seconds(12)));
  TbEngine* tb = system_->node(kP2).tb();
  ASSERT_TRUE(system_->p2().dirty());
  ASSERT_EQ(tb->copy_contents(), 1u);

  // A passed-AT notification arrives inside the blocking period from a
  // peer that has not reached its own timer expiry yet: it piggybacks the
  // previous Ndc, which the blocking-aware gate accepts (deterministic
  // hand delivery).
  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 999'100;
  note.sn = system_->p2().p1act_sn_seen();
  note.ndc = tb->ndc() - 1;
  system_->p2().on_message(note);

  EXPECT_FALSE(system_->p2().dirty());
  EXPECT_EQ(tb->replacements(), 1u);
  EXPECT_EQ(system_->trace().count(TraceKind::kStableReplace, kP2), 1u);

  system_->run_until(system_->sim().now() + Duration::seconds(1));
  const auto rec = system_->node(kP2).sstore().latest_committed();
  ASSERT_TRUE(rec.has_value());
  // Replaced contents: the current (validated) state, not the old copy.
  EXPECT_GE(rec->state_time, TimePoint::origin() + Duration::seconds(9));
}

TEST_F(TbFixture, PassedAtMonitoredDuringBlockingOnlyInAdaptedVariant) {
  build(Scheme::kNaive);
  system_->run_until(TimePoint::origin() + Duration::seconds(2));
  c1_send(false);
  ASSERT_TRUE(run_until_blocking(kP2, Duration::seconds(12)));
  ASSERT_TRUE(system_->p2().dirty());

  Message note;
  note.kind = MsgKind::kPassedAt;
  note.sender = kP1Act;
  note.receiver = kP2;
  note.transport_seq = 999'200;
  note.sn = 1;
  system_->p2().on_message(note);
  // Original protocol blocks ALL messages: the notification is held, the
  // dirty bit unchanged until the blocking period ends.
  EXPECT_TRUE(system_->p2().dirty());
  EXPECT_GE(system_->trace().count(TraceKind::kHoldBlocked, kP2), 1u);
  system_->run_until(system_->sim().now() + Duration::seconds(1));
  EXPECT_FALSE(system_->p2().dirty());
}

TEST_F(TbFixture, ApplicationMessagesHeldDuringBlocking) {
  build(Scheme::kCoordinated);
  ASSERT_TRUE(run_until_blocking(kP2, Duration::seconds(12)));
  const std::size_t delivered_before =
      system_->trace().count(TraceKind::kDeliverApp, kP2);
  c1_send(false);
  // Delivery may be in flight; drive simulator only to just past tmax
  // while still within the blocking period... the message must be held.
  Message direct;
  direct.kind = MsgKind::kInternal;
  direct.sender = kP1Act;
  direct.receiver = kP2;
  direct.transport_seq = 999'300;
  direct.sn = 50;
  direct.dirty = true;
  system_->p2().on_message(direct);
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2),
            delivered_before);
  EXPECT_GE(system_->trace().count(TraceKind::kHoldBlocked, kP2), 1u);
  // After the blocking period ends, held messages are consumed.
  system_->run_until(system_->sim().now() + Duration::seconds(1));
  EXPECT_GT(system_->trace().count(TraceKind::kDeliverApp, kP2),
            delivered_before);
}

TEST_F(TbFixture, ResyncRequestedWhenDeviationBoundGrows) {
  SystemConfig c = tb_config(Scheme::kCoordinated, 2);
  c.clock.rho = 2e-4;  // fast drift: bound grows quickly
  c.tb.resync_threshold = 0.001;
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run();
  std::uint64_t requests = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    requests += system.node(ProcessId{i}).tb()->resync_requests();
  }
  EXPECT_GT(requests, 0u);
  EXPECT_GT(system.clocks().resync_count(), 0u);
}

TEST_F(TbFixture, StableRecordSurvivesSerializationThroughStore) {
  build(Scheme::kCoordinated);
  system_->run_until(TimePoint::origin() + Duration::seconds(25));
  const auto rec = system_->node(kP2).sstore().latest_committed();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->owner, kP2);
  EXPECT_EQ(rec->kind, CkptKind::kStable);
  EXPECT_GT(rec->ndc, 0u);
  EXPECT_FALSE(rec->app_state.empty());
  EXPECT_FALSE(rec->protocol_state.empty());
}

}  // namespace
}  // namespace synergy
