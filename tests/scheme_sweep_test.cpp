// Cross-scheme invariant sweep (parameterized): every scheme, several
// seeds and rates — the invariants each scheme is supposed to provide,
// and only those.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

struct SchemeCase {
  Scheme scheme;
  std::uint64_t seed;
  double internal_rate;
};

class SchemeSweep : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeSweep, FaultFreeInvariants) {
  const SchemeCase sc = GetParam();
  SystemConfig c;
  c.scheme = sc.scheme;
  c.seed = sc.seed;
  c.workload.p1_internal_rate = sc.internal_rate;
  c.workload.p2_internal_rate = sc.internal_rate;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.run();

  // Universal invariants (any scheme, fault-free run):
  //  - the shadow never reaches the device;
  //  - no erroneous value reaches the device (no fault configured);
  //  - the guarded pair stays alive;
  //  - message counters advance.
  for (const auto& e : system.device().entries) {
    EXPECT_NE(e.from, kP1Sdw);
    EXPECT_FALSE(e.tainted);
  }
  EXPECT_TRUE(system.p1act().alive());
  EXPECT_GT(system.p1act().msg_sn(), 0u);
  EXPECT_GT(system.p2().msg_sn(), 0u);
  EXPECT_FALSE(system.sw_recovery().has_value());

  // Scheme-specific surfaces.
  switch (sc.scheme) {
    case Scheme::kMdcdOnly:
      EXPECT_FALSE(system.node(kP2).has_stable_storage());
      break;
    case Scheme::kWriteThrough:
      EXPECT_EQ(system.node(kP2).tb(), nullptr);
      EXPECT_GT(system.write_through()->stable_writes(), 0u);
      break;
    case Scheme::kNaive:
    case Scheme::kCoordinated:
    case Scheme::kMdcdTbTmr:
      EXPECT_GT(system.node(kP2).tb()->checkpoints_taken(), 15u);
      break;
    case Scheme::kMdcdDwc:
    case Scheme::kMdcdTmr:
      // Lane schemes are timer-less but still populate stable storage
      // write-through style (divergence rollbacks need a line to land on).
      EXPECT_EQ(system.node(kP2).tb(), nullptr);
      EXPECT_GT(system.write_through()->stable_writes(), 0u);
      break;
  }

  // Lane schemes: a fault-free mission never parks a lane or votes one out.
  if (scheme_lane_count(sc.scheme) > 1) {
    LaneSet* lanes = system.node(kP2).lanes();
    ASSERT_NE(lanes, nullptr);
    EXPECT_EQ(lanes->active_lanes(), scheme_lane_count(sc.scheme));
    const LaneStats ls = lanes->stats();
    EXPECT_GT(ls.votes, 0u);  // every send boundary voted
    EXPECT_EQ(ls.divergences, 0u);
    EXPECT_EQ(ls.sig_mismatches, 0u);
  }

  // Volatile checkpointing is message-driven in every scheme: Type-1
  // checkpoints at P2 track contamination transitions.
  EXPECT_GT(system.p2().volatile_checkpoints(), 0u);

  // Coordinated scheme: the stable line is always audit-clean.
  if (sc.scheme == Scheme::kCoordinated) {
    const GlobalState line = system.stable_line_state();
    EXPECT_TRUE(check_consistency(line).empty());
    EXPECT_TRUE(check_recoverability(line).empty());
    EXPECT_TRUE(check_software_recoverability(line).empty());
  }
}

TEST_P(SchemeSweep, SoftwareRecoveryInvariants) {
  const SchemeCase sc = GetParam();
  SystemConfig c;
  c.scheme = sc.scheme;
  c.seed = sc.seed + 1000;
  c.workload.p1_internal_rate = sc.internal_rate;
  c.workload.p2_internal_rate = sc.internal_rate;
  c.workload.p1_external_rate = 0.3;
  c.workload.p2_external_rate = 0.3;
  c.tb.interval = Duration::seconds(10);
  System system(c);
  system.start(TimePoint::origin() + Duration::seconds(200));
  system.schedule_sw_error(TimePoint::origin() + Duration::seconds(90));
  system.run();

  // Every scheme performs MDCD software recovery identically.
  ASSERT_TRUE(system.sw_recovery().has_value());
  EXPECT_FALSE(system.p1act().alive());
  EXPECT_TRUE(system.p1sdw().active());
  EXPECT_TRUE(system.node(kP1Act).retired());
  for (const auto& e : system.device().entries) {
    EXPECT_FALSE(e.tainted);
  }
  // The mission continued: outputs after the recovery instant.
  bool post = false;
  for (const auto& e : system.device().entries) {
    post |= e.at > TimePoint::origin() + Duration::seconds(100);
  }
  EXPECT_TRUE(post);
}

std::vector<SchemeCase> scheme_cases() {
  std::vector<SchemeCase> cases;
  std::uint64_t seed = 500;
  for (Scheme scheme : kAllSchemes) {
    for (double rate : {1.0, 6.0}) {
      for (int rep = 0; rep < 2; ++rep) {
        cases.push_back(SchemeCase{scheme, seed++, rate});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep, ::testing::ValuesIn(scheme_cases()),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string name = to_string(info.param.scheme);
      // gtest test names must be alphanumeric: "mdcd+tb+tmr" -> "mdcd_tb_tmr".
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed) + "_r" +
             std::to_string(static_cast<int>(info.param.internal_rate));
    });

}  // namespace
}  // namespace synergy
