#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "mdcd/views.hpp"

namespace synergy {
namespace {

MsgView view(ProcessId peer, std::uint64_t seq, bool suspect,
             MsgKind kind = MsgKind::kInternal) {
  return MsgView{peer, seq, seq, kind, suspect};
}

TEST(ViewLogTest, ValidateAllUpgradesSuspects) {
  ViewLog log;
  log.add(view(kP2, 1, true));
  log.add(view(kP2, 2, false));
  log.add(view(kP2, 3, true));
  EXPECT_EQ(log.validate_all(), 2u);
  for (const auto& v : log.entries()) EXPECT_FALSE(v.suspect);
  EXPECT_EQ(log.validate_all(), 0u);
}

TEST(ViewLogTest, SerializationRoundTrip) {
  ViewLog log;
  log.add(view(kP2, 1, true));
  log.add(view(kP1Act, 9, false, MsgKind::kExternal));
  ByteWriter w;
  log.serialize(w);
  ByteReader r(w.data());
  const ViewLog back = ViewLog::deserialize(r);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.entries()[0], log.entries()[0]);
  EXPECT_EQ(back.entries()[1], log.entries()[1]);
}

class CheckerFixture : public ::testing::Test {
 protected:
  CheckerFixture() { state_.processes.reserve(8); }

  GlobalState state_;

  ProcessFacts& add_process(ProcessId id) {
    ProcessFacts f;
    f.id = id;
    state_.processes.push_back(f);
    return state_.processes.back();
  }
};

TEST_F(CheckerFixture, CleanStatePasses) {
  auto& sender = add_process(kP2);
  auto& receiver = add_process(kP1Sdw);
  sender.sent.add(view(kP1Sdw, 5, false));
  receiver.recv.add(view(kP2, 5, false));
  EXPECT_TRUE(check_consistency(state_).empty());
  EXPECT_TRUE(check_recoverability(state_).empty());
  EXPECT_TRUE(check_software_recoverability(state_).empty());
}

TEST_F(CheckerFixture, ReceivedNotSentFlagged) {
  add_process(kP2);
  auto& receiver = add_process(kP1Sdw);
  receiver.recv.add(view(kP2, 5, false));
  const auto v = check_consistency(state_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kReceivedNotSent);
  EXPECT_NE(v[0].describe().find("does not reflect sending"),
            std::string::npos);
}

TEST_F(CheckerFixture, ValidityMismatchFlagged) {
  auto& sender = add_process(kP2);
  auto& receiver = add_process(kP1Sdw);
  sender.sent.add(view(kP1Sdw, 5, false));
  receiver.recv.add(view(kP2, 5, true));
  const auto v = check_consistency(state_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kValidityMismatch);
}

TEST_F(CheckerFixture, LostMessageFlagged) {
  auto& sender = add_process(kP2);
  add_process(kP1Sdw);
  sender.sent.add(view(kP1Sdw, 5, false));
  const auto v = check_recoverability(state_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kLostMessage);
}

TEST_F(CheckerFixture, UnackedMessageIsRestorable) {
  auto& sender = add_process(kP2);
  add_process(kP1Sdw);
  sender.sent.add(view(kP1Sdw, 5, false));
  Message m;
  m.sender = kP2;
  m.receiver = kP1Sdw;
  m.transport_seq = 5;
  sender.unacked.push_back(m);
  EXPECT_TRUE(check_recoverability(state_).empty());
}

TEST_F(CheckerFixture, ExternalMessagesIgnored) {
  auto& sender = add_process(kP2);
  add_process(kP1Sdw);
  sender.sent.add(view(kDeviceId, 7, false, MsgKind::kExternal));
  EXPECT_TRUE(check_recoverability(state_).empty());
}

TEST_F(CheckerFixture, PeerOutsideStateIgnored) {
  auto& receiver = add_process(kP1Sdw);
  receiver.recv.add(view(kP1Act, 3, true));  // P1act not in the state
  EXPECT_TRUE(check_consistency(state_).empty());
}

TEST_F(CheckerFixture, DirtyRestoredStateFlagged) {
  auto& p = add_process(kP2);
  p.dirty = true;
  const auto v = check_software_recoverability(state_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kDirtyRestoredState);
}

TEST_F(CheckerFixture, CheckAllAggregates) {
  auto& sender = add_process(kP2);
  auto& receiver = add_process(kP1Sdw);
  receiver.dirty = true;
  sender.sent.add(view(kP1Sdw, 5, false));
  receiver.recv.add(view(kP2, 6, false));
  const auto v = check_all(state_);
  EXPECT_EQ(v.size(), 3u);  // lost + received-not-sent + dirty-restored
}

}  // namespace
}  // namespace synergy
