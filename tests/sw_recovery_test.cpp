// Software error recovery: detection, takeover, local rollback /
// roll-forward decisions, replay beyond VR, and post-recovery guarantees.
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "core/system.hpp"

namespace synergy {
namespace {

SystemConfig sw_config(std::uint64_t seed = 1,
                       Scheme scheme = Scheme::kCoordinated) {
  SystemConfig c;
  c.scheme = scheme;
  c.seed = seed;
  c.workload = WorkloadParams{0, 0, 0, 0, 0};
  c.tb.interval = Duration::seconds(1'000);
  return c;
}

class SwRecoveryFixture : public ::testing::Test {
 protected:
  void build(std::uint64_t seed = 1, Scheme scheme = Scheme::kCoordinated) {
    system_ = std::make_unique<System>(sw_config(seed, scheme));
    system_->start(TimePoint::origin() + Duration::seconds(100'000));
  }
  void c1_send(bool external, std::uint64_t input = 1) {
    system_->p1act().on_app_send(external, input);
    system_->p1sdw().on_app_send(external, input);
  }
  void settle() {
    system_->run_until(system_->sim().now() + Duration::seconds(1));
  }
  std::unique_ptr<System> system_;
};

TEST_F(SwRecoveryFixture, AtFailureTriggersTakeover) {
  build();
  system_->node(kP1Act).app().corrupt(1234);
  c1_send(true);  // tainted external -> AT fails (coverage = 1)
  EXPECT_EQ(system_->at_failures_observed(), 1u);
  ASSERT_TRUE(system_->sw_recovery().has_value());
  EXPECT_EQ(system_->sw_recovery()->detector, kP1Act);
  EXPECT_FALSE(system_->p1act().alive());
  EXPECT_TRUE(system_->p1sdw().active());
  EXPECT_TRUE(system_->node(kP1Act).retired());
  EXPECT_EQ(system_->trace().count(TraceKind::kTakeover, kP1Sdw), 1u);
}

TEST_F(SwRecoveryFixture, CleanProcessesRollForward) {
  build();
  // No internal traffic: P2 and P1sdw are clean when the error hits.
  system_->node(kP1Act).app().corrupt(7);
  c1_send(true);
  ASSERT_TRUE(system_->sw_recovery().has_value());
  EXPECT_FALSE(system_->sw_recovery()->p2_rolled_back);
  EXPECT_FALSE(system_->sw_recovery()->p1sdw_rolled_back);
  EXPECT_EQ(system_->trace().count(TraceKind::kRollForward), 2u);
}

TEST_F(SwRecoveryFixture, DirtyP2RollsBackToCleanState) {
  build();
  // Contaminate: tainted internal message reaches P2.
  system_->node(kP1Act).app().corrupt(55);
  c1_send(false);
  settle();
  ASSERT_TRUE(system_->p2().dirty());
  ASSERT_TRUE(system_->node(kP2).app().tainted());

  system_->schedule_sw_error(system_->sim().now() + Duration::seconds(1));
  settle();
  ASSERT_TRUE(system_->sw_recovery().has_value());
  EXPECT_TRUE(system_->sw_recovery()->p2_rolled_back);
  EXPECT_GT(system_->sw_recovery()->p2_rollback_distance, Duration::zero());
  // Rollback restored the pre-contamination state: taint gone, dirty gone.
  EXPECT_FALSE(system_->p2().dirty());
  EXPECT_FALSE(system_->node(kP2).app().tainted());
}

TEST_F(SwRecoveryFixture, ReplayResendsOnlyBeyondVr) {
  build();
  c1_send(true);   // sn 1 validated -> VR = 1
  settle();
  c1_send(false);  // sn 2
  c1_send(false);  // sn 3
  settle();
  // Trigger the error via P2's AT (its state is contaminated by sn 2/3
  // which carried taint? they are not tainted — force taint instead).
  system_->node(kP1Act).app().corrupt(3);
  c1_send(true);  // AT failure at P1act
  ASSERT_TRUE(system_->sw_recovery().has_value());
  // P1sdw replayed its high-confidence versions of sn 2 and 3 (and of the
  // failed send, which its copy also logged as sn 4 before takeover —
  // takeover happens synchronously inside P1act's send, before P1sdw's
  // mirrored send, so only 2 and 3 are in its log).
  EXPECT_EQ(system_->sw_recovery()->replayed_messages, 2u);
  settle();
  // P2 consumed the replacements as clean messages.
  EXPECT_FALSE(system_->p2().dirty());
}

TEST_F(SwRecoveryFixture, PostRecoveryStateSatisfiesProperties) {
  build(21);
  system_->node(kP1Act).app().corrupt(9);
  c1_send(false);
  settle();
  system_->schedule_sw_error(system_->sim().now() + Duration::seconds(1));
  settle();
  ASSERT_TRUE(system_->sw_recovery().has_value());
  settle();

  const GlobalState live = system_->live_state();
  ASSERT_EQ(live.processes.size(), 2u);  // P1act retired
  const auto consistency = check_consistency(live);
  EXPECT_TRUE(consistency.empty()) << consistency.front().describe();
  const auto recover = check_recoverability(live);
  EXPECT_TRUE(recover.empty()) << recover.front().describe();
  // MDCD on leave: everyone clean; no taint anywhere (coverage = 1).
  for (const auto& p : live.processes) {
    EXPECT_FALSE(p.dirty);
    EXPECT_FALSE(p.app_tainted);
  }
}

TEST_F(SwRecoveryFixture, GuardedModeEndsAfterRecovery) {
  build();
  system_->node(kP1Act).app().corrupt(5);
  c1_send(true);
  ASSERT_TRUE(system_->sw_recovery().has_value());
  settle();
  EXPECT_FALSE(system_->p1sdw().guarded());
  EXPECT_FALSE(system_->p2().guarded());
  // Post-takeover sends from the shadow are clean-flagged and reach P2.
  const auto before = system_->trace().count(TraceKind::kDeliverApp, kP2);
  system_->p1sdw().on_app_send(/*external=*/false, 8);
  settle();
  EXPECT_EQ(system_->trace().count(TraceKind::kDeliverApp, kP2), before + 1);
  EXPECT_FALSE(system_->p2().dirty());
}

TEST_F(SwRecoveryFixture, ActiveShadowSendsExternalsToDevice) {
  build();
  system_->node(kP1Act).app().corrupt(5);
  c1_send(true);
  ASSERT_TRUE(system_->sw_recovery().has_value());
  settle();
  const auto before = system_->device().entries.size();
  system_->p1sdw().on_app_send(/*external=*/true, 3);
  settle();
  ASSERT_EQ(system_->device().entries.size(), before + 1);
  EXPECT_EQ(system_->device().entries.back().from, kP1Sdw);
  EXPECT_FALSE(system_->device().entries.back().tainted);
}

TEST_F(SwRecoveryFixture, DeviceNeverReceivedTaintedOutput) {
  build(31);
  system_->node(kP1Act).app().corrupt(11);
  c1_send(false);
  settle();
  c1_send(true);  // AT catches the tainted external
  settle();
  for (const auto& e : system_->device().entries) {
    EXPECT_FALSE(e.tainted);
  }
}

TEST_F(SwRecoveryFixture, StaleDirtyMessagesFencedAfterRecovery) {
  build(41);
  system_->node(kP1Act).app().corrupt(13);
  c1_send(false);  // in flight toward P2 when recovery runs
  // Trigger recovery immediately: the internal message is still in
  // transit (delivery takes >= tmin).
  system_->node(kP1Act).app().corrupt(14);
  c1_send(true);
  ASSERT_TRUE(system_->sw_recovery().has_value());
  settle();
  // The stale dirty message must not contaminate the post-recovery world.
  EXPECT_FALSE(system_->p2().dirty());
  EXPECT_FALSE(system_->node(kP2).app().tainted());
  EXPECT_GE(system_->trace().count(TraceKind::kStaleDrop, kP2), 1u);
}

TEST_F(SwRecoveryFixture, SecondAtFailureIsRecordedNotRecovered) {
  build();
  system_->node(kP1Act).app().corrupt(1);
  c1_send(true);
  ASSERT_TRUE(system_->sw_recovery().has_value());
  settle();
  // Now the shadow is active; force a failure through its own AT.
  system_->node(kP1Sdw).app().corrupt(2);
  // Make it dirty so its external send runs the AT.
  // (A clean active process skips the AT; emulate contamination.)
  system_->p2().on_app_send(false, 1);
  settle();
  const auto failures = system_->at_failures_observed();
  system_->p1sdw().on_app_send(true, 1);
  EXPECT_GE(system_->at_failures_observed(), failures);
  // No crash, no second takeover.
  EXPECT_TRUE(system_->p1sdw().active());
}

}  // namespace
}  // namespace synergy
