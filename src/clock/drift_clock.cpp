#include "clock/drift_clock.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace synergy {

DriftClock::DriftClock(TimePoint t0, Duration offset, double drift)
    : anchor_true_(t0), anchor_local_(t0 + offset), drift_(drift) {
  SYNERGY_EXPECTS(drift > -1.0);  // clock must move forward
}

TimePoint DriftClock::local_time(TimePoint true_time) const {
  const double elapsed = static_cast<double>((true_time - anchor_true_).count());
  const auto local_elapsed =
      static_cast<std::int64_t>(std::llround(elapsed * (1.0 + drift_)));
  return anchor_local_ + Duration::micros(local_elapsed);
}

TimePoint DriftClock::true_time_of(TimePoint local) const {
  const double local_elapsed =
      static_cast<double>((local - anchor_local_).count());
  const auto elapsed =
      static_cast<std::int64_t>(std::llround(local_elapsed / (1.0 + drift_)));
  return anchor_true_ + Duration::micros(elapsed);
}

Duration DriftClock::offset_at(TimePoint true_time) const {
  return local_time(true_time) - true_time;
}

void DriftClock::resync(TimePoint true_now, Duration new_offset) {
  SYNERGY_EXPECTS(true_now >= anchor_true_);
  anchor_true_ = true_now;
  anchor_local_ = true_now + new_offset;
}

void DriftClock::set_drift(TimePoint true_now, double drift) {
  SYNERGY_EXPECTS(drift > -1.0);
  SYNERGY_EXPECTS(true_now >= anchor_true_);
  // Re-anchor at the current reading so the local timeline stays
  // continuous; only the rate changes.
  anchor_local_ = local_time(true_now);
  anchor_true_ = true_now;
  drift_ = drift;
}

}  // namespace synergy
