// A local hardware clock with bounded offset and bounded drift.
//
// The TB checkpointing protocol (Neves & Fuchs) assumes timers that are
// approximately synchronized: right after a resynchronization, any two
// clocks differ by at most delta, and between resynchronizations each clock
// drifts at a rate bounded by rho. The pairwise deviation bound at elapsed
// time eps since the last resync is therefore delta + 2*rho*eps — the
// quantity the protocol's blocking periods are built from.
#pragma once

#include "common/time.hpp"

namespace synergy {

class DriftClock {
 public:
  /// Creates a clock anchored at true time `t0` reading `t0 + offset`,
  /// advancing at rate (1 + drift) relative to true time.
  DriftClock(TimePoint t0, Duration offset, double drift);

  /// The clock's reading at the given true time.
  TimePoint local_time(TimePoint true_time) const;

  /// The true time at which this clock will read `local`. Inverse of
  /// local_time(); used to schedule local-deadline timers on the simulator.
  TimePoint true_time_of(TimePoint local) const;

  /// Instantaneous offset (local - true) at the given true time.
  Duration offset_at(TimePoint true_time) const;

  /// Re-anchor the clock: at true time `true_now` it now reads
  /// `true_now + new_offset`. Drift rate is unchanged (it is a hardware
  /// property). Models one round of external clock synchronization.
  void resync(TimePoint true_now, Duration new_offset);

  /// Change the drift rate from `true_now` onward, keeping the reading
  /// continuous at that instant. Models a drift excursion — an oscillator
  /// leaving its rated bound (temperature, aging, injected fault); the
  /// protocols' rho assumption is violated while the excursion lasts.
  void set_drift(TimePoint true_now, double drift);

  double drift_rate() const { return drift_; }
  TimePoint last_resync_true_time() const { return anchor_true_; }

 private:
  TimePoint anchor_true_;
  TimePoint anchor_local_;
  double drift_;
};

}  // namespace synergy
