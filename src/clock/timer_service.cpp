#include "clock/timer_service.hpp"

#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace synergy {

LocalTimerService::~LocalTimerService() {
  for (auto& [id, p] : pending_) sim_.cancel(p.handle);
}

EventHandle LocalTimerService::arm(TimerId id, const Pending& p) {
  TimePoint fire_at = clock_.true_time_of(p.local_deadline);
  if (fire_at < sim_.now()) fire_at = sim_.now();  // past deadline: fire now
  return sim_.schedule_at(fire_at, [this, id] {
    auto it = pending_.find(id);
    SYNERGY_ASSERT(it != pending_.end());
    Callback fn = std::move(it->second.fn);
    pending_.erase(it);
    fn();
  });
}

LocalTimerService::TimerId LocalTimerService::schedule_at_local(
    TimePoint local_deadline, Callback fn) {
  SYNERGY_EXPECTS(fn != nullptr);
  const TimerId id = next_id_++;
  auto [it, inserted] =
      pending_.emplace(id, Pending{local_deadline, std::move(fn), {}});
  SYNERGY_ASSERT(inserted);
  it->second.handle = arm(id, it->second);
  return id;
}

LocalTimerService::TimerId LocalTimerService::schedule_after_local(
    Duration d, Callback fn) {
  SYNERGY_EXPECTS(d >= Duration::zero());
  return schedule_at_local(local_now() + d, std::move(fn));
}

bool LocalTimerService::cancel(TimerId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  sim_.cancel(it->second.handle);
  pending_.erase(it);
  return true;
}

void LocalTimerService::on_clock_adjusted() {
  // Ids are snapshotted first: arm() inserts new simulator events and we
  // must not iterate pending_ while rewriting handles.
  std::vector<TimerId> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (TimerId id : ids) {
    auto& p = pending_.at(id);
    sim_.cancel(p.handle);
    p.handle = arm(id, p);
  }
}

}  // namespace synergy
