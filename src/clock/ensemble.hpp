// Clock ensemble: the set of per-process clocks plus the resynchronization
// service that keeps their pairwise deviation bounded.
//
// Substitution note (see DESIGN.md §3): the paper assumes an external clock
// synchronization service with maximum initial deviation delta and drift
// rate rho. We model a resync round as an instantaneous redraw of every
// clock's offset within [-delta/2, +delta/2] (so any pair deviates by at
// most delta), which is exactly the abstraction both TB variants reason
// about; the synchronization algorithm itself is out of scope for the
// protocols.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "clock/drift_clock.hpp"
#include "clock/timer_service.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace synergy {

struct ClockParams {
  /// Maximum pairwise deviation right after a resync (paper's delta).
  Duration delta = Duration::millis(2);
  /// Maximum absolute drift rate (paper's rho), e.g. 1e-5 = 10 us/s.
  double rho = 1e-5;
};

class ClockEnsemble {
 public:
  /// Creates `n` clocks with offsets drawn in [-delta/2, +delta/2] and
  /// drifts drawn in [-rho, +rho].
  ClockEnsemble(Simulator& sim, const ClockParams& params, std::size_t n,
                Rng rng);

  DriftClock& clock(ProcessId p);
  const DriftClock& clock(ProcessId p) const;
  LocalTimerService& timers(ProcessId p);
  std::size_t size() const { return clocks_.size(); }
  const ClockParams& params() const { return params_; }

  /// Worst-case pairwise deviation bound at elapsed local time `eps` since
  /// the last resync: delta + 2 * rho * eps (paper §4.2).
  Duration deviation_bound(Duration eps) const;

  /// Elapsed true time since the last ensemble resync.
  Duration elapsed_since_resync() const;

  /// Performs one resynchronization round now: redraws all offsets within
  /// the delta bound, re-maps all pending local timers, and notifies
  /// observers (the adapted TB protocol resets its eps bookkeeping here).
  /// While resyncs are suppressed (injected fault: the synchronization
  /// service is unreachable) the round is counted as missed and nothing
  /// happens — deviations keep growing past the modelled bound.
  void resync_all();

  // ---- Fault injection (chaos campaigns) ---------------------------------
  /// Push process `p`'s clock to an out-of-spec drift rate from now on
  /// (violates the rho assumption until restored).
  void inject_drift_excursion(ProcessId p, double drift);
  /// Restore process `p`'s clock to a within-spec drift rate.
  void end_drift_excursion(ProcessId p);
  /// Suppress (true) or re-enable (false) resynchronization rounds.
  void suppress_resyncs(bool suppressed) { resyncs_suppressed_ = suppressed; }
  bool resyncs_suppressed() const { return resyncs_suppressed_; }

  std::uint64_t missed_resyncs() const { return missed_resyncs_; }
  std::uint64_t drift_excursions() const { return drift_excursions_; }

  /// Register a callback invoked after every resync round.
  void on_resync(std::function<void()> fn) {
    observers_.push_back(std::move(fn));
  }

  /// Number of resync rounds performed (diagnostics).
  std::uint64_t resync_count() const { return resyncs_; }

 private:
  Simulator& sim_;
  ClockParams params_;
  Rng rng_;
  std::vector<DriftClock> clocks_;
  std::vector<std::unique_ptr<LocalTimerService>> timers_;
  std::vector<std::function<void()>> observers_;
  TimePoint last_resync_;
  std::uint64_t resyncs_ = 0;
  bool resyncs_suppressed_ = false;
  std::uint64_t missed_resyncs_ = 0;
  std::uint64_t drift_excursions_ = 0;
};

}  // namespace synergy
