#include "clock/ensemble.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"

namespace synergy {

ClockEnsemble::ClockEnsemble(Simulator& sim, const ClockParams& params,
                             std::size_t n, Rng rng)
    : sim_(sim), params_(params), rng_(rng), last_resync_(sim.now()) {
  SYNERGY_EXPECTS(n > 0);
  SYNERGY_EXPECTS(params.rho >= 0.0 && params.rho < 1.0);
  SYNERGY_EXPECTS(params.delta >= Duration::zero());
  clocks_.reserve(n);
  timers_.reserve(n);
  const Duration half = params_.delta / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const Duration offset = rng_.uniform(-half, half);
    const double drift = rng_.uniform(-params_.rho, params_.rho);
    clocks_.emplace_back(sim_.now(), offset, drift);
  }
  // Timer services are created after all clocks exist: clocks_ never
  // reallocates afterwards, so the references stay valid.
  for (std::size_t i = 0; i < n; ++i) {
    timers_.push_back(std::make_unique<LocalTimerService>(sim_, clocks_[i]));
  }
}

DriftClock& ClockEnsemble::clock(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < clocks_.size());
  return clocks_[p.value()];
}

const DriftClock& ClockEnsemble::clock(ProcessId p) const {
  SYNERGY_EXPECTS(p.value() < clocks_.size());
  return clocks_[p.value()];
}

LocalTimerService& ClockEnsemble::timers(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < timers_.size());
  return *timers_[p.value()];
}

Duration ClockEnsemble::deviation_bound(Duration eps) const {
  const double extra = 2.0 * params_.rho * static_cast<double>(eps.count());
  return params_.delta +
         Duration::micros(static_cast<std::int64_t>(std::ceil(extra)));
}

Duration ClockEnsemble::elapsed_since_resync() const {
  return sim_.now() - last_resync_;
}

void ClockEnsemble::resync_all() {
  if (resyncs_suppressed_) {
    ++missed_resyncs_;
    return;
  }
  const Duration half = params_.delta / 2;
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    clocks_[i].resync(sim_.now(), rng_.uniform(-half, half));
    timers_[i]->on_clock_adjusted();
  }
  last_resync_ = sim_.now();
  ++resyncs_;
  for (const auto& fn : observers_) fn();
}

void ClockEnsemble::inject_drift_excursion(ProcessId p, double drift) {
  SYNERGY_EXPECTS(p.value() < clocks_.size());
  clocks_[p.value()].set_drift(sim_.now(), drift);
  timers_[p.value()]->on_clock_adjusted();
  ++drift_excursions_;
}

void ClockEnsemble::end_drift_excursion(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < clocks_.size());
  clocks_[p.value()].set_drift(sim_.now(),
                               rng_.uniform(-params_.rho, params_.rho));
  timers_[p.value()]->on_clock_adjusted();
}

}  // namespace synergy
