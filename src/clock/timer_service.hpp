// Per-process timer service: schedules callbacks at *local clock* deadlines.
//
// A TB-protocol process arms its next checkpoint timer at a local-clock
// instant (k * Delta on its own clock). The service maps that local
// deadline to true simulator time through the process's DriftClock, and
// re-maps every pending deadline whenever the clock is resynchronized — a
// resync changes when a local deadline occurs in true time.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "clock/drift_clock.hpp"
#include "sim/simulator.hpp"

namespace synergy {

class LocalTimerService {
 public:
  using Callback = Simulator::Callback;
  using TimerId = std::uint64_t;

  LocalTimerService(Simulator& sim, DriftClock& clock)
      : sim_(sim), clock_(clock) {}
  ~LocalTimerService();

  LocalTimerService(const LocalTimerService&) = delete;
  LocalTimerService& operator=(const LocalTimerService&) = delete;

  /// Current reading of the local clock.
  TimePoint local_now() const { return clock_.local_time(sim_.now()); }

  /// Fire `fn` when the local clock reads `local_deadline`. Deadlines in
  /// the local past fire immediately (at the next simulator step).
  TimerId schedule_at_local(TimePoint local_deadline, Callback fn);

  /// Fire `fn` after `d` elapses on the local clock.
  TimerId schedule_after_local(Duration d, Callback fn);

  /// Cancel a pending timer; returns false if it already fired.
  bool cancel(TimerId id);

  /// Must be called after the underlying clock is resynchronized: re-maps
  /// all pending local deadlines to their new true times.
  void on_clock_adjusted();

  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    TimePoint local_deadline;
    Callback fn;
    EventHandle handle;
  };

  EventHandle arm(TimerId id, const Pending& p);

  Simulator& sim_;
  DriftClock& clock_;
  TimerId next_id_ = 1;
  std::unordered_map<TimerId, Pending> pending_;
};

}  // namespace synergy
