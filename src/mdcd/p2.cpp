#include "mdcd/p2.hpp"

#include "common/assert.hpp"

namespace synergy {

P2Engine::P2Engine(const MdcdConfig& config, ProcessServices services)
    : MdcdEngine(Role::kP2, config, std::move(services)) {
  SYNERGY_EXPECTS(services_.at != nullptr);
}

void P2Engine::do_app_send(bool external, std::uint64_t input) {
  // Vote before computing the outgoing value; a divergence aborts the send
  // (the voter already requested a recovery-line rollback).
  if (!vote_lanes()) return;
  app_local_step(input);
  const std::uint64_t payload = services_.app->output();
  const bool tainted = services_.app->tainted();

  if (external) {
    if (dirty_) {
      if (services_.at->run(tainted)) {
        trace(TraceKind::kAtPass, "external", msg_sn_ + 1);
        // Our AT validates our whole state, and with it every component-1
        // message we have consumed (up to msg_SN_P1act).
        note_validation(p1act_sn_seen_);
        clear_dirty();
        if (config_.variant == MdcdVariant::kOriginal) {
          establish_volatile_checkpoint(CkptKind::kType2);
        }
        notify_validation();
        ++msg_sn_;
        Message ext =
            base_message(MsgKind::kExternal, kDeviceId, payload, tainted);
        ext.sn = msg_sn_;
        send_recorded(std::move(ext), /*suspect=*/false);
        // Notify both component-1 processes; the piggybacked SN is the
        // last P1act message covered by this validation (Figure 10).
        for (ProcessId peer : {kP1Act, kP1Sdw}) {
          Message note = base_message(MsgKind::kPassedAt, peer, 0, false);
          note.sn = p1act_sn_seen_;
          send_recorded(std::move(note), /*suspect=*/false);
        }
      } else {
        trace(TraceKind::kAtFail, "external", msg_sn_ + 1);
        services_.request_sw_recovery(self());
      }
      return;
    }
    // Outgoing message from a clean state: no AT needed (Figure 10).
    ++msg_sn_;
    Message ext =
        base_message(MsgKind::kExternal, kDeviceId, payload, tainted);
    ext.sn = msg_sn_;
    send_recorded(std::move(ext), /*suspect=*/false);
    return;
  }

  // Internal message, multicast to both component-1 processes with the
  // dirty bit piggybacked (Figure 10).
  ++msg_sn_;
  for (ProcessId peer : {kP1Act, kP1Sdw}) {
    if (peer == kP1Act && !guarded_) continue;  // P1act retired
    Message m = base_message(MsgKind::kInternal, peer, payload, tainted);
    m.sn = msg_sn_;
    m.dirty = dirty_;
    m.contam_sn = dirty_ ? dirty_contam_ : 0;
    send_recorded(std::move(m), /*suspect=*/dirty_);
  }
}

void P2Engine::do_passed_at(const Message& m) {
  if (!ndc_gate_ok(m)) return;
  p1act_sn_seen_ = std::max(p1act_sn_seen_, m.sn);
  note_validation(m.sn);
  if (dirty_ && validation_covers_dirt(m.sn)) {
    clear_dirty();
    if (config_.variant == MdcdVariant::kOriginal) {
      establish_volatile_checkpoint(CkptKind::kType2);
    }
  }
  notify_validation();
}

void P2Engine::do_app_message(const Message& m) {
  if (m.kind == MsgKind::kInternal &&
      (m.sender == kP1Act || m.sender == kP1Sdw)) {
    p1act_sn_seen_ = std::max(p1act_sn_seen_, m.sn);
  }
  // The raw flag drives contamination (anchor alignment with the sender's
  // copy); the watermark-scoped flag drives only the validity view.
  if (m.dirty && !dirty_) {
    establish_volatile_checkpoint(CkptKind::kType1);
    mark_dirty();
  }
  if (m.dirty) absorb_contamination(m);
  record_recv(m, effectively_dirty(m));
  app_apply_message(m.payload, m.tainted);
  trace(TraceKind::kDeliverApp, std::string(to_string(m.kind)), m.sn);
}

void P2Engine::serialize_role_state(ByteWriter& w) const {
  w.u64(p1act_sn_seen_);
}

void P2Engine::deserialize_role_state(ByteReader& r) {
  p1act_sn_seen_ = r.u64();
}

}  // namespace synergy
