#include "mdcd/p1act.hpp"

#include "common/assert.hpp"

namespace synergy {

P1ActEngine::P1ActEngine(const MdcdConfig& config, ProcessServices services)
    : MdcdEngine(Role::kP1Act, config, std::move(services)) {
  SYNERGY_EXPECTS(services_.at != nullptr);
  // The low-confidence version is invariably regarded as potentially
  // contaminated during guarded operation (paper §3).
  dirty_ = true;
}

bool P1ActEngine::contamination_flag() const {
  if (config_.variant == MdcdVariant::kModified) {
    return pseudo_dirty_ || recv_dirty_;
  }
  return dirty_;
}

void P1ActEngine::maybe_all_clear() {
  if (contamination_flag()) return;
  flush_deferred_acks();
  notify_contamination_cleared();
}

void P1ActEngine::clear_pseudo_dirty() {
  if (!pseudo_dirty_) return;
  pseudo_dirty_ = false;
  bump_protocol_version();  // serialized role state changed
  trace(TraceKind::kPseudoDirtyClear);
  maybe_all_clear();
}

void P1ActEngine::clear_recv_dirty() {
  if (!recv_dirty_) return;
  recv_dirty_ = false;
  dirty_contam_ = 0;
  bump_protocol_version();  // serialized role state changed
  trace(TraceKind::kDirtyClear);
  maybe_all_clear();
}

void P1ActEngine::do_app_send(bool external, std::uint64_t input) {
  // Vote the redundant lanes before computing the outgoing value: a
  // divergence aborts the send (never forward a suspect message) and the
  // voter has already requested a recovery-line rollback.
  if (!vote_lanes()) return;
  // The design fault of the low-confidence version may manifest while
  // computing the outgoing value.
  if (services_.sw_fault) {
    if (auto noise = services_.sw_fault->on_send()) {
      app_corrupt(*noise);
    }
  }
  app_local_step(input);
  const std::uint64_t payload = services_.app->output();
  const bool tainted = services_.app->tainted();

  if (external) {
    if (services_.at->run(tainted)) {
      trace(TraceKind::kAtPass, "external", msg_sn_ + 1);
      ++msg_sn_;
      // The AT validates the process state and everything sent so far:
      // contamination up to our own msg_SN is covered, and the state
      // itself — received contamination included — is non-contaminated.
      note_validation(msg_sn_);
      if (config_.variant == MdcdVariant::kModified) {
        clear_pseudo_dirty();
        clear_recv_dirty();
      }
      notify_validation();
      Message ext = base_message(MsgKind::kExternal, kDeviceId, payload,
                                 tainted);
      ext.sn = msg_sn_;
      ext.dirty = false;  // validated by the acceptance test
      send_recorded(std::move(ext), /*suspect=*/false);
      // Broadcast "passed AT": prior messages of P1act (up to msg_SN) are
      // now valid (Figure 8).
      for (ProcessId peer : {kP1Sdw, kP2}) {
        Message note = base_message(MsgKind::kPassedAt, peer, 0, false);
        note.sn = msg_sn_;
        send_recorded(std::move(note), /*suspect=*/false);
      }
    } else {
      trace(TraceKind::kAtFail, "external", msg_sn_ + 1);
      services_.request_sw_recovery(self());
    }
    return;
  }

  // Internal message to P2. Under the modified protocol, the first
  // internal send since the last validation is preceded by a pseudo
  // checkpoint (consistent with the Type-1 checkpoint the receiver takes
  // before consuming it). If received contamination already anchored the
  // epoch, that earlier checkpoint stays the rollback target.
  if (config_.variant == MdcdVariant::kModified && !pseudo_dirty_) {
    if (!recv_dirty_) establish_volatile_checkpoint(CkptKind::kPseudo);
    pseudo_dirty_ = true;
    trace(TraceKind::kPseudoDirtySet);
  }
  ++msg_sn_;
  Message m = base_message(MsgKind::kInternal, kP2, payload, tainted);
  m.sn = msg_sn_;
  m.dirty = true;  // P1act's dirty bit always equals 1 (Figure 8)
  m.contam_sn = msg_sn_;  // this very message extends the contamination
  send_recorded(std::move(m), /*suspect=*/true);
}

void P1ActEngine::do_passed_at(const Message& m) {
  if (!ndc_gate_ok(m)) return;
  note_validation(m.sn);
  // The pseudo dirty bit resets unconditionally (Figure 8): even when the
  // notification covers only a prefix of our sends, re-anchoring the
  // pseudo checkpoint at the *next* send keeps our stable contents in
  // step with P2's Type-1 anchors; the uncovered tail stays suspect in
  // the views and restorable via validation-gated acks. Received
  // contamination clears only when the validation covers it.
  if (config_.variant == MdcdVariant::kModified) {
    clear_pseudo_dirty();
    if (validation_covers_dirt(m.sn)) clear_recv_dirty();
  }
  notify_validation();
}

void P1ActEngine::do_app_message(const Message& m) {
  if (config_.variant == MdcdVariant::kModified && m.dirty) {
    // Received contamination anchors the epoch exactly like P2's Type-1:
    // immediately before the state becomes (further) contaminated. The
    // raw flag drives contamination; the watermark-scoped flag drives
    // only the validity view.
    if (!contamination_flag()) {
      establish_volatile_checkpoint(CkptKind::kType1);
    }
    if (!recv_dirty_) {
      recv_dirty_ = true;
      bump_protocol_version();  // serialized role state changed
      trace(TraceKind::kDirtySet);
    }
    absorb_contamination(m);
  }
  record_recv(m, effectively_dirty(m));
  app_apply_message(m.payload, m.tainted);
  trace(TraceKind::kDeliverApp, std::string(to_string(m.kind)), m.sn);
}

void P1ActEngine::note_confidence_loss() {
  // The original P1act is invariably potentially contaminated (dirty_ is
  // constant 1): a confidence loss adds nothing. Under the modified
  // protocol the suspicion rides the received-contamination bit, leaving
  // dirty_contam_ untouched so any covering validation clears it.
  if (config_.variant != MdcdVariant::kModified) return;
  if (!recv_dirty_) {
    recv_dirty_ = true;
    bump_protocol_version();  // serialized role state changed
    trace(TraceKind::kDirtySet);
  }
}

void P1ActEngine::serialize_role_state(ByteWriter& w) const {
  w.u8(pseudo_dirty_ ? 1 : 0);
  w.u8(recv_dirty_ ? 1 : 0);
}

void P1ActEngine::deserialize_role_state(ByteReader& r) {
  pseudo_dirty_ = r.u8() != 0;
  recv_dirty_ = r.u8() != 0;
}

}  // namespace synergy
