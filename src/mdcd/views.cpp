#include "mdcd/views.hpp"

namespace synergy {

std::size_t ViewLog::validate_all() {
  std::size_t changed = 0;
  for (auto& v : views_) {
    if (v.suspect) {
      v.suspect = false;
      ++changed;
    }
  }
  return changed;
}

std::size_t ViewLog::validate_covered(MsgSeq watermark) {
  std::size_t changed = 0;
  for (auto& v : views_) {
    if (v.suspect && v.contam_sn <= watermark) {
      v.suspect = false;
      ++changed;
    }
  }
  return changed;
}

void ViewLog::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(views_.size()));
  for (const auto& v : views_) {
    w.u32(v.peer.value());
    w.u64(v.transport_seq);
    w.u64(v.sn);
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.u8(v.suspect ? 1 : 0);
    w.u64(v.contam_sn);
  }
}

ViewLog ViewLog::deserialize(ByteReader& r) {
  ViewLog log;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    MsgView v;
    v.peer = ProcessId{r.u32()};
    v.transport_seq = r.u64();
    v.sn = r.u64();
    v.kind = static_cast<MsgKind>(r.u8());
    v.suspect = r.u8() != 0;
    v.contam_sn = r.u64();
    log.add(v);
  }
  return log;
}

}  // namespace synergy
