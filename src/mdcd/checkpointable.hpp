// The surface a TB checkpointing engine needs from the process it guards.
//
// Both the canonical three-process MDCD engines and the generalized
// N-component engine (src/general) implement this, so the same adapted TB
// protocol coordinates either.
#pragma once

#include <functional>
#include <optional>

#include "common/time.hpp"
#include "common/types.hpp"
#include "storage/checkpoint.hpp"

namespace synergy {

class CheckpointableProcess {
 public:
  virtual ~CheckpointableProcess() = default;

  virtual ProcessId self() const = 0;
  virtual bool alive() const = 0;
  virtual TimePoint current_time() const = 0;

  /// The contamination bit the TB layer consults when choosing stable
  /// checkpoint contents.
  virtual bool contamination_flag() const = 0;

  /// The most recent volatile checkpoint (rollback target; guaranteed to
  /// exist whenever contamination_flag() is set).
  virtual const std::optional<CheckpointRecord>& latest_volatile() const = 0;

  /// Build a checkpoint record of the current instant.
  virtual CheckpointRecord make_record(CkptKind kind) const = 0;

  // Blocking-period control.
  virtual void begin_blocking() = 0;
  virtual void end_blocking() = 0;
  virtual bool in_blocking() const = 0;

  /// Observer fired when the contamination flag transitions 1 -> 0 (the
  /// adapted TB's abort-and-replace trigger).
  virtual void set_contamination_cleared_observer(
      std::function<void()> fn) = 0;
};

}  // namespace synergy
