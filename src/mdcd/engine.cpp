#include "mdcd/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "redundant/lanes.hpp"

namespace synergy {

MdcdEngine::MdcdEngine(Role role, const MdcdConfig& config,
                       ProcessServices services)
    : role_(role), config_(config), services_(std::move(services)) {
  SYNERGY_EXPECTS(services_.now != nullptr);
  SYNERGY_EXPECTS(services_.transport != nullptr);
  SYNERGY_EXPECTS(services_.vstore != nullptr);
  SYNERGY_EXPECTS(services_.app != nullptr);
}

void MdcdEngine::trace(TraceKind kind, std::string_view detail,
                       std::uint64_t a, std::uint64_t b) const {
  if (services_.trace) {
    services_.trace->record(now(), self(), kind, std::string(detail), a, b);
  }
}

void MdcdEngine::set_ndc_provider(std::function<StableSeq()> fn) {
  SYNERGY_EXPECTS(fn != nullptr);
  ndc_provider_ = std::move(fn);
}

void MdcdEngine::set_contamination_cleared_observer(std::function<void()> fn) {
  contamination_cleared_ = std::move(fn);
}

void MdcdEngine::notify_contamination_cleared() {
  if (contamination_cleared_) contamination_cleared_();
}

void MdcdEngine::set_validation_observer(std::function<void()> fn) {
  validation_observer_ = std::move(fn);
}

void MdcdEngine::notify_validation() {
  // A validation event restores full redundant coverage: parked lanes are
  // re-synced from the just-validated primary before any observer (e.g.
  // the write-through committer) captures state.
  if (services_.lanes) services_.lanes->resync_parked();
  if (validation_observer_) validation_observer_();
}

// ---- Redundant-execution lanes ---------------------------------------------

void MdcdEngine::app_apply_message(std::uint64_t payload,
                                   bool payload_tainted) {
  if (services_.lanes) {
    services_.lanes->apply_message(payload, payload_tainted);
  } else {
    services_.app->apply_message(payload, payload_tainted);
  }
}

void MdcdEngine::app_local_step(std::uint64_t input) {
  if (services_.lanes) {
    services_.lanes->local_step(input);
  } else {
    services_.app->local_step(input);
  }
}

void MdcdEngine::app_corrupt(std::uint64_t noise) {
  if (services_.lanes) {
    services_.lanes->corrupt(noise);
  } else {
    services_.app->corrupt(noise);
  }
}

bool MdcdEngine::vote_lanes() {
  if (!services_.lanes) return true;
  const bool ok = services_.lanes->vote_for_send();
  // Parked lanes normally wait for a validation event to be re-synced.
  // Once guarded mode ends, MDCD is on leave and validation events stop
  // entirely — but every state is high-confidence by construction (paper
  // §4.2), so an agreeing vote is as validated as the system gets. Without
  // this, one masked fault after takeover would degrade TMR to a DWC pair
  // for the rest of the mission.
  if (ok && !guarded_) services_.lanes->resync_parked();
  return ok;
}

void MdcdEngine::on_confidence_loss() {
  if (!alive_) return;
  if (blocking_) {
    trace(TraceKind::kHoldBlocked, "confidence_loss");
    deferred_.push_back(ConfLossReq{});
    ++deferred_ops_;
    return;
  }
  process_confidence_loss();
}

void MdcdEngine::process_confidence_loss() {
  trace(TraceKind::kConfidenceLoss);
  bump_protocol_version();
  // Anchor the last trusted state immediately before admitting suspicion,
  // mirroring the Type-1 placement before consuming a dirty message.
  if (!contamination_flag()) {
    establish_volatile_checkpoint(CkptKind::kType1);
  }
  note_confidence_loss();
}

void MdcdEngine::note_confidence_loss() { mark_dirty(); }

// ---- Workload events -------------------------------------------------------

void MdcdEngine::on_app_send(bool external, std::uint64_t input) {
  if (!alive_) return;
  if (blocking_) {
    deferred_.push_back(SendReq{external, input});
    ++deferred_ops_;
    return;
  }
  bump_protocol_version();  // role hooks mutate serialized state freely
  do_app_send(external, input);
}

void MdcdEngine::on_local_step(std::uint64_t input) {
  if (!alive_) return;
  if (blocking_) {
    deferred_.push_back(StepReq{input});
    ++deferred_ops_;
    return;
  }
  if (services_.sw_fault) {
    if (auto noise = services_.sw_fault->on_step()) {
      app_corrupt(*noise);
    }
  }
  app_local_step(input);
}

// ---- Transport events -------------------------------------------------------

void MdcdEngine::on_message(const Message& m) {
  if (!alive_) return;
  trace(TraceKind::kReceive, std::string(to_string(m.kind)), m.sn,
        m.transport_seq);
  if (m.kind == MsgKind::kPassedAt) {
    // Modified protocol: passed-AT notifications are monitored even during
    // a blocking period (paper §3, modification 2). Original protocol:
    // blocking holds every message.
    if (blocking_ && config_.variant == MdcdVariant::kOriginal) {
      trace(TraceKind::kHoldBlocked, "passed_AT");
      deferred_.push_back(m);
      ++deferred_ops_;
      return;
    }
    process_passed_at(m);
    return;
  }
  if (blocking_) {
    trace(TraceKind::kHoldBlocked, std::string(to_string(m.kind)), m.sn);
    deferred_.push_back(m);
    ++deferred_ops_;
    return;
  }
  process_app_message(m);
}

void MdcdEngine::process_passed_at(const Message& m) {
  if (!consume_or_drop(m)) return;
  services_.transport->mark_consumed(m);
  // Validation notifications are acknowledged immediately: their effect
  // is a monotone watermark, so redelivery after a rollback is harmless.
  services_.transport->ack(m);
  bump_protocol_version();  // role hooks mutate serialized state freely
  do_passed_at(m);
}

void MdcdEngine::process_app_message(const Message& m) {
  if (!consume_or_drop(m)) return;
  bump_protocol_version();  // role hooks mutate serialized state freely
  do_app_message(m);
  // Marking and acking come after the role handler ran: the Type-1
  // checkpoint it may have established must capture a transport state
  // that does not yet include `m`, and consuming a dirty message may set
  // the contamination flag, deferring the ack.
  services_.transport->mark_consumed(m);
  settle_ack(m);
}

bool MdcdEngine::consume_or_drop(const Message& m) {
  const std::uint32_t fence = m.dirty ? std::max(fence_all_, fence_dirty_)
                                      : fence_all_;
  if (m.epoch < fence) {
    // Stale incarnation: acknowledge (the sender's log entry is moot) but
    // never let it touch the application.
    services_.transport->mark_consumed(m);
    services_.transport->ack(m);
    trace(TraceKind::kStaleDrop, std::string(to_string(m.kind)), m.sn,
          m.epoch);
    return false;
  }
  if (services_.transport->already_consumed(m)) {
    trace(TraceKind::kDuplicate, std::string(to_string(m.kind)), m.sn,
          m.transport_seq);
    if (m.kind == MsgKind::kPassedAt) {
      services_.transport->ack(m);
    } else {
      settle_ack(m);  // duplicate of a consumption that may be unanchored
    }
    return false;
  }
  return true;
}

void MdcdEngine::settle_ack(const Message& m) {
  // Paper-faithful transport semantics: ack at consumption. The original
  // P1act has a constant contamination flag and would defer forever; it
  // acks immediately too (its baselines do not rely on this machinery).
  const bool gated =
      config_.tracking == ContaminationTracking::kWatermark &&
      !(config_.variant == MdcdVariant::kOriginal && role_ == Role::kP1Act);
  if (gated && contamination_flag()) {
    deferred_acks_.push_back(AckKey{m.sender, m.transport_seq});
    return;
  }
  services_.transport->ack(m);
}

void MdcdEngine::flush_deferred_acks() {
  for (const AckKey& key : deferred_acks_) {
    Message m;
    m.sender = key.sender;
    m.transport_seq = key.transport_seq;
    services_.transport->ack(m);
  }
  deferred_acks_.clear();
}

// ---- Blocking ---------------------------------------------------------------

void MdcdEngine::begin_blocking() {
  SYNERGY_EXPECTS(!blocking_);
  blocking_ = true;
  trace(TraceKind::kBlockStart);
}

void MdcdEngine::end_blocking() {
  SYNERGY_EXPECTS(blocking_);
  blocking_ = false;
  trace(TraceKind::kBlockEnd);
  // Drain deferred operations in arrival order. Handlers may re-enter
  // blocking only from the TB layer, which never does so synchronously
  // here; new deferrals during the drain would indicate a logic error.
  std::deque<Deferred> pending;
  pending.swap(deferred_);
  for (auto& op : pending) {
    if (!alive_) break;
    if (auto* send = std::get_if<SendReq>(&op)) {
      bump_protocol_version();
      do_app_send(send->external, send->input);
    } else if (auto* step = std::get_if<StepReq>(&op)) {
      on_local_step(step->input);
    } else if (std::get_if<ConfLossReq>(&op)) {
      process_confidence_loss();
    } else {
      const Message& m = std::get<Message>(op);
      if (m.kind == MsgKind::kPassedAt) {
        process_passed_at(m);
      } else {
        process_app_message(m);
      }
    }
  }
}

// ---- Coordination helpers -----------------------------------------------------

bool MdcdEngine::ndc_gate_ok(const Message& m) {
  if (config_.variant == MdcdVariant::kOriginal) return true;
  StableSeq expected = ndc();
  if (config_.gate_mode == NdcGateMode::kBlockingAware && in_blocking() &&
      contamination_flag() && expected > 0) {
    // Our in-progress checkpoint already carries the incremented Ndc; a
    // peer that has not expired yet reports against the previous line.
    expected -= 1;
  }
  if (m.ndc == expected) return true;
  trace(TraceKind::kNdcGateReject, {}, m.ndc, expected);
  return false;
}

bool MdcdEngine::effectively_dirty(const Message& m) {
  // Validity-VIEW suspicion only. The dirty-bit / Type-1 decision always
  // takes the piggybacked flag at face value: a contaminated sender's
  // stable contents are a pre-send copy, so the receiver's contents must
  // be a pre-receipt copy too — filtering the flag would let a current-
  // state receiver checkpoint reflect a receipt the sender's copy never
  // sent. A stale flag therefore costs a false-alarm anchor (cleared by
  // the next covering validation), never a line split.
  if (!m.dirty) return false;
  if (config_.tracking == ContaminationTracking::kPaperDirtyBit) return true;
  if (m.contam_sn <= validated_w_) {
    trace(TraceKind::kStaleDirtyIgnored, {}, m.contam_sn, validated_w_);
    return false;
  }
  return true;
}

void MdcdEngine::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  bump_protocol_version();
  trace(TraceKind::kDirtySet);
}

void MdcdEngine::clear_dirty() {
  if (!dirty_) return;
  dirty_ = false;
  dirty_contam_ = 0;
  bump_protocol_version();
  trace(TraceKind::kDirtyClear);
  if (!contamination_flag()) {
    flush_deferred_acks();
    notify_contamination_cleared();
  }
}

void MdcdEngine::note_validation(MsgSeq watermark) {
  validated_w_ = std::max(validated_w_, watermark);
  bump_protocol_version();
  if (config_.tracking == ContaminationTracking::kPaperDirtyBit) {
    sent_views_.validate_all();
    recv_views_.validate_all();
  } else {
    sent_views_.validate_covered(watermark);
    recv_views_.validate_covered(watermark);
  }
}

bool MdcdEngine::validation_covers_dirt(MsgSeq watermark) const {
  if (config_.tracking == ContaminationTracking::kPaperDirtyBit) return true;
  return dirty_contam_ <= watermark;
}

void MdcdEngine::absorb_contamination(const Message& m) {
  dirty_contam_ = std::max(dirty_contam_, m.contam_sn);
  bump_protocol_version();
}

void MdcdEngine::fence_all_below(std::uint32_t epoch) {
  fence_all_ = std::max(fence_all_, epoch);
}

void MdcdEngine::fence_dirty_below(std::uint32_t epoch) {
  fence_dirty_ = std::max(fence_dirty_, epoch);
}

// ---- Message construction ------------------------------------------------------

Message MdcdEngine::base_message(MsgKind kind, ProcessId to,
                                 std::uint64_t payload, bool tainted) const {
  Message m;
  m.kind = kind;
  m.receiver = to;
  m.payload = payload;
  m.tainted = tainted;
  m.ndc = ndc();
  m.epoch = epoch_;
  return m;
}

void MdcdEngine::send_recorded(Message m, bool suspect) {
  const ProcessId to = m.receiver;
  const MsgSeq sn = m.sn;
  const MsgSeq contam = m.contam_sn;
  const MsgKind kind = m.kind;
  const std::uint64_t seq = services_.transport->send(std::move(m));
  if (config_.record_history && kind != MsgKind::kPassedAt) {
    sent_views_.add(MsgView{to, seq, sn, kind, suspect, contam});
    bump_protocol_version();
  }
  if (tracing()) {
    trace(TraceKind::kSend,
          std::string(to_string(kind)) + "->" + to_string(to), sn, seq);
  }
}

void MdcdEngine::record_recv(const Message& m, bool suspect) {
  if (config_.record_history && m.kind != MsgKind::kPassedAt) {
    recv_views_.add(MsgView{m.sender, m.transport_seq, m.sn, m.kind, suspect,
                            m.contam_sn});
    bump_protocol_version();
  }
}

// ---- Checkpointing ---------------------------------------------------------------

CheckpointRecord MdcdEngine::make_record(CkptKind kind) const {
  // Vote before any capture: a checkpoint must never snapshot an outvoted
  // lane's corruption. A masked vote repairs the primary in place first; an
  // unmaskable divergence still captures (the rollback the voter's caller
  // requests will supersede this record anyway).
  if (services_.lanes) services_.lanes->vote();
  CheckpointRecord rec;
  rec.kind = kind;
  rec.owner = self();
  rec.established_at = now();
  rec.state_time = now();
  rec.dirty_bit = contamination_flag();
  rec.ndc = ndc();
  // Version-cached shared blobs: repeated checkpoints of an unchanged
  // process (e.g. clean-state TB timer expiries) alias the same immutable
  // buffers instead of re-encoding three snapshots per record.
  rec.app_state = services_.app->snapshot_shared();
  rec.protocol_state =
      proto_cache_.get(protocol_version_, [this] {
        return snapshot_protocol_state();
      });
  rec.transport_state = services_.transport->snapshot_state_shared();
  const std::span<const Message> unacked = services_.transport->unacked();
  rec.unacked.assign(unacked.begin(), unacked.end());
  return rec;
}

void MdcdEngine::establish_volatile_checkpoint(CkptKind kind) {
  services_.vstore->save(make_record(kind));
  ++vckpts_;
  trace(TraceKind::kCkptVolatile, to_string(kind));
}

void MdcdEngine::restore_from_record(const CheckpointRecord& record) {
  services_.app->restore(record.app_state);
  restore_protocol_state(record.protocol_state);
  services_.transport->restore_state(record.transport_state);
  services_.transport->restore_unacked(record.unacked);
  deferred_.clear();
  deferred_acks_.clear();  // the rolled-back consumptions never happened
  blocking_ = false;
  // Every replica realigns with the restored primary; latent lane faults
  // were erased by the rollback (counted silent, not detected).
  if (services_.lanes) services_.lanes->resync_after_restore();
}

Bytes MdcdEngine::snapshot_protocol_state() const {
  ByteWriter w;
  w.u8(dirty_ ? 1 : 0);
  w.u64(msg_sn_);
  w.u8(guarded_ ? 1 : 0);
  w.u64(validated_w_);
  w.u64(dirty_contam_);
  sent_views_.serialize(w);
  recv_views_.serialize(w);
  serialize_role_state(w);
  return w.take();
}

void MdcdEngine::restore_protocol_state(const Bytes& state) {
  ByteReader r(state);
  dirty_ = r.u8() != 0;
  msg_sn_ = r.u64();
  guarded_ = r.u8() != 0;
  validated_w_ = r.u64();
  dirty_contam_ = r.u64();
  sent_views_ = ViewLog::deserialize(r);
  recv_views_ = ViewLog::deserialize(r);
  deserialize_role_state(r);
  // The restored state may differ from whatever the cache last encoded;
  // a conservative bump costs one re-encode, a stale hit would be a bug.
  bump_protocol_version();
}

void MdcdEngine::serialize_role_state(ByteWriter&) const {}
void MdcdEngine::deserialize_role_state(ByteReader&) {}

}  // namespace synergy
