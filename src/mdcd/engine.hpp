// MDCD protocol engine — shared machinery for the three roles.
//
// One engine instance embodies one process's error-containment algorithm
// (paper Appendix A gives the per-role algorithms; P1ActEngine, P1SdwEngine
// and P2Engine implement them on top of this base). The base owns:
//
//   - the dirty bit, its trace/observer plumbing, and Type-1 checkpoint
//     placement (immediately before contamination);
//   - msg_SN bookkeeping and sent/received validity views (the oracles'
//     ground for the paper's consistency/recoverability properties);
//   - blocking-period behaviour: application sends/steps/receives are
//     deferred, while (modified variant) passed-AT notifications are still
//     monitored with the Ndc gate;
//   - recovery-epoch fencing of stale messages;
//   - volatile checkpoint establishment and state restoration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <variant>

#include "mdcd/checkpointable.hpp"
#include "mdcd/config.hpp"
#include "mdcd/services.hpp"
#include "mdcd/views.hpp"
#include "storage/checkpoint.hpp"

namespace synergy {

class MdcdEngine : public CheckpointableProcess {
 public:
  MdcdEngine(Role role, const MdcdConfig& config, ProcessServices services);
  ~MdcdEngine() override = default;

  MdcdEngine(const MdcdEngine&) = delete;
  MdcdEngine& operator=(const MdcdEngine&) = delete;

  Role role() const { return role_; }
  ProcessId self() const override { return services_.self; }
  const MdcdConfig& config() const { return config_; }

  // ---- Workload events -------------------------------------------------

  /// The application wants to emit a message (external or internal). The
  /// role decides what that means: AT + send, checkpoint-then-send,
  /// suppress-and-log, ... Deferred if a blocking period is active.
  void on_app_send(bool external, std::uint64_t input);

  /// One local computation step. Deferred during blocking.
  void on_local_step(std::uint64_t input);

  /// Redundant-execution coverage was lost (CFCSS signature mismatch):
  /// treat it like a failed AT feeding the dirty-bit machinery — anchor a
  /// Type-1 checkpoint and mark the state suspect until the next covering
  /// validation. Deferred during blocking (only passed-AT notifications
  /// may be processed then); the event is queued, never dropped.
  void on_confidence_loss();

  // ---- Transport events -------------------------------------------------

  /// Entry point for every non-ack delivery addressed to this process.
  void on_message(const Message& m);

  // ---- Blocking control (driven by the TB layer) -------------------------

  void begin_blocking() override;
  void end_blocking() override;
  bool in_blocking() const override { return blocking_; }

  // ---- Coordination surface ----------------------------------------------

  bool dirty() const { return dirty_; }

  /// The contamination bit the TB layer consults when choosing stable
  /// checkpoint contents: the dirty bit, except for P1act under the
  /// modified protocol, where it is pseudo_dirty_bit (paper footnote 2).
  bool contamination_flag() const override { return dirty_; }

  /// Supplies the process's current stable-checkpoint sequence number
  /// (owned by the TB engine). Defaults to a constant 0, which makes the
  /// Ndc gate vacuous when no TB protocol runs — the original MDCD setup.
  void set_ndc_provider(std::function<StableSeq()> fn);

  /// Observer fired whenever the contamination flag transitions 1 -> 0
  /// (the adapted TB engine uses it to abort-and-replace an in-progress
  /// stable write during a blocking period).
  void set_contamination_cleared_observer(std::function<void()> fn) override;

  /// Observer fired on every local validation event (own AT pass or an
  /// accepted passed-AT notification). The write-through baseline hangs
  /// its stable Type-2 writes off this.
  void set_validation_observer(std::function<void()> fn);

  // ---- Recovery / lifecycle ----------------------------------------------

  std::uint32_t epoch() const { return epoch_; }
  void set_epoch(std::uint32_t e) { epoch_ = e; }
  /// Drop application messages below these epochs at consumption: a
  /// hardware rollback fences everything, a software recovery fences only
  /// dirty-flagged messages (exactly the sends undone by contaminated
  /// processes).
  void fence_all_below(std::uint32_t epoch);
  void fence_dirty_below(std::uint32_t epoch);

  /// Guarded operation: the low-confidence version is in service. When
  /// guarded mode ends (successful upgrade or takeover), dirty bits stay 0
  /// and MDCD "goes on leave" (paper §4.2).
  bool guarded() const { return guarded_; }
  virtual void set_guarded(bool guarded) {
    guarded_ = guarded;
    bump_protocol_version();
  }

  /// A terminated engine ignores all events (P1act after takeover; any
  /// process while its node is crashed).
  bool alive() const override { return alive_; }
  void kill() { alive_ = false; }
  void revive() { alive_ = true; }

  // ---- Checkpointing -----------------------------------------------------

  /// Build a checkpoint record of the *current* instant: application
  /// snapshot, protocol state, transport dedup state and unacked log.
  CheckpointRecord make_record(CkptKind kind) const override;

  /// Establish a volatile checkpoint of the current state.
  void establish_volatile_checkpoint(CkptKind kind);

  /// Restore process state from a checkpoint record (software rollback or
  /// hardware recovery). Clears deferred/held queues and blocking.
  void restore_from_record(const CheckpointRecord& record);

  /// The most recent volatile checkpoint (rollback target).
  const std::optional<CheckpointRecord>& latest_volatile() const override {
    return services_.vstore->latest();
  }

  Bytes snapshot_protocol_state() const;
  void restore_protocol_state(const Bytes& state);

  // ---- Oracle / diagnostics surface ---------------------------------------

  /// Current true time as seen through the host services (used by
  /// coordination layers for trace stamps).
  TimePoint current_time() const override { return services_.now(); }

  const ViewLog& sent_views() const { return sent_views_; }
  const ViewLog& recv_views() const { return recv_views_; }
  MsgSeq msg_sn() const { return msg_sn_; }
  std::uint64_t volatile_checkpoints() const { return vckpts_; }
  /// Operations deferred by blocking periods so far (overhead metric).
  std::uint64_t deferred_ops() const { return deferred_ops_; }

  /// Monotone mutation stamp of the serialized protocol state. Bumped
  /// conservatively: at every event-dispatch site that can reach a role
  /// hook, and by every helper that touches a serialized field. An
  /// over-bump wastes one re-encode; an under-bump would hand out a stale
  /// checkpoint blob (the invalidation test hunts for those).
  std::uint64_t protocol_version() const { return protocol_version_; }
  std::uint64_t protocol_cache_hits() const { return proto_cache_.hits(); }
  std::uint64_t protocol_cache_misses() const {
    return proto_cache_.misses();
  }
  std::uint64_t protocol_bytes_encoded() const {
    return proto_cache_.bytes_encoded();
  }

 protected:
  // Role hooks, invoked outside blocking (or after deferral).
  virtual void do_app_send(bool external, std::uint64_t input) = 0;
  virtual void do_passed_at(const Message& m) = 0;
  virtual void do_app_message(const Message& m) = 0;
  virtual void serialize_role_state(ByteWriter& w) const;
  virtual void deserialize_role_state(ByteReader& r);

  /// How this role marks its state suspect on a confidence-loss event.
  /// Base: set the dirty bit. P1act (modified) overrides — its dirty bit
  /// is constant 1; received-contamination carries the suspicion instead.
  virtual void note_confidence_loss();

  // Shared helpers for role implementations.

  /// Application mutations route through the lane fan-out when redundant
  /// lanes are configured, so every replica replays the same history.
  void app_apply_message(std::uint64_t payload, bool payload_tainted);
  void app_local_step(std::uint64_t input);
  void app_corrupt(std::uint64_t noise);

  /// Vote the lanes at a send boundary. Returns false when the voter found
  /// an unmaskable divergence: the rollback handler has fired and the
  /// caller must abort the send (never forward a suspect message).
  /// Schemes without lanes trivially agree.
  bool vote_lanes();

  /// True iff the passed-AT notification passes the Ndc gate (modified
  /// variant: piggybacked Ndc must equal the local Ndc; original variant:
  /// always true).
  bool ndc_gate_ok(const Message& m);

  /// Is this message to be treated as potentially contaminating? Paper
  /// mode: the piggybacked dirty bit verbatim. Watermark mode: a dirty
  /// flag whose contamination watermark is already validated is stale and
  /// ignored.
  bool effectively_dirty(const Message& m);

  void mark_dirty();
  void clear_dirty();

  /// Record that contamination up to component-1 SN `watermark` has been
  /// validated: raises validated_w_ and upgrades the covered views (all
  /// views in paper mode).
  void note_validation(MsgSeq watermark);

  /// Does a validation covering `watermark` clear the *current* dirt?
  /// (Always true in paper mode, matching Appendix A's unconditional
  /// reset.)
  bool validation_covers_dirt(MsgSeq watermark) const;

  /// Track the watermark of newly consumed contamination.
  void absorb_contamination(const Message& m);

  /// Validation-gated acknowledgment: ack `m` now if the current state is
  /// a valid recovery anchor (contamination flag clear), else defer until
  /// the flag clears. Paper tracking mode acks immediately (Neves-Fuchs
  /// transport semantics).
  void settle_ack(const Message& m);

  /// Send every deferred ack (the contamination flag just cleared: the
  /// current state, which anchors those consumptions, is now the recovery
  /// content).
  void flush_deferred_acks();

  /// Dedup + ack + epoch fence. Returns true iff the message should be
  /// processed.
  bool consume_or_drop(const Message& m);

  /// Compose an outgoing message stamped with epoch/Ndc.
  Message base_message(MsgKind kind, ProcessId to, std::uint64_t payload,
                       bool tainted) const;

  /// Send + record the sent view (suspect per `suspect`; the view's
  /// contamination watermark is taken from m.contam_sn).
  void send_recorded(Message m, bool suspect);

  void record_recv(const Message& m, bool suspect);

  /// Detail is a view: no std::string is materialized unless tracing is
  /// actually enabled (campaigns run with it off; this is per-message hot).
  void trace(TraceKind kind, std::string_view detail = {}, std::uint64_t a = 0,
             std::uint64_t b = 0) const;
  bool tracing() const { return services_.trace != nullptr; }
  /// Roles call this whenever they mutate serialized role state outside
  /// the dispatched event hooks (which bump automatically).
  void bump_protocol_version() { ++protocol_version_; }
  TimePoint now() const { return services_.now(); }
  StableSeq ndc() const { return ndc_provider_(); }
  void notify_contamination_cleared();
  void notify_validation();

  Role role_;
  MdcdConfig config_;
  ProcessServices services_;

  bool dirty_ = false;
  MsgSeq msg_sn_ = 0;
  bool guarded_ = true;
  bool alive_ = true;
  /// Highest component-1 SN known validated (watermark tracking).
  MsgSeq validated_w_ = 0;
  /// Highest contamination watermark absorbed since last clean.
  MsgSeq dirty_contam_ = 0;
  ViewLog sent_views_;
  ViewLog recv_views_;

 private:
  struct SendReq {
    bool external;
    std::uint64_t input;
  };
  struct StepReq {
    std::uint64_t input;
  };
  struct ConfLossReq {};
  using Deferred = std::variant<SendReq, StepReq, Message, ConfLossReq>;

  void process_passed_at(const Message& m);
  void process_app_message(const Message& m);
  void process_confidence_loss();

  struct AckKey {
    ProcessId sender;
    std::uint64_t transport_seq;
  };

  bool blocking_ = false;
  std::deque<Deferred> deferred_;
  std::vector<AckKey> deferred_acks_;
  std::uint32_t epoch_ = 0;
  std::uint32_t fence_all_ = 0;
  std::uint32_t fence_dirty_ = 0;
  std::function<StableSeq()> ndc_provider_ = [] { return StableSeq{0}; };
  std::function<void()> contamination_cleared_;
  std::function<void()> validation_observer_;
  std::uint64_t vckpts_ = 0;
  std::uint64_t deferred_ops_ = 0;
  std::uint64_t protocol_version_ = 0;
  mutable SnapshotCache proto_cache_;
};

}  // namespace synergy
