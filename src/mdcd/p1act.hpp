// P1act — the active process of the low-confidence version.
//
// Implements the Appendix A algorithm (Figure 8). P1act's actual dirty bit
// is constant 1 during guarded operation (its state is invariably
// potentially contaminated); under the modified protocol it additionally
// maintains pseudo_dirty_bit, reset on validation events and set
// immediately before sending the first internal message since the last
// validation — at which point a *pseudo checkpoint* is established so that
// P1act can participate in stable-storage checkpointing.
#pragma once

#include "mdcd/engine.hpp"

namespace synergy {

class P1ActEngine final : public MdcdEngine {
 public:
  P1ActEngine(const MdcdConfig& config, ProcessServices services);

  /// Modified protocol: pseudo_dirty_bit (paper footnote 2) OR the
  /// received-contamination bit — a library completion: P2's dirty
  /// messages contaminate P1act's state just like they contaminate
  /// P1sdw's, and a stable checkpoint of that state must not pair a
  /// current P1act with a rolled-back P2. Original protocol: the actual
  /// dirty bit (constant 1 while guarded).
  bool contamination_flag() const override;

  bool pseudo_dirty() const { return pseudo_dirty_; }
  bool recv_dirty() const { return recv_dirty_; }

 protected:
  void do_app_send(bool external, std::uint64_t input) override;
  void do_passed_at(const Message& m) override;
  void do_app_message(const Message& m) override;
  void note_confidence_loss() override;
  void serialize_role_state(ByteWriter& w) const override;
  void deserialize_role_state(ByteReader& r) override;

 private:
  void clear_pseudo_dirty();
  void clear_recv_dirty();
  void maybe_all_clear();

  bool pseudo_dirty_ = false;
  bool recv_dirty_ = false;
};

}  // namespace synergy
