// P2 — the active process of the second, high-confidence component.
//
// Implements the Appendix A algorithm (Figure 10). P2 becomes potentially
// contaminated by consuming dirty-flagged messages from P1act (Type-1
// checkpoint immediately before); it validates its own external messages
// by AT only while potentially contaminated, and on a pass broadcasts a
// passed-AT notification carrying the last P1act message SN it has seen —
// which is how P1sdw learns which of P1act's messages are now valid.
#pragma once

#include "mdcd/engine.hpp"

namespace synergy {

class P2Engine final : public MdcdEngine {
 public:
  P2Engine(const MdcdConfig& config, ProcessServices services);

  /// Last message SN received from component 1 (paper: msg_SN_P1act).
  MsgSeq p1act_sn_seen() const { return p1act_sn_seen_; }

 protected:
  void do_app_send(bool external, std::uint64_t input) override;
  void do_passed_at(const Message& m) override;
  void do_app_message(const Message& m) override;
  void serialize_role_state(ByteWriter& w) const override;
  void deserialize_role_state(ByteReader& r) override;

 private:
  MsgSeq p1act_sn_seen_ = 0;
};

}  // namespace synergy
