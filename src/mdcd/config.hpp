// MDCD protocol configuration.
#pragma once

namespace synergy {

/// Which MDCD algorithm set a process runs.
enum class MdcdVariant {
  /// The original protocol (paper §2.1, Figure 1): Type-1 and Type-2
  /// volatile checkpoints; P1act exempt from checkpointing; no Ndc
  /// awareness (passed-AT notifications are never gated).
  kOriginal,
  /// The modified protocol (paper §3, Appendix A, Figure 3): P1act
  /// maintains pseudo_dirty_bit and pseudo checkpoints; Type-2
  /// checkpoints are eliminated; passed-AT handling is gated on the
  /// piggybacked stable-checkpoint sequence number Ndc and is processed
  /// even during TB blocking periods.
  kModified,
};

inline const char* to_string(MdcdVariant v) {
  return v == MdcdVariant::kOriginal ? "original" : "modified";
}

/// How the modified protocol gates passed-AT notifications on the
/// piggybacked stable-checkpoint sequence number.
enum class NdcGateMode {
  /// Paper-faithful (Appendix A): accept iff m.Ndc == local Ndc.
  kPaper,
  /// Library extension: while a *contaminated* process is inside its
  /// blocking period its local Ndc has already been incremented for the
  /// in-progress checkpoint, but a peer that has not yet reached its own
  /// timer expiry still piggybacks the previous value. The validation it
  /// reports WILL be reflected in that peer's equally-numbered checkpoint,
  /// so the correct acceptance test there is m.Ndc == local Ndc - 1. The
  /// paper's equality gate rejects these and can strand a valid message
  /// outside the recovery line (see DESIGN.md and the gate ablation bench).
  kBlockingAware,
};

inline const char* to_string(NdcGateMode m) {
  return m == NdcGateMode::kPaper ? "paper" : "blocking_aware";
}

/// How contamination knowledge propagates with messages.
enum class ContaminationTracking {
  /// Paper-faithful (Appendix A): the piggybacked dirty bit is taken at
  /// face value, and every accepted validation event clears the dirty bit
  /// and upgrades all suspect views unconditionally. This admits two
  /// races our property sweeps expose (see DESIGN.md): a message sent
  /// just before its sender processed a validation re-dirties its
  /// receiver on a stale flag (splitting the recovery line), and a stale
  /// in-flight validation can clear contamination it does not cover.
  kPaperDirtyBit,
  /// Library correction: messages carry a contamination watermark (the
  /// highest component-1 SN the sender's contamination depends on) and
  /// validations carry the SN they cover. Receivers ignore dirty flags
  /// whose watermark they already know to be validated, clear dirty bits
  /// only when the validation covers the current contamination, and
  /// upgrade only the views the validation covers.
  kWatermark,
};

inline const char* to_string(ContaminationTracking t) {
  return t == ContaminationTracking::kPaperDirtyBit ? "paper_dirty_bit"
                                                    : "watermark";
}

struct MdcdConfig {
  MdcdVariant variant = MdcdVariant::kModified;
  NdcGateMode gate_mode = NdcGateMode::kBlockingAware;
  ContaminationTracking tracking = ContaminationTracking::kWatermark;
  /// Record per-message sent/received validity views inside the protocol
  /// state. Required by the global-state consistency/recoverability
  /// oracles; can be disabled for long-running performance sweeps.
  bool record_history = true;
};

}  // namespace synergy
