// Software error recovery (MDCD).
//
// On an acceptance-test failure, P1sdw takes over P1act's active role and
// every surviving process makes a *local* decision: roll back to its most
// recent volatile checkpoint if its dirty bit is set, roll forward
// otherwise. The paper's theorems (proved in [5]) guarantee the resulting
// global state satisfies validity-concerned consistency and
// recoverability; our property tests check exactly that via the analysis
// module. After rollback/roll-forward, P1sdw replays its suppressed
// message log beyond VR.
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.hpp"
#include "mdcd/p1act.hpp"
#include "mdcd/p1sdw.hpp"
#include "mdcd/p2.hpp"

namespace synergy {

struct SwRecoveryStats {
  ProcessId detector;
  bool p1sdw_rolled_back = false;
  bool p2_rolled_back = false;
  /// Computation undone by each rollback (zero if rolled forward).
  Duration p1sdw_rollback_distance = Duration::zero();
  Duration p2_rollback_distance = Duration::zero();
  std::size_t replayed_messages = 0;
};

class SoftwareRecoveryManager {
 public:
  SoftwareRecoveryManager(P1ActEngine& p1act, P1SdwEngine& p1sdw,
                          P2Engine& p2, std::function<TimePoint()> now,
                          TraceLog* trace);

  /// Execute the full recovery: terminate P1act, apply local
  /// rollback/roll-forward decisions, bump the recovery epoch, take over,
  /// and replay. `new_epoch` must be strictly greater than every engine's
  /// current epoch.
  SwRecoveryStats recover(ProcessId detector, std::uint32_t new_epoch);

  bool recovered() const { return recovered_; }

 private:
  Duration apply_local_decision(MdcdEngine& engine, bool& rolled_back);

  P1ActEngine& p1act_;
  P1SdwEngine& p1sdw_;
  P2Engine& p2_;
  std::function<TimePoint()> now_;
  TraceLog* trace_;
  bool recovered_ = false;
};

}  // namespace synergy
