#include "mdcd/recovery.hpp"

#include "common/assert.hpp"

namespace synergy {

SoftwareRecoveryManager::SoftwareRecoveryManager(
    P1ActEngine& p1act, P1SdwEngine& p1sdw, P2Engine& p2,
    std::function<TimePoint()> now, TraceLog* trace)
    : p1act_(p1act), p1sdw_(p1sdw), p2_(p2), now_(std::move(now)),
      trace_(trace) {
  SYNERGY_EXPECTS(now_ != nullptr);
}

SwRecoveryStats SoftwareRecoveryManager::recover(ProcessId detector,
                                                 std::uint32_t new_epoch) {
  SYNERGY_EXPECTS(!recovered_);
  SwRecoveryStats stats;
  stats.detector = detector;
  const TimePoint t = now_();
  if (trace_) {
    trace_->record(t, detector, TraceKind::kSwErrorDetected);
  }

  // 1. The active low-confidence process is terminated.
  p1act_.kill();

  // 2. Local rollback / roll-forward decisions, based solely on each
  //    process's own dirty bit (no message exchange).
  struct Survivor {
    MdcdEngine* engine;
    bool* rolled_back;
    Duration* distance;
  };
  const Survivor survivors[] = {
      {&p1sdw_, &stats.p1sdw_rolled_back, &stats.p1sdw_rollback_distance},
      {&p2_, &stats.p2_rolled_back, &stats.p2_rollback_distance},
  };
  for (const auto& s : survivors) {
    if (!s.engine->alive()) {
      // A hardware-crashed survivor has no volatile checkpoint (RAM is
      // gone) and its state is about to be rebuilt from stable storage by
      // hardware recovery anyway; rolling it back here would double-recover
      // it. Its dirty bit, if set, rides along in the stable record.
      *s.rolled_back = false;
      continue;
    }
    if (s.engine->dirty()) {
      // A dirty process always has a volatile checkpoint: Type-1 was
      // established immediately before it became dirty.
      const auto& record = s.engine->latest_volatile();
      SYNERGY_ASSERT(record.has_value());
      s.engine->restore_from_record(*record);
      *s.rolled_back = true;
      *s.distance = t - record->state_time;
      if (trace_) {
        trace_->record(t, s.engine->self(), TraceKind::kRollback,
                       to_string(record->kind));
      }
    } else {
      *s.rolled_back = false;
      if (trace_) {
        trace_->record(t, s.engine->self(), TraceKind::kRollForward);
      }
    }
  }

  // 3. Guarded operation ends; MDCD goes on leave (dirty bits stay 0).
  MdcdEngine* const all[] = {&p1act_, &p1sdw_, &p2_};
  for (MdcdEngine* engine : all) {
    engine->set_guarded(false);
    engine->set_epoch(new_epoch);
    // Fence the sends that contaminated processes just undid: every one of
    // them was dirty-flagged on the wire.
    engine->fence_dirty_below(new_epoch);
  }

  // 4. Takeover + replay (with the new epoch, so replays are not fenced).
  stats.replayed_messages = p1sdw_.takeover();

  if (trace_) {
    trace_->record(now_(), p1sdw_.self(), TraceKind::kSwRecoveryDone);
  }
  recovered_ = true;
  return stats;
}

}  // namespace synergy
