// Per-message validity views.
//
// The paper's correctness properties are stated over *views on message
// validity*: in a recovered global state, sender and receiver must agree
// on whether each reflected message is valid (validated) or suspect
// (sent from a potentially contaminated state, not yet covered by an
// acceptance test). Engines therefore keep, as part of their protocol
// state, a log of sent and received application-purpose messages together
// with the local validity view. The global-state checkers compare these
// logs across checkpoints.
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace synergy {

struct MsgView {
  ProcessId peer;               ///< The other party (receiver for sent,
                                ///< sender for received entries).
  std::uint64_t transport_seq;  ///< Identity of the message.
  MsgSeq sn;                    ///< Protocol sequence number.
  MsgKind kind;                 ///< kInternal or kExternal.
  bool suspect;                 ///< Local view: not yet validated.
  /// Contamination watermark the entry's suspicion depends on (the
  /// message's contam_sn). A validation covering this SN upgrades it.
  MsgSeq contam_sn = 0;

  friend bool operator==(const MsgView&, const MsgView&) = default;
};

/// Append-only log of message views with bulk validation upgrades.
class ViewLog {
 public:
  void add(MsgView view) { views_.push_back(view); }

  /// A validation event (own AT pass, or accepted passed-AT notification)
  /// upgrades every suspect entry to valid. Returns how many changed.
  std::size_t validate_all();

  /// Watermark-scoped upgrade: only suspect entries whose contamination
  /// watermark is covered (contam_sn <= watermark) become valid.
  std::size_t validate_covered(MsgSeq watermark);

  /// Inline-small storage: short logs (the steady state between
  /// checkpoints) never touch the heap.
  using Entries = SmallVec<MsgView, 8>;
  const Entries& entries() const { return views_; }
  std::size_t size() const { return views_.size(); }
  void clear() { views_.clear(); }

  void serialize(ByteWriter& w) const;
  static ViewLog deserialize(ByteReader& r);

 private:
  Entries views_;
};

}  // namespace synergy
