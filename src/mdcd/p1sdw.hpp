// P1sdw — the shadow process of the high-confidence version.
//
// Implements the Appendix A algorithm (Figure 9). During guarded operation
// every outgoing message is suppressed and logged; the valid-message
// register VR tracks the last P1act message validated by an acceptance
// test (via passed-AT notifications), and the log is reclaimed up to VR.
// On takeover (software error recovery) P1sdw assumes the active role and
// replays its logged messages beyond VR — its own, high-confidence versions
// of the computations P1act got wrong.
#pragma once

#include "common/small_vec.hpp"
#include "mdcd/engine.hpp"

namespace synergy {

class P1SdwEngine final : public MdcdEngine {
 public:
  P1SdwEngine(const MdcdConfig& config, ProcessServices services);

  bool active() const { return active_; }

  /// Last valid message SN of P1act (paper: VR_P1act).
  MsgSeq vr_p1act() const { return vr_p1act_; }

  const SmallVec<Message, 4>& suppressed_log() const { return msg_log_; }

  /// Assume the active role and replay logged messages beyond VR. Invoked
  /// by the software recovery manager after rollback/roll-forward
  /// decisions have been applied. Returns the number of replayed messages.
  std::size_t takeover();

 protected:
  void do_app_send(bool external, std::uint64_t input) override;
  void do_passed_at(const Message& m) override;
  void do_app_message(const Message& m) override;
  void serialize_role_state(ByteWriter& w) const override;
  void deserialize_role_state(ByteReader& r) override;

 private:
  void active_send(bool external, std::uint64_t payload, bool tainted);

  bool active_ = false;
  MsgSeq vr_p1act_ = 0;
  SmallVec<Message, 4> msg_log_;
};

}  // namespace synergy
