#include "mdcd/p1sdw.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace synergy {

P1SdwEngine::P1SdwEngine(const MdcdConfig& config, ProcessServices services)
    : MdcdEngine(Role::kP1Sdw, config, std::move(services)) {}

void P1SdwEngine::do_app_send(bool external, std::uint64_t input) {
  // Vote before computing the outgoing value — in guarded mode too: the
  // suppressed log must never record a suspect payload (takeover replays
  // it). A divergence aborts; the voter already requested a rollback.
  if (!vote_lanes()) return;
  app_local_step(input);
  const std::uint64_t payload = services_.app->output();
  const bool tainted = services_.app->tainted();
  ++msg_sn_;

  if (active_) {
    active_send(external, payload, tainted);
    return;
  }

  // Guarded operation: suppress and log (Figure 9).
  Message m = external
                  ? base_message(MsgKind::kExternal, kDeviceId, payload,
                                 tainted)
                  : base_message(MsgKind::kInternal, kP2, payload, tainted);
  m.sn = msg_sn_;
  m.dirty = dirty_;
  m.contam_sn = dirty_ ? dirty_contam_ : 0;
  msg_log_.push_back(m);
  trace(TraceKind::kSuppressSend, std::string(to_string(m.kind)), m.sn);
}

void P1SdwEngine::active_send(bool external, std::uint64_t payload,
                              bool tainted) {
  // Post-takeover behaviour mirrors P2's algorithm: AT-validate external
  // messages only when potentially contaminated.
  if (external) {
    if (dirty_) {
      SYNERGY_ASSERT(services_.at != nullptr);
      if (services_.at->run(tainted)) {
        trace(TraceKind::kAtPass, "external", msg_sn_);
        note_validation(msg_sn_);
        clear_dirty();
        if (config_.variant == MdcdVariant::kOriginal) {
          establish_volatile_checkpoint(CkptKind::kType2);
        }
        notify_validation();
        Message ext =
            base_message(MsgKind::kExternal, kDeviceId, payload, tainted);
        ext.sn = msg_sn_;
        send_recorded(std::move(ext), /*suspect=*/false);
        Message note = base_message(MsgKind::kPassedAt, kP2, 0, false);
        note.sn = msg_sn_;
        send_recorded(std::move(note), /*suspect=*/false);
      } else {
        trace(TraceKind::kAtFail, "external", msg_sn_);
        services_.request_sw_recovery(self());
      }
      return;
    }
    Message ext =
        base_message(MsgKind::kExternal, kDeviceId, payload, tainted);
    ext.sn = msg_sn_;
    send_recorded(std::move(ext), /*suspect=*/false);
    return;
  }
  Message m = base_message(MsgKind::kInternal, kP2, payload, tainted);
  m.sn = msg_sn_;
  m.dirty = dirty_;
  m.contam_sn = dirty_ ? dirty_contam_ : 0;
  send_recorded(std::move(m), /*suspect=*/dirty_);
}

void P1SdwEngine::do_passed_at(const Message& m) {
  if (!ndc_gate_ok(m)) return;
  // VR := last valid message SN of P1act; reclaim the validated prefix of
  // the suppressed-message log (Figure 9).
  vr_p1act_ = std::max(vr_p1act_, m.sn);
  msg_log_.erase(
      std::remove_if(msg_log_.begin(), msg_log_.end(),
                     [this](const Message& logged) {
                       return logged.sn <= vr_p1act_;
                     }),
      msg_log_.end());
  note_validation(m.sn);
  if (dirty_ && validation_covers_dirt(m.sn)) {
    clear_dirty();
    if (config_.variant == MdcdVariant::kOriginal) {
      establish_volatile_checkpoint(CkptKind::kType2);
    }
  }
  notify_validation();
}

void P1SdwEngine::do_app_message(const Message& m) {
  // Type-1 checkpoint immediately before the state becomes potentially
  // contaminated (Figure 9: dirty message arriving at a clean process).
  // The raw flag drives contamination; the watermark-scoped flag drives
  // only the validity view (see MdcdEngine::effectively_dirty).
  if (m.dirty && !dirty_) {
    establish_volatile_checkpoint(CkptKind::kType1);
    mark_dirty();
  }
  if (m.dirty) absorb_contamination(m);
  record_recv(m, effectively_dirty(m));
  app_apply_message(m.payload, m.tainted);
  trace(TraceKind::kDeliverApp, std::string(to_string(m.kind)), m.sn);
}

std::size_t P1SdwEngine::takeover() {
  SYNERGY_EXPECTS(!active_);
  active_ = true;
  bump_protocol_version();  // active_ + msg_log_ are serialized role state
  trace(TraceKind::kTakeover);
  std::size_t replayed = 0;
  SmallVec<Message, 4> log = std::move(msg_log_);
  msg_log_.clear();  // moved-from is already empty; be explicit
  for (Message& m : log) {
    if (m.sn <= vr_p1act_) {
      // P1act's equivalent message was validated and consumed; re-sending
      // ours would duplicate it semantically.
      trace(TraceKind::kReplayDrop, std::string(to_string(m.kind)), m.sn);
      continue;
    }
    m.dirty = dirty_;
    m.contam_sn = dirty_ ? dirty_contam_ : 0;
    m.epoch = epoch();
    m.ndc = ndc();
    trace(TraceKind::kReplaySend, std::string(to_string(m.kind)), m.sn);
    send_recorded(std::move(m), /*suspect=*/dirty_);
    ++replayed;
  }
  return replayed;
}

void P1SdwEngine::serialize_role_state(ByteWriter& w) const {
  w.u8(active_ ? 1 : 0);
  w.u64(vr_p1act_);
  w.u32(static_cast<std::uint32_t>(msg_log_.size()));
  for (const auto& m : msg_log_) m.serialize(w);
}

void P1SdwEngine::deserialize_role_state(ByteReader& r) {
  active_ = r.u8() != 0;
  vr_p1act_ = r.u64();
  msg_log_.clear();
  const std::uint32_t n = r.u32();
  msg_log_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    msg_log_.push_back(Message::deserialize(r));
  }
}

}  // namespace synergy
