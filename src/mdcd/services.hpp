// Host services handed to a protocol engine.
//
// Engines are host-agnostic state machines: they reach the world only
// through this bundle. The discrete-event host wires these to the
// simulator, the threaded runtime wires them to real clocks and channels.
#pragma once

#include <functional>

#include "app/acceptance_test.hpp"
#include "app/fault.hpp"
#include "app/state.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "net/reliable.hpp"
#include "storage/volatile_store.hpp"
#include "trace/trace.hpp"

namespace synergy {

class LaneSet;

struct ProcessServices {
  ProcessId self;

  /// Current true time (for trace stamps and checkpoint metadata).
  std::function<TimePoint()> now;

  Transport* transport = nullptr;
  VolatileStore* vstore = nullptr;
  ApplicationState* app = nullptr;

  /// Acceptance test; required for processes that send external messages
  /// (P1act, P2, and P1sdw after takeover).
  AcceptanceTest* at = nullptr;

  /// Design-fault model of the low-confidence version; only P1act has one.
  SoftwareFaultModel* sw_fault = nullptr;

  /// Optional trace sink.
  TraceLog* trace = nullptr;

  /// Invoked when an AT failure demands software error recovery; the
  /// argument is the detecting process.
  std::function<void(ProcessId)> request_sw_recovery;

  /// Redundant-execution lanes wrapping `app` (DWC/TMR schemes only).
  /// When set, the engine mutates the application exclusively through the
  /// lane fan-out and votes at send/capture boundaries.
  LaneSet* lanes = nullptr;

  /// Invoked when the voter detects an unmaskable divergence; the argument
  /// is the detecting process. Triggers a recovery-line rollback.
  std::function<void(ProcessId)> request_lane_rollback;
};

}  // namespace synergy
