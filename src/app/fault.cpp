#include "app/fault.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace synergy {

SoftwareFaultModel::SoftwareFaultModel(const SoftwareFaultParams& params,
                                       Rng rng)
    : params_(params), rng_(rng) {
  SYNERGY_EXPECTS(params.activation_per_send >= 0.0 &&
                  params.activation_per_send <= 1.0);
  SYNERGY_EXPECTS(params.activation_per_step >= 0.0 &&
                  params.activation_per_step <= 1.0);
}

std::optional<std::uint64_t> SoftwareFaultModel::maybe(double p) {
  if (p <= 0.0 || !rng_.bernoulli(p)) return std::nullopt;
  ++activations_;
  return rng_.next();
}

std::optional<std::uint64_t> SoftwareFaultModel::on_send() {
  return maybe(params_.activation_per_send);
}

std::optional<std::uint64_t> SoftwareFaultModel::on_step() {
  return maybe(params_.activation_per_step);
}

HardwareFaultPlan::HardwareFaultPlan(std::vector<HardwareFaultEvent> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(),
            [](const auto& a, const auto& b) { return a.at < b.at; });
}

HardwareFaultPlan HardwareFaultPlan::poisson(Duration mean_interarrival,
                                             TimePoint until,
                                             std::uint32_t nodes, Rng rng) {
  SYNERGY_EXPECTS(mean_interarrival > Duration::zero());
  SYNERGY_EXPECTS(nodes > 0);
  std::vector<HardwareFaultEvent> events;
  TimePoint t = TimePoint::origin();
  for (;;) {
    t += rng.exponential(mean_interarrival);
    if (t >= until) break;
    events.push_back(HardwareFaultEvent{
        t, NodeId{static_cast<std::uint32_t>(
               rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1))}});
  }
  return HardwareFaultPlan{std::move(events)};
}

HardwareFaultPlan HardwareFaultPlan::single(TimePoint at, NodeId node) {
  return HardwareFaultPlan{{HardwareFaultEvent{at, node}}};
}

}  // namespace synergy
