// Fault models.
//
// SoftwareFaultModel: the design fault latent in the low-confidence version
// (P1act). It activates probabilistically per operation and, when active,
// corrupts the process's application state — the erroneous state then
// propagates through outgoing messages per the paper's key assumption.
//
// HardwareFaultPlan: when (in true time) which node suffers a hardware
// fault. Deterministic schedules for scenario tests, Poisson for
// experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace synergy {

struct SoftwareFaultParams {
  /// P(design fault activates | one send operation by the faulty version).
  double activation_per_send = 0.0;
  /// P(activation | one local computation step).
  double activation_per_step = 0.0;
};

class SoftwareFaultModel {
 public:
  SoftwareFaultModel(const SoftwareFaultParams& params, Rng rng);

  /// Should the fault manifest on this send? (also yields corruption noise)
  std::optional<std::uint64_t> on_send();
  /// Should the fault manifest on this computation step?
  std::optional<std::uint64_t> on_step();

  std::uint64_t activations() const { return activations_; }

 private:
  std::optional<std::uint64_t> maybe(double p);

  SoftwareFaultParams params_;
  Rng rng_;
  std::uint64_t activations_ = 0;
};

struct HardwareFaultEvent {
  TimePoint at;
  NodeId node;
};

/// A fixed schedule of hardware faults for a run.
class HardwareFaultPlan {
 public:
  HardwareFaultPlan() = default;
  explicit HardwareFaultPlan(std::vector<HardwareFaultEvent> events);

  /// Poisson arrivals with the given mean inter-fault time over [0, until),
  /// targeting uniformly random nodes in [0, nodes).
  static HardwareFaultPlan poisson(Duration mean_interarrival, TimePoint until,
                                   std::uint32_t nodes, Rng rng);

  /// A single fault at `at` on `node`.
  static HardwareFaultPlan single(TimePoint at, NodeId node);

  const std::vector<HardwareFaultEvent>& events() const { return events_; }

 private:
  std::vector<HardwareFaultEvent> events_;
};

}  // namespace synergy
