#include "app/state.hpp"

namespace synergy {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ApplicationState::ApplicationState(std::uint64_t seed, WorkloadKind mode)
    : mode_(mode) {
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    regs_[i] = mix(seed + i + 1);
  }
  if (mode_ == WorkloadKind::kAbft) {
    for (std::size_t i = 0; i < block_.size(); ++i) {
      block_[i] = mix(seed + i + 1);
      row_sum_[i / kBlockDim] += block_[i];
      col_sum_[i % kBlockDim] += block_[i];
    }
  }
}

void ApplicationState::apply_message(std::uint64_t payload,
                                     bool payload_tainted) {
  if (mode_ == WorkloadKind::kAbft) {
    // A legitimate update maintains the encoding — which is exactly why
    // taint arriving through a correctly-applied message is invisible to
    // the checksums (the propagated-error blind spot the computed
    // coverage measures).
    abft_update(payload % kBlockCells, mix(payload));
  } else {
    regs_[payload % regs_.size()] ^= mix(payload);
    regs_[0] += payload;
  }
  ++steps_;
  ++version_;
  if (payload_tainted) tainted_ = true;
}

void ApplicationState::local_step(std::uint64_t input) {
  if (mode_ == WorkloadKind::kAbft) {
    const std::size_t src = steps_ % kBlockCells;
    abft_update((steps_ + 1) % kBlockCells, mix(input ^ block_[src]));
  } else {
    const std::uint64_t m = mix(input ^ regs_[steps_ % regs_.size()]);
    regs_[(steps_ + 1) % regs_.size()] += m;
  }
  ++steps_;
  ++version_;
}

std::uint64_t ApplicationState::output() const {
  std::uint64_t acc = steps_;
  if (mode_ == WorkloadKind::kAbft) {
    for (const auto c : block_) acc = mix(acc ^ c);
    for (const auto s : row_sum_) acc = mix(acc ^ s);
    for (const auto s : col_sum_) acc = mix(acc ^ s);
  } else {
    for (const auto r : regs_) acc = mix(acc ^ r);
  }
  return acc;
}

void ApplicationState::corrupt(std::uint64_t noise) {
  if (mode_ == WorkloadKind::kAbft) {
    // Design-fault manifestation: a *wrong value* written through the
    // legitimate update path, so the checksums stay consistent. ABFT
    // detects damaged encodings, not wrong computations — the honest
    // blind spot that keeps computed coverage below 1.
    abft_update(noise % kBlockCells, noise | 1);
  } else {
    regs_[noise % regs_.size()] ^= (noise | 1);
  }
  tainted_ = true;
  ++version_;
}

void ApplicationState::flip_bit(std::uint64_t noise) {
  if (mode_ == WorkloadKind::kAbft) {
    // Raw hardware flip across the encoded state (block + checksums): the
    // recomputed sums disagree with the stored ones, so the ABFT check
    // catches it — whether the flip hit a cell or a checksum word.
    const std::size_t word = (noise >> 6) % (kBlockCells + 2 * kBlockDim);
    const std::uint64_t bit = 1ULL << (noise & 63);
    if (word < kBlockCells) {
      block_[word] ^= bit;
    } else if (word < kBlockCells + kBlockDim) {
      row_sum_[word - kBlockCells] ^= bit;
    } else {
      col_sum_[word - kBlockCells - kBlockDim] ^= bit;
    }
  } else {
    regs_[(noise >> 6) % regs_.size()] ^= 1ULL << (noise & 63);
  }
  tainted_ = true;
  ++version_;
}

bool ApplicationState::abft_check_ok() const {
  if (mode_ != WorkloadKind::kAbft) return true;
  std::array<std::uint64_t, kBlockDim> rows{};
  std::array<std::uint64_t, kBlockDim> cols{};
  for (std::size_t i = 0; i < block_.size(); ++i) {
    rows[i / kBlockDim] += block_[i];
    cols[i % kBlockDim] += block_[i];
  }
  return rows == row_sum_ && cols == col_sum_;
}

Bytes ApplicationState::snapshot() const {
  ByteWriter w;
  w.reserve(mode_ == WorkloadKind::kAbft ? kAbftEncodedSize : kEncodedSize);
  snapshot_into(w);
  return w.take();
}

void ApplicationState::snapshot_into(ByteWriter& w) const {
  // Registers-mode encoding is unchanged (no mode byte): the mode is a
  // construction-time property of the process, never of the record, so
  // pre-ABFT checkpoint layouts stay byte-identical.
  if (mode_ == WorkloadKind::kAbft) {
    for (const auto c : block_) w.u64(c);
    for (const auto s : row_sum_) w.u64(s);
    for (const auto s : col_sum_) w.u64(s);
  } else {
    for (const auto r : regs_) w.u64(r);
  }
  w.u64(steps_);
  w.u8(tainted_ ? 1 : 0);
}

const SharedBytes& ApplicationState::snapshot_shared() const {
  return cache_.get(version_, [this] { return snapshot(); });
}

void ApplicationState::restore(const Bytes& snapshot) {
  ByteReader r(snapshot);
  if (mode_ == WorkloadKind::kAbft) {
    for (auto& c : block_) c = r.u64();
    for (auto& s : row_sum_) s = r.u64();
    for (auto& s : col_sum_) s = r.u64();
  } else {
    for (auto& reg : regs_) reg = r.u64();
  }
  steps_ = r.u64();
  tainted_ = r.u8() != 0;
  // The restored state may differ from whatever the cache last encoded;
  // a conservative bump costs one re-encode, a stale hit would be a bug.
  ++version_;
}

std::uint64_t ApplicationState::fingerprint() const {
  return ::synergy::fingerprint(snapshot());
}

}  // namespace synergy
