#include "app/state.hpp"

namespace synergy {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ApplicationState::ApplicationState(std::uint64_t seed) {
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    regs_[i] = mix(seed + i + 1);
  }
}

void ApplicationState::apply_message(std::uint64_t payload,
                                     bool payload_tainted) {
  regs_[payload % regs_.size()] ^= mix(payload);
  regs_[0] += payload;
  ++steps_;
  ++version_;
  if (payload_tainted) tainted_ = true;
}

void ApplicationState::local_step(std::uint64_t input) {
  const std::uint64_t m = mix(input ^ regs_[steps_ % regs_.size()]);
  regs_[(steps_ + 1) % regs_.size()] += m;
  ++steps_;
  ++version_;
}

std::uint64_t ApplicationState::output() const {
  std::uint64_t acc = steps_;
  for (const auto r : regs_) acc = mix(acc ^ r);
  return acc;
}

void ApplicationState::corrupt(std::uint64_t noise) {
  regs_[noise % regs_.size()] ^= (noise | 1);
  tainted_ = true;
  ++version_;
}

void ApplicationState::flip_bit(std::uint64_t noise) {
  regs_[(noise >> 6) % regs_.size()] ^= 1ULL << (noise & 63);
  tainted_ = true;
  ++version_;
}

Bytes ApplicationState::snapshot() const {
  ByteWriter w;
  w.reserve(kEncodedSize);
  snapshot_into(w);
  return w.take();
}

void ApplicationState::snapshot_into(ByteWriter& w) const {
  for (const auto r : regs_) w.u64(r);
  w.u64(steps_);
  w.u8(tainted_ ? 1 : 0);
}

const SharedBytes& ApplicationState::snapshot_shared() const {
  return cache_.get(version_, [this] { return snapshot(); });
}

void ApplicationState::restore(const Bytes& snapshot) {
  ByteReader r(snapshot);
  for (auto& reg : regs_) reg = r.u64();
  steps_ = r.u64();
  tainted_ = r.u8() != 0;
  // The restored state may differ from whatever the cache last encoded;
  // a conservative bump costs one re-encode, a stale hit would be a bug.
  ++version_;
}

std::uint64_t ApplicationState::fingerprint() const {
  return ::synergy::fingerprint(snapshot());
}

}  // namespace synergy
