#include "app/state.hpp"

namespace synergy {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ApplicationState::ApplicationState(std::uint64_t seed) {
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    regs_[i] = mix(seed + i + 1);
  }
}

void ApplicationState::apply_message(std::uint64_t payload,
                                     bool payload_tainted) {
  regs_[payload % regs_.size()] ^= mix(payload);
  regs_[0] += payload;
  ++steps_;
  if (payload_tainted) tainted_ = true;
}

void ApplicationState::local_step(std::uint64_t input) {
  const std::uint64_t m = mix(input ^ regs_[steps_ % regs_.size()]);
  regs_[(steps_ + 1) % regs_.size()] += m;
  ++steps_;
}

std::uint64_t ApplicationState::output() const {
  std::uint64_t acc = steps_;
  for (const auto r : regs_) acc = mix(acc ^ r);
  return acc;
}

void ApplicationState::corrupt(std::uint64_t noise) {
  regs_[noise % regs_.size()] ^= (noise | 1);
  tainted_ = true;
}

Bytes ApplicationState::snapshot() const {
  ByteWriter w;
  for (const auto r : regs_) w.u64(r);
  w.u64(steps_);
  w.u8(tainted_ ? 1 : 0);
  return w.take();
}

void ApplicationState::restore(const Bytes& snapshot) {
  ByteReader r(snapshot);
  for (auto& reg : regs_) reg = r.u64();
  steps_ = r.u64();
  tainted_ = r.u8() != 0;
}

std::uint64_t ApplicationState::fingerprint() const {
  return ::synergy::fingerprint(snapshot());
}

}  // namespace synergy
