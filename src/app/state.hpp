// Synthetic application state machine.
//
// Substitution note (DESIGN.md §3): the paper's application is onboard
// spacecraft software; MDCD is agnostic to application semantics — only
// message events, rates, and AT outcomes matter. This state machine gives
// the protocols something real to checkpoint and roll back: a deterministic
// register file evolved by inputs, with ground-truth *taint* tracking so
// test oracles can tell whether an erroneous value actually propagated.
//
// Taint is the fault-injection ground truth (did a software error touch
// this state), distinct from the protocols' *potential contamination*
// (dirty bits), which is a conservative overapproximation the protocols
// maintain without ever reading taint.
//
// Two workload variants share this class:
//   - kRegisters: the original 8-register file (encoding unchanged);
//   - kAbft: a checksum-encoded matrix block (Bosilca-style ABFT). The
//     state is a 4x4 block of u64 cells plus per-row and per-column sums
//     (mod 2^64) that every legitimate update maintains incrementally.
//     abft_check_ok() recomputes the sums from the block — that check IS
//     the acceptance test for ABFT workloads, so detection coverage is
//     *computed* from the state instead of assumed: a raw bit flip breaks
//     a row+column pair and is caught; a checksum-consistent wrong update
//     (design fault, or taint arriving through a correctly-applied
//     message) is the encoding's honest blind spot and passes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "common/serialize.hpp"

namespace synergy {

/// Which application-state variant a mission runs.
enum class WorkloadKind : std::uint8_t {
  kRegisters,  ///< 8-register file; AT verdicts drawn from assumed coverage.
  kAbft,       ///< Checksum-encoded matrix block; AT verdict computed.
};

inline constexpr WorkloadKind kAllWorkloadKinds[] = {
    WorkloadKind::kRegisters,
    WorkloadKind::kAbft,
};

constexpr const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kRegisters: return "registers";
    case WorkloadKind::kAbft: return "abft";
  }
  return "";  // unreachable: all enumerators handled above
}

/// Parse a workload name as printed by to_string. Returns nullopt for
/// unknown names — the CLI must reject stale spellings loudly.
inline std::optional<WorkloadKind> workload_kind_from_string(
    std::string_view name) {
  for (WorkloadKind k : kAllWorkloadKinds) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

class ApplicationState {
 public:
  ApplicationState() = default;
  explicit ApplicationState(std::uint64_t seed,
                            WorkloadKind mode = WorkloadKind::kRegisters);

  /// Consume a message payload. If the payload is tainted, the state
  /// becomes tainted (erroneous input contaminates state; paper §2.1's key
  /// assumption).
  void apply_message(std::uint64_t payload, bool payload_tainted);

  /// One unit of local computation driven by an input word.
  void local_step(std::uint64_t input);

  /// Deterministic output derived from the current state: the payload of
  /// the next outgoing message. An erroneous state yields tainted outputs
  /// (the other half of the paper's key assumption).
  std::uint64_t output() const;

  /// Inject a design-fault manifestation: corrupts a register and taints.
  void corrupt(std::uint64_t noise);

  /// Inject a hardware-fault manifestation (COAST's register/memory model):
  /// flip exactly one bit of one register. Taints — ground truth says this
  /// state is now erroneous, whether or not any protocol notices.
  void flip_bit(std::uint64_t noise);

  /// Allocation-free deep equality on protocol-visible content (registers
  /// or block+checksums, step count, taint). Ignores version/cache
  /// bookkeeping — two lanes that replayed the same history compare equal
  /// even if one was restored.
  bool equals(const ApplicationState& other) const {
    if (mode_ != other.mode_ || steps_ != other.steps_ ||
        tainted_ != other.tainted_) {
      return false;
    }
    return mode_ == WorkloadKind::kAbft
               ? block_ == other.block_ && row_sum_ == other.row_sum_ &&
                     col_sum_ == other.col_sum_
               : regs_ == other.regs_;
  }

  WorkloadKind mode() const { return mode_; }

  /// ABFT self-check: recompute the row/column sums from the block and
  /// compare against the stored checksums. Always true in registers mode
  /// (nothing to compute a verdict from).
  bool abft_check_ok() const;

  bool tainted() const { return tainted_; }
  std::uint64_t steps() const { return steps_; }

  /// Monotone mutation stamp: bumped by every mutating entry point
  /// (apply_message, local_step, corrupt, restore). The snapshot cache
  /// keys on it, so an unchanged version means the cached encoded blob is
  /// exactly what snapshot() would produce.
  std::uint64_t version() const { return version_; }

  Bytes snapshot() const;
  /// Append the snapshot encoding to `w` (scratch-buffer reuse).
  void snapshot_into(ByteWriter& w) const;
  /// Shared encoded snapshot, cached by version: repeated checkpoints of
  /// an unchanged state re-use one immutable buffer without re-encoding.
  const SharedBytes& snapshot_shared() const;
  void restore(const Bytes& snapshot);

  /// Order-insensitive equality check helper for tests.
  std::uint64_t fingerprint() const;

  std::uint64_t snapshot_cache_hits() const { return cache_.hits(); }
  std::uint64_t snapshot_cache_misses() const { return cache_.misses(); }
  std::uint64_t snapshot_bytes_encoded() const {
    return cache_.bytes_encoded();
  }

 private:
  static constexpr std::size_t kEncodedSize = 8 * 8 + 8 + 1;
  static constexpr std::size_t kBlockDim = 4;
  static constexpr std::size_t kBlockCells = kBlockDim * kBlockDim;
  static constexpr std::size_t kAbftEncodedSize =
      (kBlockCells + 2 * kBlockDim) * 8 + 8 + 1;

  /// Apply a legitimate (checksum-maintaining) delta to one block cell.
  void abft_update(std::size_t cell, std::uint64_t delta) {
    block_[cell] += delta;
    row_sum_[cell / kBlockDim] += delta;
    col_sum_[cell % kBlockDim] += delta;
  }

  WorkloadKind mode_ = WorkloadKind::kRegisters;
  std::array<std::uint64_t, 8> regs_{};
  // ABFT block state (kAbft mode only; zero and untouched otherwise).
  std::array<std::uint64_t, kBlockCells> block_{};
  std::array<std::uint64_t, kBlockDim> row_sum_{};
  std::array<std::uint64_t, kBlockDim> col_sum_{};
  std::uint64_t steps_ = 0;
  bool tainted_ = false;
  std::uint64_t version_ = 0;
  mutable SnapshotCache cache_;
};

}  // namespace synergy
