// Synthetic application state machine.
//
// Substitution note (DESIGN.md §3): the paper's application is onboard
// spacecraft software; MDCD is agnostic to application semantics — only
// message events, rates, and AT outcomes matter. This state machine gives
// the protocols something real to checkpoint and roll back: a deterministic
// register file evolved by inputs, with ground-truth *taint* tracking so
// test oracles can tell whether an erroneous value actually propagated.
//
// Taint is the fault-injection ground truth (did a software error touch
// this state), distinct from the protocols' *potential contamination*
// (dirty bits), which is a conservative overapproximation the protocols
// maintain without ever reading taint.
#pragma once

#include <array>
#include <cstdint>

#include "common/serialize.hpp"

namespace synergy {

class ApplicationState {
 public:
  ApplicationState() = default;
  explicit ApplicationState(std::uint64_t seed);

  /// Consume a message payload. If the payload is tainted, the state
  /// becomes tainted (erroneous input contaminates state; paper §2.1's key
  /// assumption).
  void apply_message(std::uint64_t payload, bool payload_tainted);

  /// One unit of local computation driven by an input word.
  void local_step(std::uint64_t input);

  /// Deterministic output derived from the current state: the payload of
  /// the next outgoing message. An erroneous state yields tainted outputs
  /// (the other half of the paper's key assumption).
  std::uint64_t output() const;

  /// Inject a design-fault manifestation: corrupts a register and taints.
  void corrupt(std::uint64_t noise);

  bool tainted() const { return tainted_; }
  std::uint64_t steps() const { return steps_; }

  Bytes snapshot() const;
  void restore(const Bytes& snapshot);

  /// Order-insensitive equality check helper for tests.
  std::uint64_t fingerprint() const;

 private:
  std::array<std::uint64_t, 8> regs_{};
  std::uint64_t steps_ = 0;
  bool tainted_ = false;
};

}  // namespace synergy
