// Synthetic application state machine.
//
// Substitution note (DESIGN.md §3): the paper's application is onboard
// spacecraft software; MDCD is agnostic to application semantics — only
// message events, rates, and AT outcomes matter. This state machine gives
// the protocols something real to checkpoint and roll back: a deterministic
// register file evolved by inputs, with ground-truth *taint* tracking so
// test oracles can tell whether an erroneous value actually propagated.
//
// Taint is the fault-injection ground truth (did a software error touch
// this state), distinct from the protocols' *potential contamination*
// (dirty bits), which is a conservative overapproximation the protocols
// maintain without ever reading taint.
#pragma once

#include <array>
#include <cstdint>

#include "common/serialize.hpp"

namespace synergy {

class ApplicationState {
 public:
  ApplicationState() = default;
  explicit ApplicationState(std::uint64_t seed);

  /// Consume a message payload. If the payload is tainted, the state
  /// becomes tainted (erroneous input contaminates state; paper §2.1's key
  /// assumption).
  void apply_message(std::uint64_t payload, bool payload_tainted);

  /// One unit of local computation driven by an input word.
  void local_step(std::uint64_t input);

  /// Deterministic output derived from the current state: the payload of
  /// the next outgoing message. An erroneous state yields tainted outputs
  /// (the other half of the paper's key assumption).
  std::uint64_t output() const;

  /// Inject a design-fault manifestation: corrupts a register and taints.
  void corrupt(std::uint64_t noise);

  /// Inject a hardware-fault manifestation (COAST's register/memory model):
  /// flip exactly one bit of one register. Taints — ground truth says this
  /// state is now erroneous, whether or not any protocol notices.
  void flip_bit(std::uint64_t noise);

  /// Allocation-free deep equality on protocol-visible content (registers,
  /// step count, taint). Ignores version/cache bookkeeping — two lanes that
  /// replayed the same history compare equal even if one was restored.
  bool equals(const ApplicationState& other) const {
    return regs_ == other.regs_ && steps_ == other.steps_ &&
           tainted_ == other.tainted_;
  }

  bool tainted() const { return tainted_; }
  std::uint64_t steps() const { return steps_; }

  /// Monotone mutation stamp: bumped by every mutating entry point
  /// (apply_message, local_step, corrupt, restore). The snapshot cache
  /// keys on it, so an unchanged version means the cached encoded blob is
  /// exactly what snapshot() would produce.
  std::uint64_t version() const { return version_; }

  Bytes snapshot() const;
  /// Append the snapshot encoding to `w` (scratch-buffer reuse).
  void snapshot_into(ByteWriter& w) const;
  /// Shared encoded snapshot, cached by version: repeated checkpoints of
  /// an unchanged state re-use one immutable buffer without re-encoding.
  const SharedBytes& snapshot_shared() const;
  void restore(const Bytes& snapshot);

  /// Order-insensitive equality check helper for tests.
  std::uint64_t fingerprint() const;

  std::uint64_t snapshot_cache_hits() const { return cache_.hits(); }
  std::uint64_t snapshot_cache_misses() const { return cache_.misses(); }
  std::uint64_t snapshot_bytes_encoded() const {
    return cache_.bytes_encoded();
  }

 private:
  static constexpr std::size_t kEncodedSize = 8 * 8 + 8 + 1;

  std::array<std::uint64_t, 8> regs_{};
  std::uint64_t steps_ = 0;
  bool tainted_ = false;
  std::uint64_t version_ = 0;
  mutable SnapshotCache cache_;
};

}  // namespace synergy
