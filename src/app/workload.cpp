#include "app/workload.hpp"

#include "common/assert.hpp"

namespace synergy {

WorkloadDriver::WorkloadDriver(Simulator& sim, const WorkloadParams& params,
                               Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

void WorkloadDriver::arm(double rate, std::function<void(std::uint64_t)> fire) {
  if (rate <= 0.0) return;
  const Duration gap = rng_.exponential(Duration::from_seconds(1.0 / rate));
  const TimePoint at = sim_.now() + gap;
  if (at >= until_) return;
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(at, [this, rate, fire = std::move(fire), epoch]() mutable {
    if (!running_ || epoch != epoch_) return;
    fire(rng_.next());
    arm(rate, std::move(fire));
  });
}

void WorkloadDriver::start(TimePoint until) {
  SYNERGY_EXPECTS(!running_);
  running_ = true;
  until_ = until;
  arm(params_.p1_internal_rate, [this](std::uint64_t input) {
    if (c1_send_) c1_send_(false, input);
  });
  arm(params_.p1_external_rate, [this](std::uint64_t input) {
    if (c1_send_) c1_send_(true, input);
  });
  arm(params_.p2_internal_rate, [this](std::uint64_t input) {
    if (p2_send_) p2_send_(false, input);
  });
  arm(params_.p2_external_rate, [this](std::uint64_t input) {
    if (p2_send_) p2_send_(true, input);
  });
  arm(params_.step_rate, [this](std::uint64_t input) {
    if (c1_step_) c1_step_(input);
  });
  arm(params_.step_rate, [this](std::uint64_t input) {
    if (p2_step_) p2_step_(input);
  });
}

void WorkloadDriver::stop() {
  running_ = false;
  ++epoch_;
}

}  // namespace synergy
