// Acceptance-test (AT) model.
//
// The MDCD protocol validates only *external* messages by AT: external
// messages are control commands/data checkable by simple reasonableness
// tests (paper §2.1). We model an AT by its detection coverage (probability
// a tainted message fails the test) and false-alarm rate (probability a
// clean message is wrongly rejected). The protocols consume only the
// boolean outcome.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace synergy {

struct AtParams {
  /// P(test fails | message erroneous). 1.0 = perfect detection.
  double coverage = 1.0;
  /// P(test fails | message correct).
  double false_alarm = 0.0;
};

class AcceptanceTest {
 public:
  AcceptanceTest(const AtParams& params, Rng rng);

  /// Runs the test against a message whose ground-truth taint is
  /// `message_tainted`. Returns true iff the test passes.
  bool run(bool message_tainted);

  std::uint64_t passes() const { return passes_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t missed_detections() const { return missed_; }
  std::uint64_t false_alarms() const { return false_alarms_; }

 private:
  AtParams params_;
  Rng rng_;
  std::uint64_t passes_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t missed_ = 0;
  std::uint64_t false_alarms_ = 0;
};

}  // namespace synergy
