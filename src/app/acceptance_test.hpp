// Acceptance-test (AT) model.
//
// The MDCD protocol validates only *external* messages by AT: external
// messages are control commands/data checkable by simple reasonableness
// tests (paper §2.1). We model an AT by its detection coverage (probability
// a tainted message fails the test) and false-alarm rate (probability a
// clean message is wrongly rejected). The protocols consume only the
// boolean outcome.
//
// ABFT workloads replace the assumed-coverage draw with a *computed*
// verdict (set_checker): the checksum self-check over the encoded block
// state decides pass/fail, and the coverage/false-alarm parameters become
// irrelevant. The counters then measure the encoding's real detection
// behaviour — missed_detections() counts tainted messages the checksums
// could not see — which is what turns coverage from an input into an
// output of the campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/rng.hpp"

namespace synergy {

struct AtParams {
  /// P(test fails | message erroneous). 1.0 = perfect detection.
  double coverage = 1.0;
  /// P(test fails | message correct).
  double false_alarm = 0.0;
};

class AcceptanceTest {
 public:
  AcceptanceTest(const AtParams& params, Rng rng);

  /// Runs the test against a message whose ground-truth taint is
  /// `message_tainted`. Returns true iff the test passes.
  bool run(bool message_tainted);

  /// Replace the probabilistic verdict with a computed one: `checker`
  /// returns true iff the state under test passes (e.g. the ABFT checksum
  /// self-check). Ground-truth taint still classifies the outcome into the
  /// counters, so missed detections and false alarms are measured, not
  /// assumed.
  void set_checker(std::function<bool()> checker) {
    checker_ = std::move(checker);
  }

  std::uint64_t passes() const { return passes_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t missed_detections() const { return missed_; }
  std::uint64_t false_alarms() const { return false_alarms_; }

 private:
  AtParams params_;
  Rng rng_;
  std::function<bool()> checker_;
  std::uint64_t passes_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t missed_ = 0;
  std::uint64_t false_alarms_ = 0;
};

}  // namespace synergy
