#include "app/acceptance_test.hpp"

#include "common/assert.hpp"

namespace synergy {

AcceptanceTest::AcceptanceTest(const AtParams& params, Rng rng)
    : params_(params), rng_(rng) {
  SYNERGY_EXPECTS(params.coverage >= 0.0 && params.coverage <= 1.0);
  SYNERGY_EXPECTS(params.false_alarm >= 0.0 && params.false_alarm <= 1.0);
}

bool AcceptanceTest::run(bool message_tainted) {
  bool pass;
  if (checker_) {
    // Computed verdict: no randomness — the state decides, the ground
    // truth classifies.
    pass = checker_();
    if (message_tainted && pass) ++missed_;
    if (!message_tainted && !pass) ++false_alarms_;
  } else if (message_tainted) {
    pass = !rng_.bernoulli(params_.coverage);
    if (pass) ++missed_;
  } else {
    pass = !rng_.bernoulli(params_.false_alarm);
    if (!pass) ++false_alarms_;
  }
  if (pass) {
    ++passes_;
  } else {
    ++failures_;
  }
  return pass;
}

}  // namespace synergy
