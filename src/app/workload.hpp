// Workload driver: Poisson message-generation schedules.
//
// The paper's evaluation sweeps the *internal message rate* (Figure 7);
// external messages are the (much rarer) AT-validated outputs. The driver
// schedules "the application wants to send now" events on the simulator
// and invokes per-component sinks; the protocol engines decide what a send
// means (send / suppress / checkpoint first / run AT).
//
// Component 1's schedule drives P1act and P1sdw identically — the shadow
// performs the same computation on the same inputs (paper §2.1), so one
// arrival fans out to both engines, keeping their msg_SN streams aligned.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "app/state.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace synergy {

struct WorkloadParams {
  /// Component 1 (P1act/P1sdw) internal messages per second.
  double p1_internal_rate = 2.0;
  /// Component 1 external (AT-validated) messages per second.
  double p1_external_rate = 0.05;
  /// P2 internal messages per second (multicast to P1act and P1sdw).
  double p2_internal_rate = 2.0;
  /// P2 external messages per second.
  double p2_external_rate = 0.05;
  /// Local computation steps per second, per process.
  double step_rate = 10.0;
  /// Which application-state variant the mission's processes run. The ABFT
  /// variant swaps the assumed-coverage AT for a verdict computed from the
  /// checksum-encoded block state. (Last so positional initializers of the
  /// rate fields stay valid.)
  WorkloadKind kind = WorkloadKind::kRegisters;
};

class WorkloadDriver {
 public:
  /// `external` tells the sink which kind of send the application wants;
  /// `input` is a deterministic pseudo-random word (sensor input).
  using SendSink = std::function<void(bool external, std::uint64_t input)>;
  using StepSink = std::function<void(std::uint64_t input)>;

  WorkloadDriver(Simulator& sim, const WorkloadParams& params, Rng rng);

  void set_component1_send(SendSink sink) { c1_send_ = std::move(sink); }
  void set_p2_send(SendSink sink) { p2_send_ = std::move(sink); }
  void set_component1_step(StepSink sink) { c1_step_ = std::move(sink); }
  void set_p2_step(StepSink sink) { p2_step_ = std::move(sink); }

  /// Begin generating events until `until` (true time).
  void start(TimePoint until);

  /// Stop generating further events (already-scheduled ones are dropped).
  void stop();

  bool running() const { return running_; }

 private:
  void arm(double rate, std::function<void(std::uint64_t)> fire);

  Simulator& sim_;
  WorkloadParams params_;
  Rng rng_;
  TimePoint until_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // invalidates scheduled events after stop()
  SendSink c1_send_;
  SendSink p2_send_;
  StepSink c1_step_;
  StepSink p2_step_;
};

}  // namespace synergy
