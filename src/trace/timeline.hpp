// ASCII timeline rendering in the style of the paper's figures.
//
// Each process gets a horizontal lane; time flows left to right. Lane
// glyphs: '=' potentially-contaminated interval (shaded region in the
// paper), '-' clean execution, '#' blocking period, '1'/'2'/'P' Type-1 /
// Type-2 / pseudo volatile checkpoints, 'S' stable write begin, 'R'
// in-progress replace, 'C' stable commit, 'A'/'X' AT pass/fail, '!'
// hardware fault, '^' restore. Message arrows are listed below the lanes
// (ASCII art of diagonal arrows across lanes is not worth the ambiguity).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct TimelineOptions {
  std::size_t width = 100;     ///< Columns for the time axis.
  bool show_messages = true;   ///< List message sends/deliveries below.
};

/// Renders the trace as per-process lanes. `processes` fixes lane order.
std::string render_timeline(const TraceLog& trace,
                            const std::vector<ProcessId>& processes,
                            const TimelineOptions& options = {});

}  // namespace synergy
