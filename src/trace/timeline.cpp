#include "trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/assert.hpp"

namespace synergy {
namespace {

char marker_for(TraceKind kind, const std::string& detail) {
  switch (kind) {
    case TraceKind::kCkptVolatile:
      if (detail == "type1") return '1';
      if (detail == "type2") return '2';
      return 'P';  // pseudo
    case TraceKind::kStableBegin: return 'S';
    case TraceKind::kStableReplace: return 'R';
    case TraceKind::kStableCommit: return 'C';
    case TraceKind::kAtPass: return 'A';
    case TraceKind::kAtFail: return 'X';
    case TraceKind::kHwFault: return '!';
    case TraceKind::kHwRestore: return '^';
    case TraceKind::kTakeover: return 'T';
    default: return 0;
  }
}

}  // namespace

std::string render_timeline(const TraceLog& trace,
                            const std::vector<ProcessId>& processes,
                            const TimelineOptions& options) {
  const auto& events = trace.events();
  if (events.empty()) return "(empty trace)\n";

  TimePoint t0 = events.front().t;
  TimePoint t1 = events.front().t;
  for (const auto& e : events) {
    t0 = std::min(t0, e.t);
    t1 = std::max(t1, e.t);
  }
  const double span =
      std::max<double>(1.0, static_cast<double>((t1 - t0).count()));
  const std::size_t width = std::max<std::size_t>(options.width, 10);
  auto col = [&](TimePoint t) {
    const double frac = static_cast<double>((t - t0).count()) / span;
    return std::min<std::size_t>(width - 1,
                                 static_cast<std::size_t>(frac * (width - 1)));
  };

  std::ostringstream out;
  out << "time: " << t0.to_seconds() << "s .. " << t1.to_seconds() << "s ("
      << width << " cols)\n";

  for (ProcessId p : processes) {
    // Base lane: clean '-', dirty '=' intervals, blocking '#' overlay.
    std::string lane(width, '-');
    bool dirty = false;
    bool blocked = false;
    std::size_t cursor = 0;
    auto fill_to = [&](std::size_t c) {
      for (; cursor < c && cursor < width; ++cursor) {
        lane[cursor] = blocked ? '#' : (dirty ? '=' : '-');
      }
    };
    for (const auto& e : events) {
      if (e.process != p) continue;
      switch (e.kind) {
        case TraceKind::kDirtySet:
        case TraceKind::kPseudoDirtySet:
          fill_to(col(e.t));
          dirty = true;
          break;
        case TraceKind::kDirtyClear:
        case TraceKind::kPseudoDirtyClear:
          fill_to(col(e.t) + 1);
          dirty = false;
          break;
        case TraceKind::kBlockStart:
          fill_to(col(e.t));
          blocked = true;
          break;
        case TraceKind::kBlockEnd:
          fill_to(col(e.t) + 1);
          blocked = false;
          break;
        default:
          break;
      }
    }
    fill_to(width);
    // Point markers overwrite the lane.
    for (const auto& e : events) {
      if (e.process != p) continue;
      const char m = marker_for(e.kind, e.detail);
      if (m != 0) lane[col(e.t)] = m;
    }
    std::string name = to_string(p);
    name.resize(6, ' ');
    out << name << "|" << lane << "|\n";
  }

  if (options.show_messages) {
    out << "messages:\n";
    for (const auto& e : events) {
      if (e.kind == TraceKind::kSend || e.kind == TraceKind::kDeliverApp ||
          e.kind == TraceKind::kSuppressSend ||
          e.kind == TraceKind::kReplaySend) {
        out << "  " << e.t.to_seconds() << "s " << to_string(e.process) << " "
            << to_string(e.kind) << " " << e.detail << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace synergy
