// Trace and result export: CSV and JSON Lines.
//
// Benches and the CLI dump traces for offline analysis (gnuplot, pandas).
// CSV columns: t_seconds,process,kind,detail,a,b. JSONL: one event object
// per line with the same fields.
#pragma once

#include <ostream>
#include <string>

#include "trace/trace.hpp"

namespace synergy {

/// Write the whole trace as CSV (with header).
void write_trace_csv(const TraceLog& trace, std::ostream& out);

/// Write the whole trace as JSON Lines.
void write_trace_jsonl(const TraceLog& trace, std::ostream& out);

/// Escape a string for a CSV field (quotes when needed).
std::string csv_escape(const std::string& s);

/// Escape a string for a JSON string literal (without quotes).
std::string json_escape(const std::string& s);

}  // namespace synergy
