#include "trace/trace.hpp"

#include <sstream>

namespace synergy {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "send";
    case TraceKind::kSuppressSend: return "suppress_send";
    case TraceKind::kReceive: return "receive";
    case TraceKind::kDeliverApp: return "deliver_app";
    case TraceKind::kHoldBlocked: return "hold_blocked";
    case TraceKind::kDuplicate: return "duplicate";
    case TraceKind::kStaleDrop: return "stale_drop";
    case TraceKind::kStaleDirtyIgnored: return "stale_dirty_ignored";
    case TraceKind::kCkptVolatile: return "ckpt_volatile";
    case TraceKind::kStableBegin: return "stable_begin";
    case TraceKind::kStableReplace: return "stable_replace";
    case TraceKind::kStableCommit: return "stable_commit";
    case TraceKind::kAtPass: return "at_pass";
    case TraceKind::kAtFail: return "at_fail";
    case TraceKind::kDirtySet: return "dirty_set";
    case TraceKind::kDirtyClear: return "dirty_clear";
    case TraceKind::kPseudoDirtySet: return "pseudo_dirty_set";
    case TraceKind::kPseudoDirtyClear: return "pseudo_dirty_clear";
    case TraceKind::kNdcGateReject: return "ndc_gate_reject";
    case TraceKind::kBlockStart: return "block_start";
    case TraceKind::kBlockEnd: return "block_end";
    case TraceKind::kResyncRequest: return "resync_request";
    case TraceKind::kResync: return "resync";
    case TraceKind::kSwErrorDetected: return "sw_error_detected";
    case TraceKind::kTakeover: return "takeover";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kRollForward: return "roll_forward";
    case TraceKind::kReplaySend: return "replay_send";
    case TraceKind::kReplayDrop: return "replay_drop";
    case TraceKind::kSwRecoveryDone: return "sw_recovery_done";
    case TraceKind::kHwFault: return "hw_fault";
    case TraceKind::kHwRestore: return "hw_restore";
    case TraceKind::kResendUnacked: return "resend_unacked";
    case TraceKind::kHwRecoveryDone: return "hw_recovery_done";
    case TraceKind::kBoundViolation: return "bound_violation";
    case TraceKind::kBlockingOverrun: return "blocking_overrun";
    case TraceKind::kStableTimeout: return "stable_timeout";
    case TraceKind::kCorruptRecord: return "corrupt_record";
    case TraceKind::kLineInconsistent: return "line_inconsistent";
    case TraceKind::kDegradation: return "degradation";
    case TraceKind::kLaneFlip: return "lane_flip";
    case TraceKind::kSigFault: return "sig_fault";
    case TraceKind::kLaneMasked: return "lane_masked";
    case TraceKind::kLaneDiverged: return "lane_diverged";
    case TraceKind::kLaneParked: return "lane_parked";
    case TraceKind::kLaneResync: return "lane_resync";
    case TraceKind::kSigMismatch: return "sig_mismatch";
    case TraceKind::kConfidenceLoss: return "confidence_loss";
    case TraceKind::kLinkDown: return "link_down";
    case TraceKind::kLinkUp: return "link_up";
    case TraceKind::kHandoff: return "handoff";
    case TraceKind::kDisconnectDeferral: return "disconnect_deferral";
    case TraceKind::kAbftScrub: return "abft_scrub";
  }
  return "?";
}

std::vector<TraceEvent> TraceLog::of_kind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::of_process(ProcessId p) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.process == p) out.push_back(e);
  }
  return out;
}

std::size_t TraceLog::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += e.kind == kind;
  return n;
}

std::size_t TraceLog::count(TraceKind kind, ProcessId p) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind && e.process == p);
  return n;
}

std::string TraceLog::dump() const {
  std::ostringstream out;
  for (const auto& e : events_) {
    out << e.t.to_seconds() << "s " << to_string(e.process) << " "
        << to_string(e.kind);
    if (!e.detail.empty()) out << " " << e.detail;
    if (e.a || e.b) out << " [" << e.a << "," << e.b << "]";
    out << '\n';
  }
  return out.str();
}

}  // namespace synergy
