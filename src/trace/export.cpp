#include "trace/export.hpp"

#include <cstdio>

namespace synergy {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_trace_csv(const TraceLog& trace, std::ostream& out) {
  out << "t_seconds,process,kind,detail,a,b\n";
  for (const auto& e : trace.events()) {
    out << e.t.to_seconds() << ',' << csv_escape(to_string(e.process)) << ','
        << to_string(e.kind) << ',' << csv_escape(e.detail) << ',' << e.a
        << ',' << e.b << '\n';
  }
}

void write_trace_jsonl(const TraceLog& trace, std::ostream& out) {
  for (const auto& e : trace.events()) {
    out << "{\"t\":" << e.t.to_seconds() << ",\"process\":\""
        << json_escape(to_string(e.process)) << "\",\"kind\":\""
        << to_string(e.kind) << "\",\"detail\":\"" << json_escape(e.detail)
        << "\",\"a\":" << e.a << ",\"b\":" << e.b << "}\n";
  }
}

}  // namespace synergy
