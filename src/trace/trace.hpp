// Structured event traces.
//
// Every protocol-visible action (checkpoint establishment, dirty-bit
// transition, blocking window, AT outcome, recovery step, ...) is recorded
// as a TraceEvent. The trace is how we regenerate the paper's scenario
// figures (1, 2, 3, 4, 6) as machine-checkable artifacts: tests assert on
// the event sequence, and the timeline renderer draws the figure as ASCII.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace synergy {

enum class TraceKind : std::uint8_t {
  kSend,
  kSuppressSend,    ///< P1sdw logging instead of sending.
  kReceive,         ///< Transport-level receipt.
  kDeliverApp,      ///< Message passed to the application.
  kHoldBlocked,     ///< Message held because a blocking period is active.
  kDuplicate,       ///< Duplicate suppressed at consumption.
  kStaleDrop,       ///< Message from a pre-recovery epoch fenced out.
  kStaleDirtyIgnored,  ///< Dirty flag recognized as stale (watermark mode).
  kCkptVolatile,    ///< Volatile checkpoint established.
  kStableBegin,     ///< Stable-storage checkpoint write started.
  kStableReplace,   ///< In-progress stable write aborted & contents replaced.
  kStableCommit,    ///< Stable-storage checkpoint committed.
  kAtPass,
  kAtFail,
  kDirtySet,
  kDirtyClear,
  kPseudoDirtySet,
  kPseudoDirtyClear,
  kNdcGateReject,   ///< passed_AT ignored: piggybacked Ndc mismatched.
  kBlockStart,
  kBlockEnd,
  kResyncRequest,
  kResync,
  kSwErrorDetected,
  kTakeover,        ///< P1sdw assumes the active role.
  kRollback,
  kRollForward,
  kReplaySend,      ///< Logged message re-sent during software recovery.
  kReplayDrop,      ///< Logged message dropped (already valid via P1act).
  kSwRecoveryDone,
  kHwFault,
  kHwRestore,       ///< Process state restored from stable storage.
  kResendUnacked,
  kHwRecoveryDone,
  // ---- Assumption violations & graceful degradation (chaos campaigns) ----
  kBoundViolation,  ///< Message delivered later than sent + tmax (a=lateness us).
  kBlockingOverrun, ///< Blocking/cadence span outside drift envelope (a=actual, b=allowed).
  kStableTimeout,   ///< Stable write missed its commit deadline (a=Ndc).
  kCorruptRecord,   ///< Stable record failed its integrity check (a=Ndc).
  kLineInconsistent, ///< Line self-audit found inconsistent records (a=count).
  kDegradation,     ///< Degradation applied (detail: widen_tau | write_through | resend_unacked | reline).
  // ---- Redundant-execution protection family (DWC/TMR lanes, CFCSS) ----
  kLaneFlip,        ///< Per-lane state bit-flip injected (a=lane).
  kSigFault,        ///< Per-lane signature corruption injected (a=lane).
  kLaneMasked,      ///< Voter outvoted a minority; fault masked (a=lane).
  kLaneDiverged,    ///< Voter found no majority; send aborted (a=active lanes).
  kLaneParked,      ///< Lane voted out of service (a=lane).
  kLaneResync,      ///< Parked/replica lanes re-synced (a=lane count).
  kSigMismatch,     ///< CFCSS signature chain broke (a=lane).
  kConfidenceLoss,  ///< Signature coverage lost; MDCD treats it like a failed AT.
  // ---- Mobile/intermittent-connectivity mission family --------------------
  kLinkDown,        ///< Disconnection epoch began (a=direction/severity flags).
  kLinkUp,          ///< Disconnection epoch ended; link restored.
  kHandoff,         ///< Base-station handoff re-homed the stable store (a=migrated).
  kDisconnectDeferral,  ///< Violation deferred: declared disconnection epoch.
  // ---- ABFT computed-coverage workload ------------------------------------
  kAbftScrub,       ///< Sweep found a damaged block encoding (a=node).
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  TimePoint t;       ///< True (simulator) time.
  ProcessId process;
  TraceKind kind = TraceKind::kSend;
  std::string detail;
  std::uint64_t a = 0;  ///< Kind-specific (e.g. msg sn, Ndc).
  std::uint64_t b = 0;
};

class TraceLog {
 public:
  void record(TraceEvent ev) { events_.push_back(std::move(ev)); }
  void record(TimePoint t, ProcessId p, TraceKind kind, std::string detail = {},
              std::uint64_t a = 0, std::uint64_t b = 0) {
    events_.push_back(TraceEvent{t, p, kind, std::move(detail), a, b});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind, in order.
  std::vector<TraceEvent> of_kind(TraceKind kind) const;
  /// Events of one process, in order.
  std::vector<TraceEvent> of_process(ProcessId p) const;
  /// Count of events matching kind (and optionally process).
  std::size_t count(TraceKind kind) const;
  std::size_t count(TraceKind kind, ProcessId p) const;

  /// One line per event, human-readable (diagnostics and figure dumps).
  std::string dump() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace synergy
