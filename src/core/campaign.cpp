#include "core/campaign.hpp"

#include <fstream>
#include <utility>

#include "analysis/checkers.hpp"
#include "trace/export.hpp"

namespace synergy {

InjectorRates default_injector_rates() {
  InjectorRates r;
  r.net.drop_probability = 0.01;
  r.net.duplicate_probability = 0.01;
  r.net.reorder_probability = 0.02;
  r.net.delay_probability = 0.002;
  r.net.bitflip_probability = 0.005;
  r.storage.write_error_probability = 0.05;
  r.storage.torn_write_probability = 0.02;
  r.storage.latent_corruption_probability = 0.01;
  r.timed.hw_fault_mean_gap = Duration::seconds(150);
  r.timed.drift_excursion_mean_gap = Duration::seconds(200);
  r.timed.drift_excursion_factor = 50.0;
  r.timed.drift_excursion_duration = Duration::seconds(20);
  r.timed.resync_blackout_mean_gap = Duration::seconds(250);
  r.timed.resync_blackout_duration = Duration::seconds(30);
  return r;
}

CampaignConfig::CampaignConfig() {
  rates = default_injector_rates();
  // The chaos-soak workload: busy enough that every fault class lands on
  // in-flight protocol activity.
  base.workload.p1_internal_rate = 3.0;
  base.workload.p2_internal_rate = 3.0;
  base.workload.p1_external_rate = 0.3;
  base.workload.p2_external_rate = 0.3;
  base.workload.step_rate = 1.0;
  base.sw_fault.activation_per_send = 0.001;
  base.tb.interval = Duration::seconds(10);
  base.repair_latency = Duration::seconds(2);
}

MissionReport run_mission(const CampaignConfig& config,
                          std::uint64_t mission_seed) {
  MissionReport report;
  report.seed = mission_seed;

  SystemConfig sc = config.base;
  sc.scheme = config.scheme;
  sc.seed = mission_seed;
  sc.net_faults = config.rates.net;
  sc.sstore.faults = config.rates.storage;
  sc.enable_monitor = true;
  sc.harden_recovery = true;
  if (!config.trace_csv.empty()) sc.enable_trace = true;

  System system(sc);
  const TimePoint start = TimePoint::origin();
  const FaultSchedule schedule = FaultSchedule::generate(
      mission_seed, config.rates, start, config.mission, sc.clock.rho,
      kNumCanonicalProcesses);

  for (const FaultEvent& ev : schedule.events()) {
    switch (ev.kind) {
      case FaultEvent::Kind::kHwFault:
        if (sc.scheme != Scheme::kMdcdOnly) {
          system.schedule_hw_fault(ev.at, NodeId{ev.target});
        }
        break;
      case FaultEvent::Kind::kDriftExcursion:
        system.sim().schedule_at(ev.at, [&system, ev] {
          system.clocks().inject_drift_excursion(ProcessId{ev.target},
                                                 ev.drift);
        });
        break;
      case FaultEvent::Kind::kDriftRestore:
        system.sim().schedule_at(ev.at, [&system, ev] {
          system.clocks().end_drift_excursion(ProcessId{ev.target});
        });
        break;
      case FaultEvent::Kind::kBlackoutStart:
        system.sim().schedule_at(ev.at, [&system] {
          system.clocks().suppress_resyncs(true);
        });
        break;
      case FaultEvent::Kind::kBlackoutEnd:
        system.sim().schedule_at(ev.at, [&system] {
          system.clocks().suppress_resyncs(false);
        });
        break;
    }
  }

  // Periodic recovery-line audits: the paper's theorems as standing
  // invariants, checked while the adversary is mid-swing.
  auto audit = [&report, &system](const char* when) {
    const GlobalState line = system.stable_line_state();
    for (const Violation& v : check_all(line)) {
      report.failures.push_back(std::string(when) + " at " +
                                std::to_string(system.sim().now().to_seconds()) +
                                "s: " + v.describe());
    }
  };
  for (TimePoint t = start + config.audit_interval;
       t < start + config.mission; t += config.audit_interval) {
    system.sim().schedule_at(t, [&audit] { audit("audit"); });
  }

  system.start(start + config.mission);
  system.run();
  audit("final");

  // With a perfect acceptance test no erroneous value may ever reach the
  // device, no matter what the injectors did.
  if (sc.at.coverage >= 1.0 && sc.at.false_alarm <= 0.0) {
    for (const auto& e : system.device().entries) {
      if (e.tainted) {
        report.failures.push_back("tainted external output at " +
                                  std::to_string(e.at.to_seconds()) + "s");
        break;
      }
    }
  }

  if (FaultyNetwork* fn = system.faulty_net()) {
    report.injected_net = fn->injected_total();
  }
  report.late_deliveries = system.net().late_deliveries();
  for (std::uint32_t p = 0; p < kNumCanonicalProcesses; ++p) {
    ProcessNode& n = system.node(ProcessId{p});
    if (!n.has_stable_storage()) continue;
    report.write_retries += n.sstore().write_retries();
    report.failed_writes += n.sstore().failed_writes();
    report.torn_writes += n.sstore().torn_writes();
    report.latent_corruptions += n.sstore().latent_corruptions();
    report.corrupt_reads += n.sstore().corrupt_reads();
  }
  report.hw_faults = system.hw_manager().faults_injected();
  report.drift_excursions = system.clocks().drift_excursions();
  report.missed_resyncs = system.clocks().missed_resyncs();
  report.sw_recoveries = system.sw_recovery().has_value() ? 1 : 0;
  if (AssumptionMonitor* m = system.monitor()) report.monitor = m->stats();

  if (!config.trace_csv.empty()) {
    std::ofstream out(config.trace_csv);
    write_trace_csv(system.trace(), out);
  }

  report.ok = report.failures.empty();
  if (!report.ok) report.schedule_json = schedule.to_json();
  return report;
}

CampaignResult run_campaign(const CampaignConfig& config, std::ostream* out) {
  CampaignResult result;
  Rng seeder(config.seed);
  for (std::size_t i = 0; i < config.reps; ++i) {
    const std::uint64_t mission_seed = seeder.next();
    MissionReport report = run_mission(config, mission_seed);
    result.oracle_violations += report.failures.size();
    result.detections += report.monitor.violations();
    result.degradations += report.monitor.degradations();
    if (!report.ok) ++result.failed;

    if (out && (config.verbose || !report.ok)) {
      *out << "mission " << i << " seed=" << report.seed
           << (report.ok ? " ok" : " FAIL") << " net=" << report.injected_net
           << " late=" << report.late_deliveries
           << " retries=" << report.write_retries
           << " torn=" << report.torn_writes
           << " latent=" << report.latent_corruptions
           << " hw=" << report.hw_faults
           << " drift=" << report.drift_excursions
           << " missed_resync=" << report.missed_resyncs
           << " detect=" << report.monitor.violations()
           << " degrade=" << report.monitor.degradations() << "\n";
    }
    if (out && !report.ok) {
      for (const auto& f : report.failures) *out << "  " << f << "\n";
      // The replay command must reproduce the mission *configuration* too,
      // not just the seed: spell out the non-default knobs.
      *out << "  replay: synergy chaos --replay " << report.seed;
      if (config.scheme != Scheme::kCoordinated) {
        *out << " --scheme " << to_string(config.scheme);
      }
      if (config.mission != Duration::seconds(600)) {
        *out << " --duration " << config.mission.to_seconds();
      }
      *out << " (plus any non-default injector flags)\n";
      *out << "  schedule: " << report.schedule_json << "\n";
    }
    result.missions.push_back(std::move(report));
  }

  if (out) {
    *out << "campaign: " << (config.reps - result.failed) << "/" << config.reps
         << " missions clean, " << result.oracle_violations
         << " oracle violations, " << result.detections
         << " assumption violations detected, " << result.degradations
         << " degradations applied\n";
  }
  return result;
}

}  // namespace synergy
