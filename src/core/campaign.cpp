#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "analysis/checkers.hpp"
#include "core/pool.hpp"
#include "trace/export.hpp"

namespace synergy {

InjectorRates default_injector_rates() {
  InjectorRates r;
  r.net.drop_probability = 0.01;
  r.net.duplicate_probability = 0.01;
  r.net.reorder_probability = 0.02;
  r.net.delay_probability = 0.002;
  r.net.bitflip_probability = 0.005;
  r.storage.write_error_probability = 0.05;
  r.storage.torn_write_probability = 0.02;
  r.storage.latent_corruption_probability = 0.01;
  r.timed.hw_fault_mean_gap = Duration::seconds(150);
  r.timed.drift_excursion_mean_gap = Duration::seconds(200);
  r.timed.drift_excursion_factor = 50.0;
  r.timed.drift_excursion_duration = Duration::seconds(20);
  r.timed.resync_blackout_mean_gap = Duration::seconds(250);
  r.timed.resync_blackout_duration = Duration::seconds(30);
  return r;
}

CampaignConfig::CampaignConfig() {
  rates = default_injector_rates();
  // The chaos-soak workload: busy enough that every fault class lands on
  // in-flight protocol activity.
  base.workload.p1_internal_rate = 3.0;
  base.workload.p2_internal_rate = 3.0;
  base.workload.p1_external_rate = 0.3;
  base.workload.p2_external_rate = 0.3;
  base.workload.step_rate = 1.0;
  base.sw_fault.activation_per_send = 0.001;
  base.tb.interval = Duration::seconds(10);
  base.repair_latency = Duration::seconds(2);
}

MissionReport run_mission(const CampaignConfig& config,
                          std::uint64_t mission_seed) {
  MissionReport report;
  report.seed = mission_seed;

  SystemConfig sc = config.base;
  sc.scheme = config.scheme;
  sc.seed = mission_seed;
  sc.net_faults = config.rates.net;
  sc.sstore.faults = config.rates.storage;
  // Mobile missions drive link state through the FaultyNetwork decorator
  // even when every per-message rate is zero.
  sc.enable_link_faults = config.rates.mobile.any();
  sc.enable_monitor = true;
  sc.harden_recovery = true;
  if (!config.trace_csv.empty()) sc.enable_trace = true;

  System system(sc);
  const TimePoint start = TimePoint::origin();
  const FaultSchedule schedule = FaultSchedule::generate(
      mission_seed, config.rates, start, config.mission, sc.clock.rho,
      kNumCanonicalProcesses);

  for (const FaultEvent& ev : schedule.events()) {
    switch (ev.kind) {
      case FaultEvent::Kind::kHwFault:
        if (sc.scheme != Scheme::kMdcdOnly) {
          system.schedule_hw_fault(ev.at, NodeId{ev.target});
        }
        break;
      case FaultEvent::Kind::kDriftExcursion:
        system.sim().schedule_at(ev.at, [&system, ev] {
          system.clocks().inject_drift_excursion(ProcessId{ev.target},
                                                 ev.drift);
        });
        break;
      case FaultEvent::Kind::kDriftRestore:
        system.sim().schedule_at(ev.at, [&system, ev] {
          system.clocks().end_drift_excursion(ProcessId{ev.target});
        });
        break;
      case FaultEvent::Kind::kBlackoutStart:
        system.sim().schedule_at(ev.at, [&system] {
          system.clocks().suppress_resyncs(true);
        });
        break;
      case FaultEvent::Kind::kBlackoutEnd:
        system.sim().schedule_at(ev.at, [&system] {
          system.clocks().suppress_resyncs(false);
        });
        break;
      case FaultEvent::Kind::kLaneFlip:
      case FaultEvent::Kind::kSigFault:
        system.schedule_lane_fault(
            ev.at, ProcessId{ev.target % kNumCanonicalProcesses}, ev.lane,
            ev.kind == FaultEvent::Kind::kSigFault, ev.noise);
        break;
      case FaultEvent::Kind::kLinkDown:
        system.schedule_link_down(
            ev.at, ProcessId{ev.target % kNumCanonicalProcesses},
            (ev.noise & kLinkRx) != 0, (ev.noise & kLinkTx) != 0,
            (ev.noise & kLinkFull) != 0, ev.drift);
        break;
      case FaultEvent::Kind::kLinkUp:
        system.schedule_link_up(ev.at,
                                ProcessId{ev.target % kNumCanonicalProcesses});
        break;
      case FaultEvent::Kind::kHandoff:
        // A handoff re-homes the stable store; storeless schemes have
        // nothing to migrate.
        if (sc.scheme != Scheme::kMdcdOnly) {
          system.schedule_handoff(
              ev.at, ProcessId{ev.target % kNumCanonicalProcesses});
        }
        break;
    }
  }

  // Periodic recovery-line audits: the paper's theorems as standing
  // invariants, checked while the adversary is mid-swing.
  auto audit = [&report, &system](const char* when) {
    const GlobalState line = system.stable_line_state();
    for (const Violation& v : check_all(line)) {
      report.failures.push_back(std::string(when) + " at " +
                                std::to_string(system.sim().now().to_seconds()) +
                                "s: " + v.describe());
    }
  };
  for (TimePoint t = start + config.audit_interval;
       t < start + config.mission; t += config.audit_interval) {
    system.sim().schedule_at(t, [&audit] { audit("audit"); });
  }

  system.start(start + config.mission);
  system.run();
  audit("final");

  // With a perfect acceptance test no erroneous value may ever reach the
  // device, no matter what the injectors did. ABFT workloads compute their
  // verdicts from the block checksums — their coverage is measured, never
  // promised — so the perfect-AT oracle only applies to the registers
  // workload.
  if (sc.workload.kind == WorkloadKind::kRegisters && sc.at.coverage >= 1.0 &&
      sc.at.false_alarm <= 0.0) {
    for (const auto& e : system.device().entries) {
      if (e.tainted) {
        report.failures.push_back("tainted external output at " +
                                  std::to_string(e.at.to_seconds()) + "s");
        break;
      }
    }
  }

  if (FaultyNetwork* fn = system.faulty_net()) {
    report.injected_net = fn->injected_total();
    report.link_epochs = fn->link_epochs();
    report.disconnect_drops = fn->disconnect_drops();
    report.burst_drops = fn->burst_drops();
  }
  report.handoffs = system.handoffs();
  report.handoff_aborted_writes = system.handoff_aborted_writes();
  report.late_deliveries = system.net().late_deliveries();
  report.net_dropped_loss = system.net().dropped_loss();
  report.net_dropped_no_receiver = system.net().dropped_no_receiver();
  report.net_dropped_cancelled = system.net().dropped_cancelled();
  for (std::uint32_t p = 0; p < kNumCanonicalProcesses; ++p) {
    ProcessNode& n = system.node(ProcessId{p});
    report.unacked_high_water =
        std::max<std::uint64_t>(report.unacked_high_water,
                                n.endpoint().unacked_high_water());
    const AcceptanceTest& at = n.at();
    const std::uint64_t detected = at.failures() - at.false_alarms();
    report.at_detected += detected;
    report.at_missed += at.missed_detections();
    report.at_exposures += detected + at.missed_detections();
    report.at_false_alarms += at.false_alarms();
    report.ckpt_records += n.vstore().saves();
    report.ckpt_bytes_encoded += n.app().snapshot_bytes_encoded() +
                                 n.engine().protocol_bytes_encoded() +
                                 n.endpoint().snapshot_bytes_encoded();
    report.ckpt_cache_hits += n.app().snapshot_cache_hits() +
                              n.engine().protocol_cache_hits() +
                              n.endpoint().snapshot_cache_hits();
    report.ckpt_cache_misses += n.app().snapshot_cache_misses() +
                                n.engine().protocol_cache_misses() +
                                n.endpoint().snapshot_cache_misses();
    if (!n.has_stable_storage()) continue;
    report.ckpt_records += n.sstore().commits();
    report.stable_bytes_written += n.sstore().bytes_written();
    report.write_retries += n.sstore().write_retries();
    report.failed_writes += n.sstore().failed_writes();
    report.torn_writes += n.sstore().torn_writes();
    report.latent_corruptions += n.sstore().latent_corruptions();
    report.corrupt_reads += n.sstore().corrupt_reads();
  }
  report.hw_faults = system.hw_manager().faults_injected();
  report.drift_excursions = system.clocks().drift_excursions();
  report.missed_resyncs = system.clocks().missed_resyncs();
  report.sw_recoveries = system.sw_recovery().has_value() ? 1 : 0;
  const LaneStats lanes = system.lane_stats();
  report.lane_injected = lanes.injected + system.unprotected_flips();
  report.lane_masked = lanes.masked;
  report.lane_detected = lanes.detected;
  report.lane_silent = lanes.silent;
  report.lane_unprotected = system.unprotected_flips();
  report.lane_rollbacks = system.lane_rollbacks();
  report.lane_resyncs = lanes.resyncs;
  report.sig_mismatches = lanes.sig_mismatches;
  for (const HwRecoveryStats& r : system.hw_recoveries()) {
    for (const Duration& d : r.rollback_distance) {
      report.rollback_seconds.push_back(d.to_seconds());
    }
  }
  for (std::uint32_t p = 0; p < kNumCanonicalProcesses; ++p) {
    if (const TbEngine* tb = system.node(ProcessId{p}).tb()) {
      report.blocking_seconds += tb->total_blocking().to_seconds();
    }
  }
  if (AssumptionMonitor* m = system.monitor()) report.monitor = m->stats();

  if (!config.trace_csv.empty()) {
    std::ofstream out(config.trace_csv);
    write_trace_csv(system.trace(), out);
  }

  report.ok = report.failures.empty();
  if (!report.ok) report.schedule_json = schedule.to_json();
  return report;
}

bool operator==(const MissionReport& a, const MissionReport& b) {
  const MonitorStats& ma = a.monitor;
  const MonitorStats& mb = b.monitor;
  return a.seed == b.seed && a.ok == b.ok && a.failures == b.failures &&
         a.injected_net == b.injected_net &&
         a.late_deliveries == b.late_deliveries &&
         a.net_dropped_loss == b.net_dropped_loss &&
         a.net_dropped_no_receiver == b.net_dropped_no_receiver &&
         a.net_dropped_cancelled == b.net_dropped_cancelled &&
         a.write_retries == b.write_retries &&
         a.failed_writes == b.failed_writes &&
         a.torn_writes == b.torn_writes &&
         a.latent_corruptions == b.latent_corruptions &&
         a.corrupt_reads == b.corrupt_reads && a.hw_faults == b.hw_faults &&
         a.drift_excursions == b.drift_excursions &&
         a.missed_resyncs == b.missed_resyncs &&
         a.sw_recoveries == b.sw_recoveries &&
         a.ckpt_records == b.ckpt_records &&
         a.ckpt_bytes_encoded == b.ckpt_bytes_encoded &&
         a.ckpt_cache_hits == b.ckpt_cache_hits &&
         a.ckpt_cache_misses == b.ckpt_cache_misses &&
         a.stable_bytes_written == b.stable_bytes_written &&
         a.lane_injected == b.lane_injected && a.lane_masked == b.lane_masked &&
         a.lane_detected == b.lane_detected &&
         a.lane_silent == b.lane_silent &&
         a.lane_unprotected == b.lane_unprotected &&
         a.lane_rollbacks == b.lane_rollbacks &&
         a.lane_resyncs == b.lane_resyncs &&
         a.sig_mismatches == b.sig_mismatches &&
         a.link_epochs == b.link_epochs &&
         a.disconnect_drops == b.disconnect_drops &&
         a.burst_drops == b.burst_drops && a.handoffs == b.handoffs &&
         a.handoff_aborted_writes == b.handoff_aborted_writes &&
         a.unacked_high_water == b.unacked_high_water &&
         a.at_exposures == b.at_exposures && a.at_detected == b.at_detected &&
         a.at_missed == b.at_missed &&
         a.at_false_alarms == b.at_false_alarms &&
         a.rollback_seconds == b.rollback_seconds &&
         a.blocking_seconds == b.blocking_seconds &&
         a.schedule_json == b.schedule_json &&
         ma.bound_violations == mb.bound_violations &&
         ma.blocking_overruns == mb.blocking_overruns &&
         ma.write_timeouts == mb.write_timeouts &&
         ma.corrupt_records == mb.corrupt_records &&
         ma.undelivered_messages == mb.undelivered_messages &&
         ma.line_inconsistencies == mb.line_inconsistencies &&
         ma.signature_mismatches == mb.signature_mismatches &&
         ma.unacked_overflows == mb.unacked_overflows &&
         ma.abft_scrub_detections == mb.abft_scrub_detections &&
         ma.disconnect_deferrals == mb.disconnect_deferrals &&
         ma.lane_repairs == mb.lane_repairs &&
         ma.tau_widenings == mb.tau_widenings &&
         ma.forced_resyncs == mb.forced_resyncs &&
         ma.forced_write_throughs == mb.forced_write_throughs &&
         ma.forced_resends == mb.forced_resends && ma.relines == mb.relines;
}

std::string format_mission_report(const CampaignConfig& config,
                                  std::size_t index,
                                  const MissionReport& report) {
  std::ostringstream out;
  if (config.verbose || !report.ok) {
    out << "mission " << index << " seed=" << report.seed
        << (report.ok ? " ok" : " FAIL") << " net=" << report.injected_net
        << " late=" << report.late_deliveries
        << " drop_loss=" << report.net_dropped_loss
        << " drop_norecv=" << report.net_dropped_no_receiver
        << " drop_cancel=" << report.net_dropped_cancelled
        << " retries=" << report.write_retries
        << " torn=" << report.torn_writes
        << " latent=" << report.latent_corruptions
        << " hw=" << report.hw_faults
        << " drift=" << report.drift_excursions
        << " missed_resync=" << report.missed_resyncs
        << " detect=" << report.monitor.violations()
        << " degrade=" << report.monitor.degradations();
    // Lane adjudication only exists on redundant schemes; single-lane
    // campaign output stays byte-identical to the pre-lane format.
    if (scheme_lane_count(config.scheme) > 1) {
      out << " lane_inj=" << report.lane_injected
          << " masked=" << report.lane_masked
          << " detected=" << report.lane_detected
          << " silent=" << report.lane_silent
          << " lane_rb=" << report.lane_rollbacks;
    }
    // Mobile-family counters only when the family is armed; pre-mobile
    // campaigns keep their lines byte-identical.
    if (config.rates.mobile.any()) {
      out << " link_epochs=" << report.link_epochs
          << " disc_drop=" << report.disconnect_drops
          << " burst_drop=" << report.burst_drops
          << " handoffs=" << report.handoffs
          << " handoff_aborts=" << report.handoff_aborted_writes
          << " unacked_hw=" << report.unacked_high_water
          << " deferred=" << report.monitor.disconnect_deferrals;
    }
    // Assumed-vs-computed coverage only for ABFT workloads, where the AT
    // verdicts are measured from the block checksums.
    if (config.base.workload.kind == WorkloadKind::kAbft) {
      out << " at_exposed=" << report.at_exposures
          << " at_detect=" << report.at_detected
          << " at_miss=" << report.at_missed;
      out.setf(std::ios::fixed);
      out.precision(3);
      out << " cov_computed="
          << (report.at_exposures > 0
                  ? static_cast<double>(report.at_detected) /
                        static_cast<double>(report.at_exposures)
                  : 1.0)
          << " cov_assumed=" << config.base.at.coverage;
      out.unsetf(std::ios::fixed);
    }
    out << "\n";
  }
  if (!report.ok) {
    for (const auto& f : report.failures) out << "  " << f << "\n";
    // The replay command must reproduce the mission *configuration* too,
    // not just the seed: spell out the non-default knobs.
    out << "  replay: synergy chaos --replay " << report.seed;
    if (config.scheme != Scheme::kCoordinated) {
      out << " --scheme " << to_string(config.scheme);
    }
    if (config.mission != Duration::seconds(600)) {
      out << " --duration " << config.mission.to_seconds();
    }
    out << " (plus any non-default injector flags)\n";
    out << "  schedule: " << report.schedule_json << "\n";
  }
  return out.str();
}

namespace {

/// CPU time consumed by the calling thread. Immune to timesharing: on an
/// oversubscribed machine a mission's wall time inflates while its CPU
/// time does not, so Σ mission CPU / campaign wall reports real
/// parallelism (~1 on one core) instead of flattering it.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// Releases buffered per-mission text to the stream strictly in mission
/// order, as soon as the prefix is complete — so a parallel campaign
/// streams progress like the sequential one, byte for byte.
class OrderedEmitter {
 public:
  OrderedEmitter(std::ostream* out, std::size_t count)
      : out_(out), buffered_(count), ready_(count, false) {}

  void publish(std::size_t index, std::string text) {
    if (!out_) return;
    std::lock_guard<std::mutex> lk(mu_);
    buffered_[index] = std::move(text);
    ready_[index] = true;
    while (next_ < ready_.size() && ready_[next_]) {
      *out_ << buffered_[next_];
      buffered_[next_].clear();
      ++next_;
    }
    out_->flush();
  }

 private:
  std::ostream* out_;
  std::mutex mu_;
  std::vector<std::string> buffered_;
  std::vector<bool> ready_;
  std::size_t next_ = 0;
};

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config, std::ostream* out) {
  using Clock = std::chrono::steady_clock;
  CampaignResult result;

  // All mission seeds derive from the campaign seed before any mission
  // runs: the executor cannot perturb the adversary, whatever the order.
  std::vector<std::uint64_t> seeds(config.reps);
  Rng seeder(config.seed);
  for (auto& s : seeds) s = seeder.next();

  std::size_t jobs = config.jobs == 0 ? ThreadPool::default_jobs()
                                      : config.jobs;
  // Every mission would write the same trace file; replay diagnostics are
  // single-mission anyway.
  if (!config.trace_csv.empty()) jobs = 1;
  jobs = std::min(jobs, std::max<std::size_t>(1, config.reps));

  result.missions.resize(config.reps);
  std::vector<double> mission_secs(config.reps, 0.0);
  OrderedEmitter emitter(out, config.reps);

  auto run_one = [&](std::size_t i) {
    const double cpu0 = thread_cpu_seconds();
    MissionReport report = run_mission(config, seeds[i]);
    mission_secs[i] = thread_cpu_seconds() - cpu0;
    emitter.publish(i, format_mission_report(config, i, report));
    result.missions[i] = std::move(report);
  };

  const auto wall0 = Clock::now();
  if (jobs <= 1) {
    for (std::size_t i = 0; i < config.reps; ++i) run_one(i);
  } else {
    ThreadPool pool(jobs);
    pool.run_indexed(config.reps, run_one);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  result.jobs = jobs;

  for (const MissionReport& report : result.missions) {
    result.oracle_violations += report.failures.size();
    result.detections += report.monitor.violations();
    result.degradations += report.monitor.degradations();
    if (!report.ok) ++result.failed;
  }
  for (double s : mission_secs) result.mission_seconds_total += s;
  if (result.wall_seconds > 0) {
    result.missions_per_sec =
        static_cast<double>(config.reps) / result.wall_seconds;
    result.speedup = result.mission_seconds_total / result.wall_seconds;
  }

  if (out) {
    *out << "campaign: " << (config.reps - result.failed) << "/" << config.reps
         << " missions clean, " << result.oracle_violations
         << " oracle violations, " << result.detections
         << " assumption violations detected, " << result.degradations
         << " degradations applied\n";
    // Host-clock, not simulation state: the one line that may differ
    // between jobs values.
    std::ostringstream timing;
    timing.setf(std::ios::fixed);
    timing.precision(2);
    timing << "timing: jobs=" << jobs << " wall=" << result.wall_seconds
           << "s throughput=" << result.missions_per_sec
           << " missions/s speedup=" << result.speedup << "x\n";
    *out << timing.str();
  }
  return result;
}

}  // namespace synergy
