// Chaos campaign driver: N seeded missions under the full injector stack.
//
// A mission is one System run with every adversary enabled at once —
// per-message network faults, per-write storage faults, and the timed
// event schedule (hardware crashes, clock-drift excursions, resync
// blackouts) generated from the mission seed. The assumption monitors are
// installed, so violations are detected and degraded around; the paper's
// oracles (consistency, recoverability, software recoverability) audit the
// recovery line periodically and at mission end, and the device log is
// checked for tainted output.
//
// Mission seeds derive deterministically from the campaign seed, and every
// injected fault draws from streams derived from the mission seed, so a
// failed mission is replayed exactly by re-running its printed seed. On
// failure the report carries the complete schedule JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "coord/monitor.hpp"
#include "core/system.hpp"
#include "inject/fault_schedule.hpp"

namespace synergy {

/// Injector rates sized so a default 600 s mission sees every fault class
/// several times while staying inside what the hardened coordinated scheme
/// degrades around (the acceptance bar: zero oracle violations).
InjectorRates default_injector_rates();

struct CampaignConfig {
  std::uint64_t seed = 1;
  std::size_t reps = 50;
  Duration mission = Duration::seconds(600);
  Scheme scheme = Scheme::kCoordinated;
  InjectorRates rates;  ///< zero-initialized: call default_injector_rates()
  /// Base system configuration; seed/scheme/faults are overridden per
  /// mission. Leave defaulted for the standard chaos workload.
  SystemConfig base;
  Duration audit_interval = Duration::seconds(30);
  bool verbose = false;  ///< Per-mission summary lines.
  /// When non-empty, enable tracing and dump the mission's trace to this
  /// CSV path (replay diagnostics: `chaos --replay SEED --trace-csv f.csv`).
  /// Forces jobs = 1: every mission writes the same file.
  std::string trace_csv;
  /// Worker threads for the campaign fan-out; 0 = hardware concurrency.
  /// Mission seeds derive from the campaign seed up-front and each mission
  /// runs on a private System, so reports and per-mission output are
  /// bit-identical for every jobs value.
  std::size_t jobs = 1;

  CampaignConfig();  ///< Sets rates + a busy default workload.
};

struct MissionReport {
  std::uint64_t seed = 0;
  bool ok = true;
  std::vector<std::string> failures;

  // Adversity actually experienced.
  std::uint64_t injected_net = 0;
  std::uint64_t late_deliveries = 0;
  // Base-network drop tally, split by cause (summing them reproduces the
  // old conflated `dropped()` figure): probabilistic/injected frame loss,
  // deliveries with no attached receiver, and in-flight frames cancelled
  // by a crash's drop_in_transit_to.
  std::uint64_t net_dropped_loss = 0;
  std::uint64_t net_dropped_no_receiver = 0;
  std::uint64_t net_dropped_cancelled = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t failed_writes = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t latent_corruptions = 0;
  std::uint64_t corrupt_reads = 0;
  std::uint64_t hw_faults = 0;
  std::uint64_t drift_excursions = 0;
  std::uint64_t missed_resyncs = 0;
  std::uint64_t sw_recoveries = 0;

  // Checkpoint-volume counters (allocation-lean pipeline observability):
  // how much state the mission actually checkpointed, and how often the
  // version-keyed snapshot caches spared a re-encode. Reported via the
  // CLI's --json output only; the per-mission text lines stay unchanged.
  std::uint64_t ckpt_records = 0;        ///< volatile saves + stable commits
  std::uint64_t ckpt_bytes_encoded = 0;  ///< snapshot bytes serialized
  std::uint64_t ckpt_cache_hits = 0;     ///< across app/protocol/transport
  std::uint64_t ckpt_cache_misses = 0;
  std::uint64_t stable_bytes_written = 0;

  // Redundant-lane fault adjudication (COAST injection model). At mission
  // end every injected lane fault is exactly one of masked (voted out),
  // detected (divergence / signature mismatch) or silent (wiped by a
  // rollback/resync before any vote saw it, or still pending).
  // `lane_unprotected` counts flips that landed on a single-lane scheme's
  // live state — the no-redundancy baseline where detection is up to AT
  // coverage.
  std::uint64_t lane_injected = 0;
  std::uint64_t lane_masked = 0;
  std::uint64_t lane_detected = 0;
  std::uint64_t lane_silent = 0;
  std::uint64_t lane_unprotected = 0;
  std::uint64_t lane_rollbacks = 0;  ///< voter-triggered recovery-line rollbacks
  std::uint64_t lane_resyncs = 0;    ///< lane repairs from surviving majority
  std::uint64_t sig_mismatches = 0;  ///< CFCSS signature-chain detections

  // Mobile/intermittent-connectivity family (zero unless the mobile rates
  // are armed).
  std::uint64_t link_epochs = 0;        ///< disconnection epochs begun
  std::uint64_t disconnect_drops = 0;   ///< messages lost to blackouts
  std::uint64_t burst_drops = 0;        ///< messages lost to burst chains
  std::uint64_t handoffs = 0;           ///< base-station handoffs performed
  std::uint64_t handoff_aborted_writes = 0;  ///< writes abandoned mid-handoff
  std::uint64_t unacked_high_water = 0;  ///< max per-node unacked-log size

  // Acceptance-test outcome tallies summed over all nodes. For ABFT
  // workloads the verdicts are computed from the block checksums, so
  //   computed coverage = at_detected / (at_detected + at_missed)
  // is a *measured* output to compare against the assumed `at.coverage`
  // input — the campaign's honest answer to "what does the AT really
  // catch here".
  std::uint64_t at_exposures = 0;    ///< AT runs on tainted state
  std::uint64_t at_detected = 0;     ///< tainted runs that failed the AT
  std::uint64_t at_missed = 0;       ///< tainted runs that passed (blind spot)
  std::uint64_t at_false_alarms = 0; ///< clean runs that failed

  // Distribution-feeding observables for the sweep driver (src/sweep).
  // Derived from simulated time only, so they share the determinism
  // contract with every counter above.
  /// Rollback distance of each hardware recovery this mission, in
  /// simulated seconds, in recovery order (the Figure-7 axis).
  std::vector<double> rollback_seconds;
  /// Total time-based-checkpointing blocking time summed over nodes, in
  /// simulated seconds (the tau(b) axis).
  double blocking_seconds = 0.0;

  MonitorStats monitor;

  /// Populated when the mission failed: the full replayable adversary.
  std::string schedule_json;
};

/// Field-wise equality, including monitor stats and failure text — the
/// determinism contract: `--jobs N` must reproduce `--jobs 1` exactly.
bool operator==(const MissionReport& a, const MissionReport& b);
inline bool operator!=(const MissionReport& a, const MissionReport& b) {
  return !(a == b);
}

struct CampaignResult {
  std::vector<MissionReport> missions;  ///< Stable order: mission index.
  std::size_t failed = 0;
  std::uint64_t oracle_violations = 0;   ///< Across all audits (must be 0).
  std::uint64_t detections = 0;          ///< Monitor detections (expected >0).
  std::uint64_t degradations = 0;

  // Host-clock performance of the campaign itself. Everything above is
  // bit-identical across jobs values; these fields are not (they measure
  // the executor, not the missions).
  std::size_t jobs = 1;                ///< Workers actually used.
  double wall_seconds = 0;             ///< Campaign wall-clock.
  /// Sum of per-mission thread-CPU times (not wall: CPU time is immune to
  /// timesharing inflation when the pool oversubscribes the cores).
  double mission_seconds_total = 0;
  double missions_per_sec = 0;         ///< reps / wall_seconds.
  /// Effective parallelism: mission_seconds_total / wall_seconds (≈1 when
  /// jobs = 1 or on one core; approaches jobs on enough real cores).
  double speedup = 1;
};

/// The per-mission text block run_campaign emits for mission `index`
/// (summary line when verbose or failed, plus failure details) — exposed
/// so tests can assert output equality across jobs values. Returns ""
/// when this mission prints nothing.
std::string format_mission_report(const CampaignConfig& config,
                                  std::size_t index,
                                  const MissionReport& report);

/// Run one mission with the given seed. Exposed for deterministic replay
/// (`synergy chaos --replay <seed>`).
MissionReport run_mission(const CampaignConfig& config,
                          std::uint64_t mission_seed);

/// Run the whole campaign, fanning missions out over config.jobs workers.
/// Mission seeds are all derived from config.seed before any mission runs,
/// reports land in mission-index order, and per-mission output is buffered
/// and emitted in order, so everything written to `out` except the trailing
/// `timing:` line is byte-identical for every jobs value. Prints a summary
/// (and failing seeds + schedule JSON) to `out` when non-null.
CampaignResult run_campaign(const CampaignConfig& config, std::ostream* out);

}  // namespace synergy
