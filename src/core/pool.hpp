// Work-stealing thread pool for independent seeded jobs.
//
// Built for the chaos campaign's fan-out: N missions whose seeds are all
// derived up-front, so any execution order yields bit-identical reports.
// Each worker owns a deque; it pushes/pops at the back (LIFO, cache-warm)
// and thieves steal from the front (FIFO, oldest first), which keeps
// skewed mission lengths balanced without a global queue bottleneck.
// Deques are mutex-guarded rather than lock-free: missions run for
// milliseconds, so pool overhead is noise, and the simple locking is
// trivially ThreadSanitizer-clean.
//
// Exceptions thrown by tasks are captured and rethrown from run_indexed()
// (first one wins); the pool itself never terminates on a task error.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace synergy {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a fire-and-forget task.
  void submit(Task task);

  /// Enqueue a task and get a future for its result; task exceptions
  /// surface through the future.
  template <class F>
  auto async(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  /// Run fn(0), fn(1), ..., fn(n-1) across the workers and block until all
  /// have finished. Rethrows the first task exception (the remaining tasks
  /// still run to completion first). The calling thread only waits; it does
  /// not execute tasks, so fn may block on pool-external state.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Hardware concurrency, clamped to at least 1 (the value used for
  /// `--jobs 0`).
  static std::size_t default_jobs();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake protocol: `pending_` counts queued-but-unclaimed tasks.
  // Every submit pushes first, then increments; every worker decrements
  // (claiming one task) before popping, so queued >= claims always holds
  // and a claimant's scan loop terminates.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t pending_ = 0;
  bool stop_ = false;

  std::size_t next_queue_ = 0;  // round-robin submit target, under wake_mu_
};

}  // namespace synergy
