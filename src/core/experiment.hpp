// Experiment harness: replicated Monte-Carlo measurements over System runs.
//
// Drives the Figure 7 reproduction and the ablation benches: for each
// replication a fresh System is built from a derived seed, a hardware
// fault is injected at a uniformly random instant on a uniformly random
// node, and the per-process rollback distances (and oracle violations,
// when history recording is on) are accumulated.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.hpp"
#include "core/system.hpp"

namespace synergy {

struct RollbackExperimentConfig {
  SystemConfig base;
  Duration horizon = Duration::seconds(100'000);
  Duration fault_earliest = Duration::seconds(20'000);
  Duration fault_latest = Duration::seconds(90'000);
  std::size_t replications = 30;
  std::uint64_t seed0 = 42;
  /// Run the consistency/recoverability oracles on the live state after
  /// each recovery (requires base.record_history).
  bool check_oracles = false;
};

struct RollbackMeasurement {
  RunningStats overall;  ///< rollback distance in seconds, all processes
  std::array<RunningStats, 3> per_process;
  std::uint64_t faults = 0;
  std::uint64_t consistency_violations = 0;
  std::uint64_t recoverability_violations = 0;
  std::uint64_t dirty_restores = 0;
};

RollbackMeasurement measure_rollback(const RollbackExperimentConfig& config);

}  // namespace synergy
