#include "core/system.hpp"

#include <utility>

#include "common/assert.hpp"
#include "coord/reline.hpp"

namespace synergy {

System::System(const SystemConfig& config) : config_(config) {
  rng_ = std::make_unique<Rng>(config.seed);
  if (config.net_faults.any() || config.enable_link_faults) {
    auto fn = std::make_unique<FaultyNetwork>(sim_, config.net,
                                              config.net_faults, rng_->split());
    faulty_net_ = fn.get();
    net_ = std::move(fn);
  } else {
    net_ = std::make_unique<Network>(sim_, config.net, rng_->split());
  }
  clocks_ = std::make_unique<ClockEnsemble>(sim_, config.clock,
                                            kNumCanonicalProcesses,
                                            rng_->split());

  // The device records every external message it is handed.
  net_->attach(kDeviceId, [this](const Message& m) {
    device_.entries.push_back(
        DeviceLog::Entry{sim_.now(), m.sender, m.payload, m.tainted});
  });

  NodeConfig nc;
  nc.mdcd.gate_mode = config.gate_mode;
  nc.mdcd.tracking = config.tracking;
  nc.mdcd.record_history = config.record_history;
  nc.at = config.at;
  nc.workload = config.workload.kind;
  nc.sw_fault = config.sw_fault;
  nc.sstore = config.sstore;
  nc.tb = config.tb;
  // Keep the TB protocol's environmental bounds coherent with the actual
  // clock and network models.
  nc.tb.delta = config.clock.delta;
  nc.tb.rho = config.clock.rho;
  nc.tb.tmin = config.net.tmin;
  nc.tb.tmax = config.net.tmax;
  nc.scheme = config.scheme;

  TraceLog* trace = config.enable_trace ? &trace_ : nullptr;
  auto recovery_cb = [this](ProcessId detector) { on_at_failure(detector); };
  auto lane_rollback_cb =
      scheme_lane_count(config.scheme) > 1
          ? std::function<void(ProcessId)>(
                [this](ProcessId detector) { on_lane_rollback(detector); })
          : std::function<void(ProcessId)>{};

  // P1act and P1sdw share the application seed: the shadow performs the
  // same computation on the same inputs.
  const std::uint64_t c1_seed = config.seed * 2654435761u + 1;
  const std::uint64_t p2_seed = config.seed * 2654435761u + 2;
  const Role roles[] = {Role::kP1Act, Role::kP1Sdw, Role::kP2};
  for (Role role : roles) {
    const std::uint64_t app_seed = role == Role::kP2 ? p2_seed : c1_seed;
    nodes_.push_back(std::make_unique<ProcessNode>(
        role, sim_, *net_, *clocks_, nc, app_seed, rng_->split(), trace,
        recovery_cb, lane_rollback_cb));
  }

  // TB engines request clock resynchronization through the ensemble.
  for (auto& node : nodes_) {
    if (TbEngine* tb = node->tb()) {
      tb->set_resync_requester([this] {
        clocks_->resync_all();
        if (config_.enable_trace) {
          trace_.record(sim_.now(), ProcessId{0}, TraceKind::kResync);
        }
      });
    }
  }

  // Timer-less schemes with stable storage (the write-through baseline and
  // the lane schemes) commit on validation events: divergence rollbacks
  // need a populated recovery line.
  if (scheme_writes_through(config.scheme)) {
    write_through_ = std::make_unique<WriteThroughCoordinator>(
        std::vector<ProcessNode*>{nodes_[0].get(), nodes_[1].get(),
                                  nodes_[2].get()},
        trace);
    write_through_->install();
  }

  hw_manager_ = std::make_unique<HardwareRecoveryManager>(
      sim_,
      std::vector<ProcessNode*>{nodes_[0].get(), nodes_[1].get(),
                                nodes_[2].get()},
      config.repair_latency, trace, config.harden_recovery);

  sw_manager_ = std::make_unique<SoftwareRecoveryManager>(
      *nodes_[0]->p1act(), *nodes_[1]->p1sdw(), *nodes_[2]->p2(),
      [this] { return sim_.now(); }, trace);

  if (config.enable_monitor) {
    monitor_ = std::make_unique<AssumptionMonitor>(
        sim_, *net_, *clocks_,
        std::vector<ProcessNode*>{nodes_[0].get(), nodes_[1].get(),
                                  nodes_[2].get()},
        config.monitor, trace);
    monitor_->install();
    if (faulty_net_) {
      // Declared disconnection epochs are expected outages, not broken
      // assumptions: give the monitor the link oracle so it defers
      // violations the epochs explain.
      FaultyNetwork* fn = faulty_net_;
      monitor_->set_link_oracle(AssumptionMonitor::LinkOracle{
          [fn](ProcessId p) { return fn->link_impaired(p); },
          [fn](ProcessId p) { return fn->link_last_restored(p); }});
    }
  }

  workload_ = std::make_unique<WorkloadDriver>(sim_, config.workload,
                                               rng_->split());
  workload_->set_component1_send([this](bool external, std::uint64_t input) {
    nodes_[0]->engine().on_app_send(external, input);
    nodes_[1]->engine().on_app_send(external, input);
  });
  workload_->set_component1_step([this](std::uint64_t input) {
    nodes_[0]->engine().on_local_step(input);
    nodes_[1]->engine().on_local_step(input);
  });
  workload_->set_p2_send([this](bool external, std::uint64_t input) {
    nodes_[2]->engine().on_app_send(external, input);
  });
  workload_->set_p2_step([this](std::uint64_t input) {
    nodes_[2]->engine().on_local_step(input);
  });
}

System::~System() = default;

ProcessNode& System::node(ProcessId id) {
  SYNERGY_EXPECTS(id.value() < nodes_.size());
  return *nodes_[id.value()];
}

void System::start(TimePoint horizon) {
  SYNERGY_EXPECTS(!started_);
  started_ = true;
  horizon_ = horizon;
  for (auto& node : nodes_) node->start();
  workload_->start(horizon);
}

void System::run_until(TimePoint deadline) { sim_.run_until(deadline); }

void System::run() {
  SYNERGY_EXPECTS(started_);
  sim_.run_until(horizon_);
}

void System::schedule_hw_fault(TimePoint at, NodeId node_id) {
  SYNERGY_EXPECTS(config_.scheme != Scheme::kMdcdOnly);
  sim_.schedule_at(at, [this, node_id] {
    if (hw_manager_->recovery_pending()) return;
    if (node(ProcessId{node_id.value()}).retired()) return;
    hw_manager_->inject_fault(node_id, next_epoch(),
                              [this](const HwRecoveryStats& stats) {
                                hw_recoveries_.push_back(stats);
                              });
  });
}

void System::schedule_sw_error(TimePoint at) {
  sim_.schedule_at(at, [this] {
    ProcessNode& n = *nodes_[0];
    if (!n.engine().alive()) return;
    // A design fault computes the same wrong value on every redundant
    // lane — route it through the fan-out so the voter stays blind to it
    // (catching it is the acceptance test's job, not the voter's).
    if (LaneSet* lanes = n.lanes()) {
      lanes->corrupt(rng_->next());
    } else {
      n.app().corrupt(rng_->next());
    }
    // Drive an external send so the acceptance test runs on the erroneous
    // output (deterministic software-error scenario).
    n.engine().on_app_send(/*external=*/true, rng_->next());
  });
}

void System::schedule_lane_fault(TimePoint at, ProcessId target,
                                 std::uint32_t lane, bool sig_fault,
                                 std::uint64_t noise) {
  sim_.schedule_at(at, [this, target, lane, sig_fault, noise] {
    inject_lane_fault(target, lane, sig_fault, noise);
  });
}

void System::inject_lane_fault(ProcessId target, std::uint32_t lane,
                               bool sig_fault, std::uint64_t noise) {
  ProcessNode& n = node(target);
  if (n.retired() || n.crashed()) return;
  if (LaneSet* lanes = n.lanes()) {
    const std::size_t idx = lane % lanes->lane_count();
    if (sig_fault) {
      lanes->inject_signature_fault(idx, noise);
    } else {
      lanes->inject_state_flip(idx, noise);
    }
    return;
  }
  if (sig_fault) return;  // no signature chains without lanes: nothing to hit
  // Unprotected scheme: the flip lands straight on the live state. Whether
  // anything ever notices is up to AT coverage — detection by luck, the
  // baseline the lane schemes are measured against.
  n.app().flip_bit(noise);
  ++unprotected_flips_;
  if (config_.enable_trace) {
    trace_.record(sim_.now(), target, TraceKind::kLaneFlip, "unprotected");
  }
}

void System::schedule_link_down(TimePoint at, ProcessId target, bool rx,
                                bool tx, bool full, double burst_loss) {
  SYNERGY_EXPECTS(faulty_net_ != nullptr);
  sim_.schedule_at(at, [this, target, rx, tx, full, burst_loss] {
    faulty_net_->set_link_down(target, rx, tx, full, burst_loss);
    if (config_.enable_trace) {
      const std::uint64_t flags = (rx ? 1u : 0u) | (tx ? 2u : 0u) |
                                  (full ? 4u : 0u);
      trace_.record(sim_.now(), target, TraceKind::kLinkDown, {}, flags);
    }
  });
}

void System::schedule_link_up(TimePoint at, ProcessId target) {
  SYNERGY_EXPECTS(faulty_net_ != nullptr);
  sim_.schedule_at(at, [this, target] {
    faulty_net_->set_link_up(target);
    if (config_.enable_trace) {
      trace_.record(sim_.now(), target, TraceKind::kLinkUp);
    }
  });
}

void System::schedule_handoff(TimePoint at, ProcessId target) {
  sim_.schedule_at(at, [this, target] { perform_handoff(target); });
}

bool System::perform_handoff(ProcessId target) {
  // A handoff mid-recovery would race the coordinated restart's own line
  // refresh; the next scheduled handoff gets its chance instead.
  if (hw_manager_->recovery_pending()) return false;
  ProcessNode& n = node(target);
  if (n.retired() || n.crashed() || !n.has_stable_storage()) return false;

  // Transfer budget: about half the retained history fits through the
  // handoff gap. A drain window of two base write latencies lets a nearly
  // finished write complete at the old station; anything slower is
  // abandoned and forced through by the write watchdog at the new home.
  constexpr std::size_t kHandoffKeepDepth = 4;
  const Duration drain_window = config_.sstore.write_base_latency * 2;
  const StableStore::HandoffOutcome outcome =
      n.sstore().handoff(kHandoffKeepDepth, drain_window);
  ++handoffs_;
  if (outcome.write_abandoned) ++handoff_aborted_writes_;
  if (config_.enable_trace) {
    trace_.record(sim_.now(), target, TraceKind::kHandoff,
                  outcome.write_abandoned ? "abandoned_write" : "",
                  outcome.migrated);
  }

  // Dropped history can leave the nodes without a consistent common index
  // (the other stores still retain what this one lost): re-derive the
  // recovery line at a fresh common index right away rather than leaving
  // a window where a rollback would have to search for one.
  if (outcome.dropped > 0 && scheme_has_tb(config_.scheme)) {
    std::vector<ProcessNode*> all;
    all.reserve(nodes_.size());
    bool quiescent = true;
    for (auto& node : nodes_) {
      if (!node->retired() && node->crashed()) quiescent = false;
      all.push_back(node.get());
    }
    if (quiescent) {
      if (const auto line = reestablish_recovery_line(sim_, all);
          line && config_.enable_trace) {
        trace_.record(sim_.now(), target, TraceKind::kDegradation,
                      "handoff_reline", *line);
      }
    }
  }
  return true;
}

void System::on_lane_rollback(ProcessId detector) {
  // Divergence detection fires from deep inside an engine event (mid-send).
  // Schedule the rollback as its own simulator event so the current
  // dispatch unwinds first; duplicate detections in the window collapse
  // into one recovery.
  if (config_.scheme == Scheme::kMdcdOnly) return;  // no stable line
  if (lane_rollback_pending_) return;
  lane_rollback_pending_ = true;
  sim_.schedule_at(sim_.now(), [this, detector] {
    lane_rollback_pending_ = false;
    if (hw_manager_->recovery_pending()) return;
    ProcessNode& n = node(detector);
    if (n.retired() || n.crashed()) return;
    ++lane_rollbacks_;
    if (config_.enable_trace) {
      trace_.record(sim_.now(), detector, TraceKind::kRollback,
                    "lane_divergence");
    }
    // The suspect node's volatile state is unusable (which lane was right
    // is unknowable without a majority): treat it exactly like a hardware
    // fault and restart everyone from the oracle-filtered recovery line.
    hw_manager_->inject_fault(NodeId{detector.value()}, next_epoch(),
                              [this](const HwRecoveryStats& stats) {
                                hw_recoveries_.push_back(stats);
                              });
  });
}

LaneStats System::lane_stats() const {
  LaneStats total;
  for (const auto& node : nodes_) {
    LaneSet* lanes = const_cast<ProcessNode&>(*node).lanes();
    if (!lanes) continue;
    const LaneStats s = lanes->stats();
    total.injected += s.injected;
    total.masked += s.masked;
    total.detected += s.detected;
    total.silent += s.silent;
    total.votes += s.votes;
    total.masked_votes += s.masked_votes;
    total.divergences += s.divergences;
    total.sig_mismatches += s.sig_mismatches;
    total.resyncs += s.resyncs;
  }
  return total;
}

void System::on_at_failure(ProcessId detector) {
  ++at_failures_;
  if (sw_recovery_.has_value()) {
    // The spare is already in service; a further AT failure exhausts the
    // design-diversity redundancy. Recorded, not recovered.
    return;
  }
  sw_recovery_ = sw_manager_->recover(detector, next_epoch());

  // Establish a fresh recovery line: the takeover must never be split by a
  // later hardware rollback (stable checkpoints predating it would
  // resurrect the retired P1act). The line gets a *common* index beyond
  // every survivor's current Ndc, and each TB schedule fast-forwards to it
  // — mixing per-node indices would pair pre- and post-takeover records.
  if (config_.scheme != Scheme::kMdcdOnly) {
    // Boundary-aligned index strictly after every survivor's schedule
    // position: the next TB expiry re-commits the same index for everyone.
    StableSeq line = static_cast<StableSeq>(sim_.now().count() /
                                            config_.tb.interval.count()) +
                     1;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (TbEngine* tb = nodes_[i]->tb()) {
        line = std::max(line, tb->ndc() + 1);
      }
    }
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      ProcessNode& n = *nodes_[i];
      // A survivor parked in a blocking period drains it now: its deferred
      // work lands after the recovery instant on both sides of the line.
      if (n.engine().in_blocking()) n.engine().end_blocking();
      CheckpointRecord rec = n.engine().make_record(CkptKind::kStable);
      rec.ndc = line;
      n.sstore().commit_now(std::move(rec));
      if (TbEngine* tb = n.tb()) tb->reset_after_recovery(line);
    }
  }
  nodes_[0]->retire();
}

GlobalState System::stable_line_state() const {
  // Mirror the recovery selection: the line is the last checkpoint index
  // every (timer-driven) process has committed. Write-through has no
  // indices; each process contributes its latest validated checkpoint.
  std::vector<ProcessNode*> participants;
  bool timered = true;
  for (const auto& node : nodes_) {
    if (node->retired()) continue;
    auto* n = const_cast<ProcessNode*>(node.get());
    if (!n->has_stable_storage()) continue;
    participants.push_back(n);
    if (n->tb() == nullptr) timered = false;
  }
  std::vector<CheckpointRecord> records;
  std::optional<StableSeq> line;
  if (timered && !participants.empty()) {
    // Same selection a recovery would make: in hardened mode the newest
    // index that is intact on every participant and restores a clean
    // global state, then merely intact (storage faults can damage the
    // naive minimum, and injector-era indices can fail the oracles —
    // hardened recovery skips those).
    if (config_.harden_recovery) line = common_restorable_line(participants);
    if (!line) line = common_valid_line(participants);
  }
  if (line) {
    for (ProcessNode* n : participants) {
      auto rec = n->sstore().committed_for(*line);
      if (rec) records.push_back(std::move(*rec));
    }
  } else {
    // Index-less schemes: mirror hardened recovery's per-node selection
    // (consistent_write_through_cut), falling back to per-node newest.
    std::vector<std::optional<StableSeq>> cut;
    if (!timered && config_.harden_recovery) {
      cut = consistent_write_through_cut(participants);
    }
    for (std::size_t i = 0; i < participants.size(); ++i) {
      ProcessNode* n = participants[i];
      auto rec = i < cut.size() && cut[i] ? n->sstore().committed_for(*cut[i])
                                          : n->sstore().latest_committed();
      if (rec) records.push_back(std::move(*rec));
    }
  }
  return global_state_from_records(records);
}

GlobalState System::live_state() const {
  GlobalState state;
  for (const auto& node : nodes_) {
    const MdcdEngine& engine = node->engine();
    if (!engine.alive()) continue;
    state.processes.push_back(
        facts_from_engine(engine, engine.current_time()));
  }
  return state;
}

}  // namespace synergy
