#include "core/experiment.hpp"

#include "analysis/checkers.hpp"
#include "common/assert.hpp"

namespace synergy {

RollbackMeasurement measure_rollback(const RollbackExperimentConfig& config) {
  SYNERGY_EXPECTS(config.fault_latest > config.fault_earliest);
  SYNERGY_EXPECTS(config.horizon > config.fault_latest);
  RollbackMeasurement result;
  Rng meta(config.seed0);

  for (std::size_t rep = 0; rep < config.replications; ++rep) {
    SystemConfig sc = config.base;
    sc.seed = config.seed0 + rep * 7919 + 1;
    sc.enable_trace = false;  // traces are per-scenario tools, not sweeps

    System system(sc);
    const TimePoint fault_at =
        TimePoint::origin() +
        meta.uniform(config.fault_earliest, config.fault_latest);
    const NodeId victim{
        static_cast<std::uint32_t>(meta.uniform_int(0, 2))};

    system.start(TimePoint::origin() + config.horizon);
    system.schedule_hw_fault(fault_at, victim);
    system.run();

    for (const auto& rec : system.hw_recoveries()) {
      ++result.faults;
      for (std::size_t i = 0; i < rec.rollback_distance.size(); ++i) {
        const double d = rec.rollback_distance[i].to_seconds();
        result.overall.add(d);
        if (i < result.per_process.size()) result.per_process[i].add(d);
        if (rec.restored_dirty[i]) ++result.dirty_restores;
      }
    }

    if (config.check_oracles && !system.hw_recoveries().empty()) {
      const GlobalState state = system.stable_line_state();
      result.consistency_violations += check_consistency(state).size();
      result.recoverability_violations += check_recoverability(state).size();
    }
  }
  return result;
}

}  // namespace synergy
