// synergy::System — the library's primary facade.
//
// Assembles the paper's three-node guarded system on the discrete-event
// simulator: P1act (low-confidence active), P1sdw (high-confidence shadow)
// and P2 on three nodes with drifting clocks, a bounded-delay network,
// volatile + stable storage, the MDCD engines, and — scheme-dependent —
// TB engines or the write-through coordinator. Drives workloads, injects
// software and hardware faults, runs recoveries, and exposes the global
// states the analysis oracles consume.
//
// Typical use (see examples/quickstart.cpp):
//
//   SystemConfig config;
//   config.scheme = Scheme::kCoordinated;
//   System system(config);
//   system.start(TimePoint::origin() + Duration::seconds(3600));
//   system.schedule_hw_fault(TimePoint::origin() + Duration::seconds(1800),
//                            NodeId{2});
//   system.run();
//   for (const auto& r : system.hw_recoveries()) { ... }
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analysis/global_state.hpp"
#include "app/workload.hpp"
#include "clock/ensemble.hpp"
#include "coord/hw_recovery.hpp"
#include "coord/monitor.hpp"
#include "coord/node.hpp"
#include "coord/write_through.hpp"
#include "inject/faulty_network.hpp"
#include "mdcd/recovery.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct SystemConfig {
  Scheme scheme = Scheme::kCoordinated;
  /// Corrected defaults; set kPaper / kPaperDirtyBit to study the
  /// paper-faithful algorithms (see the gate/tracking ablation benches).
  NdcGateMode gate_mode = NdcGateMode::kBlockingAware;
  ContaminationTracking tracking = ContaminationTracking::kWatermark;
  /// Keep per-message validity views (required by the oracles; disable for
  /// long performance sweeps).
  bool record_history = true;

  ClockParams clock;
  NetworkParams net;
  StableStoreParams sstore;
  TbParams tb;  ///< variant is overridden by `scheme`
  AtParams at;
  SoftwareFaultParams sw_fault;
  WorkloadParams workload;

  /// Downtime between a hardware fault and the coordinated restart.
  Duration repair_latency = Duration::seconds(1);

  /// Per-message network fault injection (chaos campaigns). Any non-zero
  /// rate swaps the network for a FaultyNetwork decorator.
  NetFaultParams net_faults;

  /// Build the FaultyNetwork decorator even with all per-message rates
  /// zero, so the mobile mission family can drive link state
  /// (schedule_link_down / schedule_link_up) on an otherwise clean
  /// network.
  bool enable_link_faults = false;

  /// Install the assumption monitors + graceful degradation.
  bool enable_monitor = false;
  MonitorParams monitor;

  /// Oracle-filter the hardware recovery line: skip retained indices whose
  /// record set fails the paper's consistency/recoverability checks (they
  /// can be cut while an injector has split validation knowledge, and
  /// restoring one bakes the asymmetry into the live states). Off by
  /// default so un-hardened systems keep the paper's naive selection —
  /// characterization tests rely on observing those very violations.
  bool harden_recovery = false;

  std::uint64_t seed = 1;
  /// Record protocol events into the trace log (scenario figures, tests).
  bool enable_trace = true;
};

/// Recording sink for external messages (the device).
struct DeviceLog {
  struct Entry {
    TimePoint at;
    ProcessId from;
    std::uint64_t payload;
    bool tainted;
  };
  std::vector<Entry> entries;
};

class System {
 public:
  explicit System(const SystemConfig& config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // ---- Accessors ----------------------------------------------------------
  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  ClockEnsemble& clocks() { return *clocks_; }
  TraceLog& trace() { return trace_; }
  const SystemConfig& config() const { return config_; }
  DeviceLog& device() { return device_; }

  ProcessNode& node(ProcessId id);
  P1ActEngine& p1act() { return *nodes_[0]->p1act(); }
  P1SdwEngine& p1sdw() { return *nodes_[1]->p1sdw(); }
  P2Engine& p2() { return *nodes_[2]->p2(); }

  // ---- Lifecycle ------------------------------------------------------------
  /// Write initial stable checkpoints, arm TB timers, start the workload.
  void start(TimePoint horizon);

  /// Run the simulation until the event queue drains or `deadline`.
  void run_until(TimePoint deadline);
  /// Run until the horizon given to start().
  void run();

  // ---- Fault injection ---------------------------------------------------------
  /// Crash `node_id` at time `at` (hardware fault; recovery is automatic).
  void schedule_hw_fault(TimePoint at, NodeId node_id);

  /// Corrupt P1act's state at time `at` and immediately drive an external
  /// send, so the acceptance test fires deterministically (with the
  /// configured coverage).
  void schedule_sw_error(TimePoint at);

  /// Flip one state bit (or corrupt the CFCSS signature, `sig_fault`) of
  /// one execution lane of `target` at time `at` (COAST register/memory
  /// injection model). On single-lane schemes a state flip lands straight
  /// on the live application state — detection is up to AT coverage
  /// ("luck") — and a signature fault is a no-op (nothing to corrupt).
  void schedule_lane_fault(TimePoint at, ProcessId target, std::uint32_t lane,
                           bool sig_fault, std::uint64_t noise);
  /// Immediate-injection form of schedule_lane_fault (tests).
  void inject_lane_fault(ProcessId target, std::uint32_t lane, bool sig_fault,
                         std::uint64_t noise);

  // ---- Mobile/intermittent-connectivity family ---------------------------
  /// Begin a disconnection epoch on `target`'s link at `at`: the selected
  /// directions go dark (full) or degrade to correlated burst loss.
  /// Requires the FaultyNetwork decorator (net_faults or
  /// enable_link_faults).
  void schedule_link_down(TimePoint at, ProcessId target, bool rx, bool tx,
                          bool full, double burst_loss);
  /// End `target`'s disconnection epoch at `at`.
  void schedule_link_up(TimePoint at, ProcessId target);
  /// Base-station handoff at `at`: re-home `target`'s stable store —
  /// drain-or-abandon the in-progress write, migrate the newest checkpoint
  /// records, and (TB schemes) re-derive the recovery line at a fresh
  /// common index so dropped history can never be selected.
  void schedule_handoff(TimePoint at, ProcessId target);
  /// Immediate-injection form of schedule_handoff (tests). Returns false
  /// when the handoff was skipped (node retired/crashed/storeless or a
  /// recovery in flight).
  bool perform_handoff(ProcessId target);

  // ---- Results ---------------------------------------------------------------
  const std::vector<HwRecoveryStats>& hw_recoveries() const {
    return hw_recoveries_;
  }
  const std::optional<SwRecoveryStats>& sw_recovery() const {
    return sw_recovery_;
  }
  std::uint64_t at_failures_observed() const { return at_failures_; }

  /// Recovery-line rollbacks triggered by the lane voter (unmaskable
  /// divergences), and bit-flips that landed on an unprotected
  /// (single-lane) scheme's live state.
  std::uint64_t lane_rollbacks() const { return lane_rollbacks_; }
  std::uint64_t unprotected_flips() const { return unprotected_flips_; }

  /// Base-station handoffs performed, and how many of them abandoned an
  /// in-progress stable write (too slow to drain within the gap).
  std::uint64_t handoffs() const { return handoffs_; }
  std::uint64_t handoff_aborted_writes() const {
    return handoff_aborted_writes_;
  }
  /// Masked/detected/silent adjudication summed over every node's lanes.
  LaneStats lane_stats() const;

  /// Global state a hardware recovery would restore right now (decoded
  /// from the latest committed stable checkpoints of non-retired nodes).
  GlobalState stable_line_state() const;

  /// Global state of the live engines (post-recovery audits).
  GlobalState live_state() const;

  /// The write-through coordinator (null unless scheme_writes_through).
  WriteThroughCoordinator* write_through() { return write_through_.get(); }
  HardwareRecoveryManager& hw_manager() { return *hw_manager_; }

  /// The fault-injecting network (null unless config.net_faults.any()).
  FaultyNetwork* faulty_net() { return faulty_net_; }
  /// The assumption monitor (null unless config.enable_monitor).
  AssumptionMonitor* monitor() { return monitor_.get(); }

 private:
  void on_at_failure(ProcessId detector);
  void on_lane_rollback(ProcessId detector);
  std::uint32_t next_epoch() { return ++epoch_counter_; }

  SystemConfig config_;
  Simulator sim_;
  TraceLog trace_;
  DeviceLog device_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ClockEnsemble> clocks_;
  std::vector<std::unique_ptr<ProcessNode>> nodes_;
  std::unique_ptr<WorkloadDriver> workload_;
  std::unique_ptr<WriteThroughCoordinator> write_through_;
  std::unique_ptr<HardwareRecoveryManager> hw_manager_;
  std::unique_ptr<SoftwareRecoveryManager> sw_manager_;
  std::unique_ptr<AssumptionMonitor> monitor_;
  FaultyNetwork* faulty_net_ = nullptr;

  TimePoint horizon_;
  bool started_ = false;
  std::uint32_t epoch_counter_ = 0;
  std::uint64_t at_failures_ = 0;
  std::uint64_t lane_rollbacks_ = 0;
  std::uint64_t unprotected_flips_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t handoff_aborted_writes_ = 0;
  bool lane_rollback_pending_ = false;
  std::vector<HwRecoveryStats> hw_recoveries_;
  std::optional<SwRecoveryStats> sw_recovery_;
  std::unique_ptr<Rng> rng_;
};

}  // namespace synergy
