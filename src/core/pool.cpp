#include "core/pool.hpp"

#include <exception>
#include <utility>

namespace synergy {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own queue: back (most recently pushed here, cache-warm).
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal: front of the other queues (oldest task — likely the largest
  // remaining chunk under skewed lengths).
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    Queue& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait(lk, [this] { return stop_ || pending_ > 0; });
      if (pending_ == 0) return;  // stop_ set and nothing left to drain
      --pending_;                 // claim exactly one queued task
    }
    Task task;
    while (!try_pop(self, task)) {
      // A submitter pushes before incrementing pending_ and claimants pop
      // after decrementing, so queued >= outstanding claims: some queue
      // holds a task for us, another claimant just hasn't popped its own
      // yet. Yield and rescan.
      std::this_thread::yield();
    }
    task();
  }
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr first_error;
  };
  auto join = std::make_shared<Join>();
  for (std::size_t i = 0; i < n; ++i) {
    submit([join, &fn, i, n] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(join->mu);
      if (error && !join->first_error) join->first_error = error;
      if (++join->done == n) join->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lk(join->mu);
  join->cv.wait(lk, [&] { return join->done == n; });
  if (join->first_error) std::rethrow_exception(join->first_error);
}

std::size_t ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace synergy
