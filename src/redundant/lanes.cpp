#include "redundant/lanes.hpp"

#include <array>

#include "common/assert.hpp"

namespace synergy {

namespace {
/// Fixed upper bound so the voter runs allocation-free (schemes use 2-3
/// lanes; the micro-bench exercises 4).
constexpr std::size_t kMaxLanes = 8;
}  // namespace

const char* to_string(VoteOutcome outcome) {
  switch (outcome) {
    case VoteOutcome::kAgree: return "agree";
    case VoteOutcome::kMasked: return "masked";
    case VoteOutcome::kDiverged: return "diverged";
    case VoteOutcome::kSplit: return "split";
  }
  return "";  // unreachable: all enumerators handled above
}

LaneSet::LaneSet(ApplicationState& primary, std::size_t lane_count,
                 TraceLog* trace, ProcessId self, std::function<TimePoint()> now)
    : primary_(primary), trace_(trace), self_(self), now_(std::move(now)) {
  SYNERGY_EXPECTS(lane_count >= 2 && lane_count <= kMaxLanes);
  const Bytes snap = primary_.snapshot();
  lanes_.reserve(lane_count);
  lanes_.push_back(Lane{&primary_, kSigInit, false, 0});
  for (std::size_t i = 1; i < lane_count; ++i) {
    auto replica = std::make_unique<ApplicationState>();
    replica->restore(snap);
    lanes_.push_back(Lane{replica.get(), kSigInit, false, 0});
    replicas_.push_back(std::move(replica));
  }
}

void LaneSet::trace(TraceKind kind, std::uint64_t a, std::uint64_t b) const {
  if (trace_ && now_) trace_->record(now_(), self_, kind, {}, a, b);
}

void LaneSet::raise_confidence_loss() {
  if (on_confidence_loss_) on_confidence_loss_();
}

std::size_t LaneSet::active_lanes() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += !lane.parked;
  return n;
}

// ---- Operation fan-out ------------------------------------------------------

void LaneSet::apply_message(std::uint64_t payload, bool payload_tainted) {
  const std::uint64_t operand = payload * 2 + (payload_tainted ? 1 : 0);
  golden_sig_ = sig_step(golden_sig_, SigOp::kApplyMessage, operand);
  for (Lane& lane : lanes_) {
    if (lane.parked) continue;
    lane.state->apply_message(payload, payload_tainted);
    lane.sig = sig_step(lane.sig, SigOp::kApplyMessage, operand);
  }
}

void LaneSet::local_step(std::uint64_t input) {
  golden_sig_ = sig_step(golden_sig_, SigOp::kLocalStep, input);
  for (Lane& lane : lanes_) {
    if (lane.parked) continue;
    lane.state->local_step(input);
    lane.sig = sig_step(lane.sig, SigOp::kLocalStep, input);
  }
}

void LaneSet::corrupt(std::uint64_t noise) {
  golden_sig_ = sig_step(golden_sig_, SigOp::kCorrupt, noise);
  for (Lane& lane : lanes_) {
    if (lane.parked) continue;
    lane.state->corrupt(noise);
    lane.sig = sig_step(lane.sig, SigOp::kCorrupt, noise);
  }
}

// ---- Voting -----------------------------------------------------------------

VoteOutcome LaneSet::vote() {
  ++stats_.votes;
  scan_signatures();

  std::array<std::size_t, kMaxLanes> active{};
  std::size_t n_active = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (!lanes_[i].parked) active[n_active++] = i;
  }
  if (n_active <= 1) return VoteOutcome::kAgree;  // fully degraded

  // Group identical lanes (n <= kMaxLanes: quadratic is allocation-free and
  // faster than anything clever at this size).
  std::array<std::size_t, kMaxLanes> group_of{};
  std::array<std::size_t, kMaxLanes> group_rep{};
  std::array<std::size_t, kMaxLanes> group_size{};
  std::size_t n_groups = 0;
  for (std::size_t j = 0; j < n_active; ++j) {
    const ApplicationState& state = *lanes_[active[j]].state;
    std::size_t g = n_groups;
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (state.equals(*lanes_[group_rep[k]].state)) {
        g = k;
        break;
      }
    }
    if (g == n_groups) {
      group_rep[n_groups] = active[j];
      group_size[n_groups] = 0;
      ++n_groups;
    }
    group_of[j] = g;
    ++group_size[g];
  }
  if (n_groups == 1) return VoteOutcome::kAgree;

  std::size_t majority = n_groups;
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (group_size[g] * 2 > n_active) majority = g;
  }

  if (majority == n_groups) {
    // No strict majority: DWC disagreement or a TMR multi-way split. The
    // corruption is *detected* but cannot be masked; the caller aborts any
    // pending send and the rollback lands on the recovery line.
    for (std::size_t j = 0; j < n_active; ++j) {
      Lane& lane = lanes_[active[j]];
      stats_.detected += lane.pending;
      lane.pending = 0;
    }
    ++stats_.divergences;
    trace(TraceKind::kLaneDiverged, n_active, n_groups);
    return n_groups >= 3 ? VoteOutcome::kSplit : VoteOutcome::kDiverged;
  }

  // Strict majority: mask the minority. An outvoted primary is repaired in
  // place from a majority lane (the engine's state must stay trustworthy);
  // an outvoted replica is parked until the next validation re-syncs it.
  for (std::size_t j = 0; j < n_active; ++j) {
    if (group_of[j] == majority) continue;
    Lane& lane = lanes_[active[j]];
    stats_.masked += lane.pending;
    lane.pending = 0;
    trace(TraceKind::kLaneMasked, active[j]);
    if (active[j] == 0) {
      primary_.restore(lanes_[group_rep[majority]].state->snapshot());
      lane.sig = golden_sig_;
      ++stats_.resyncs;
      trace(TraceKind::kLaneResync, 1);
    } else {
      lane.parked = true;
      trace(TraceKind::kLaneParked, active[j]);
    }
  }
  ++stats_.masked_votes;
  return VoteOutcome::kMasked;
}

bool LaneSet::vote_for_send() {
  switch (vote()) {
    case VoteOutcome::kAgree:
    case VoteOutcome::kMasked:
      return true;
    case VoteOutcome::kDiverged:
    case VoteOutcome::kSplit:
      if (on_rollback_) on_rollback_();
      return false;
  }
  return true;
}

// ---- Signature monitoring ---------------------------------------------------

std::size_t LaneSet::scan_signatures() {
  std::size_t found = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (lane.parked || lane.sig == golden_sig_) continue;
    ++found;
    ++stats_.sig_mismatches;
    stats_.detected += lane.pending;
    lane.pending = 0;
    trace(TraceKind::kSigMismatch, i);
    if (i == 0) {
      // The primary's control flow broke: its state is suspect. Repair
      // from a healthy replica when one survives, else roll back.
      std::size_t donor = lanes_.size();
      for (std::size_t j = 1; j < lanes_.size(); ++j) {
        if (!lanes_[j].parked && lanes_[j].sig == golden_sig_) {
          donor = j;
          break;
        }
      }
      lane.sig = golden_sig_;
      if (donor < lanes_.size()) {
        primary_.restore(lanes_[donor].state->snapshot());
        ++stats_.resyncs;
        trace(TraceKind::kLaneResync, 1);
      } else if (on_rollback_) {
        on_rollback_();
      }
    } else {
      lane.parked = true;
      trace(TraceKind::kLaneParked, i);
    }
    // Redundant coverage was lost: MDCD's confidence in the current state
    // drops exactly as if an acceptance test had flagged it.
    raise_confidence_loss();
  }
  return found;
}

// ---- Re-sync ----------------------------------------------------------------

std::size_t LaneSet::resync_parked() {
  std::size_t revived = 0;
  Bytes snap;
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (!lane.parked) continue;
    wiped_ += lane.pending;
    lane.pending = 0;
    if (snap.empty()) snap = primary_.snapshot();
    lane.state->restore(snap);
    lane.sig = golden_sig_;
    lane.parked = false;
    ++stats_.resyncs;
    ++revived;
  }
  if (revived) trace(TraceKind::kLaneResync, revived);
  return revived;
}

void LaneSet::resync_after_restore() {
  const Bytes snap = primary_.snapshot();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    // Faults still latent at rollback were never caught by anyone — the
    // rollback simply erased them. Accounting calls that silent.
    wiped_ += lane.pending;
    lane.pending = 0;
    lane.sig = golden_sig_;
    lane.parked = false;
    if (i > 0) lane.state->restore(snap);
  }
}

// ---- Fault injection --------------------------------------------------------

void LaneSet::inject_state_flip(std::size_t lane, std::uint64_t noise) {
  SYNERGY_EXPECTS(lane < lanes_.size());
  lanes_[lane].state->flip_bit(noise);
  ++lanes_[lane].pending;
  ++stats_.injected;
  trace(TraceKind::kLaneFlip, lane);
}

void LaneSet::inject_signature_fault(std::size_t lane, std::uint64_t noise) {
  SYNERGY_EXPECTS(lane < lanes_.size());
  lanes_[lane].sig ^= noise | 1;  // guarantee an actual change
  ++lanes_[lane].pending;
  ++stats_.injected;
  trace(TraceKind::kSigFault, lane);
}

LaneStats LaneSet::stats() const {
  LaneStats out = stats_;
  out.silent = wiped_;
  for (const Lane& lane : lanes_) out.silent += lane.pending;
  return out;
}

}  // namespace synergy
