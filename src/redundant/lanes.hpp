// Redundant-execution protection family (ROADMAP item 3): replicated
// ApplicationState lanes with a majority voter and CFCSS-style signature
// chains, in COAST's sphere-of-replication shape.
//
// Lane 0 is the *primary* — the ApplicationState the MDCD engine owns and
// checkpoints. The remaining lanes are owned replicas that replay exactly
// the same operation stream (fan-out through this class). Fault classes
// and who covers them:
//
//   - software (design) faults hit ALL lanes identically — the voter is
//     deliberately blind to them; acceptance tests cover that class. The
//     synergy story is precisely that the families cover disjoint classes.
//   - hardware state corruption (per-lane bit flips) desynchronizes one
//     lane and is masked (TMR majority) or detected (DWC compare) at the
//     next vote boundary: every send and every checkpoint capture votes.
//   - control-flow corruption (per-lane signature faults) breaks a lane's
//     CFCSS chain and is caught by scan_signatures() at vote boundaries
//     and AssumptionMonitor sweeps; each mismatch raises a confidence-loss
//     event that feeds the MDCD dirty-bit machinery like a failed AT.
//
// Degradation ladder (TMR): a voted-out or signature-broken replica is
// *parked* — the set keeps running DWC-style on the survivors — and is
// re-synced from the primary at the next validation event (resync_parked).
// A divergence with no majority (DWC pair, or a TMR 1-1-1 split) cannot be
// masked: the pending send is aborted and the rollback handler fires,
// landing on the existing oracle-filtered recovery line.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "app/state.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "redundant/signature.hpp"
#include "trace/trace.hpp"

namespace synergy {

enum class VoteOutcome : std::uint8_t {
  kAgree,     ///< All active lanes identical.
  kMasked,    ///< Strict majority outvoted a minority; fault masked.
  kDiverged,  ///< Two-way disagreement with no majority (DWC detect).
  kSplit,     ///< Three-way disagreement (TMR double-fault between votes).
};

const char* to_string(VoteOutcome outcome);

/// Counters for the masked-vs-detected-vs-silent accounting campaign JSON
/// reports (distinguishing masking from luck). At quiescence,
/// injected == masked + detected + silent.
struct LaneStats {
  std::uint64_t injected = 0;   ///< Per-lane faults landed (state or sig).
  std::uint64_t masked = 0;     ///< Outvoted by a strict majority.
  std::uint64_t detected = 0;   ///< Caught by divergence or sig mismatch.
  std::uint64_t silent = 0;     ///< Wiped by rollback/resync or still latent.
  std::uint64_t votes = 0;
  std::uint64_t masked_votes = 0;
  std::uint64_t divergences = 0;     ///< Votes with no majority.
  std::uint64_t sig_mismatches = 0;  ///< CFCSS chain breaks found.
  std::uint64_t resyncs = 0;         ///< Lane repairs/re-syncs performed.
};

class LaneSet {
 public:
  /// `primary` is the engine-owned state (lane 0); `lane_count`-1 replicas
  /// are cloned from its current snapshot. `trace`/`now` are optional
  /// diagnostics plumbing (pass nullptr/empty for benches).
  LaneSet(ApplicationState& primary, std::size_t lane_count, TraceLog* trace,
          ProcessId self, std::function<TimePoint()> now);

  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  std::size_t lane_count() const { return lanes_.size(); }
  std::size_t active_lanes() const;
  bool parked(std::size_t lane) const { return lanes_[lane].parked; }
  std::uint64_t golden_signature() const { return golden_sig_; }
  std::uint64_t lane_signature(std::size_t lane) const {
    return lanes_[lane].sig;
  }

  /// Fired on every signature mismatch: redundant coverage was lost, MDCD
  /// must treat the state as suspect (confidence-loss event).
  void set_confidence_loss_handler(std::function<void()> fn) {
    on_confidence_loss_ = std::move(fn);
  }
  /// Fired when the voter cannot mask (no majority) or the primary's chain
  /// broke with no healthy donor: roll back to the recovery line.
  void set_rollback_handler(std::function<void()> fn) {
    on_rollback_ = std::move(fn);
  }

  // ---- Operation fan-out (replaces direct primary mutation) --------------
  void apply_message(std::uint64_t payload, bool payload_tainted);
  void local_step(std::uint64_t input);
  /// Software-fault manifestation: corrupts every active lane identically
  /// (a design fault computes the same wrong value on every lane).
  void corrupt(std::uint64_t noise);

  // ---- Voting and signature monitoring -----------------------------------

  /// Compare all active lanes; mask a minority (restoring the primary in
  /// place if it was the one outvoted), or report an unmaskable divergence.
  /// Runs scan_signatures() first, so a vote boundary is also a signature
  /// boundary. Does NOT invoke the rollback handler — callers decide
  /// (send paths abort + roll back; capture paths capture the repaired
  /// majority state and let the caller's outcome stand).
  VoteOutcome vote();

  /// Vote for a send boundary: on kDiverged/kSplit invokes the rollback
  /// handler and returns false (the caller must abort the send).
  bool vote_for_send();

  /// Check every active lane's chain against the golden signature. A
  /// mismatched replica is parked; a mismatched primary is restored from a
  /// healthy replica (or the rollback handler fires when none is left).
  /// Every mismatch raises a confidence-loss event. Returns the number of
  /// newly found mismatches.
  std::size_t scan_signatures();

  /// Validation event: re-sync parked replicas from the primary. Returns
  /// the number of lanes revived.
  std::size_t resync_parked();

  /// The primary was just restored from a checkpoint: realign every
  /// replica and chain with it. Pending (unadjudicated) faults are wiped —
  /// they were never caught, and the accounting says so.
  void resync_after_restore();

  // ---- Fault injection (COAST register/memory + control-flow model) ------
  void inject_state_flip(std::size_t lane, std::uint64_t noise);
  void inject_signature_fault(std::size_t lane, std::uint64_t noise);

  /// Counters with `silent` folded in: wiped faults plus any still-pending
  /// (latent) ones at call time.
  LaneStats stats() const;

 private:
  struct Lane {
    ApplicationState* state = nullptr;
    std::uint64_t sig = kSigInit;
    bool parked = false;
    /// Faults injected into this lane, not yet adjudicated by a vote/scan.
    std::uint32_t pending = 0;
  };

  void trace(TraceKind kind, std::uint64_t a = 0, std::uint64_t b = 0) const;
  void raise_confidence_loss();

  ApplicationState& primary_;
  std::vector<std::unique_ptr<ApplicationState>> replicas_;
  std::vector<Lane> lanes_;
  std::uint64_t golden_sig_ = kSigInit;
  LaneStats stats_;
  std::uint64_t wiped_ = 0;  ///< Silent faults adjudicated so far.
  TraceLog* trace_ = nullptr;
  ProcessId self_{0};
  std::function<TimePoint()> now_;
  std::function<void()> on_confidence_loss_;
  std::function<void()> on_rollback_;
};

}  // namespace synergy
