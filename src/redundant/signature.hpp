// CFCSS-style signature algebra for the redundant-execution lanes.
//
// Each lane carries a running signature updated at every application-level
// operation (control-flow block). The golden chain is updated alongside by
// the LaneSet from the same operation stream, so a lane whose control flow
// diverged from the fan-out — modelled as a direct corruption of its
// signature register — stops matching the golden value and stays mismatched
// forever after (the mixer is a bijection, so distinct inputs stay
// distinct). This is the application-model reduction of CFCSS: we do not
// simulate basic blocks, we simulate the *observable* of CFCSS, a per-lane
// signature that breaks exactly when that lane's control flow breaks.
#pragma once

#include <cstdint>

namespace synergy {

/// Starting value of every signature chain.
inline constexpr std::uint64_t kSigInit = 0x5349474E41545552ULL;  // "SIGNATUR"

/// Operation tags folded into the chain (the "block id" of CFCSS).
enum class SigOp : std::uint8_t {
  kApplyMessage = 1,
  kLocalStep = 2,
  kCorrupt = 3,
};

/// One chain update: fold the op tag and operand in, then finalize with a
/// murmur-style mixer (a bijection on u64, so chains never re-converge).
inline std::uint64_t sig_step(std::uint64_t sig, SigOp op,
                              std::uint64_t operand) {
  std::uint64_t x =
      sig ^ (static_cast<std::uint64_t>(op) * 0x9E3779B97F4A7C15ULL) ^ operand;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace synergy
