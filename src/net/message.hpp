// The wire message type shared by every protocol in the library.
//
// One flat struct (rather than a class hierarchy) because checkpoints must
// serialize logged messages, the trace layer must render any message, and
// the protocols piggyback fields across kinds (dirty bit, Ndc, msg_SN).
#pragma once

#include <cstdint>
#include <optional>

#include "common/serialize.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace synergy {

/// Pseudo process id representing the external world (devices). External
/// messages are addressed here; the device model records and never replies.
inline constexpr ProcessId kDeviceId{0xFFFF};

enum class MsgKind : std::uint8_t {
  kInternal,  ///< Application message between processes (paper: internal).
  kExternal,  ///< Command/data to the external world (paper: external).
  kPassedAt,  ///< "passed AT" notification broadcast.
  kAck,       ///< Transport-level acknowledgment (TB protocol).
};

const char* to_string(MsgKind kind);

struct Message {
  MsgKind kind = MsgKind::kInternal;
  ProcessId sender;
  ProcessId receiver;

  /// Transport-level sequence, unique and monotone per sender; used for
  /// acknowledgment matching and duplicate suppression on re-send.
  std::uint64_t transport_seq = 0;

  /// Application/protocol sequence number of the sender (paper: msg_SN).
  MsgSeq sn = 0;

  /// Piggybacked stable-checkpoint sequence number (paper: Ndc). Carried on
  /// internal and passed-AT messages under the coordinated protocols.
  StableSeq ndc = 0;

  /// Piggybacked sender dirty bit (paper: append(m, dirty_bit)).
  bool dirty = false;

  /// Contamination watermark: the highest component-1 message SN the
  /// sender's *current contamination* depends on (P1act: its own msg_SN;
  /// P2: msg_SN_P1act at send time). A receiver that already knows this
  /// watermark to be validated can recognize the dirty bit as stale —
  /// see MdcdConfig::ContaminationTracking. 0 when sent clean.
  MsgSeq contam_sn = 0;

  /// Application payload: an input word for the receiving state machine.
  std::uint64_t payload = 0;

  /// Whether the payload is erroneous (fault-injection ground truth; the
  /// protocols never read this — only acceptance tests and oracles do).
  bool tainted = false;

  /// For kAck: the transport_seq being acknowledged.
  std::uint64_t ack_of = 0;

  /// Recovery incarnation of the sender at send time. After a recovery,
  /// messages from an older epoch are fenced at consumption: a hardware
  /// rollback drops all of them (their sends may have been undone), a
  /// software recovery drops only dirty-flagged ones (exactly the sends a
  /// contaminated process rolled back). Re-sent unacked messages are
  /// re-stamped with the new epoch.
  std::uint32_t epoch = 0;

  /// Protocol-extension payload (e.g. the generalized protocol's
  /// per-source contamination vector). Empty for the canonical protocols.
  /// Refcounted: copying a message (unacked log, duplicate injection,
  /// checkpoint records) shares the payload instead of deep-copying it;
  /// the buffer is immutable once attached.
  SharedBytes aux;

  /// True (simulator) time at which the message was handed to the network.
  TimePoint sent_at;

  void serialize(ByteWriter& w) const;
  /// Trusted-path decode: asserts the reader stayed in bounds (in-memory
  /// snapshots, test fixtures). For bytes of unknown integrity use
  /// try_deserialize.
  static Message deserialize(ByteReader& r);
  /// Checked decode: nullopt if the input is truncated or the kind byte is
  /// out of range. Never aborts — corrupted wire/stable bytes must be
  /// detected and reported, not crash the process.
  static std::optional<Message> try_deserialize(ByteReader& r);

  /// Serialized size in bytes; arithmetic, mirrors serialize() exactly
  /// (checkpoint records size their stable writes with this).
  std::size_t encoded_size() const { return 75 + aux.size(); }
};

/// Messages that carry application-visible content, as opposed to
/// transport acks. Blocking periods and message logs apply to these.
inline bool is_application_purpose(const Message& m) {
  return m.kind == MsgKind::kInternal || m.kind == MsgKind::kExternal;
}

}  // namespace synergy
