#include "net/reliable.hpp"

#include <utility>

#include "common/assert.hpp"

namespace synergy {

ReliableEndpoint::ReliableEndpoint(Network& net, ProcessId self,
                                   Handler handler)
    : net_(net), core_(self), handler_(std::move(handler)) {
  SYNERGY_EXPECTS(handler_ != nullptr);
  net_.attach(self, [this](const Message& m) { on_network_delivery(m); });
}

ReliableEndpoint::~ReliableEndpoint() {
  if (attached_) net_.detach(core_.self());
}

void ReliableEndpoint::detach_network() {
  if (!attached_) return;
  net_.detach(core_.self());
  attached_ = false;
}

void ReliableEndpoint::reattach_network() {
  if (attached_) return;
  net_.attach(core_.self(),
              [this](const Message& m) { on_network_delivery(m); });
  attached_ = true;
}

std::uint64_t ReliableEndpoint::send(Message m) {
  const Message stamped = core_.prepare_send(std::move(m));
  const std::uint64_t seq = stamped.transport_seq;
  net_.send(stamped);
  return seq;
}

bool ReliableEndpoint::already_consumed(const Message& m) const {
  return core_.already_consumed(m);
}

void ReliableEndpoint::mark_consumed(const Message& m) {
  core_.mark_consumed(m);
}

void ReliableEndpoint::ack(const Message& m) {
  if (m.sender == kDeviceId) return;
  send(TransportCore::make_ack(m));
  ++acks_sent_;
}

std::span<const Message> ReliableEndpoint::unacked() const {
  return core_.unacked();
}

void ReliableEndpoint::restore_unacked(std::span<const Message> msgs) {
  core_.restore_unacked(msgs);
}

std::size_t ReliableEndpoint::resend_unacked(std::uint32_t epoch) {
  // The view stays stable across the loop: net_.send only schedules
  // simulator events, so no ack can settle (and mutate the log) before
  // this call returns.
  const std::span<const Message> msgs = core_.prepare_resend(epoch);
  for (const Message& m : msgs) {
    net_.send(m);  // same transport_seq: receiver dedups if it consumed it
  }
  return msgs.size();
}

Bytes ReliableEndpoint::snapshot_state() const { return core_.snapshot_state(); }

SharedBytes ReliableEndpoint::snapshot_state_shared() const {
  return core_.snapshot_state_shared();
}

void ReliableEndpoint::restore_state(const Bytes& state) {
  core_.restore_state(state);
}

void ReliableEndpoint::on_network_delivery(const Message& m) {
  if (m.kind == MsgKind::kAck) {
    core_.on_ack(m.sender, m.ack_of);
    return;
  }
  handler_(m);
}

}  // namespace synergy
