// Host-agnostic reliable-transport bookkeeping.
//
// Both transport hosts — the simulator's ReliableEndpoint and the threaded
// runtime's ThreadTransport — share this state machine: transport sequence
// stamping, the unacked-send log the TB protocols checkpoint, ack
// matching, duplicate suppression, and checkpointable snapshots. The host
// supplies only the wire (how a stamped message physically leaves).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace synergy {

class TransportCore {
 public:
  explicit TransportCore(ProcessId self) : self_(self) {}

  ProcessId self() const { return self_; }

  /// Stamp sender + a fresh transport_seq on `m` and record it in the
  /// unacked log when it expects an acknowledgment (non-ack, non-device).
  /// The caller puts the returned message on the wire.
  Message prepare_send(Message m);

  /// An acknowledgment arrived: settle the matching unacked entry.
  void on_ack(std::uint64_t ack_of) { unacked_.erase(ack_of); }

  /// Build the acknowledgment for a received message (empty optionality is
  /// signalled by kDeviceId senders — the caller skips those).
  static Message make_ack(const Message& m);

  bool already_consumed(const Message& m) const;
  void mark_consumed(const Message& m);

  std::vector<Message> unacked() const;
  void restore_unacked(const std::vector<Message>& msgs);

  /// Re-stamp every unacked message with `epoch` and hand copies back for
  /// the host to put on the wire.
  std::vector<Message> prepare_resend(std::uint32_t epoch);

  Bytes snapshot_state() const;
  void restore_state(const Bytes& state);

  /// Monotone mutation stamp of the snapshotted dedup state (send counter
  /// + consumed sets): bumped by prepare_send, mark_consumed and
  /// restore_state. Keys the snapshot cache below.
  std::uint64_t state_version() const { return version_; }

  /// Shared encoded dedup state, cached by version — a checkpoint taken
  /// with no intervening sends/consumptions re-uses the previous buffer.
  const SharedBytes& snapshot_state_shared() const;

  std::size_t unacked_count() const { return unacked_.size(); }
  /// Largest unacked-log size ever observed: the monitor's unacked-bound
  /// audit and the campaign report use this to show how far a multi-epoch
  /// partition pushed the log.
  std::size_t unacked_high_water() const { return unacked_high_water_; }
  std::uint64_t duplicates_suppressed() const { return dups_; }
  std::uint64_t snapshot_cache_hits() const { return cache_.hits(); }
  std::uint64_t snapshot_cache_misses() const { return cache_.misses(); }
  std::uint64_t snapshot_bytes_encoded() const {
    return cache_.bytes_encoded();
  }

 private:
  ProcessId self_;
  std::uint64_t next_transport_seq_ = 1;
  std::uint64_t version_ = 0;
  // Ordered containers keep snapshots and checkpoints deterministic.
  std::map<std::uint64_t, Message> unacked_;
  std::size_t unacked_high_water_ = 0;
  std::map<ProcessId, std::set<std::uint64_t>> consumed_;
  mutable std::uint64_t dups_ = 0;
  mutable SnapshotCache cache_;
};

}  // namespace synergy
