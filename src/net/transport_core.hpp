// Host-agnostic reliable-transport bookkeeping.
//
// Both transport hosts — the simulator's ReliableEndpoint and the threaded
// runtime's ThreadTransport — share this state machine: transport sequence
// stamping, the unacked-send log the TB protocols checkpoint, ack
// matching, duplicate suppression, and checkpointable snapshots. The host
// supplies only the wire (how a stamped message physically leaves).
//
// Storage is allocation-lean (every application send and consumption used
// to cost a map/set node): the unacked log is a small vector kept sorted
// by transport_seq (appends are monotone; acks binary-search), and the
// per-peer consumption sets are sorted small vectors of seqs (arrivals
// are near-monotone per sender, so inserts land at or near the tail).
// Both keep the exact iteration order of the ordered containers they
// replaced, so snapshot bytes and checkpoint contents are unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace synergy {

class TransportCore {
 public:
  explicit TransportCore(ProcessId self) : self_(self) {}

  ProcessId self() const { return self_; }

  /// Stamp sender + a fresh transport_seq on `m` and record it in the
  /// unacked log when it expects an acknowledgment (non-ack, non-device).
  /// The caller puts the returned message on the wire.
  Message prepare_send(Message m);

  /// An acknowledgment arrived: settle the matching unacked entry.
  void on_ack(std::uint64_t ack_of);

  /// Build the acknowledgment for a received message (empty optionality is
  /// signalled by kDeviceId senders — the caller skips those).
  static Message make_ack(const Message& m);

  bool already_consumed(const Message& m) const;
  void mark_consumed(const Message& m);

  /// Unacked-send log, ordered by transport_seq. Borrowed view into the
  /// core's own storage — valid until the next send/ack/restore.
  std::span<const Message> unacked() const {
    return {unacked_.data(), unacked_.size()};
  }
  void restore_unacked(std::span<const Message> msgs);

  /// Re-stamp every unacked message with `epoch` in place and hand back
  /// the log for the host to put copies on the wire.
  std::span<const Message> prepare_resend(std::uint32_t epoch);

  Bytes snapshot_state() const;
  void restore_state(const Bytes& state);

  /// Monotone mutation stamp of the snapshotted dedup state (send counter
  /// + consumed sets): bumped by prepare_send, mark_consumed and
  /// restore_state. Keys the snapshot cache below.
  std::uint64_t state_version() const { return version_; }

  /// Shared encoded dedup state, cached by version — a checkpoint taken
  /// with no intervening sends/consumptions re-uses the previous buffer.
  const SharedBytes& snapshot_state_shared() const;

  std::size_t unacked_count() const { return unacked_.size(); }
  /// Largest unacked-log size ever observed: the monitor's unacked-bound
  /// audit and the campaign report use this to show how far a multi-epoch
  /// partition pushed the log.
  std::size_t unacked_high_water() const { return unacked_high_water_; }
  std::uint64_t duplicates_suppressed() const { return dups_; }
  std::uint64_t snapshot_cache_hits() const { return cache_.hits(); }
  std::uint64_t snapshot_cache_misses() const { return cache_.misses(); }
  std::uint64_t snapshot_bytes_encoded() const {
    return cache_.bytes_encoded();
  }

 private:
  /// Consumption log for one peer: sorted transport seqs. Peers are kept
  /// sorted by id so snapshot iteration matches the old std::map order.
  struct PeerConsumed {
    std::uint32_t peer;
    SmallVec<std::uint64_t, 8> seqs;
  };
  const PeerConsumed* find_peer(std::uint32_t peer) const;
  PeerConsumed& peer_entry(std::uint32_t peer);

  ProcessId self_;
  std::uint64_t next_transport_seq_ = 1;
  std::uint64_t version_ = 0;
  SmallVec<Message, 4> unacked_;  // sorted by transport_seq
  std::size_t unacked_high_water_ = 0;
  SmallVec<PeerConsumed, 4> consumed_;  // sorted by peer id
  mutable std::uint64_t dups_ = 0;
  mutable SnapshotCache cache_;
};

}  // namespace synergy
