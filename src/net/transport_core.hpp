// Host-agnostic reliable-transport bookkeeping.
//
// Both transport hosts — the simulator's ReliableEndpoint and the threaded
// runtime's ThreadTransport — share this state machine: transport sequence
// stamping, the unacked-send log the TB protocols checkpoint, ack
// matching, duplicate suppression, and checkpointable snapshots. The host
// supplies only the wire (how a stamped message physically leaves).
//
// Sequencing is per destination stream: transport_seq counts messages on
// the (sender -> receiver) pair, not across all of a sender's traffic,
// and acknowledgments ride unstamped (they are idempotent control
// messages — never dedup'd, never logged, never re-sent). A receiver
// therefore observes a dense 1..N stream from each peer, which lets the
// per-peer consumption set compress to a watermark plus a sparse
// reorder tail — "every seq <= low is consumed" plus the few seqs beyond
// the first in-flight gap. That keeps the dedup state (and every
// checkpointed transport snapshot) O(peers), instead of growing with the
// total message count of the run — the term that made long large-topology
// missions quadratic.
//
// Storage is allocation-lean (every application send and consumption used
// to cost a map/set node): the unacked log is a small vector in send
// order, the stream counters and consumption sets sorted small vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace synergy {

class TransportCore {
 public:
  explicit TransportCore(ProcessId self) : self_(self) {}

  ProcessId self() const { return self_; }

  /// Stamp sender + the next transport_seq of the (self -> receiver)
  /// stream on `m` and record it in the unacked log when it expects an
  /// acknowledgment (non-ack, non-device). Acks pass through unstamped
  /// (transport_seq 0). The caller puts the returned message on the wire.
  Message prepare_send(Message m);

  /// An acknowledgment from `from` arrived: settle the matching unacked
  /// entry of the (self -> from) stream.
  void on_ack(ProcessId from, std::uint64_t ack_of);

  /// Build the acknowledgment for a received message (empty optionality is
  /// signalled by kDeviceId senders — the caller skips those).
  static Message make_ack(const Message& m);

  bool already_consumed(const Message& m) const;
  void mark_consumed(const Message& m);

  /// Unacked-send log, in send order. Borrowed view into the core's own
  /// storage — valid until the next send/ack/restore.
  std::span<const Message> unacked() const {
    return {unacked_.data(), unacked_.size()};
  }
  void restore_unacked(std::span<const Message> msgs);

  /// Re-stamp every unacked message with `epoch` in place and hand back
  /// the log for the host to put copies on the wire.
  std::span<const Message> prepare_resend(std::uint32_t epoch);

  Bytes snapshot_state() const;
  void restore_state(const Bytes& state);

  /// Monotone mutation stamp of the snapshotted dedup state (send counter
  /// + consumed sets): bumped by prepare_send, mark_consumed and
  /// restore_state. Keys the snapshot cache below.
  std::uint64_t state_version() const { return version_; }

  /// Shared encoded dedup state, cached by version — a checkpoint taken
  /// with no intervening sends/consumptions re-uses the previous buffer.
  const SharedBytes& snapshot_state_shared() const;

  std::size_t unacked_count() const { return unacked_.size(); }
  /// Largest unacked-log size ever observed: the monitor's unacked-bound
  /// audit and the campaign report use this to show how far a multi-epoch
  /// partition pushed the log.
  std::size_t unacked_high_water() const { return unacked_high_water_; }
  std::uint64_t duplicates_suppressed() const { return dups_; }
  std::uint64_t snapshot_cache_hits() const { return cache_.hits(); }
  std::uint64_t snapshot_cache_misses() const { return cache_.misses(); }
  std::uint64_t snapshot_bytes_encoded() const {
    return cache_.bytes_encoded();
  }

 private:
  /// Consumption log for one peer: every transport seq <= `low` is
  /// consumed, plus the sorted seqs in `tail` (all > low + 1). Peers are
  /// kept sorted by id so snapshot iteration is deterministic.
  struct PeerConsumed {
    std::uint32_t peer;
    std::uint64_t low = 0;
    SmallVec<std::uint64_t, 8> tail;
  };
  /// Next transport_seq of one outgoing (self -> dest) stream. Sorted by
  /// dest id.
  struct DestStream {
    std::uint32_t dest;
    std::uint64_t next = 1;
  };
  const PeerConsumed* find_peer(std::uint32_t peer) const;
  PeerConsumed& peer_entry(std::uint32_t peer);
  std::uint64_t& next_seq_for(std::uint32_t dest);

  ProcessId self_;
  SmallVec<DestStream, 4> streams_;  // sorted by dest id
  std::uint64_t version_ = 0;
  SmallVec<Message, 4> unacked_;  // send order
  std::size_t unacked_high_water_ = 0;
  SmallVec<PeerConsumed, 4> consumed_;  // sorted by peer id
  mutable std::uint64_t dups_ = 0;
  mutable SnapshotCache cache_;
};

}  // namespace synergy
