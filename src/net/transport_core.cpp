#include "net/transport_core.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace synergy {

Message TransportCore::prepare_send(Message m) {
  m.sender = self_;
  m.transport_seq = next_transport_seq_++;
  ++version_;  // the send counter is part of the snapshotted state
  // Acks are not themselves acknowledged (no ack-of-ack regress); device
  // messages are fire-and-forget because the external world never replies.
  if (m.kind != MsgKind::kAck && m.receiver != kDeviceId) {
    unacked_.push_back(m);  // transport_seq is monotone: stays sorted
    unacked_high_water_ = std::max(unacked_high_water_, unacked_.size());
  }
  return m;
}

void TransportCore::on_ack(std::uint64_t ack_of) {
  const auto it = std::lower_bound(
      unacked_.begin(), unacked_.end(), ack_of,
      [](const Message& m, std::uint64_t seq) { return m.transport_seq < seq; });
  if (it != unacked_.end() && it->transport_seq == ack_of) unacked_.erase(it);
}

Message TransportCore::make_ack(const Message& m) {
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.receiver = m.sender;
  ack.ack_of = m.transport_seq;
  return ack;
}

const TransportCore::PeerConsumed* TransportCore::find_peer(
    std::uint32_t peer) const {
  const auto it = std::lower_bound(
      consumed_.begin(), consumed_.end(), peer,
      [](const PeerConsumed& pc, std::uint32_t p) { return pc.peer < p; });
  if (it != consumed_.end() && it->peer == peer) return it;
  return nullptr;
}

TransportCore::PeerConsumed& TransportCore::peer_entry(std::uint32_t peer) {
  auto it = std::lower_bound(
      consumed_.begin(), consumed_.end(), peer,
      [](const PeerConsumed& pc, std::uint32_t p) { return pc.peer < p; });
  if (it != consumed_.end() && it->peer == peer) return *it;
  return *consumed_.insert(it, PeerConsumed{peer, {}});
}

bool TransportCore::already_consumed(const Message& m) const {
  SYNERGY_EXPECTS(m.kind != MsgKind::kAck);
  const PeerConsumed* pc = find_peer(m.sender.value());
  if (pc == nullptr) return false;
  const bool dup = std::binary_search(pc->seqs.begin(), pc->seqs.end(),
                                      m.transport_seq);
  if (dup) ++dups_;
  return dup;
}

void TransportCore::mark_consumed(const Message& m) {
  SYNERGY_EXPECTS(m.kind != MsgKind::kAck);
  ++version_;  // bump even on idempotent re-marks, like the old set insert
  auto& seqs = peer_entry(m.sender.value()).seqs;
  // Per-sender seqs arrive near-monotone, so the common case is a plain
  // append; reorders/resends insert close to the tail.
  if (seqs.empty() || m.transport_seq > seqs.back()) {
    seqs.push_back(m.transport_seq);
  } else {
    const auto it =
        std::lower_bound(seqs.begin(), seqs.end(), m.transport_seq);
    if (it != seqs.end() && *it == m.transport_seq) return;  // idempotent
    seqs.insert(it, m.transport_seq);
  }
}

void TransportCore::restore_unacked(std::span<const Message> msgs) {
  unacked_.assign(msgs.begin(), msgs.end());
  for (const Message& m : unacked_) {
    SYNERGY_EXPECTS(m.sender == self_);
    next_transport_seq_ = std::max(next_transport_seq_, m.transport_seq + 1);
  }
  std::sort(unacked_.begin(), unacked_.end(),
            [](const Message& a, const Message& b) {
              return a.transport_seq < b.transport_seq;
            });
  unacked_high_water_ = std::max(unacked_high_water_, unacked_.size());
  ++version_;  // next_transport_seq_ may have moved
}

std::span<const Message> TransportCore::prepare_resend(std::uint32_t epoch) {
  for (Message& m : unacked_) {
    m.epoch = epoch;  // new incarnation: receivers must not fence these
  }
  return unacked();
}

Bytes TransportCore::snapshot_state() const {
  ByteWriter w;
  w.u64(next_transport_seq_);
  w.u32(static_cast<std::uint32_t>(consumed_.size()));
  for (const PeerConsumed& pc : consumed_) {
    w.u32(pc.peer);
    w.u32(static_cast<std::uint32_t>(pc.seqs.size()));
    for (auto s : pc.seqs) w.u64(s);
  }
  return w.take();
}

const SharedBytes& TransportCore::snapshot_state_shared() const {
  return cache_.get(version_, [this] { return snapshot_state(); });
}

void TransportCore::restore_state(const Bytes& state) {
  ByteReader r(state);
  next_transport_seq_ = std::max(next_transport_seq_, r.u64());
  consumed_.clear();
  const std::uint32_t peers = r.u32();
  for (std::uint32_t i = 0; i < peers; ++i) {
    const std::uint32_t peer = r.u32();
    const std::uint32_t n = r.u32();
    auto& seqs = peer_entry(peer).seqs;
    seqs.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) seqs.push_back(r.u64());
  }
  ++version_;
}

}  // namespace synergy
