#include "net/transport_core.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace synergy {

Message TransportCore::prepare_send(Message m) {
  m.sender = self_;
  m.transport_seq = next_transport_seq_++;
  ++version_;  // the send counter is part of the snapshotted state
  // Acks are not themselves acknowledged (no ack-of-ack regress); device
  // messages are fire-and-forget because the external world never replies.
  if (m.kind != MsgKind::kAck && m.receiver != kDeviceId) {
    unacked_.emplace(m.transport_seq, m);
    unacked_high_water_ = std::max(unacked_high_water_, unacked_.size());
  }
  return m;
}

Message TransportCore::make_ack(const Message& m) {
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.receiver = m.sender;
  ack.ack_of = m.transport_seq;
  return ack;
}

bool TransportCore::already_consumed(const Message& m) const {
  SYNERGY_EXPECTS(m.kind != MsgKind::kAck);
  auto it = consumed_.find(m.sender);
  if (it == consumed_.end()) return false;
  const bool dup = it->second.contains(m.transport_seq);
  if (dup) ++dups_;
  return dup;
}

void TransportCore::mark_consumed(const Message& m) {
  SYNERGY_EXPECTS(m.kind != MsgKind::kAck);
  consumed_[m.sender].insert(m.transport_seq);
  ++version_;
}

std::vector<Message> TransportCore::unacked() const {
  std::vector<Message> out;
  out.reserve(unacked_.size());
  for (const auto& [seq, m] : unacked_) out.push_back(m);
  return out;
}

void TransportCore::restore_unacked(const std::vector<Message>& msgs) {
  unacked_.clear();
  for (const auto& m : msgs) {
    SYNERGY_EXPECTS(m.sender == self_);
    next_transport_seq_ = std::max(next_transport_seq_, m.transport_seq + 1);
    unacked_.emplace(m.transport_seq, m);
  }
  unacked_high_water_ = std::max(unacked_high_water_, unacked_.size());
  ++version_;  // next_transport_seq_ may have moved
}

std::vector<Message> TransportCore::prepare_resend(std::uint32_t epoch) {
  std::vector<Message> out;
  out.reserve(unacked_.size());
  for (auto& [seq, m] : unacked_) {
    m.epoch = epoch;  // new incarnation: receivers must not fence these
    out.push_back(m);
  }
  return out;
}

Bytes TransportCore::snapshot_state() const {
  ByteWriter w;
  w.u64(next_transport_seq_);
  w.u32(static_cast<std::uint32_t>(consumed_.size()));
  for (const auto& [peer, seqs] : consumed_) {
    w.u32(peer.value());
    w.u32(static_cast<std::uint32_t>(seqs.size()));
    for (auto s : seqs) w.u64(s);
  }
  return w.take();
}

const SharedBytes& TransportCore::snapshot_state_shared() const {
  return cache_.get(version_, [this] { return snapshot_state(); });
}

void TransportCore::restore_state(const Bytes& state) {
  ByteReader r(state);
  next_transport_seq_ = std::max(next_transport_seq_, r.u64());
  consumed_.clear();
  const std::uint32_t peers = r.u32();
  for (std::uint32_t i = 0; i < peers; ++i) {
    const ProcessId peer{r.u32()};
    const std::uint32_t n = r.u32();
    auto& seqs = consumed_[peer];
    for (std::uint32_t j = 0; j < n; ++j) seqs.insert(r.u64());
  }
  ++version_;
}

}  // namespace synergy
