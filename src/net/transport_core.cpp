#include "net/transport_core.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace synergy {

Message TransportCore::prepare_send(Message m) {
  m.sender = self_;
  // Acks are idempotent control messages: no stream seq (never dedup'd),
  // no unacked entry (no ack-of-ack regress), no snapshotted state change.
  if (m.kind == MsgKind::kAck) {
    m.transport_seq = 0;
    return m;
  }
  m.transport_seq = next_seq_for(m.receiver.value())++;
  ++version_;  // the stream counters are part of the snapshotted state
  // Device messages are fire-and-forget: the external world never replies.
  if (m.receiver != kDeviceId) {
    unacked_.push_back(m);
    unacked_high_water_ = std::max(unacked_high_water_, unacked_.size());
  }
  return m;
}

void TransportCore::on_ack(ProcessId from, std::uint64_t ack_of) {
  // Send order, not seq order, so this is a scan — the log only holds
  // in-flight messages, so it is short.
  for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
    if (it->receiver == from && it->transport_seq == ack_of) {
      unacked_.erase(it);
      return;
    }
  }
}

std::uint64_t& TransportCore::next_seq_for(std::uint32_t dest) {
  auto it = std::lower_bound(
      streams_.begin(), streams_.end(), dest,
      [](const DestStream& s, std::uint32_t d) { return s.dest < d; });
  if (it == streams_.end() || it->dest != dest) {
    it = streams_.insert(it, DestStream{dest, 1});
  }
  return it->next;
}

Message TransportCore::make_ack(const Message& m) {
  Message ack;
  ack.kind = MsgKind::kAck;
  ack.receiver = m.sender;
  ack.ack_of = m.transport_seq;
  return ack;
}

const TransportCore::PeerConsumed* TransportCore::find_peer(
    std::uint32_t peer) const {
  const auto it = std::lower_bound(
      consumed_.begin(), consumed_.end(), peer,
      [](const PeerConsumed& pc, std::uint32_t p) { return pc.peer < p; });
  if (it != consumed_.end() && it->peer == peer) return it;
  return nullptr;
}

TransportCore::PeerConsumed& TransportCore::peer_entry(std::uint32_t peer) {
  auto it = std::lower_bound(
      consumed_.begin(), consumed_.end(), peer,
      [](const PeerConsumed& pc, std::uint32_t p) { return pc.peer < p; });
  if (it != consumed_.end() && it->peer == peer) return *it;
  return *consumed_.insert(it, PeerConsumed{peer, 0, {}});
}

bool TransportCore::already_consumed(const Message& m) const {
  SYNERGY_EXPECTS(m.kind != MsgKind::kAck);
  const PeerConsumed* pc = find_peer(m.sender.value());
  if (pc == nullptr) return false;
  const bool dup = m.transport_seq <= pc->low ||
                   std::binary_search(pc->tail.begin(), pc->tail.end(),
                                      m.transport_seq);
  if (dup) ++dups_;
  return dup;
}

void TransportCore::mark_consumed(const Message& m) {
  SYNERGY_EXPECTS(m.kind != MsgKind::kAck);
  ++version_;  // bump even on idempotent re-marks, like the old set insert
  PeerConsumed& pc = peer_entry(m.sender.value());
  const std::uint64_t seq = m.transport_seq;
  if (seq <= pc.low) return;  // idempotent
  if (seq == pc.low + 1) {
    // Common case: in-order arrival extends the watermark, then absorbs
    // any tail seqs the gap was holding back.
    ++pc.low;
    std::size_t absorbed = 0;
    while (absorbed < pc.tail.size() && pc.tail[absorbed] == pc.low + 1) {
      ++pc.low;
      ++absorbed;
    }
    if (absorbed > 0) {
      pc.tail.erase(pc.tail.begin(),
                    pc.tail.begin() + static_cast<std::ptrdiff_t>(absorbed));
    }
    return;
  }
  // Out-of-order arrival: park it in the (tiny) sorted tail.
  if (pc.tail.empty() || seq > pc.tail.back()) {
    pc.tail.push_back(seq);
  } else {
    const auto it = std::lower_bound(pc.tail.begin(), pc.tail.end(), seq);
    if (it != pc.tail.end() && *it == seq) return;  // idempotent
    pc.tail.insert(it, seq);
  }
}

void TransportCore::restore_unacked(std::span<const Message> msgs) {
  // Checkpoints copy the log in send order; restoring preserves it.
  unacked_.assign(msgs.begin(), msgs.end());
  for (const Message& m : unacked_) {
    SYNERGY_EXPECTS(m.sender == self_);
    auto& next = next_seq_for(m.receiver.value());
    next = std::max(next, m.transport_seq + 1);
  }
  unacked_high_water_ = std::max(unacked_high_water_, unacked_.size());
  ++version_;  // stream counters may have moved
}

std::span<const Message> TransportCore::prepare_resend(std::uint32_t epoch) {
  for (Message& m : unacked_) {
    m.epoch = epoch;  // new incarnation: receivers must not fence these
  }
  return unacked();
}

Bytes TransportCore::snapshot_state() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(streams_.size()));
  for (const DestStream& s : streams_) {
    w.u32(s.dest);
    w.u64(s.next);
  }
  w.u32(static_cast<std::uint32_t>(consumed_.size()));
  for (const PeerConsumed& pc : consumed_) {
    w.u32(pc.peer);
    w.u64(pc.low);
    w.u32(static_cast<std::uint32_t>(pc.tail.size()));
    for (auto s : pc.tail) w.u64(s);
  }
  return w.take();
}

const SharedBytes& TransportCore::snapshot_state_shared() const {
  return cache_.get(version_, [this] { return snapshot_state(); });
}

void TransportCore::restore_state(const Bytes& state) {
  ByteReader r(state);
  // Stream counters merge by max: rolling a counter back would re-issue
  // seqs that receivers may have consumed, and their dedup would then
  // silently drop fresh post-recovery messages.
  const std::uint32_t nstreams = r.u32();
  for (std::uint32_t i = 0; i < nstreams; ++i) {
    const std::uint32_t dest = r.u32();
    const std::uint64_t next = r.u64();
    auto& cur = next_seq_for(dest);
    cur = std::max(cur, next);
  }
  consumed_.clear();
  const std::uint32_t peers = r.u32();
  for (std::uint32_t i = 0; i < peers; ++i) {
    const std::uint32_t peer = r.u32();
    PeerConsumed& pc = peer_entry(peer);
    pc.low = r.u64();
    const std::uint32_t n = r.u32();
    pc.tail.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) pc.tail.push_back(r.u64());
  }
  ++version_;
}

}  // namespace synergy
