// Reliable per-process transport endpoint with acknowledgment tracking.
//
// The TB protocol (Neves & Fuchs) avoids blocking-for-recoverability by
// saving, as part of the next stable checkpoint, every sent message not yet
// acknowledged; after a hardware rollback those messages are re-sent and
// duplicates are suppressed at the receiver. Two details are load-bearing:
//
//  1. A message is acknowledged when the receiving *protocol engine* acks
//     it — immediately for consumptions anchored in the current recovery
//     content, deferred (validation-gated) otherwise. Transport-level
//     delivery alone never acknowledges.
//  2. Duplicate-suppression state is part of the receiver's checkpoint: a
//     process that rolls back must re-accept re-sent messages it had
//     consumed after the checkpoint, and keep suppressing ones it consumed
//     before it. Engines therefore split the duplicate *check* from the
//     consumption *mark* (the mark lands after any Type-1 checkpoint).
//
// Bookkeeping lives in TransportCore (shared with the threaded runtime);
// this class binds it to the simulated Network.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "net/transport_core.hpp"

namespace synergy {

/// Host-agnostic transport surface used by protocol engines (the threaded
/// runtime provides its own implementation).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Send `m` (the transport stamps sender + transport_seq). Returns the
  /// transport_seq assigned to the message.
  virtual std::uint64_t send(Message m) = 0;

  /// Duplicate check WITHOUT marking: has `m` already been consumed?
  virtual bool already_consumed(const Message& m) const = 0;

  /// Record `m` as consumed. Engines call this *after* the protocol
  /// handler ran: a Type-1 checkpoint established immediately before
  /// consuming `m` must capture a transport state that does NOT yet
  /// contain `m`, or a post-rollback re-send of `m` would be wrongly
  /// suppressed as a duplicate.
  virtual void mark_consumed(const Message& m) = 0;

  /// Convenience: mark-if-new, returning true iff `m` was fresh.
  bool consume(const Message& m) {
    if (already_consumed(m)) return false;
    mark_consumed(m);
    return true;
  }

  /// Acknowledge message `m` to its sender. Engines call this immediately
  /// or deferred (validation-gated acknowledgment: a message consumed
  /// while the process is potentially contaminated is not yet anchored in
  /// its recovery content, so the ack is withheld until the contamination
  /// clears).
  virtual void ack(const Message& m) = 0;

  /// Unacked-send log (in send order). A borrowed view into the
  /// transport's own storage: valid until the next send/ack/restore.
  /// Callers that need to keep it (checkpoint records) copy it out.
  virtual std::span<const Message> unacked() const = 0;

  /// Replace the unacked log (hardware-fault recovery).
  virtual void restore_unacked(std::span<const Message> msgs) = 0;

  /// Re-send every unacked message, re-stamped with `epoch` (the new
  /// recovery incarnation, so receivers don't fence them as stale).
  /// Returns how many were re-sent.
  virtual std::size_t resend_unacked(std::uint32_t epoch) = 0;

  /// Serialize / restore dedup state + send counter for checkpoints.
  virtual Bytes snapshot_state() const = 0;
  virtual void restore_state(const Bytes& state) = 0;

  /// Shared encoded dedup state for checkpoint records. Hosts backed by
  /// TransportCore return its version-cached buffer; the default wraps
  /// snapshot_state() uncached.
  virtual SharedBytes snapshot_state_shared() const {
    return SharedBytes(snapshot_state());
  }
};

class ReliableEndpoint final : public Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Attaches to the network as `self`. All non-ack deliveries are
  /// forwarded to `handler` (duplicates included — the engine decides when
  /// to consume).
  ReliableEndpoint(Network& net, ProcessId self, Handler handler);
  ~ReliableEndpoint() override;

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  ProcessId self() const { return core_.self(); }

  std::uint64_t send(Message m) override;
  bool already_consumed(const Message& m) const override;
  void mark_consumed(const Message& m) override;
  void ack(const Message& m) override;
  std::span<const Message> unacked() const override;
  void restore_unacked(std::span<const Message> msgs) override;
  std::size_t resend_unacked(std::uint32_t epoch) override;
  Bytes snapshot_state() const override;
  void restore_state(const Bytes& state) override;
  SharedBytes snapshot_state_shared() const override;

  std::uint64_t state_version() const { return core_.state_version(); }
  std::uint64_t snapshot_cache_hits() const {
    return core_.snapshot_cache_hits();
  }
  std::uint64_t snapshot_cache_misses() const {
    return core_.snapshot_cache_misses();
  }
  std::uint64_t snapshot_bytes_encoded() const {
    return core_.snapshot_bytes_encoded();
  }

  /// Crash semantics: stop receiving (network deliveries to this process
  /// are dropped while detached).
  void detach_network();
  /// Rejoin the network after a restart.
  void reattach_network();
  bool attached() const { return attached_; }

  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t duplicates_suppressed() const {
    return core_.duplicates_suppressed();
  }
  std::size_t unacked_count() const { return core_.unacked_count(); }
  std::size_t unacked_high_water() const {
    return core_.unacked_high_water();
  }

 private:
  void on_network_delivery(const Message& m);

  Network& net_;
  TransportCore core_;
  Handler handler_;
  bool attached_ = true;
  std::uint64_t acks_sent_ = 0;
};

}  // namespace synergy
