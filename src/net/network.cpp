#include "net/network.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace synergy {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kInternal: return "internal";
    case MsgKind::kExternal: return "external";
    case MsgKind::kPassedAt: return "passed_AT";
    case MsgKind::kAck: return "ack";
  }
  return "?";
}

void Message::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(sender.value());
  w.u32(receiver.value());
  w.u64(transport_seq);
  w.u64(sn);
  w.u64(ndc);
  w.u8(dirty ? 1 : 0);
  w.u64(contam_sn);
  w.u64(payload);
  w.u8(tainted ? 1 : 0);
  w.u64(ack_of);
  w.u32(epoch);
  w.bytes(aux);
  w.i64(sent_at.count());
}

Message Message::deserialize(ByteReader& r) {
  auto m = try_deserialize(r);
  SYNERGY_ASSERT(m.has_value());  // trusted path: bytes we produced ourselves
  return *m;
}

std::optional<Message> Message::try_deserialize(ByteReader& r) {
  Message m;
  const std::uint8_t kind = r.u8();
  m.kind = static_cast<MsgKind>(kind);
  m.sender = ProcessId{r.u32()};
  m.receiver = ProcessId{r.u32()};
  m.transport_seq = r.u64();
  m.sn = r.u64();
  m.ndc = r.u64();
  m.dirty = r.u8() != 0;
  m.contam_sn = r.u64();
  m.payload = r.u64();
  m.tainted = r.u8() != 0;
  m.ack_of = r.u64();
  m.epoch = r.u32();
  m.aux = r.bytes();
  m.sent_at = TimePoint{r.i64()};
  if (!r.ok() || kind > static_cast<std::uint8_t>(MsgKind::kAck)) {
    return std::nullopt;
  }
  return m;
}

Network::Network(Simulator& sim, const NetworkParams& params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {
  SYNERGY_EXPECTS(params.tmin >= Duration::zero());
  SYNERGY_EXPECTS(params.tmax >= params.tmin);
  SYNERGY_EXPECTS(params.loss_probability >= 0.0 &&
                  params.loss_probability <= 1.0);
}

void Network::attach(ProcessId p, Handler handler) {
  SYNERGY_EXPECTS(handler != nullptr);
  handlers_[p] = std::move(handler);
}

void Network::detach(ProcessId p) {
  handlers_.erase(p);
  drop_in_transit_to(p);
}

void Network::send(Message m) {
  m.sent_at = sim_.now();
  ++sent_;
  if (params_.loss_probability > 0.0 &&
      rng_.bernoulli(params_.loss_probability)) {
    ++dropped_;
    return;
  }
  inject(std::move(m), rng_.uniform(params_.tmin, params_.tmax), params_.fifo);
}

void Network::inject(Message m, Duration delay, bool respect_fifo) {
  TimePoint deliver_at = sim_.now() + delay;
  if (respect_fifo) {
    auto key = std::make_pair(m.sender.value(), m.receiver.value());
    auto it = last_delivery_.find(key);
    if (it != last_delivery_.end()) deliver_at = std::max(deliver_at, it->second);
    last_delivery_[key] = deliver_at;
  }
  const std::uint64_t id = next_delivery_id_++;
  EventHandle h = sim_.schedule_at(deliver_at, [this, id] { deliver(id); });
  pending_.emplace(id, PendingDelivery{std::move(m), h});
  ++in_transit_;
}

void Network::deliver(std::uint64_t delivery_id) {
  auto it = pending_.find(delivery_id);
  SYNERGY_ASSERT(it != pending_.end());
  Message m = std::move(it->second.msg);
  pending_.erase(it);
  --in_transit_;
  const Duration lateness = (sim_.now() - m.sent_at) - params_.tmax;
  if (lateness > Duration::zero()) {
    ++late_deliveries_;
    if (bound_observer_) bound_observer_(m, lateness);
  }
  auto h = handlers_.find(m.receiver);
  if (h == handlers_.end()) {
    ++dropped_;  // receiver crashed or is a sink with no recorder
    return;
  }
  ++delivered_;
  h->second(m);
}

void Network::drop_in_transit_to(ProcessId p) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, pd] : pending_) {
    if (pd.msg.receiver == p) doomed.push_back(id);
  }
  for (auto id : doomed) {
    sim_.cancel(pending_.at(id).handle);
    pending_.erase(id);
    --in_transit_;
    ++dropped_;
  }
}

}  // namespace synergy
