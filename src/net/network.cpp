#include "net/network.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace synergy {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kInternal: return "internal";
    case MsgKind::kExternal: return "external";
    case MsgKind::kPassedAt: return "passed_AT";
    case MsgKind::kAck: return "ack";
  }
  return "?";
}

void Message::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(sender.value());
  w.u32(receiver.value());
  w.u64(transport_seq);
  w.u64(sn);
  w.u64(ndc);
  w.u8(dirty ? 1 : 0);
  w.u64(contam_sn);
  w.u64(payload);
  w.u8(tainted ? 1 : 0);
  w.u64(ack_of);
  w.u32(epoch);
  w.bytes(aux);
  w.i64(sent_at.count());
}

Message Message::deserialize(ByteReader& r) {
  auto m = try_deserialize(r);
  SYNERGY_ASSERT(m.has_value());  // trusted path: bytes we produced ourselves
  return *m;
}

std::optional<Message> Message::try_deserialize(ByteReader& r) {
  Message m;
  const std::uint8_t kind = r.u8();
  m.kind = static_cast<MsgKind>(kind);
  m.sender = ProcessId{r.u32()};
  m.receiver = ProcessId{r.u32()};
  m.transport_seq = r.u64();
  m.sn = r.u64();
  m.ndc = r.u64();
  m.dirty = r.u8() != 0;
  m.contam_sn = r.u64();
  m.payload = r.u64();
  m.tainted = r.u8() != 0;
  m.ack_of = r.u64();
  m.epoch = r.u32();
  m.aux = r.bytes();
  m.sent_at = TimePoint{r.i64()};
  if (!r.ok() || kind > static_cast<std::uint8_t>(MsgKind::kAck)) {
    return std::nullopt;
  }
  return m;
}

Network::Network(Simulator& sim, const NetworkParams& params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {
  SYNERGY_EXPECTS(params.tmin >= Duration::zero());
  SYNERGY_EXPECTS(params.tmax >= params.tmin);
  SYNERGY_EXPECTS(params.loss_probability >= 0.0 &&
                  params.loss_probability <= 1.0);
}

Network::Receiver& Network::receiver(ProcessId p) {
  const std::size_t slot = slot_of(p);
  while (slot >= receivers_.size()) receivers_.emplace_back();
  return receivers_[slot];
}

std::uint32_t Network::acquire_frame() {
  if (free_head_ != kNoFrame) {
    const std::uint32_t idx = free_head_;
    free_head_ = frames_[idx].next_free;
    return idx;
  }
  frames_.emplace_back();
  return static_cast<std::uint32_t>(frames_.size() - 1);
}

void Network::release_frame(std::uint32_t idx) {
  Frame& f = frames_[idx];
  f.msg = Message{};  // drop any aux refcount now, not at reuse
  ++f.gen;            // invalidates chain links held by a running drain
  f.live = false;
  f.head = false;
  f.next = kNoFrame;
  f.next_free = free_head_;
  free_head_ = idx;
}

void Network::attach(ProcessId p, Handler handler) {
  SYNERGY_EXPECTS(handler != nullptr);
  receiver(p).handler = std::move(handler);
}

void Network::detach(ProcessId p) {
  receiver(p).handler = nullptr;
  drop_in_transit_to(p);
}

void Network::send(Message m) {
  m.sent_at = sim_.now();
  ++sent_;
  if (params_.loss_probability > 0.0 &&
      rng_.bernoulli(params_.loss_probability)) {
    ++dropped_loss_;
    return;
  }
  inject(std::move(m), rng_.uniform(params_.tmin, params_.tmax), params_.fifo);
}

void Network::inject(Message m, Duration delay, bool respect_fifo) {
  TimePoint deliver_at = sim_.now() + delay;
  const std::size_t rslot = slot_of(m.receiver);
  Receiver& r = receiver(m.receiver);
  if (respect_fifo) {
    const std::uint32_t sender = m.sender.value();
    bool known = false;
    for (auto& [s, t] : r.fifo) {
      if (s != sender) continue;
      deliver_at = std::max(deliver_at, t);
      t = deliver_at;
      known = true;
      break;
    }
    if (!known) r.fifo.push_back({sender, deliver_at});
  }

  const std::uint32_t idx = acquire_frame();
  Frame& f = frames_[idx];
  f.msg = std::move(m);
  f.live = true;
  ++in_transit_;

  if (r.batch_head != kNoFrame && r.batch_time == deliver_at &&
      r.batch_mark == sim_.schedules()) {
    // Same receiver, same tick, and nothing has entered the event queue
    // since the batch head was scheduled: chaining this frame at the tail
    // delivers it in exactly the position its own event would have taken.
    frames_[r.batch_tail].next = idx;
    r.batch_tail = idx;
    return;
  }

  const std::uint32_t gen = f.gen;
  f.head = true;
  f.handle = sim_.schedule_at(
      deliver_at, [this, idx, gen, rslot] {
        deliver_chain(idx, gen, static_cast<std::uint32_t>(rslot));
      });
  r.batch_head = idx;
  r.batch_tail = idx;
  r.batch_time = deliver_at;
  r.batch_mark = sim_.schedules();
}

void Network::deliver_chain(std::uint32_t head, std::uint32_t gen,
                            std::uint32_t rslot) {
  // This batch is no longer appendable (it is firing *now*); close the
  // receiver's open-batch registry so a zero-delay send from a handler
  // below schedules a fresh event instead of chaining onto a drained one.
  {
    Receiver& r = receivers_[rslot];
    r.batch_head = kNoFrame;
    r.batch_tail = kNoFrame;
  }

  std::uint32_t idx = head;
  while (idx != kNoFrame) {
    Frame& f = frames_[idx];
    if (f.gen != gen || !f.live) break;  // chain freed mid-drain (crash)
    Message m = std::move(f.msg);
    const std::uint32_t next = f.next;
    const std::uint32_t next_gen =
        next != kNoFrame ? frames_[next].gen : 0;
    release_frame(idx);  // before the handler: it may send (slot reuse)
    --in_transit_;

    const Duration lateness = (sim_.now() - m.sent_at) - params_.tmax;
    if (lateness > Duration::zero()) {
      ++late_deliveries_;
      if (bound_observer_) bound_observer_(m, lateness);
    }
    // Re-read the handler per frame: a handler earlier in this chain may
    // have detached (or re-attached) the receiver.
    const Handler& h = receivers_[rslot].handler;
    if (h) {
      ++delivered_;
      h(m);
    } else {
      ++dropped_no_receiver_;  // receiver crashed or is an unrecorded sink
    }
    idx = next;
    gen = next_gen;
  }
}

void Network::drop_in_transit_to(ProcessId p) {
  Receiver& r = receiver(p);
  // The deliveries backing the FIFO watermarks die below, so the
  // watermarks must die with them: a post-restart send would otherwise be
  // serialized behind the (possibly future) time of a delivery that was
  // cancelled and never happened.
  r.fifo.clear();
  r.batch_head = kNoFrame;
  r.batch_tail = kNoFrame;
  for (std::uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.live || f.msg.receiver != p) continue;
    if (f.head) sim_.cancel(f.handle);
    release_frame(i);
    --in_transit_;
    ++dropped_cancelled_;
  }
}

}  // namespace synergy
