// Bounded-delay message-passing network over the discrete-event simulator.
//
// Delivery delay for each message is drawn uniformly from [tmin, tmax] —
// the two bounds the TB protocol's blocking periods are computed from.
// Channels are FIFO per (sender, receiver) pair by default (delivery times
// are made monotone per pair), matching the paper's system model.
//
// send() is virtual so fault-injection decorators (FaultyNetwork) can
// intercept traffic; the protected inject() primitive lets them schedule
// deliveries that deliberately break the FIFO/tmax model. Deliveries that
// land later than sent_at + tmax are reported to the delivery-bound
// observer — the assumption monitors' hook for detecting that the network
// left its contract.
//
// The delivery machinery is allocation-free in steady state (the message
// path is the campaign hot path — see DESIGN.md §16):
//
//   * In-transit messages live in pooled, generation-tagged frames recycled
//     through a free list, so send→inject→deliver performs no heap
//     operations once the pool has warmed up.
//   * Same-tick messages to the same receiver are chained onto one
//     scheduled event (a per-receiver batch) instead of one simulator
//     event each; appends are only taken while provably order-preserving
//     (nothing else entered the event queue since the batch was
//     scheduled), so campaign output stays bit-identical to the
//     one-event-per-message schedule.
//   * Per-pair FIFO watermarks are small inline vectors on the receiver
//     slot, pruned when in-transit traffic to that receiver is dropped —
//     a detached process no longer leaves stale (possibly future)
//     watermarks behind to delay its post-restart traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace synergy {

struct NetworkParams {
  Duration tmin = Duration::millis(1);   ///< Minimum delivery delay.
  Duration tmax = Duration::millis(10);  ///< Maximum delivery delay.
  bool fifo = true;                      ///< Per-pair FIFO ordering.
  double loss_probability = 0.0;         ///< Silent drop probability.
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Called on every delivery later than sent_at + tmax; `lateness` is the
  /// amount by which the bound was exceeded.
  using DeliveryBoundObserver =
      std::function<void(const Message&, Duration lateness)>;

  Network(Simulator& sim, const NetworkParams& params, Rng rng);
  virtual ~Network() = default;

  /// Register the delivery handler for a process. Re-attaching replaces the
  /// previous handler (used when a node restarts after a crash).
  void attach(ProcessId p, Handler handler);

  /// Detach a process: pending and future deliveries to it are dropped
  /// until it re-attaches. Models a node crash.
  void detach(ProcessId p);

  /// Hand a message to the network. Stamps sent_at; schedules delivery.
  /// Messages to kDeviceId are delivered to the device handler if attached,
  /// else counted and dropped (devices are sinks).
  virtual void send(Message m);

  /// Drop every message currently in transit toward `p` (crash semantics:
  /// a rebooted node must not receive pre-crash messages it never acked).
  /// Also prunes the per-sender FIFO watermarks for `p`: the deliveries
  /// backing them were just cancelled, so a post-restart send must not be
  /// serialized behind a delivery that never happened.
  void drop_in_transit_to(ProcessId p);

  /// Install the delivery-bound violation observer (assumption monitor).
  void set_delivery_bound_observer(DeliveryBoundObserver obs) {
    bound_observer_ = std::move(obs);
  }

  const NetworkParams& params() const { return params_; }

  // Counters for experiment reporting.
  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  /// Total drops, every cause (= loss + no_receiver + cancelled).
  std::uint64_t dropped() const {
    return dropped_loss_ + dropped_no_receiver_ + dropped_cancelled_;
  }
  /// Messages lost on the wire: the model's Bernoulli loss plus every
  /// injected loss class (drop faults, blackouts, burst chains, frames
  /// discarded by the CRC check).
  std::uint64_t dropped_loss() const { return dropped_loss_; }
  /// Deliveries that arrived while the receiver had no handler (crashed,
  /// or a sink with no recorder attached).
  std::uint64_t dropped_no_receiver() const { return dropped_no_receiver_; }
  /// In-transit messages cancelled by drop_in_transit_to (crash/detach).
  std::uint64_t dropped_cancelled() const { return dropped_cancelled_; }
  std::uint64_t in_transit() const { return in_transit_; }
  /// Deliveries observed beyond the tmax contract (injected delays).
  std::uint64_t late_deliveries() const { return late_deliveries_; }

 protected:
  /// Schedule delivery of an already-stamped message after `delay`.
  /// `respect_fifo == false` bypasses the per-pair ordering watermarks,
  /// letting injectors reorder or delay a message past the model's bounds.
  void inject(Message m, Duration delay, bool respect_fifo);

  Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }
  void count_sent() { ++sent_; }
  /// Injector drops are wire loss (drop faults, blackouts, corrupt frames).
  void count_dropped() { ++dropped_loss_; }

 private:
  static constexpr std::uint32_t kNoFrame = 0xFFFFFFFFu;

  /// One pooled in-transit message. Frames form per-(receiver, tick)
  /// singly-linked chains; the chain head owns the scheduled delivery
  /// event. Generation tags keep a frame freed mid-drain (receiver crash
  /// from inside a handler) from being walked after recycling.
  struct Frame {
    Message msg;
    EventHandle handle;                   ///< set on chain heads only
    std::uint32_t next = kNoFrame;        ///< next frame in the chain
    std::uint32_t gen = 1;                ///< bumped on every release
    std::uint32_t next_free = kNoFrame;   ///< free-list link
    bool live = false;                    ///< occupied (in some chain)
    bool head = false;                    ///< owns a scheduled event
  };

  /// Per-receiver delivery state, indexed densely: device = slot 0,
  /// process p = slot p + 1.
  struct Receiver {
    Handler handler;  ///< null while detached
    /// FIFO watermarks: last scheduled delivery time per sender.
    SmallVec<std::pair<std::uint32_t, TimePoint>, 4> fifo;
    /// Open same-tick batch. Appending to it is legal only while `mark`
    /// still equals the simulator's schedule counter — i.e. nothing else
    /// has entered the event queue since the batch head was scheduled, so
    /// a frame chained at the tail delivers in exactly the order its own
    /// event would have.
    std::uint32_t batch_head = kNoFrame;
    std::uint32_t batch_tail = kNoFrame;
    TimePoint batch_time;
    std::uint64_t batch_mark = 0;
  };

  static std::size_t slot_of(ProcessId p) {
    return p == kDeviceId ? 0 : static_cast<std::size_t>(p.value()) + 1;
  }
  Receiver& receiver(ProcessId p);
  std::uint32_t acquire_frame();
  void release_frame(std::uint32_t idx);
  void deliver_chain(std::uint32_t head, std::uint32_t gen,
                     std::uint32_t rslot);

  Simulator& sim_;
  NetworkParams params_;
  Rng rng_;
  // Deque, not vector: handlers are invoked by reference out of this
  // container, and a handler may attach a new (higher-slot) process while
  // running — deque growth never moves existing elements.
  std::deque<Receiver> receivers_;
  std::vector<Frame> frames_;
  std::uint32_t free_head_ = kNoFrame;
  DeliveryBoundObserver bound_observer_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_no_receiver_ = 0;
  std::uint64_t dropped_cancelled_ = 0;
  std::uint64_t in_transit_ = 0;
  std::uint64_t late_deliveries_ = 0;
};

}  // namespace synergy
