// Bounded-delay message-passing network over the discrete-event simulator.
//
// Delivery delay for each message is drawn uniformly from [tmin, tmax] —
// the two bounds the TB protocol's blocking periods are computed from.
// Channels are FIFO per (sender, receiver) pair by default (delivery times
// are made monotone per pair), matching the paper's system model.
//
// send() is virtual so fault-injection decorators (FaultyNetwork) can
// intercept traffic; the protected inject() primitive lets them schedule
// deliveries that deliberately break the FIFO/tmax model. Deliveries that
// land later than sent_at + tmax are reported to the delivery-bound
// observer — the assumption monitors' hook for detecting that the network
// left its contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace synergy {

struct NetworkParams {
  Duration tmin = Duration::millis(1);   ///< Minimum delivery delay.
  Duration tmax = Duration::millis(10);  ///< Maximum delivery delay.
  bool fifo = true;                      ///< Per-pair FIFO ordering.
  double loss_probability = 0.0;         ///< Silent drop probability.
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Called on every delivery later than sent_at + tmax; `lateness` is the
  /// amount by which the bound was exceeded.
  using DeliveryBoundObserver =
      std::function<void(const Message&, Duration lateness)>;

  Network(Simulator& sim, const NetworkParams& params, Rng rng);
  virtual ~Network() = default;

  /// Register the delivery handler for a process. Re-attaching replaces the
  /// previous handler (used when a node restarts after a crash).
  void attach(ProcessId p, Handler handler);

  /// Detach a process: pending and future deliveries to it are dropped
  /// until it re-attaches. Models a node crash.
  void detach(ProcessId p);

  /// Hand a message to the network. Stamps sent_at; schedules delivery.
  /// Messages to kDeviceId are delivered to the device handler if attached,
  /// else counted and dropped (devices are sinks).
  virtual void send(Message m);

  /// Drop every message currently in transit toward `p` (crash semantics:
  /// a rebooted node must not receive pre-crash messages it never acked).
  void drop_in_transit_to(ProcessId p);

  /// Install the delivery-bound violation observer (assumption monitor).
  void set_delivery_bound_observer(DeliveryBoundObserver obs) {
    bound_observer_ = std::move(obs);
  }

  const NetworkParams& params() const { return params_; }

  // Counters for experiment reporting.
  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t in_transit() const { return in_transit_; }
  /// Deliveries observed beyond the tmax contract (injected delays).
  std::uint64_t late_deliveries() const { return late_deliveries_; }

 protected:
  /// Schedule delivery of an already-stamped message after `delay`.
  /// `respect_fifo == false` bypasses the per-pair ordering map, letting
  /// injectors reorder or delay a message past the model's bounds.
  void inject(Message m, Duration delay, bool respect_fifo);

  Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }
  void count_sent() { ++sent_; }
  void count_dropped() { ++dropped_; }

 private:
  void deliver(std::uint64_t delivery_id);

  Simulator& sim_;
  NetworkParams params_;
  Rng rng_;
  std::unordered_map<ProcessId, Handler> handlers_;
  // Last scheduled delivery time per ordered pair, for FIFO enforcement.
  std::map<std::pair<std::uint32_t, std::uint32_t>, TimePoint> last_delivery_;
  struct PendingDelivery {
    Message msg;
    EventHandle handle;
  };
  std::unordered_map<std::uint64_t, PendingDelivery> pending_;
  DeliveryBoundObserver bound_observer_;
  std::uint64_t next_delivery_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t in_transit_ = 0;
  std::uint64_t late_deliveries_ = 0;
};

}  // namespace synergy
