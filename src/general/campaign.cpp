#include "general/campaign.hpp"

#include <chrono>
#include <mutex>
#include <sstream>

#include "analysis/checkers.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/pool.hpp"
#include "general/system.hpp"

namespace synergy {

const char* to_string(GeneralShape shape) {
  switch (shape) {
    case GeneralShape::kStar:
      return "star";
    case GeneralShape::kChain:
      return "chain";
  }
  return "?";
}

bool operator==(const GeneralMissionReport& a, const GeneralMissionReport& b) {
  return a.seed == b.seed && a.ok == b.ok && a.failures == b.failures &&
         a.processes == b.processes && a.events == b.events &&
         a.device_outputs == b.device_outputs &&
         a.tainted_outputs == b.tainted_outputs &&
         a.stable_ckpts == b.stable_ckpts &&
         a.hw_recoveries == b.hw_recoveries &&
         a.sw_recoveries == b.sw_recoveries &&
         a.sw_replayed == b.sw_replayed &&
         a.consistency_violations == b.consistency_violations &&
         a.recoverability_violations == b.recoverability_violations;
}

namespace {

Topology build_topology(const GeneralCampaignConfig& config) {
  Topology base = config.shape == GeneralShape::kStar
                      ? Topology::star(config.size)
                      : Topology::chain(config.size);
  std::vector<ComponentSpec> specs = base.components();
  for (auto& s : specs) {
    s.internal_rate = config.internal_rate;
    s.external_rate = config.external_rate;
  }
  return Topology(std::move(specs));
}

/// In-order output publisher (same scheme as the chaos campaign): each
/// mission's text is buffered until every earlier mission has printed.
class OrderedEmitter {
 public:
  OrderedEmitter(std::ostream* out, std::size_t count)
      : out_(out), buffered_(count), ready_(count, false) {}

  void publish(std::size_t index, std::string text) {
    if (!out_) return;
    std::lock_guard<std::mutex> lk(mu_);
    buffered_[index] = std::move(text);
    ready_[index] = true;
    while (next_ < ready_.size() && ready_[next_]) {
      *out_ << buffered_[next_];
      buffered_[next_].clear();
      ++next_;
    }
    out_->flush();
  }

 private:
  std::ostream* out_;
  std::mutex mu_;
  std::vector<std::string> buffered_;
  std::vector<bool> ready_;
  std::size_t next_ = 0;
};

}  // namespace

GeneralMissionReport run_general_mission(const GeneralCampaignConfig& config,
                                         std::uint64_t mission_seed) {
  GeneralMissionReport report;
  report.seed = mission_seed;

  GeneralConfig sys_config;
  sys_config.seed = mission_seed;
  sys_config.tb.interval = config.tb_interval;
  sys_config.enable_trace = false;

  GeneralSystem system(build_topology(config), sys_config);
  report.processes = system.topology().process_count();

  const TimePoint end = TimePoint::origin() + config.mission;
  system.start(end);

  // The adversary draws from its own stream so workload arrivals stay
  // untouched by toggling injection on and off.
  Rng inj(mission_seed * 97 + 3);
  const Duration lo =
      Duration::from_seconds(config.mission.to_seconds() * 0.25);
  const Duration hi =
      Duration::from_seconds(config.mission.to_seconds() * 0.75);
  if (config.inject_hw) {
    const TimePoint at = TimePoint::origin() + inj.uniform(lo, hi);
    const auto victim = static_cast<std::uint32_t>(inj.uniform_int(
        0, static_cast<std::int64_t>(report.processes) - 1));
    system.schedule_hw_fault(at, ProcessId{victim});
  }
  if (config.inject_sw) {
    // Component 0 is the guarded (low-confidence) component in both
    // factory shapes.
    system.schedule_sw_error(TimePoint::origin() + inj.uniform(lo, hi), 0);
  }

  system.run();

  report.events = system.sim().events_executed();
  report.device_outputs = system.device_outputs();
  for (const Message& m : system.device_log()) {
    if (m.tainted) ++report.tainted_outputs;
  }
  for (std::uint32_t p = 0; p < report.processes; ++p) {
    report.stable_ckpts += system.tb(ProcessId{p}).checkpoints_taken();
  }
  report.hw_recoveries = system.hw_recoveries().size();
  if (system.sw_recovery().has_value()) {
    report.sw_recoveries = 1;
    report.sw_replayed = system.sw_recovery()->replayed;
  }

  const GlobalState line = system.stable_line_state();
  report.consistency_violations = check_consistency(line).size();
  report.recoverability_violations = check_recoverability(line).size();
  if (report.consistency_violations != 0) {
    report.failures.push_back(
        "recovery line inconsistent: " +
        std::to_string(report.consistency_violations) + " violation(s)");
  }
  if (report.recoverability_violations != 0) {
    report.failures.push_back(
        "recovery line unrecoverable: " +
        std::to_string(report.recoverability_violations) + " violation(s)");
  }
  report.ok = report.failures.empty();
  return report;
}

std::string format_general_mission(const GeneralCampaignConfig& config,
                                   std::size_t index,
                                   const GeneralMissionReport& report) {
  if (!config.verbose && report.ok) return "";
  std::ostringstream os;
  os << "mission " << index << " seed=" << report.seed
     << (report.ok ? " ok" : " FAILED") << " procs=" << report.processes
     << " events=" << report.events << " outputs=" << report.device_outputs
     << " tainted=" << report.tainted_outputs
     << " stable_ckpts=" << report.stable_ckpts
     << " hw=" << report.hw_recoveries << " sw=" << report.sw_recoveries
     << " violations="
     << report.consistency_violations + report.recoverability_violations
     << "\n";
  for (const auto& f : report.failures) {
    os << "  failure: " << f << "\n";
  }
  return os.str();
}

GeneralCampaignResult run_general_campaign(const GeneralCampaignConfig& config,
                                           std::ostream* out) {
  using Clock = std::chrono::steady_clock;
  SYNERGY_EXPECTS(config.reps > 0);
  GeneralCampaignResult result;

  // All mission seeds derive from the campaign seed before any mission
  // runs: the fan-out order can never influence the missions themselves.
  std::vector<std::uint64_t> seeds(config.reps);
  Rng seeder(config.seed);
  for (auto& s : seeds) s = seeder.next();

  result.missions.resize(config.reps);
  const std::size_t jobs =
      config.jobs == 0 ? ThreadPool::default_jobs() : config.jobs;
  result.jobs = std::min(jobs, config.reps);

  OrderedEmitter emitter(out, config.reps);
  auto run_one = [&](std::size_t i) {
    GeneralMissionReport report = run_general_mission(config, seeds[i]);
    emitter.publish(i, format_general_mission(config, i, report));
    result.missions[i] = std::move(report);
  };

  const auto wall0 = Clock::now();
  if (result.jobs <= 1) {
    for (std::size_t i = 0; i < config.reps; ++i) run_one(i);
  } else {
    ThreadPool pool(result.jobs);
    pool.run_indexed(config.reps, run_one);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  for (const auto& m : result.missions) {
    if (!m.ok) ++result.failed;
    result.oracle_violations +=
        m.consistency_violations + m.recoverability_violations;
    result.events_total += m.events;
  }
  result.events_per_sec =
      result.wall_seconds > 0
          ? static_cast<double>(result.events_total) / result.wall_seconds
          : 0.0;

  if (out) {
    *out << "general campaign: " << to_string(config.shape) << "-"
         << config.size << ", " << config.reps << " mission(s), "
         << result.failed << " failed, oracle violations: "
         << result.oracle_violations << "\n";
    *out << "timing: jobs=" << result.jobs << " wall=" << result.wall_seconds
         << "s events/s=" << result.events_per_sec << "\n";
  }
  return result;
}

}  // namespace synergy
