// Per-source contamination vectors for the generalized protocol.
//
// With several low-confidence components in service, "potentially
// contaminated" is no longer a single bit plus one watermark: a process's
// suspicion is a vector mapping each contamination *source* (a
// low-confidence component) to the highest message SN of that source its
// state transitively depends on. Validations likewise carry the coverage
// they grant per source. The canonical three-process protocol is the
// special case with a single source.
#pragma once

#include <map>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace synergy {

/// Source component index -> highest depended-on message SN.
using ContamVector = std::map<std::uint32_t, MsgSeq>;

/// Pointwise max merge: absorb `other` into `into`.
void contam_merge(ContamVector& into, const ContamVector& other);

/// True iff every entry of `contam` is covered by `validated`.
bool contam_covered(const ContamVector& contam, const ContamVector& validated);

void contam_serialize(const ContamVector& v, ByteWriter& w);
ContamVector contam_deserialize(ByteReader& r);

/// Compact rendering for traces/tests: "0:12,2:5".
std::string contam_to_string(const ContamVector& v);

}  // namespace synergy
