// Per-source contamination vectors for the generalized protocol.
//
// With several low-confidence components in service, "potentially
// contaminated" is no longer a single bit plus one watermark: a process's
// suspicion is a vector mapping each contamination *source* (a
// low-confidence component) to the highest message SN of that source its
// state transitively depends on. Validations likewise carry the coverage
// they grant per source. The canonical three-process protocol is the
// special case with a single source.
//
// Representation: a sorted flat vector with small-buffer storage. Real
// vectors are tiny (one entry per low-confidence component a state
// depends on), so a node-based std::map pays a heap allocation per entry
// on the hottest protocol path (every absorb, every merge, every anchor
// capture). The flat form keeps the first kContamInline entries in the
// object itself, merges with two-pointer scans, and serializes in the
// same sorted order as the map did — the wire/storage encoding is
// byte-identical (differential-tested against the map oracle).
#pragma once

#include <initializer_list>
#include <utility>

#include "common/serialize.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace synergy {

/// Inline capacity: covers every topology shipped (star/chain have one
/// low-confidence source; dual_guarded has two) with headroom before the
/// first heap touch.
inline constexpr std::size_t kContamInline = 4;

/// One (source component -> highest depended-on message SN) entry. Member
/// names mirror std::map's value_type so call sites written against the
/// map representation (`it->first`, `it->second`) read unchanged.
struct ContamEntry {
  std::uint32_t first = 0;
  MsgSeq second = 0;

  friend bool operator==(const ContamEntry& a, const ContamEntry& b) {
    return a.first == b.first && a.second == b.second;
  }
};

/// Source component index -> highest depended-on message SN, kept sorted
/// by source. Map-like surface restricted to what the engine and tests
/// use: find/emplace/operator[]-free, iteration in key order.
class ContamVector {
 public:
  using value_type = ContamEntry;
  using iterator = ContamEntry*;
  using const_iterator = const ContamEntry*;

  ContamVector() = default;
  ContamVector(std::initializer_list<ContamEntry> init) {
    for (const ContamEntry& e : init) raise(e.first, e.second);
  }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  const_iterator find(std::uint32_t source) const {
    const const_iterator it = lower_bound(source);
    return it != end() && it->first == source ? it : end();
  }

  /// Highest depended-on SN for `source`, 0 when absent.
  MsgSeq watermark(std::uint32_t source) const {
    const const_iterator it = find(source);
    return it == end() ? 0 : it->second;
  }

  /// std::map-compatible emplace: inserts (source, sn) unless the source
  /// is already present; returns {slot, inserted}.
  std::pair<iterator, bool> emplace(std::uint32_t source, MsgSeq sn) {
    iterator it = lower_bound(source);
    if (it != end() && it->first == source) return {it, false};
    const std::size_t idx = static_cast<std::size_t>(it - begin());
    entries_.insert(it, ContamEntry{source, sn});
    return {begin() + idx, true};
  }

  /// Max-merge a single entry (the pointwise-max primitive).
  void raise(std::uint32_t source, MsgSeq sn) {
    iterator it = lower_bound(source);
    if (it != end() && it->first == source) {
      if (it->second < sn) it->second = sn;
    } else {
      entries_.insert(it, ContamEntry{source, sn});
    }
  }

  friend bool operator==(const ContamVector& a, const ContamVector& b) {
    return a.entries_ == b.entries_;
  }

 private:
  iterator lower_bound(std::uint32_t source) {
    iterator it = entries_.begin();
    while (it != entries_.end() && it->first < source) ++it;
    return it;
  }
  const_iterator lower_bound(std::uint32_t source) const {
    const_iterator it = entries_.begin();
    while (it != entries_.end() && it->first < source) ++it;
    return it;
  }

  SmallVec<ContamEntry, kContamInline> entries_;
};

/// Pointwise max merge: absorb `other` into `into`. Returns true iff
/// `into` changed (callers skip downstream re-checks on stale coverage).
bool contam_merge(ContamVector& into, const ContamVector& other);

/// True iff every entry of `contam` is covered by `validated`.
bool contam_covered(const ContamVector& contam, const ContamVector& validated);

void contam_serialize(const ContamVector& v, ByteWriter& w);
ContamVector contam_deserialize(ByteReader& r);

/// Compact rendering for traces/tests: "0:12,2:5".
std::string contam_to_string(const ContamVector& v);

}  // namespace synergy
