#include "general/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace synergy {

namespace {

Bytes encode_aux(const ContamVector& contam) {
  ByteWriter w;
  contam_serialize(contam, w);
  return w.take();
}

ContamVector decode_aux(const Message& m) {
  if (m.aux.empty()) return {};
  ByteReader r(m.aux);
  return contam_deserialize(r);
}

bool sorted_contains(const SmallVec<std::uint32_t, 8>& set,
                     std::uint32_t value) {
  for (const std::uint32_t c : set) {
    if (c >= value) return c == value;
  }
  return false;
}

}  // namespace

const char* to_string(GProcessKind kind) {
  switch (kind) {
    case GProcessKind::kActive: return "active";
    case GProcessKind::kShadow: return "shadow";
    case GProcessKind::kRegular: return "regular";
  }
  return "?";
}

GeneralEngine::GeneralEngine(const Topology& topology, ProcessId self,
                             const MdcdConfig& config,
                             ProcessServices services)
    : topology_(topology), component_(topology.component_of(self)),
      config_(config), services_(std::move(services)) {
  SYNERGY_EXPECTS(services_.now != nullptr);
  SYNERGY_EXPECTS(services_.transport != nullptr);
  SYNERGY_EXPECTS(services_.vstore != nullptr);
  SYNERGY_EXPECTS(services_.app != nullptr);
  const auto& spec = topology.components()[component_];
  if (topology.is_shadow(self)) {
    kind_ = GProcessKind::kShadow;
  } else if (spec.confidence == Confidence::kLow) {
    kind_ = GProcessKind::kActive;
    SYNERGY_EXPECTS(services_.at != nullptr);
  } else {
    kind_ = GProcessKind::kRegular;
    SYNERGY_EXPECTS(services_.at != nullptr);
  }
}

void GeneralEngine::trace(TraceKind kind, std::string_view detail,
                          std::uint64_t a, std::uint64_t b) const {
  if (services_.trace) {
    services_.trace->record(current_time(), self(), kind, std::string(detail),
                            a, b);
  }
}

bool GeneralEngine::dirty() const { return dirty_bit_; }

bool GeneralEngine::pseudo_dirty() const {
  if (kind_ != GProcessKind::kActive) return false;
  return validated_.watermark(component_) < msg_sn_;
}

bool GeneralEngine::contamination_flag() const {
  return dirty() || pseudo_dirty();
}

void GeneralEngine::mark_component_failed_over(std::uint32_t c) {
  auto it = failed_over_.begin();
  while (it != failed_over_.end() && *it < c) ++it;
  if (it != failed_over_.end() && *it == c) return;
  failed_over_.insert(it, c);
}

// ---- Event entry points -----------------------------------------------------

void GeneralEngine::on_app_send(bool external, std::uint64_t input) {
  if (!alive_) return;
  if (blocking_) {
    deferred_.push_back(SendReq{external, input});
    return;
  }
  do_app_send(external, input);
}

void GeneralEngine::on_local_step(std::uint64_t input) {
  if (!alive_) return;
  if (blocking_) {
    deferred_.push_back(StepReq{input});
    return;
  }
  do_step(input);
}

void GeneralEngine::do_step(std::uint64_t input) {
  if (services_.sw_fault) {
    if (auto noise = services_.sw_fault->on_step()) {
      services_.app->corrupt(*noise);
    }
  }
  services_.app->local_step(input);
}

void GeneralEngine::on_confidence_loss() {
  if (!alive_) return;
  if (blocking_) {
    trace(TraceKind::kHoldBlocked, "confidence_loss");
    deferred_.push_back(ConfLossReq{});
    return;
  }
  do_confidence_loss();
}

void GeneralEngine::do_confidence_loss() {
  trace(TraceKind::kConfidenceLoss);
  // Same machinery as absorbing contaminated traffic, minus the absorption:
  // anchor the last-known-good state (when clean) and mark the process
  // dirty. With no new entry merged into absorbed_, any later validation
  // trivially covers the (unchanged) dependency set and clears the bit —
  // the AT has re-certified the state since the suspect window.
  capture_anchor(CkptKind::kType1);
  if (!dirty_bit_) {
    dirty_bit_ = true;
    trace(TraceKind::kCkptVolatile, "type1");
    trace(TraceKind::kDirtySet);
  }
}

void GeneralEngine::on_message(const Message& m) {
  if (!alive_) return;
  if (tracing()) {
    trace(TraceKind::kReceive, std::string(to_string(m.kind)), m.sn,
          m.transport_seq);
  }
  if (m.kind == MsgKind::kPassedAt) {
    // Modified semantics: validations are monitored during blocking.
    if (!consume_or_drop(m)) return;
    services_.transport->mark_consumed(m);
    services_.transport->ack(m);
    do_passed_at(m);
    return;
  }
  if (blocking_) {
    trace(TraceKind::kHoldBlocked, std::string(to_string(m.kind)), m.sn);
    deferred_.push_back(m);
    return;
  }
  process_message(m);
}

void GeneralEngine::process_message(const Message& m) {
  if (!consume_or_drop(m)) return;
  do_app_message(m);
  services_.transport->mark_consumed(m);
  settle_ack(m);
}

bool GeneralEngine::consume_or_drop(const Message& m) {
  const std::uint32_t fence =
      m.dirty ? std::max(fence_all_, fence_dirty_) : fence_all_;
  if (m.epoch < fence) {
    services_.transport->mark_consumed(m);
    services_.transport->ack(m);
    trace(TraceKind::kStaleDrop, std::string(to_string(m.kind)), m.sn,
          m.epoch);
    return false;
  }
  if (services_.transport->already_consumed(m)) {
    trace(TraceKind::kDuplicate, std::string(to_string(m.kind)), m.sn,
          m.transport_seq);
    if (m.kind == MsgKind::kPassedAt) {
      services_.transport->ack(m);
    } else {
      settle_ack(m);
    }
    return false;
  }
  return true;
}

bool GeneralEngine::ndc_gate_ok(const Message& m) {
  StableSeq expected = ndc_provider_();
  if (config_.gate_mode == NdcGateMode::kBlockingAware && blocking_ &&
      contamination_flag() && expected > 0) {
    expected -= 1;
  }
  if (m.ndc == expected) return true;
  trace(TraceKind::kNdcGateReject, {}, m.ndc, expected);
  return false;
}

// ---- Sending ------------------------------------------------------------------

ContamVector GeneralEngine::outgoing_contam(MsgSeq own_sn) const {
  ContamVector cv = absorbed_;
  if (kind_ == GProcessKind::kActive) {
    // Our own sends are a contamination source.
    cv.raise(component_, own_sn);
  }
  return cv;
}

void GeneralEngine::send_internal_multicast(std::uint64_t payload,
                                            bool tainted) {
  const ContamVector cv = outgoing_contam(msg_sn_);
  const bool suspect =
      kind_ == GProcessKind::kActive ? true : dirty();
  // One shared aux buffer for the whole multicast: every copy bumps a
  // refcount instead of re-encoding the vector per receiver.
  const SharedBytes aux = suspect ? SharedBytes(encode_aux(cv)) : SharedBytes{};
  const StableSeq ndc = ndc_provider_();
  Message m;
  m.kind = MsgKind::kInternal;
  m.sn = msg_sn_;
  m.ndc = ndc;
  m.epoch = epoch_;
  m.payload = payload;
  m.tainted = tainted;
  m.dirty = suspect;
  m.aux = aux;
  for (const PeerRoute& route : topology_.peer_routes(component_)) {
    const bool peer_failed_over = sorted_contains(failed_over_,
                                                  route.component);
    if (!peer_failed_over) {
      m.receiver = route.active;
      const std::uint64_t seq = services_.transport->send(m);
      sent_views_.push_back(GView{m.receiver, seq, msg_sn_,
                                  MsgKind::kInternal, suspect, cv});
      if (suspect) {
        ++suspect_views_;
        suspect_sent_.push_back(
            static_cast<std::uint32_t>(sent_views_.size() - 1));
      }
      if (tracing()) {
        trace(TraceKind::kSend,
              "internal->" + topology_.process_name(m.receiver), msg_sn_, seq);
      }
    }
    // Mirror to the peer's shadow, which consumes the same inputs.
    if (route.has_shadow) {
      m.receiver = route.shadow;
      const std::uint64_t tseq = services_.transport->send(m);
      sent_views_.push_back(GView{m.receiver, tseq, msg_sn_,
                                  MsgKind::kInternal, suspect, cv});
      if (suspect) {
        ++suspect_views_;
        suspect_sent_.push_back(
            static_cast<std::uint32_t>(sent_views_.size() - 1));
      }
    }
  }
}

void GeneralEngine::do_app_send(bool external, std::uint64_t input) {
  if (services_.sw_fault) {
    if (auto noise = services_.sw_fault->on_send()) {
      services_.app->corrupt(*noise);
    }
  }
  services_.app->local_step(input);
  const std::uint64_t payload = services_.app->output();
  const bool tainted = services_.app->tainted();

  if (kind_ == GProcessKind::kShadow && !takeover_done_) {
    // Suppress and log.
    ++msg_sn_;
    Message m;
    m.kind = external ? MsgKind::kExternal : MsgKind::kInternal;
    m.receiver = kDeviceId;  // rewritten at replay
    m.sn = msg_sn_;
    m.payload = payload;
    m.tainted = tainted;
    msg_log_.push_back(std::move(m));
    trace(TraceKind::kSuppressSend, external ? "external" : "internal",
          msg_sn_);
    return;
  }

  if (external) {
    const bool must_validate =
        kind_ == GProcessKind::kActive || contamination_flag();
    if (must_validate) {
      SYNERGY_ASSERT(services_.at != nullptr);
      if (!services_.at->run(tainted)) {
        trace(TraceKind::kAtFail, "external", msg_sn_ + 1);
        services_.request_sw_recovery(self());
        return;
      }
      ++msg_sn_;
      trace(TraceKind::kAtPass, "external", msg_sn_);
      // The AT validates our state: our absorbed dependencies and (active)
      // our own sends up to msg_sn_ are now covered.
      ContamVector coverage = outgoing_contam(msg_sn_);
      apply_validation(coverage);
      Message ext;
      ext.kind = MsgKind::kExternal;
      ext.receiver = kDeviceId;
      ext.sn = msg_sn_;
      ext.payload = payload;
      ext.tainted = tainted;
      ext.epoch = epoch_;
      services_.transport->send(ext);
      // Broadcast the validation to every other process; one shared aux
      // buffer serves the entire broadcast.
      Message note;
      note.kind = MsgKind::kPassedAt;
      note.sn = msg_sn_;
      note.ndc = ndc_provider_();
      note.epoch = epoch_;
      note.aux = SharedBytes(encode_aux(coverage));
      for (std::uint32_t p = 0; p < topology_.process_count(); ++p) {
        const ProcessId pid{p};
        if (pid == self()) continue;
        if (!topology_.is_shadow(pid) &&
            sorted_contains(failed_over_, topology_.component_of(pid))) {
          continue;  // retired active
        }
        note.receiver = pid;
        services_.transport->send(note);
      }
      return;
    }
    ++msg_sn_;
    Message ext;
    ext.kind = MsgKind::kExternal;
    ext.receiver = kDeviceId;
    ext.sn = msg_sn_;
    ext.payload = payload;
    ext.tainted = tainted;
    ext.epoch = epoch_;
    services_.transport->send(ext);
    trace(TraceKind::kSend, "external", msg_sn_);
    return;
  }

  // Internal multicast. An active low component anchors before every
  // send: a later validation may cover any prefix of its own source, and
  // the matching pseudo checkpoint must exist (generalized Figure 3).
  if (kind_ == GProcessKind::kActive) {
    const bool was_clear = !contamination_flag();
    capture_anchor(CkptKind::kPseudo);
    if (was_clear) {
      trace(TraceKind::kCkptVolatile, "pseudo");
      trace(TraceKind::kPseudoDirtySet);
    }
  }
  ++msg_sn_;
  send_internal_multicast(payload, tainted);
}

// ---- Receiving -----------------------------------------------------------------

void GeneralEngine::do_app_message(const Message& m) {
  const ContamVector cv = decode_aux(m);
  // The raw flag drives contamination (anchor alignment with the sender's
  // copy-contents checkpoint); the covered-ness drives only the validity
  // view. A covered flag costs a false-alarm anchor that the next
  // validation clears, never a line split.
  const bool view_suspect = m.dirty && !contam_covered(cv, validated_);
  if (m.dirty && !view_suspect) {
    trace(TraceKind::kStaleDirtyIgnored, {}, m.sn);
  }
  if (m.dirty) {
    // Candidate anchor immediately before the state absorbs this
    // contamination (the multi-source Type-1 generalization).
    capture_anchor(CkptKind::kType1);
    if (!dirty_bit_) {
      dirty_bit_ = true;
      trace(TraceKind::kCkptVolatile, "type1");
      trace(TraceKind::kDirtySet);
    }
    contam_merge(absorbed_, cv);
  }
  recv_views_.push_back(
      GView{m.sender, m.transport_seq, m.sn, m.kind, view_suspect, cv});
  if (view_suspect) {
    ++suspect_views_;
    suspect_recv_.push_back(
        static_cast<std::uint32_t>(recv_views_.size() - 1));
  }
  services_.app->apply_message(m.payload, m.tainted);
  trace(TraceKind::kDeliverApp, std::string(to_string(m.kind)), m.sn);
}

void GeneralEngine::do_passed_at(const Message& m) {
  if (!ndc_gate_ok(m)) return;
  apply_validation(decode_aux(m));
}

void GeneralEngine::apply_validation(const ContamVector& coverage) {
  const bool was_flagged = contamination_flag();
  if (contam_merge(validated_, coverage)) ++validated_version_;

  // Per-source clearing: when every absorbed dependency is covered, the
  // state transitions clean (the next dirty arrival re-anchors with a
  // fresh Type-1). Clearing happens only at validation events, matching
  // the canonical protocol's dirty-bit discipline.
  if (dirty_bit_ && contam_covered(absorbed_, validated_)) {
    dirty_bit_ = false;
    absorbed_.clear();
    trace(TraceKind::kDirtyClear);
  }
  refresh_best_anchor();

  // Shadow log reclamation: our component's validated prefix.
  if (kind_ == GProcessKind::kShadow && !msg_log_.empty()) {
    const MsgSeq vr = validated_.watermark(component_);
    if (vr > 0) {
      msg_log_.erase(
          std::remove_if(msg_log_.begin(), msg_log_.end(),
                         [vr](const Message& logged) {
                           return logged.sn <= vr;
                         }),
          msg_log_.end());
    }
  }

  // View upgrades: every suspect entry whose vector is covered. Only the
  // indexed suspect window is visited — upgraded entries never relapse, so
  // the logs themselves are never rescanned.
  if (suspect_views_ > 0) {
    const auto upgrade = [this](SmallVec<GView, 8>& views,
                                SmallVec<std::uint32_t, 8>& index) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < index.size(); ++i) {
        GView& v = views[index[i]];
        if (contam_covered(v.contam, validated_)) {
          v.suspect = false;
          --suspect_views_;
        } else {
          index[kept++] = index[i];
        }
      }
      index.erase(index.begin() + static_cast<std::ptrdiff_t>(kept),
                  index.end());
    };
    upgrade(sent_views_, suspect_sent_);
    upgrade(recv_views_, suspect_recv_);
  }

  if (was_flagged && !contamination_flag()) {
    if (kind_ == GProcessKind::kActive) trace(TraceKind::kPseudoDirtyClear);
    flush_deferred_acks();
    if (contamination_cleared_) contamination_cleared_();
  }
}

// ---- Acks -----------------------------------------------------------------------

void GeneralEngine::settle_ack(const Message& m) {
  const bool gated = config_.tracking == ContaminationTracking::kWatermark;
  if (gated && contamination_flag()) {
    deferred_acks_.push_back(AckKey{m.sender, m.transport_seq});
    return;
  }
  services_.transport->ack(m);
}

void GeneralEngine::flush_deferred_acks() {
  for (const AckKey& key : deferred_acks_) {
    Message m;
    m.sender = key.sender;
    m.transport_seq = key.transport_seq;
    services_.transport->ack(m);
  }
  deferred_acks_.clear();
}

// ---- Blocking ---------------------------------------------------------------------

void GeneralEngine::begin_blocking() {
  SYNERGY_EXPECTS(!blocking_);
  blocking_ = true;
  trace(TraceKind::kBlockStart);
}

void GeneralEngine::end_blocking() {
  SYNERGY_EXPECTS(blocking_);
  blocking_ = false;
  trace(TraceKind::kBlockEnd);
  SmallVec<Deferred, 4> pending = std::move(deferred_);
  deferred_.clear();  // moved-from is already empty; be explicit
  for (auto& op : pending) {
    if (!alive_) break;
    if (auto* send = std::get_if<SendReq>(&op)) {
      do_app_send(send->external, send->input);
    } else if (auto* step = std::get_if<StepReq>(&op)) {
      do_step(step->input);
    } else if (std::get_if<ConfLossReq>(&op)) {
      do_confidence_loss();
    } else {
      process_message(std::get<Message>(op));
    }
  }
}

// ---- Checkpointing / recovery --------------------------------------------------------

void GeneralEngine::set_ndc_provider(std::function<StableSeq()> fn) {
  SYNERGY_EXPECTS(fn != nullptr);
  ndc_provider_ = std::move(fn);
}

void GeneralEngine::fence_all_below(std::uint32_t epoch) {
  fence_all_ = std::max(fence_all_, epoch);
}

void GeneralEngine::fence_dirty_below(std::uint32_t epoch) {
  fence_dirty_ = std::max(fence_dirty_, epoch);
}

CheckpointRecord GeneralEngine::make_record(CkptKind kind) const {
  CheckpointRecord rec;
  rec.kind = kind;
  rec.owner = self();
  rec.established_at = current_time();
  rec.state_time = current_time();
  rec.dirty_bit = contamination_flag();
  rec.ndc = ndc_provider_();
  rec.app_state = services_.app->snapshot_shared();
  rec.protocol_state = snapshot_protocol_state();
  rec.transport_state = services_.transport->snapshot_state_shared();
  const std::span<const Message> unacked = services_.transport->unacked();
  rec.unacked.assign(unacked.begin(), unacked.end());
  return rec;
}

void GeneralEngine::capture_anchor(CkptKind kind) {
  AnchorCandidate candidate;
  candidate.absorbed_at = absorbed_;
  if (kind_ == GProcessKind::kActive && msg_sn_ > 0) {
    // The captured state reflects our own sends up to msg_sn_: promoting
    // it requires a validation covering them.
    candidate.absorbed_at.raise(component_, msg_sn_);
  }
  candidate.absorbed = absorbed_;
  candidate.kind = kind;
  candidate.captured_at = current_time();
  candidate.ndc = ndc_provider_();
  candidate.msg_sn = msg_sn_;
  candidate.takeover_done = takeover_done_;
  candidate.serial = ++candidate_serial_;
  candidate.sent_len = static_cast<std::uint32_t>(sent_views_.size());
  candidate.recv_len = static_cast<std::uint32_t>(recv_views_.size());
  candidate.app_state = services_.app->snapshot_shared();
  candidate.transport_state = services_.transport->snapshot_state_shared();
  const std::span<const Message> unacked = services_.transport->unacked();
  candidate.unacked.assign(unacked.begin(), unacked.end());
  anchor_candidates_.push_back(std::move(candidate));
  if (anchor_candidates_.size() > kMaxAnchorCandidates) {
    // Never drop below one covered candidate: the front is (or dominates)
    // the current best, so drop the second-oldest instead when the front
    // is the promoted anchor.
    anchor_candidates_.erase(anchor_candidates_.begin() + 1);
  }
  refresh_best_anchor();
}

CheckpointRecord GeneralEngine::build_promoted_record(
    const AnchorCandidate& cand) const {
  // Re-interpret the captured anchor under today's validation knowledge.
  // The frozen pieces are the scalars and the view-log prefix; suspect
  // flags and the validated vector are rebuilt from current state:
  // validations are monotone stable knowledge between restores (restores
  // clear the ring), so for any view
  //   promoted_suspect == live_suspect && !covered(contam, validated_now)
  // matches what normalizing a capture-time snapshot would produce.
  CheckpointRecord rec;
  rec.kind = cand.kind;
  rec.owner = self();
  rec.established_at = cand.captured_at;
  rec.state_time = cand.captured_at;
  rec.dirty_bit = false;  // promoted anchors are clean states
  rec.ndc = cand.ndc;
  rec.app_state = cand.app_state;
  rec.transport_state = cand.transport_state;
  rec.unacked.assign(cand.unacked.begin(), cand.unacked.end());

  ByteWriter w;
  w.u64(cand.msg_sn);
  w.u8(cand.takeover_done ? 1 : 0);
  const bool still_dirty = !contam_covered(cand.absorbed, validated_);
  w.u8(still_dirty ? 1 : 0);
  if (still_dirty) {
    contam_serialize(cand.absorbed, w);
  } else {
    contam_serialize(ContamVector{}, w);
  }
  contam_serialize(validated_, w);
  // Shadow suppression log at capture: entries carry monotone SNs, so the
  // capture-time log is exactly the live entries with sn <= cand.msg_sn
  // (entries reclaimed since were validated — a restore would drop them
  // at replay anyway, because the promoted record carries validated_).
  std::uint32_t logs = 0;
  for (const Message& m : msg_log_) {
    if (m.sn <= cand.msg_sn) ++logs;
  }
  w.u32(logs);
  for (const Message& m : msg_log_) {
    if (m.sn <= cand.msg_sn) m.serialize(w);
  }
  auto write_prefix = [this, &w](const SmallVec<GView, 8>& views,
                                 std::uint32_t len) {
    w.u32(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      const GView& v = views[i];
      w.u32(v.peer.value());
      w.u64(v.transport_seq);
      w.u64(v.sn);
      w.u8(static_cast<std::uint8_t>(v.kind));
      const bool suspect = v.suspect && !contam_covered(v.contam, validated_);
      w.u8(suspect ? 1 : 0);
      contam_serialize(v.contam, w);
    }
  };
  write_prefix(sent_views_, cand.sent_len);
  write_prefix(recv_views_, cand.recv_len);
  w.u32(static_cast<std::uint32_t>(failed_over_.size()));
  for (auto c : failed_over_) w.u32(c);
  rec.protocol_state = w.take();
  return rec;
}

void GeneralEngine::refresh_best_anchor() {
  // Newest candidate whose captured dependencies are fully validated
  // settles at the front of the ring; everything older is dominated and
  // dropped. The promoted record itself is NOT serialized here — that
  // happens in materialize_anchor() when latest_volatile() is read.
  //
  // Invariant maintained for materialize_anchor(): coverage only changes
  // inside apply_validation() and capture_anchor(), both of which call
  // this refresh — so between refreshes, candidate 0 is covered iff any
  // candidate is, and it is then the newest covered one.
  for (std::size_t i = anchor_candidates_.size(); i-- > 0;) {
    const AnchorCandidate& cand = anchor_candidates_[i];
    if (!contam_covered(cand.absorbed_at, validated_)) continue;
    if (i > 0) {
      anchor_candidates_.erase(anchor_candidates_.begin(),
                               anchor_candidates_.begin() +
                                   static_cast<std::ptrdiff_t>(i));
    }
    return;
  }
}

void GeneralEngine::materialize_anchor() const {
  if (anchor_candidates_.empty()) return;
  const AnchorCandidate& cand = anchor_candidates_[0];
  if (!contam_covered(cand.absorbed_at, validated_)) return;
  if (cand.serial == promoted_serial_ &&
      validated_version_ == promoted_validated_version_) {
    return;
  }
  services_.vstore->save(build_promoted_record(cand));
  promoted_serial_ = cand.serial;
  promoted_validated_version_ = validated_version_;
}

void GeneralEngine::restore_from_record(const CheckpointRecord& record) {
  services_.app->restore(record.app_state);
  restore_protocol_state(record.protocol_state);
  services_.transport->restore_state(record.transport_state);
  services_.transport->restore_unacked(record.unacked);
  deferred_.clear();
  deferred_acks_.clear();
  anchor_candidates_.clear();
  promoted_serial_ = ~std::uint64_t{0};
  blocking_ = false;
}

std::size_t GeneralEngine::takeover() {
  SYNERGY_EXPECTS(kind_ == GProcessKind::kShadow);
  SYNERGY_EXPECTS(!takeover_done_);
  takeover_done_ = true;
  trace(TraceKind::kTakeover);
  std::size_t replayed = 0;
  const MsgSeq vr = validated_.watermark(component_);
  SmallVec<Message, 4> log = std::move(msg_log_);
  msg_log_.clear();  // moved-from is already empty; be explicit
  for (Message& m : log) {
    if (m.sn <= vr) {
      trace(TraceKind::kReplayDrop, std::string(to_string(m.kind)), m.sn);
      continue;
    }
    trace(TraceKind::kReplaySend, std::string(to_string(m.kind)), m.sn);
    if (m.kind == MsgKind::kExternal) {
      m.receiver = kDeviceId;
      m.epoch = epoch_;
      services_.transport->send(m);
    } else {
      // Re-issue through the normal multicast path, preserving the SN.
      const MsgSeq keep = msg_sn_;
      msg_sn_ = m.sn;
      send_internal_multicast(m.payload, m.tainted);
      msg_sn_ = std::max(keep, m.sn);
    }
    ++replayed;
  }
  return replayed;
}

Bytes GeneralEngine::snapshot_protocol_state() const {
  ByteWriter w;
  w.u64(msg_sn_);
  w.u8(takeover_done_ ? 1 : 0);
  w.u8(dirty_bit_ ? 1 : 0);
  contam_serialize(absorbed_, w);
  contam_serialize(validated_, w);
  w.u32(static_cast<std::uint32_t>(msg_log_.size()));
  for (const auto& m : msg_log_) m.serialize(w);
  auto write_views = [&w](const SmallVec<GView, 8>& views) {
    w.u32(static_cast<std::uint32_t>(views.size()));
    for (const auto& v : views) {
      w.u32(v.peer.value());
      w.u64(v.transport_seq);
      w.u64(v.sn);
      w.u8(static_cast<std::uint8_t>(v.kind));
      w.u8(v.suspect ? 1 : 0);
      contam_serialize(v.contam, w);
    }
  };
  write_views(sent_views_);
  write_views(recv_views_);
  w.u32(static_cast<std::uint32_t>(failed_over_.size()));
  for (auto c : failed_over_) w.u32(c);
  return w.take();
}

void GeneralEngine::restore_protocol_state(const Bytes& state) {
  ByteReader r(state);
  msg_sn_ = r.u64();
  takeover_done_ = r.u8() != 0;
  dirty_bit_ = r.u8() != 0;
  absorbed_ = contam_deserialize(r);
  validated_ = contam_deserialize(r);
  ++validated_version_;  // restored knowledge invalidates promotion cache
  msg_log_.clear();
  const std::uint32_t logs = r.u32();
  msg_log_.reserve(logs);
  for (std::uint32_t i = 0; i < logs; ++i) {
    msg_log_.push_back(Message::deserialize(r));
  }
  suspect_views_ = 0;
  auto read_views = [this, &r](SmallVec<GView, 8>& views,
                               SmallVec<std::uint32_t, 8>& index) {
    views.clear();
    index.clear();
    const std::uint32_t n = r.u32();
    views.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      GView v;
      v.peer = ProcessId{r.u32()};
      v.transport_seq = r.u64();
      v.sn = r.u64();
      v.kind = static_cast<MsgKind>(r.u8());
      v.suspect = r.u8() != 0;
      if (v.suspect) {
        ++suspect_views_;
        index.push_back(i);
      }
      v.contam = contam_deserialize(r);
      views.push_back(std::move(v));
    }
  };
  read_views(sent_views_, suspect_sent_);
  read_views(recv_views_, suspect_recv_);
  failed_over_.clear();
  const std::uint32_t fo = r.u32();
  failed_over_.reserve(fo);
  for (std::uint32_t i = 0; i < fo; ++i) mark_component_failed_over(r.u32());
}

}  // namespace synergy
