#include "general/system.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace synergy {

GeneralSystem::GeneralSystem(Topology topology, const GeneralConfig& config)
    : topology_(std::move(topology)), config_(config) {
  rng_ = std::make_unique<Rng>(config.seed);
  net_ = std::make_unique<Network>(sim_, config.net, rng_->split());
  clocks_ = std::make_unique<ClockEnsemble>(
      sim_, config.clock, topology_.process_count(), rng_->split());
  net_->attach(kDeviceId,
               [this](const Message& m) { device_.push_back(m); });

  TbParams tb = config.tb;
  tb.variant = TbVariant::kAdapted;
  tb.delta = config.clock.delta;
  tb.rho = config.clock.rho;
  tb.tmin = config.net.tmin;
  tb.tmax = config.net.tmax;

  TraceLog* trace = config.enable_trace ? &trace_ : nullptr;
  for (std::uint32_t p = 0; p < topology_.process_count(); ++p) {
    auto node = std::make_unique<GNode>();
    node->id = ProcessId{p};
    const std::uint32_t c = topology_.component_of(node->id);
    const auto& spec = topology_.components()[c];
    // Shadows share their component's application seed (same computation).
    node->app = std::make_unique<ApplicationState>(config.seed * 7919 + c);
    node->sstore = std::make_unique<StableStore>(sim_, config.sstore);
    node->at = std::make_unique<AcceptanceTest>(config.at, rng_->split());
    const bool is_active_low = !topology_.is_shadow(node->id) &&
                               spec.confidence == Confidence::kLow;
    if (is_active_low) {
      SoftwareFaultParams fp;
      fp.activation_per_send = spec.fault_activation_per_send;
      node->sw_fault =
          std::make_unique<SoftwareFaultModel>(fp, rng_->split());
    }
    GeneralEngine* engine_raw = nullptr;
    node->endpoint = std::make_unique<ReliableEndpoint>(
        *net_, node->id, [&engine_raw, raw = node.get()](const Message& m) {
          raw->engine->on_message(m);
        });

    ProcessServices services;
    services.self = node->id;
    services.now = [this] { return sim_.now(); };
    services.transport = node->endpoint.get();
    services.vstore = &node->vstore;
    services.app = node->app.get();
    services.at = node->at.get();
    services.sw_fault = node->sw_fault.get();
    services.trace = trace;
    services.request_sw_recovery = [this](ProcessId detector) {
      on_at_failure(detector);
    };
    node->engine = std::make_unique<GeneralEngine>(
        topology_, node->id, config.mdcd, std::move(services));
    engine_raw = node->engine.get();
    (void)engine_raw;

    node->tb = std::make_unique<TbEngine>(
        tb, *node->engine, *node->sstore, clocks_->timers(node->id),
        [this] { return clocks_->elapsed_since_resync(); }, trace);
    node->engine->set_ndc_provider(
        [tbp = node->tb.get()] { return tbp->ndc(); });
    node->tb->set_resync_requester([this] { clocks_->resync_all(); });
    nodes_.push_back(std::move(node));
  }

  comp_routes_.resize(topology_.component_count());
  for (std::uint32_t c = 0; c < topology_.component_count(); ++c) {
    comp_routes_[c].active =
        nodes_[topology_.active_of(c).value()]->engine.get();
    if (topology_.has_shadow(c)) {
      comp_routes_[c].shadow =
          nodes_[topology_.shadow_of(c).value()]->engine.get();
    }
  }
}

GeneralSystem::~GeneralSystem() = default;

GeneralEngine& GeneralSystem::engine(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < nodes_.size());
  return *nodes_[p.value()]->engine;
}

TbEngine& GeneralSystem::tb(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < nodes_.size());
  return *nodes_[p.value()]->tb;
}

ApplicationState& GeneralSystem::app(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < nodes_.size());
  return *nodes_[p.value()]->app;
}

void GeneralSystem::arm_workload(std::uint32_t component, TimePoint until) {
  const auto& spec = topology_.components()[component];
  auto schedule = [this, component, until](double rate, bool external,
                                           auto&& self_ref) -> void {
    if (rate <= 0.0) return;
    const TimePoint at =
        sim_.now() + rng_->exponential(Duration::from_seconds(1.0 / rate));
    if (at >= until) return;
    sim_.schedule_at(at, [this, component, until, rate, external,
                          self_ref]() mutable {
      // One sim event drives the active/shadow pair through the flat
      // route — the pair consumes the same input in the same tick.
      const std::uint64_t input = rng_->next();
      const CompRoute& route = comp_routes_[component];
      route.active->on_app_send(external, input);
      if (route.shadow) route.shadow->on_app_send(external, input);
      self_ref(rate, external, self_ref);
    });
  };
  schedule(spec.internal_rate, false, schedule);
  schedule(spec.external_rate, true, schedule);
}

void GeneralSystem::start(TimePoint horizon) {
  SYNERGY_EXPECTS(!started_);
  started_ = true;
  horizon_ = horizon;
  for (auto& node : nodes_) {
    node->sstore->commit_now(node->engine->make_record(CkptKind::kStable));
    node->tb->start();
  }
  for (std::uint32_t c = 0; c < topology_.component_count(); ++c) {
    arm_workload(c, horizon);
  }
}

void GeneralSystem::run() {
  SYNERGY_EXPECTS(started_);
  sim_.run_until(horizon_);
}

void GeneralSystem::schedule_sw_error(TimePoint at, std::uint32_t component) {
  SYNERGY_EXPECTS(component < topology_.component_count());
  SYNERGY_EXPECTS(topology_.components()[component].confidence ==
                  Confidence::kLow);
  sim_.schedule_at(at, [this, component] {
    GNode& node = *nodes_[topology_.active_of(component).value()];
    if (!node.engine->alive()) return;
    node.app->corrupt(rng_->next());
    node.engine->on_app_send(/*external=*/true, rng_->next());
    if (topology_.has_shadow(component)) {
      nodes_[topology_.shadow_of(component).value()]->engine->on_app_send(
          /*external=*/true, rng_->next());
    }
  });
}

void GeneralSystem::on_at_failure(ProcessId detector) {
  if (sw_recovery_.has_value()) return;  // redundancy exhausted: record only
  GeneralSwRecovery result;
  result.detector = detector;
  const std::uint32_t new_epoch = ++epoch_counter_;
  trace_.record(sim_.now(), detector, TraceKind::kSwErrorDetected);

  // 1. Every low-confidence active is terminated and retired.
  for (auto& node : nodes_) {
    const std::uint32_t c = topology_.component_of(node->id);
    if (!topology_.is_shadow(node->id) &&
        topology_.components()[c].confidence == Confidence::kLow) {
      node->engine->kill();
      node->tb->stop();
      node->endpoint->detach_network();
      node->retired = true;
    }
  }

  // 2. Local rollback / roll-forward decisions for the survivors.
  for (auto& node : nodes_) {
    if (node->retired) continue;
    if (node->engine->dirty()) {
      const auto& record = node->engine->latest_volatile();
      SYNERGY_ASSERT(record.has_value());
      node->engine->restore_from_record(*record);
      ++result.rolled_back;
      trace_.record(sim_.now(), node->id, TraceKind::kRollback,
                    to_string(record->kind));
    } else {
      trace_.record(sim_.now(), node->id, TraceKind::kRollForward);
    }
  }

  // 3. Epoch fences + reconfiguration knowledge, then shadow takeovers.
  for (auto& node : nodes_) {
    node->engine->set_epoch(new_epoch);
    node->engine->fence_dirty_below(new_epoch);
    for (std::uint32_t c = 0; c < topology_.component_count(); ++c) {
      if (topology_.components()[c].confidence == Confidence::kLow) {
        node->engine->mark_component_failed_over(c);
      }
    }
  }
  for (auto& node : nodes_) {
    if (node->retired || !topology_.is_shadow(node->id)) continue;
    result.replayed += node->engine->takeover();
  }

  // 4. Fresh recovery line so no later hardware rollback spans the
  //    takeover — at a *common* index, with every survivor's TB schedule
  //    fast-forwarded to it.
  // Boundary-aligned index strictly after every survivor's schedule
  // position (see core/system.cpp).
  StableSeq line = static_cast<StableSeq>(sim_.now().count() /
                                          config_.tb.interval.count()) +
                   1;
  for (auto& node : nodes_) {
    if (!node->retired) line = std::max(line, node->tb->ndc() + 1);
  }
  for (auto& node : nodes_) {
    if (node->retired) continue;
    if (node->engine->in_blocking()) node->engine->end_blocking();
    CheckpointRecord rec = node->engine->make_record(CkptKind::kStable);
    rec.ndc = line;
    node->sstore->commit_now(std::move(rec));
    node->tb->reset_after_recovery(line);
  }
  trace_.record(sim_.now(), detector, TraceKind::kSwRecoveryDone);
  sw_recovery_ = result;
}

void GeneralSystem::schedule_hw_fault(TimePoint at, ProcessId victim) {
  sim_.schedule_at(at, [this, victim] {
    if (hw_pending_) return;
    GNode& node = *nodes_[victim.value()];
    if (node.retired) return;
    hw_pending_ = true;
    const TimePoint fault_time = sim_.now();
    node.crashed = true;
    node.engine->kill();
    node.tb->stop();
    node.endpoint->detach_network();
    net_->drop_in_transit_to(victim);
    node.vstore.crash_erase();
    node.sstore->crash_abort_in_progress();
    // Freeze checkpointing on the survivors until the coordinated restart
    // (see coord/hw_recovery.cpp for the rationale).
    for (auto& other : nodes_) {
      if (other->id == victim || other->retired) continue;
      other->tb->stop();
      other->sstore->crash_abort_in_progress();
    }
    trace_.record(fault_time, victim, TraceKind::kHwFault);
    sim_.schedule_after(config_.repair_latency, [this, fault_time, victim] {
      recover_hw(fault_time, victim);
      hw_pending_ = false;
    });
  });
}

void GeneralSystem::recover_hw(TimePoint fault_time, ProcessId victim) {
  const std::uint32_t new_epoch = ++epoch_counter_;
  GeneralHwRecovery result;
  result.fault_time = fault_time;
  result.victim = victim;
  result.rollback_distance.assign(nodes_.size(), Duration::zero());

  // Common-index recovery line.
  StableSeq line = ~StableSeq{0};
  for (auto& node : nodes_) {
    if (node->retired) continue;
    node->sstore->crash_abort_in_progress();
    line = std::min(line, node->sstore->latest_ndc());
  }
  for (auto& node : nodes_) {
    if (node->retired) continue;
    auto rec = node->sstore->committed_for(line);
    SYNERGY_ASSERT(rec.has_value());
    node->sstore->discard_above(line);  // undone-incarnation records
    node->tb->stop();
    node->engine->revive();
    node->engine->restore_from_record(*rec);
    node->engine->set_epoch(new_epoch);
    node->engine->fence_all_below(new_epoch);
    node->endpoint->reattach_network();
    node->crashed = false;
    CheckpointRecord baseline = node->engine->make_record(CkptKind::kType1);
    baseline.state_time = rec->state_time;
    node->vstore.save(std::move(baseline));
    node->tb->reset_after_recovery(rec->ndc);
    result.rollback_distance[node->id.value()] =
        fault_time - rec->state_time;
    trace_.record(sim_.now(), node->id, TraceKind::kHwRestore,
                  to_string(rec->kind), rec->ndc);
  }
  for (auto& node : nodes_) {
    if (node->retired) continue;
    result.resent += node->endpoint->resend_unacked(new_epoch);
  }
  trace_.record(sim_.now(), victim, TraceKind::kHwRecoveryDone);
  hw_recoveries_.push_back(std::move(result));
}

ProcessFacts general_facts_from_record(const CheckpointRecord& record) {
  ProcessFacts facts;
  facts.id = record.owner;
  facts.state_time = record.state_time;
  facts.unacked = record.unacked;
  facts.dirty = record.dirty_bit;

  ByteReader r(record.protocol_state);
  (void)r.u64();  // msg_sn
  (void)r.u8();   // takeover flag
  (void)r.u8();   // dirty bit
  (void)contam_deserialize(r);  // absorbed
  (void)contam_deserialize(r);  // validated
  const std::uint32_t logs = r.u32();
  for (std::uint32_t i = 0; i < logs; ++i) (void)Message::deserialize(r);
  auto read_views = [&r](ViewLog& out) {
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      MsgView v;
      v.peer = ProcessId{r.u32()};
      v.transport_seq = r.u64();
      v.sn = r.u64();
      v.kind = static_cast<MsgKind>(r.u8());
      v.suspect = r.u8() != 0;
      (void)contam_deserialize(r);
      v.contam_sn = 0;
      out.add(v);
    }
  };
  read_views(facts.sent);
  read_views(facts.recv);

  ApplicationState app;
  app.restore(record.app_state);
  facts.app_tainted = app.tainted();
  return facts;
}

GlobalState GeneralSystem::stable_line_state() const {
  StableSeq line = ~StableSeq{0};
  bool any = false;
  for (const auto& node : nodes_) {
    if (node->retired) continue;
    line = std::min(line, node->sstore->latest_ndc());
    any = true;
  }
  GlobalState state;
  if (!any) return state;
  for (const auto& node : nodes_) {
    if (node->retired) continue;
    auto rec = node->sstore->committed_for(line);
    if (rec) state.processes.push_back(general_facts_from_record(*rec));
  }
  return state;
}

GlobalState GeneralSystem::live_state() const {
  GlobalState state;
  for (const auto& node : nodes_) {
    if (!node->engine->alive()) continue;
    state.processes.push_back(general_facts_from_record(
        node->engine->make_record(CkptKind::kType1)));
  }
  return state;
}

}  // namespace synergy
