// Sharded campaigns for the generalized topology engine.
//
// A general mission is one GeneralSystem run of a parameterized topology
// (star or chain, any size) under Poisson workloads, with one seeded
// hardware fault and one seeded software error, audited at mission end by
// the paper's oracles (recovery-line consistency + recoverability) over
// both the stable line and the live state.
//
// The campaign fans missions out over the shared worker pool under the
// same determinism contract as the chaos campaign (src/core/campaign.hpp):
// mission seeds all derive from the campaign seed before any mission runs,
// reports land in mission-index order, and per-mission output is buffered
// and published in order — everything except the trailing `timing:` line
// is byte-identical for every --jobs value.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace synergy {

enum class GeneralShape : std::uint8_t { kStar, kChain };

const char* to_string(GeneralShape shape);

struct GeneralCampaignConfig {
  std::uint64_t seed = 1;
  std::size_t reps = 8;
  GeneralShape shape = GeneralShape::kStar;
  /// Star: leaf count; chain: total length (>= 2).
  std::size_t size = 64;
  Duration mission = Duration::seconds(60);
  double internal_rate = 2.0;  ///< per-component internal sends / s
  double external_rate = 0.3;  ///< per-component external sends / s
  Duration tb_interval = Duration::seconds(10);
  bool inject_hw = true;  ///< one seeded node crash per mission
  bool inject_sw = true;  ///< one seeded design-fault activation per mission
  bool verbose = false;   ///< per-mission summary lines
  /// Worker threads; 0 = hardware concurrency. Same bit-identity contract
  /// as CampaignConfig::jobs.
  std::size_t jobs = 1;
};

struct GeneralMissionReport {
  std::uint64_t seed = 0;
  bool ok = true;
  std::vector<std::string> failures;

  std::size_t processes = 0;
  std::uint64_t events = 0;  ///< simulator events executed
  std::uint64_t device_outputs = 0;
  std::uint64_t tainted_outputs = 0;
  std::uint64_t stable_ckpts = 0;
  std::uint64_t hw_recoveries = 0;
  std::uint64_t sw_recoveries = 0;
  std::uint64_t sw_replayed = 0;  ///< shadow-takeover log replays
  std::uint64_t consistency_violations = 0;
  std::uint64_t recoverability_violations = 0;
};

/// Field-wise equality — the determinism contract: `--jobs N` must
/// reproduce `--jobs 1` exactly.
bool operator==(const GeneralMissionReport& a, const GeneralMissionReport& b);
inline bool operator!=(const GeneralMissionReport& a,
                       const GeneralMissionReport& b) {
  return !(a == b);
}

struct GeneralCampaignResult {
  std::vector<GeneralMissionReport> missions;  ///< mission-index order
  std::size_t failed = 0;
  std::uint64_t oracle_violations = 0;  ///< across all missions (must be 0)
  std::uint64_t events_total = 0;

  // Executor performance — NOT part of the determinism contract.
  std::size_t jobs = 1;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

/// The per-mission text block run_general_campaign emits for mission
/// `index` — exposed so tests can assert output equality across jobs
/// values. Returns "" when this mission prints nothing.
std::string format_general_mission(const GeneralCampaignConfig& config,
                                   std::size_t index,
                                   const GeneralMissionReport& report);

/// Run one mission with the given seed (deterministic replay).
GeneralMissionReport run_general_mission(const GeneralCampaignConfig& config,
                                         std::uint64_t mission_seed);

/// Run the whole campaign over config.jobs workers. Everything written to
/// `out` except the trailing `timing:` line is byte-identical for every
/// jobs value.
GeneralCampaignResult run_general_campaign(const GeneralCampaignConfig& config,
                                           std::ostream* out);

}  // namespace synergy
