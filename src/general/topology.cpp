#include "general/topology.hpp"

#include "common/assert.hpp"

namespace synergy {

Topology::Topology(std::vector<ComponentSpec> components)
    : components_(std::move(components)) {
  SYNERGY_EXPECTS(!components_.empty());
  shadow_index_.assign(components_.size(), -1);
  for (std::uint32_t c = 0; c < components_.size(); ++c) {
    for (const auto peer : components_[c].peers) {
      SYNERGY_EXPECTS(peer < components_.size());
      SYNERGY_EXPECTS(peer != c);  // no self loops
    }
    if (components_[c].confidence == Confidence::kLow) {
      shadow_index_[c] = static_cast<std::int32_t>(shadow_count_++);
    } else {
      SYNERGY_EXPECTS(components_[c].fault_activation_per_send == 0.0);
    }
  }
  // Flat process -> component map: actives are ids [0, C), shadows are
  // appended in shadow-slot order.
  component_of_.assign(components_.size() + shadow_count_, 0);
  for (std::uint32_t c = 0; c < components_.size(); ++c) {
    component_of_[c] = c;
    if (shadow_index_[c] >= 0) {
      component_of_[components_.size() +
                    static_cast<std::size_t>(shadow_index_[c])] = c;
    }
  }
  // Resolved multicast fan-outs.
  peer_routes_.resize(components_.size());
  for (std::uint32_t c = 0; c < components_.size(); ++c) {
    peer_routes_[c].reserve(components_[c].peers.size());
    for (const auto peer : components_[c].peers) {
      PeerRoute route;
      route.component = peer;
      route.active = active_of(peer);
      route.has_shadow = shadow_index_[peer] >= 0;
      if (route.has_shadow) route.shadow = shadow_of(peer);
      peer_routes_[c].push_back(route);
    }
  }
}

ProcessId Topology::active_of(std::uint32_t c) const {
  SYNERGY_EXPECTS(c < components_.size());
  return ProcessId{c};
}

bool Topology::has_shadow(std::uint32_t c) const {
  SYNERGY_EXPECTS(c < components_.size());
  return shadow_index_[c] >= 0;
}

ProcessId Topology::shadow_of(std::uint32_t c) const {
  SYNERGY_EXPECTS(has_shadow(c));
  return ProcessId{static_cast<std::uint32_t>(
      components_.size() + static_cast<std::size_t>(shadow_index_[c]))};
}

std::uint32_t Topology::component_of(ProcessId p) const {
  SYNERGY_EXPECTS(p.value() < component_of_.size());
  return component_of_[p.value()];
}

bool Topology::is_shadow(ProcessId p) const {
  return p.value() >= components_.size() &&
         p.value() < process_count();
}

const std::vector<PeerRoute>& Topology::peer_routes(std::uint32_t c) const {
  SYNERGY_EXPECTS(c < peer_routes_.size());
  return peer_routes_[c];
}

std::string Topology::process_name(ProcessId p) const {
  const auto c = component_of(p);
  return components_[c].name + (is_shadow(p) ? ".sdw" : "");
}

Topology Topology::canonical() {
  ComponentSpec low;
  low.name = "C1";
  low.confidence = Confidence::kLow;
  low.peers = {1};
  ComponentSpec high;
  high.name = "C2";
  high.peers = {0};
  return Topology({low, high});
}

Topology Topology::chain(std::size_t n) {
  SYNERGY_EXPECTS(n >= 2);
  std::vector<ComponentSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    ComponentSpec s;
    s.name = "C" + std::to_string(i);
    s.confidence = i == 0 ? Confidence::kLow : Confidence::kHigh;
    if (i + 1 < n) s.peers.push_back(static_cast<std::uint32_t>(i + 1));
    if (i > 0) s.peers.push_back(static_cast<std::uint32_t>(i - 1));
    specs.push_back(std::move(s));
  }
  return Topology(std::move(specs));
}

Topology Topology::star(std::size_t leaves) {
  SYNERGY_EXPECTS(leaves >= 1);
  std::vector<ComponentSpec> specs;
  ComponentSpec hub;
  hub.name = "hub";
  hub.confidence = Confidence::kLow;
  for (std::size_t i = 1; i <= leaves; ++i) {
    hub.peers.push_back(static_cast<std::uint32_t>(i));
  }
  specs.push_back(std::move(hub));
  for (std::size_t i = 1; i <= leaves; ++i) {
    ComponentSpec leaf;
    leaf.name = "leaf" + std::to_string(i);
    leaf.peers = {0};
    specs.push_back(std::move(leaf));
  }
  return Topology(std::move(specs));
}

Topology Topology::dual_guarded() {
  ComponentSpec a;
  a.name = "A";
  a.confidence = Confidence::kLow;
  a.peers = {2};
  ComponentSpec b;
  b.name = "B";
  b.confidence = Confidence::kLow;
  b.peers = {2};
  ComponentSpec shared;
  shared.name = "S";
  shared.peers = {0, 1};
  return Topology({a, b, shared});
}

}  // namespace synergy
