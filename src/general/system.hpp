// GeneralSystem — the generalized protocol on the discrete-event simulator.
//
// Builds one process per component (plus a shadow per low-confidence
// component) on its own node with a drifting clock, volatile + stable
// storage and a reliable endpoint; runs the generalized MDCD engine
// coordinated with the adapted TB engine; drives Poisson workloads per
// component; and provides software- and hardware-fault injection with the
// same recovery semantics as the canonical system, generalized to any
// number of guarded components.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analysis/global_state.hpp"
#include "app/acceptance_test.hpp"
#include "app/fault.hpp"
#include "app/state.hpp"
#include "clock/ensemble.hpp"
#include "general/engine.hpp"
#include "general/topology.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "storage/stable_store.hpp"
#include "storage/volatile_store.hpp"
#include "tb/engine.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct GeneralConfig {
  MdcdConfig mdcd;  ///< corrected gate/tracking defaults
  AtParams at;
  ClockParams clock;
  NetworkParams net;
  StableStoreParams sstore;
  TbParams tb;  ///< variant forced to kAdapted
  Duration repair_latency = Duration::seconds(1);
  std::uint64_t seed = 1;
  bool enable_trace = true;
};

struct GeneralSwRecovery {
  ProcessId detector;
  std::size_t rolled_back = 0;
  std::size_t replayed = 0;
};

struct GeneralHwRecovery {
  TimePoint fault_time;
  ProcessId victim;
  std::vector<Duration> rollback_distance;  // per process id
  std::size_t resent = 0;
};

class GeneralSystem {
 public:
  GeneralSystem(Topology topology, const GeneralConfig& config);
  ~GeneralSystem();

  GeneralSystem(const GeneralSystem&) = delete;
  GeneralSystem& operator=(const GeneralSystem&) = delete;

  Simulator& sim() { return sim_; }
  TraceLog& trace() { return trace_; }
  const Topology& topology() const { return topology_; }
  GeneralEngine& engine(ProcessId p);
  TbEngine& tb(ProcessId p);
  ApplicationState& app(ProcessId p);
  std::size_t device_outputs() const { return device_.size(); }
  const std::vector<Message>& device_log() const { return device_; }

  void start(TimePoint horizon);
  void run();
  void run_until(TimePoint deadline) { sim_.run_until(deadline); }

  /// Corrupt component `c`'s active process at `at` and force an external
  /// send (deterministic software error).
  void schedule_sw_error(TimePoint at, std::uint32_t component);

  /// Crash process `victim`'s node at `at`; global recovery follows.
  void schedule_hw_fault(TimePoint at, ProcessId victim);

  const std::optional<GeneralSwRecovery>& sw_recovery() const {
    return sw_recovery_;
  }
  const std::vector<GeneralHwRecovery>& hw_recoveries() const {
    return hw_recoveries_;
  }

  /// Recovery-line audit surface (the same oracles as the canonical
  /// system; general views are converted to plain ViewLogs).
  GlobalState stable_line_state() const;
  GlobalState live_state() const;

 private:
  struct GNode {
    ProcessId id;
    std::unique_ptr<ApplicationState> app;
    VolatileStore vstore;
    std::unique_ptr<StableStore> sstore;
    std::unique_ptr<AcceptanceTest> at;
    std::unique_ptr<SoftwareFaultModel> sw_fault;
    std::unique_ptr<ReliableEndpoint> endpoint;
    std::unique_ptr<GeneralEngine> engine;
    std::unique_ptr<TbEngine> tb;
    bool retired = false;
    bool crashed = false;
  };

  /// Flat workload-dispatch route: one entry per component, resolved to
  /// raw engine pointers at construction so the per-event path (the
  /// hottest callback in a large topology) is two indirect calls, not a
  /// topology lookup plus unique_ptr chains.
  struct CompRoute {
    GeneralEngine* active = nullptr;
    GeneralEngine* shadow = nullptr;  ///< null for unguarded components
  };

  void arm_workload(std::uint32_t component, TimePoint until);
  void on_at_failure(ProcessId detector);
  void recover_hw(TimePoint fault_time, ProcessId victim);
  ProcessFacts facts_for(const GNode& node,
                         const CheckpointRecord& record) const;

  Topology topology_;
  GeneralConfig config_;
  Simulator sim_;
  TraceLog trace_;
  std::vector<Message> device_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ClockEnsemble> clocks_;
  std::vector<std::unique_ptr<GNode>> nodes_;
  std::vector<CompRoute> comp_routes_;
  TimePoint horizon_;
  bool started_ = false;
  bool hw_pending_ = false;
  std::uint32_t epoch_counter_ = 0;
  std::optional<GeneralSwRecovery> sw_recovery_;
  std::vector<GeneralHwRecovery> hw_recoveries_;
};

/// Decode ProcessFacts from a generalized checkpoint record (the general
/// engine's protocol-state layout differs from the canonical one).
ProcessFacts general_facts_from_record(const CheckpointRecord& record);

}  // namespace synergy
