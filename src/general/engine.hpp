// Generalized MDCD engine — N components, per-source contamination.
//
// One engine instance per process. Three kinds:
//   kActive  — the in-service process of a low-confidence component: its
//              own sends are a contamination source (tracked per-source);
//              external sends are always AT-validated; a pseudo checkpoint
//              anchors each burst of unvalidated sends.
//   kShadow  — the high-confidence twin of a low component: mirrors the
//              computation, suppresses and logs outputs, reclaims the log
//              as validations cover its component's SNs, and takes over on
//              software error recovery.
//   kRegular — a high-confidence component: contaminated only by what it
//              absorbs; AT on external sends while contaminated.
//
// The engine carries the corrected semantics of the canonical protocol
// (DESIGN.md §7) generalized to contamination *vectors*: messages and
// validations carry per-source watermark maps, dirt clears per-source,
// views upgrade when their whole vector is covered, and acknowledgments
// are validation-gated. Implements CheckpointableProcess, so the adapted
// TB engine coordinates it unchanged.
//
// Hot-path layout (DESIGN.md §17): every per-step container is inline
// small-vector storage — contamination vectors, the deferred queue, the
// fail-over set, the anchor ring — and anchor candidates are *lazy*: a
// capture records scalars, view-log prefix lengths and refcounted
// app/transport snapshots; the full protocol state serializes once, at
// promotion, instead of on every absorption.
#pragma once

#include <optional>
#include <variant>

#include "common/small_vec.hpp"
#include "general/contam.hpp"
#include "general/topology.hpp"
#include "mdcd/checkpointable.hpp"
#include "mdcd/config.hpp"
#include "mdcd/services.hpp"

namespace synergy {

enum class GProcessKind : std::uint8_t { kActive, kShadow, kRegular };

const char* to_string(GProcessKind kind);

/// View entry with a full contamination vector (general-protocol analogue
/// of MsgView).
struct GView {
  ProcessId peer;
  std::uint64_t transport_seq;
  MsgSeq sn;
  MsgKind kind;
  bool suspect;
  ContamVector contam;
};

class GeneralEngine final : public CheckpointableProcess {
 public:
  GeneralEngine(const Topology& topology, ProcessId self,
                const MdcdConfig& config, ProcessServices services);

  GProcessKind kind() const { return kind_; }
  std::uint32_t component() const { return component_; }

  // ---- Workload / transport events ---------------------------------------
  void on_app_send(bool external, std::uint64_t input);
  void on_local_step(std::uint64_t input);
  void on_message(const Message& m);
  /// Redundant-lane signature monitor reported a control-flow fault:
  /// confidence in the current state is lost. Anchors (if clean) and sets
  /// the dirty bit, exactly like absorbing contaminated traffic; the next
  /// covering validation clears it. Deferred (never dropped) while
  /// blocking — only passed_AT is processed during a blocking period.
  void on_confidence_loss();

  // ---- CheckpointableProcess ----------------------------------------------
  ProcessId self() const override { return services_.self; }
  bool alive() const override { return alive_; }
  TimePoint current_time() const override { return services_.now(); }
  bool contamination_flag() const override;
  const std::optional<CheckpointRecord>& latest_volatile() const override {
    materialize_anchor();
    return services_.vstore->latest();
  }
  CheckpointRecord make_record(CkptKind kind) const override;
  void begin_blocking() override;
  void end_blocking() override;
  bool in_blocking() const override { return blocking_; }
  void set_contamination_cleared_observer(std::function<void()> fn) override {
    contamination_cleared_ = std::move(fn);
  }

  // ---- Coordination / recovery surface -------------------------------------
  void set_ndc_provider(std::function<StableSeq()> fn);
  bool dirty() const;          ///< uncovered absorbed contamination exists
  bool pseudo_dirty() const;   ///< (active) uncovered own sends exist
  std::uint32_t epoch() const { return epoch_; }
  void set_epoch(std::uint32_t e) { epoch_ = e; }
  void fence_all_below(std::uint32_t epoch);
  void fence_dirty_below(std::uint32_t epoch);
  void kill() { alive_ = false; }
  void revive() { alive_ = true; }
  bool active_role() const { return takeover_done_ || kind_ != GProcessKind::kShadow; }

  /// Shadow takeover: assume the active role and replay logged messages
  /// beyond the validated watermark of this component. Returns the number
  /// replayed.
  std::size_t takeover();

  /// System-wide reconfiguration knowledge: component `c` failed over to
  /// its shadow; its retired active process gets no further traffic.
  /// Persisted in the protocol state (survives rollbacks).
  void mark_component_failed_over(std::uint32_t c);

  void restore_from_record(const CheckpointRecord& record);
  Bytes snapshot_protocol_state() const;
  void restore_protocol_state(const Bytes& state);

  // ---- Oracle / diagnostics -------------------------------------------------
  const ContamVector& absorbed() const { return absorbed_; }
  const ContamVector& validated() const { return validated_; }
  const SmallVec<GView, 8>& sent_views() const { return sent_views_; }
  const SmallVec<GView, 8>& recv_views() const { return recv_views_; }
  const SmallVec<Message, 4>& suppressed_log() const { return msg_log_; }
  MsgSeq msg_sn() const { return msg_sn_; }
  bool app_tainted() const { return services_.app->tainted(); }
  /// Anchor-ring occupancy (bounded by kMaxAnchorCandidates; tested).
  std::size_t anchor_candidate_count() const {
    return anchor_candidates_.size();
  }

  static constexpr std::size_t kMaxAnchorCandidates = 64;

 private:
  struct SendReq {
    bool external;
    std::uint64_t input;
  };
  struct StepReq {
    std::uint64_t input;
  };
  struct ConfLossReq {};
  using Deferred = std::variant<SendReq, StepReq, Message, ConfLossReq>;
  struct AckKey {
    ProcessId sender;
    std::uint64_t transport_seq;
  };

  void do_app_send(bool external, std::uint64_t input);
  void do_step(std::uint64_t input);
  void do_confidence_loss();
  void process_message(const Message& m);
  void do_app_message(const Message& m);
  void do_passed_at(const Message& m);
  bool consume_or_drop(const Message& m);
  bool ndc_gate_ok(const Message& m);

  /// Current outgoing contamination: absorbed dirt plus (active) the own
  /// source watermark.
  ContamVector outgoing_contam(MsgSeq own_sn) const;

  /// Apply a validation covering `coverage`: raise validated_, clear
  /// covered dirt/pseudo, upgrade views, flush acks on full clear.
  void apply_validation(const ContamVector& coverage);

  void settle_ack(const Message& m);
  void flush_deferred_acks();

  // ---- Anchor ring ---------------------------------------------------------
  // With several contamination sources a validation can cover a *prefix*
  // of a process's dirt; the correct recovery anchor is then the state
  // just before the first still-uncovered absorption — which no single
  // Type-1 checkpoint provides. The engine therefore captures a candidate
  // anchor before every absorption (and before every own-source send of
  // an active) and, on each validation, promotes the newest candidate
  // whose captured dependency vector is fully covered. The promoted
  // record is what latest_volatile() / the TB copy path sees.
  //
  // A candidate does NOT hold a serialized record. The engine's live view
  // logs are append-only between restores and validations are monotone, so
  // a candidate is fully determined by scalars, the capture-time absorbed
  // vector, the view-log prefix lengths, and the (refcounted) app and
  // transport snapshots: the promoted protocol state is rebuilt at
  // promotion time with view suspect flags recomputed under *today's*
  // validation knowledge — identical to normalizing a frozen snapshot,
  // because suspect == initial_dirty && !covered(contam, validated_now)
  // regardless of when the flag was frozen.
  struct AnchorCandidate {
    ContamVector absorbed_at;  ///< dependencies of the captured state
    ContamVector absorbed;     ///< absorbed_ at capture (record contents)
    CkptKind kind;
    TimePoint captured_at;
    StableSeq ndc;
    MsgSeq msg_sn;
    bool takeover_done;
    std::uint64_t serial;       ///< promotion identity (skip re-serializing)
    std::uint32_t sent_len;     ///< sent_views_ prefix at capture
    std::uint32_t recv_len;     ///< recv_views_ prefix at capture
    SharedBytes app_state;
    SharedBytes transport_state;
    SmallVec<Message, 4> unacked;
  };
  void capture_anchor(CkptKind kind);
  void refresh_best_anchor();
  void materialize_anchor() const;
  CheckpointRecord build_promoted_record(const AnchorCandidate& cand) const;

  void send_internal_multicast(std::uint64_t payload, bool tainted);
  void trace(TraceKind kind, std::string_view detail = {}, std::uint64_t a = 0,
             std::uint64_t b = 0) const;
  bool tracing() const { return services_.trace != nullptr; }

  const Topology& topology_;
  GProcessKind kind_;
  std::uint32_t component_;
  MdcdConfig config_;
  ProcessServices services_;

  MsgSeq msg_sn_ = 0;
  bool dirty_bit_ = false;
  ContamVector absorbed_;
  ContamVector validated_;
  bool alive_ = true;
  bool takeover_done_ = false;
  bool blocking_ = false;
  std::uint32_t epoch_ = 0;
  std::uint32_t fence_all_ = 0;
  std::uint32_t fence_dirty_ = 0;
  SmallVec<Deferred, 4> deferred_;
  SmallVec<AckKey, 8> deferred_acks_;
  SmallVec<AnchorCandidate, 4> anchor_candidates_;
  SmallVec<Message, 4> msg_log_;  // shadow suppression log
  SmallVec<std::uint32_t, 8> failed_over_;  // sorted component indices
  SmallVec<GView, 8> sent_views_;
  SmallVec<GView, 8> recv_views_;
  std::uint32_t suspect_views_ = 0;  ///< suspect entries across both logs
  // Positions of the suspect entries, so a validation upgrades by walking
  // the (small) uncovered window instead of the whole append-only logs.
  // Indices stay valid between restores because the logs only append.
  SmallVec<std::uint32_t, 8> suspect_sent_;
  SmallVec<std::uint32_t, 8> suspect_recv_;
  // Promotion is lazy twice over: refresh_best_anchor() only reorders the
  // ring (the newest covered candidate settles at the front), and the
  // promoted record itself serializes when latest_volatile() is *read* —
  // the TB copy path and recovery, not every validation. The stamps
  // record which (candidate, validation-knowledge) pair the vstore record
  // was built from, so repeated reads cost nothing.
  std::uint64_t candidate_serial_ = 0;
  std::uint64_t validated_version_ = 0;
  mutable std::uint64_t promoted_serial_ = ~std::uint64_t{0};
  mutable std::uint64_t promoted_validated_version_ = ~std::uint64_t{0};
  std::function<StableSeq()> ndc_provider_ = [] { return StableSeq{0}; };
  std::function<void()> contamination_cleared_;
};

}  // namespace synergy
