// Component topologies for the generalized protocol.
//
// The paper's §2.1 motivates MDCD as a general-purpose technique for
// applying "primary-routine / secondary-routine" fault tolerance to
// *selected* components of a distributed system; its reference [5] removes
// the three-process architectural restriction. This module describes such
// a system: N application components with per-component confidence levels
// and an arbitrary directed internal-message topology. Every
// low-confidence component gets an active/shadow pair; high-confidence
// components run as single processes.
//
// Routing is precomputed into flat index maps at construction: process ->
// component is an O(1) array lookup (not a scan over shadow slots), and
// each component's multicast fan-out is a contiguous PeerRoute array the
// engine walks without any per-peer active_of/shadow_of recomputation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace synergy {

enum class Confidence : std::uint8_t { kHigh, kLow };

struct ComponentSpec {
  std::string name;
  Confidence confidence = Confidence::kHigh;
  /// Component indices this component multicasts its internal messages to.
  std::vector<std::uint32_t> peers;
  double internal_rate = 1.0;  ///< internal sends per second
  double external_rate = 0.1;  ///< AT-relevant external sends per second
  /// Design-fault activation per send (low-confidence components only).
  double fault_activation_per_send = 0.0;
};

/// One multicast destination, fully resolved: the peer component, its
/// active process, and (when the peer is guarded) its shadow twin.
struct PeerRoute {
  std::uint32_t component = 0;
  ProcessId active;
  ProcessId shadow;  ///< valid iff has_shadow
  bool has_shadow = false;
};

class Topology {
 public:
  explicit Topology(std::vector<ComponentSpec> components);

  const std::vector<ComponentSpec>& components() const { return components_; }
  std::size_t component_count() const { return components_.size(); }

  /// Total process count: one per component plus one shadow per
  /// low-confidence component.
  std::size_t process_count() const { return component_of_.size(); }

  /// The active process id of component `c` (== c).
  ProcessId active_of(std::uint32_t c) const;

  /// The shadow process id of low-confidence component `c`.
  ProcessId shadow_of(std::uint32_t c) const;
  bool has_shadow(std::uint32_t c) const;

  /// Component owning process `p` (shadow ids map back to their
  /// component). O(1): precomputed flat map.
  std::uint32_t component_of(ProcessId p) const;

  /// Whether `p` is a shadow process.
  bool is_shadow(ProcessId p) const;

  /// Resolved multicast fan-out of component `c` (flat, construction-time).
  const std::vector<PeerRoute>& peer_routes(std::uint32_t c) const;

  std::string process_name(ProcessId p) const;

  // Convenience factories used by tests and examples.
  /// The paper's canonical system: one low (guarded) + one high component,
  /// bidirectional traffic.
  static Topology canonical();
  /// A chain: low -> high -> high -> ... -> high (length n >= 2).
  static Topology chain(std::size_t n);
  /// A star: one low hub multicasting to n high leaves that reply.
  static Topology star(std::size_t leaves);
  /// Two independent low components sharing one high peer: exercises
  /// multi-source contamination vectors.
  static Topology dual_guarded();

 private:
  std::vector<ComponentSpec> components_;
  std::vector<std::int32_t> shadow_index_;  // component -> shadow slot or -1
  std::vector<std::uint32_t> component_of_;  // process -> component
  std::vector<std::vector<PeerRoute>> peer_routes_;  // component -> fan-out
  std::size_t shadow_count_ = 0;
};

}  // namespace synergy
