#include "general/contam.hpp"

#include <sstream>

namespace synergy {

bool contam_merge(ContamVector& into, const ContamVector& other) {
  bool changed = false;
  for (const auto& [source, sn] : other) {
    const MsgSeq before = into.watermark(source);
    if (sn > before || into.find(source) == into.end()) {
      into.raise(source, sn);
      changed = true;
    }
  }
  return changed;
}

bool contam_covered(const ContamVector& contam,
                    const ContamVector& validated) {
  // Both sides are sorted by source: one forward scan of `validated`
  // serves every lookup.
  auto vit = validated.begin();
  for (const auto& [source, sn] : contam) {
    while (vit != validated.end() && vit->first < source) ++vit;
    if (vit == validated.end() || vit->first != source || vit->second < sn) {
      return false;
    }
  }
  return true;
}

void contam_serialize(const ContamVector& v, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& [source, sn] : v) {
    w.u32(source);
    w.u64(sn);
  }
}

ContamVector contam_deserialize(ByteReader& r) {
  ContamVector v;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t source = r.u32();
    v.raise(source, r.u64());
  }
  return v;
}

std::string contam_to_string(const ContamVector& v) {
  std::ostringstream out;
  bool first = true;
  for (const auto& [source, sn] : v) {
    if (!first) out << ',';
    out << source << ':' << sn;
    first = false;
  }
  return out.str();
}

}  // namespace synergy
