#include "general/contam.hpp"

#include <algorithm>
#include <sstream>

namespace synergy {

void contam_merge(ContamVector& into, const ContamVector& other) {
  for (const auto& [source, sn] : other) {
    auto [it, inserted] = into.emplace(source, sn);
    if (!inserted) it->second = std::max(it->second, sn);
  }
}

bool contam_covered(const ContamVector& contam,
                    const ContamVector& validated) {
  for (const auto& [source, sn] : contam) {
    auto it = validated.find(source);
    if (it == validated.end() || it->second < sn) return false;
  }
  return true;
}

void contam_serialize(const ContamVector& v, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& [source, sn] : v) {
    w.u32(source);
    w.u64(sn);
  }
}

ContamVector contam_deserialize(ByteReader& r) {
  ContamVector v;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t source = r.u32();
    v[source] = r.u64();
  }
  return v;
}

std::string contam_to_string(const ContamVector& v) {
  std::ostringstream out;
  bool first = true;
  for (const auto& [source, sn] : v) {
    if (!first) out << ',';
    out << source << ':' << sn;
    first = false;
  }
  return out.str();
}

}  // namespace synergy
