// FaultyNetwork — an adversarial decorator over the bounded-delay network.
//
// Sits where the NIC would: every message handed to send() first passes a
// seeded fault roll that can
//   - drop it silently (the paper's loss assumption broken persistently),
//   - duplicate it (the copy takes an independent delay draw; receivers
//     must dedup on transport_seq),
//   - reorder it (delivery scheduled outside the per-pair FIFO map, so it
//     can overtake earlier traffic),
//   - delay it beyond tmax (breaks the delivery-delay bound the blocking
//     periods are computed from; the base network reports the violation to
//     the delivery-bound observer on arrival),
//   - flip a bit in its encoded payload (the frame CRC catches the damage
//     and the frame is discarded, exercising the checked-decode path —
//     undetected corruption is outside the fault model, as in real link
//     layers).
// At most one fault is applied per message; rolls are evaluated in the
// order above. All randomness comes from the injected Rng, so a campaign
// seed reproduces the exact fault pattern.
//
// On top of the per-message rolls the decorator carries *link state* for
// the mobile/intermittent-connectivity mission family: per-process,
// per-direction disconnection epochs. A direction is either fully down
// (blackout: every message crossing it is dropped) or degraded, where a
// two-state Gilbert-Elliott chain produces *correlated* burst loss —
// several consecutive messages vanish, then a run gets through — instead
// of memoryless drops. Link checks run before the per-message fault rolls
// and draw nothing from the fault stream while no link is impaired, so
// missions without the mobile family keep bit-identical fault streams.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/network.hpp"

namespace synergy {

/// Per-message fault probabilities. Zero everywhere = transparent.
struct NetFaultParams {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double delay_probability = 0.0;
  double bitflip_probability = 0.0;
  /// Injected delays draw uniformly from (tmax, delay_factor_max * tmax].
  double delay_factor_max = 3.0;

  bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || delay_probability > 0.0 ||
           bitflip_probability > 0.0;
  }
};

class FaultyNetwork final : public Network {
 public:
  FaultyNetwork(Simulator& sim, const NetworkParams& params,
                const NetFaultParams& faults, Rng rng);

  void send(Message m) override;

  // ---- Mobile link state -------------------------------------------------
  /// Begin (or re-shape) a disconnection epoch on `p`'s link. `rx` / `tx`
  /// select the impaired directions (asymmetric quality); `full` makes the
  /// impaired directions a blackout, otherwise they degrade to correlated
  /// burst loss with stationary fraction `burst_loss`.
  void set_link_down(ProcessId p, bool rx, bool tx, bool full,
                     double burst_loss);
  /// Epoch over: restore `p`'s link in both directions.
  void set_link_up(ProcessId p);
  /// Is either direction of `p`'s link currently impaired?
  bool link_impaired(ProcessId p) const;
  /// When `p`'s link last returned to service (origin if never impaired).
  /// Lets the monitor defer bound violations for traffic that was in
  /// flight (or parked unacked) during a declared epoch.
  TimePoint link_last_restored(ProcessId p) const;

  std::uint64_t link_epochs() const { return link_epochs_; }
  /// Messages dropped by a blackout direction.
  std::uint64_t disconnect_drops() const { return disconnect_drops_; }
  /// Messages dropped by the Gilbert-Elliott burst chain.
  std::uint64_t burst_drops() const { return burst_drops_; }

  // ---- Injection statistics ---------------------------------------------
  std::uint64_t injected_drops() const { return drops_; }
  std::uint64_t injected_duplicates() const { return duplicates_; }
  std::uint64_t injected_reorders() const { return reorders_; }
  std::uint64_t injected_delays() const { return delays_; }
  std::uint64_t injected_bitflips() const { return bitflips_; }
  /// Bit-flipped frames discarded by the CRC check (always == bitflips
  /// unless a flip produced an identical CRC, which CRC-32 precludes for
  /// single-bit errors).
  std::uint64_t corrupt_frames_dropped() const { return corrupt_dropped_; }
  std::uint64_t injected_total() const {
    return drops_ + duplicates_ + reorders_ + delays_ + bitflips_;
  }

 private:
  /// One direction of one process's link during a disconnection epoch.
  struct LinkDirection {
    bool down = false;      ///< Blackout: drop everything.
    bool degraded = false;  ///< Bursty: Gilbert-Elliott loss.
    bool bursting = false;  ///< Chain state (inside a loss burst).
  };
  struct LinkState {
    LinkDirection rx;
    LinkDirection tx;
    double burst_loss = 0.0;
    TimePoint last_restored = TimePoint::origin();
    bool impaired() const {
      return rx.down || rx.degraded || tx.down || tx.degraded;
    }
  };

  /// Advance `dir`'s burst chain one message and decide its fate. Mean
  /// burst length is kMeanBurstMessages; entry probability is derived so
  /// the stationary loss fraction matches `burst_loss`.
  bool burst_chain_drops(LinkDirection& dir, double burst_loss);
  /// True iff the link states say this message must be dropped (advances
  /// burst chains as a side effect).
  bool link_drops(const Message& m);

  NetFaultParams faults_;
  Rng fault_rng_;
  std::unordered_map<ProcessId, LinkState> links_;
  std::uint64_t link_epochs_ = 0;
  std::uint64_t disconnect_drops_ = 0;
  std::uint64_t burst_drops_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t bitflips_ = 0;
  std::uint64_t corrupt_dropped_ = 0;
  /// Scratch buffers for the bitflip encode/decode round-trip, reused
  /// across flips so a corruption-heavy campaign doesn't re-allocate an
  /// encode buffer per injected flip.
  ByteWriter flip_writer_;
  Bytes flip_frame_;
};

}  // namespace synergy
