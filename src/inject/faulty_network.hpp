// FaultyNetwork — an adversarial decorator over the bounded-delay network.
//
// Sits where the NIC would: every message handed to send() first passes a
// seeded fault roll that can
//   - drop it silently (the paper's loss assumption broken persistently),
//   - duplicate it (the copy takes an independent delay draw; receivers
//     must dedup on transport_seq),
//   - reorder it (delivery scheduled outside the per-pair FIFO map, so it
//     can overtake earlier traffic),
//   - delay it beyond tmax (breaks the delivery-delay bound the blocking
//     periods are computed from; the base network reports the violation to
//     the delivery-bound observer on arrival),
//   - flip a bit in its encoded payload (the frame CRC catches the damage
//     and the frame is discarded, exercising the checked-decode path —
//     undetected corruption is outside the fault model, as in real link
//     layers).
// At most one fault is applied per message; rolls are evaluated in the
// order above. All randomness comes from the injected Rng, so a campaign
// seed reproduces the exact fault pattern.
#pragma once

#include <cstdint>

#include "net/network.hpp"

namespace synergy {

/// Per-message fault probabilities. Zero everywhere = transparent.
struct NetFaultParams {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double delay_probability = 0.0;
  double bitflip_probability = 0.0;
  /// Injected delays draw uniformly from (tmax, delay_factor_max * tmax].
  double delay_factor_max = 3.0;

  bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || delay_probability > 0.0 ||
           bitflip_probability > 0.0;
  }
};

class FaultyNetwork final : public Network {
 public:
  FaultyNetwork(Simulator& sim, const NetworkParams& params,
                const NetFaultParams& faults, Rng rng);

  void send(Message m) override;

  // ---- Injection statistics ---------------------------------------------
  std::uint64_t injected_drops() const { return drops_; }
  std::uint64_t injected_duplicates() const { return duplicates_; }
  std::uint64_t injected_reorders() const { return reorders_; }
  std::uint64_t injected_delays() const { return delays_; }
  std::uint64_t injected_bitflips() const { return bitflips_; }
  /// Bit-flipped frames discarded by the CRC check (always == bitflips
  /// unless a flip produced an identical CRC, which CRC-32 precludes for
  /// single-bit errors).
  std::uint64_t corrupt_frames_dropped() const { return corrupt_dropped_; }
  std::uint64_t injected_total() const {
    return drops_ + duplicates_ + reorders_ + delays_ + bitflips_;
  }

 private:
  NetFaultParams faults_;
  Rng fault_rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t bitflips_ = 0;
  std::uint64_t corrupt_dropped_ = 0;
};

}  // namespace synergy
