// Seeded, replayable fault schedules for chaos campaigns.
//
// Every source of injected adversity in a mission is derived
// deterministically from one 64-bit seed plus a rate table:
//   - per-message network faults (drop/duplicate/reorder/delay/bit-flip)
//     draw from a stream seeded inside FaultyNetwork;
//   - per-write storage faults draw from a stream seeded inside each
//     StableStore;
//   - the *timed* events — hardware crashes, clock-drift excursions and
//     resync blackouts — are pre-generated here as an explicit event list.
// Printing the seed + rates (to_json) is therefore a complete, replayable
// description of the adversary: re-running the same mission seed
// reproduces the failure exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "inject/faulty_network.hpp"
#include "storage/stable_store.hpp"

namespace synergy {

/// Poisson rates for the timed (scheduled) fault classes, per mission.
struct TimedFaultRates {
  /// Mean gap between hardware node crashes (0 = none).
  Duration hw_fault_mean_gap = Duration::seconds(150);
  /// Mean gap between clock-drift excursions on a random process (0 = none).
  Duration drift_excursion_mean_gap = Duration::zero();
  /// Drift magnitude during an excursion, as a multiple of rho.
  double drift_excursion_factor = 50.0;
  /// How long an excursion lasts before the oscillator settles back.
  Duration drift_excursion_duration = Duration::seconds(20);
  /// Mean gap between resync blackouts (0 = none).
  Duration resync_blackout_mean_gap = Duration::zero();
  /// How long the synchronization service stays unreachable.
  Duration resync_blackout_duration = Duration::seconds(30);
  /// Mean gap between per-lane state bit-flips (COAST register/memory
  /// model; 0 = none). Each flip picks a target process, a lane and a
  /// noise word.
  Duration lane_flip_mean_gap = Duration::zero();
  /// Mean gap between per-lane CFCSS signature corruptions (0 = none).
  Duration sig_fault_mean_gap = Duration::zero();
};

/// The mobile/intermittent-connectivity mission family: per-node link
/// epochs with *correlated* (bursty) loss, asymmetric per-direction
/// quality, and base-station handoffs that re-home a node's stable store
/// mid-mission. Disconnection epochs are long-lived link states, not
/// i.i.d. per-message drops — exactly the failure shape the Poisson
/// network model never produces.
struct MobileFaultRates {
  /// Mean gap between disconnection-epoch starts (0 = family off).
  Duration disconnect_mean_gap = Duration::zero();
  /// Mean epoch length (exponential draw per epoch).
  Duration disconnect_mean_len = Duration::seconds(15);
  /// Stationary loss fraction of a *degraded* (non-blackout) epoch; the
  /// Gilbert-Elliott burst chain in FaultyNetwork realizes it with a mean
  /// burst length of several consecutive messages.
  double disconnect_burst_loss = 0.9;
  /// P(an epoch is a full blackout) vs. a degraded bursty link.
  double disconnect_full_fraction = 0.5;
  /// Mean gap between base-station handoffs (0 = none).
  Duration handoff_mean_gap = Duration::zero();

  bool any() const {
    return disconnect_mean_gap > Duration::zero() ||
           handoff_mean_gap > Duration::zero();
  }
};

/// Everything the adversary is allowed to do in one mission.
struct InjectorRates {
  NetFaultParams net;
  StorageFaultParams storage;
  TimedFaultRates timed;
  MobileFaultRates mobile;

  /// The whole rate table scaled along the sweep's fault-rate axis:
  /// per-message/per-write probabilities multiply by `scale` (clamped to
  /// 1), timed and mobile mean gaps divide by it (more events per
  /// mission), and severities (drift factor, epoch lengths, burst loss,
  /// retry policy) stay untouched. scale 0 disables every fault class.
  InjectorRates scaled_by(double scale) const;
};

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kHwFault,          ///< Crash node `target` (a = unused).
    kDriftExcursion,   ///< Push process `target`'s drift to `drift`.
    kDriftRestore,     ///< Excursion over: restore in-spec drift.
    kBlackoutStart,    ///< Resync service unreachable from here...
    kBlackoutEnd,      ///< ...until here.
    kLaneFlip,         ///< Flip state bit `noise` of lane `lane` on `target`.
    kSigFault,         ///< Corrupt lane `lane`'s CFCSS signature on `target`.
    kLinkDown,         ///< Disconnection epoch starts on `target`'s link.
                       ///< `noise` packs direction/severity (kLinkRx etc.),
                       ///< `drift` carries the epoch's burst-loss fraction.
    kLinkUp,           ///< Epoch over: restore `target`'s link.
    kHandoff,          ///< Base-station handoff: re-home `target`'s store.
  };
  Kind kind;
  TimePoint at;
  std::uint32_t target = 0;  ///< Node/process index, when applicable.
  double drift = 0.0;        ///< Excursion drift / epoch burst loss.
  std::uint32_t lane = 0;    ///< Execution lane (lane-fault kinds).
  std::uint64_t noise = 0;   ///< Bit-position / corruption / link flags.
};

/// kLinkDown flag bits packed into FaultEvent::noise.
inline constexpr std::uint64_t kLinkRx = 1;    ///< Receive direction hit.
inline constexpr std::uint64_t kLinkTx = 2;    ///< Transmit direction hit.
inline constexpr std::uint64_t kLinkFull = 4;  ///< Blackout (else bursty).

/// All event kinds, declaration order (round-trip tests, JSON readers).
inline constexpr FaultEvent::Kind kAllFaultEventKinds[] = {
    FaultEvent::Kind::kHwFault,       FaultEvent::Kind::kDriftExcursion,
    FaultEvent::Kind::kDriftRestore,  FaultEvent::Kind::kBlackoutStart,
    FaultEvent::Kind::kBlackoutEnd,   FaultEvent::Kind::kLaneFlip,
    FaultEvent::Kind::kSigFault,      FaultEvent::Kind::kLinkDown,
    FaultEvent::Kind::kLinkUp,        FaultEvent::Kind::kHandoff,
};

const char* to_string(FaultEvent::Kind kind);
/// Parse a kind name as printed by to_string. Returns nullopt for unknown
/// names — JSON readers must reject stale spellings loudly.
std::optional<FaultEvent::Kind> fault_event_kind_from_string(
    std::string_view name);

/// The deterministic timed-event list for one mission.
class FaultSchedule {
 public:
  /// Generate the event list for `[start, start+horizon)` from `seed`.
  /// `rho` scales drift excursions; `n_targets` bounds node selection.
  static FaultSchedule generate(std::uint64_t seed, const InjectorRates& rates,
                                TimePoint start, Duration horizon, double rho,
                                std::uint32_t n_targets);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }
  const InjectorRates& rates() const { return rates_; }

  /// Complete replayable description: seed, rates, and the event list.
  std::string to_json() const;

 private:
  std::uint64_t seed_ = 0;
  InjectorRates rates_;
  std::vector<FaultEvent> events_;
};

}  // namespace synergy
