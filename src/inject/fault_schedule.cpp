#include "inject/fault_schedule.hpp"

#include <algorithm>
#include <cstdio>

namespace synergy {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kHwFault: return "hw_fault";
    case FaultEvent::Kind::kDriftExcursion: return "drift_excursion";
    case FaultEvent::Kind::kDriftRestore: return "drift_restore";
    case FaultEvent::Kind::kBlackoutStart: return "blackout_start";
    case FaultEvent::Kind::kBlackoutEnd: return "blackout_end";
    case FaultEvent::Kind::kLaneFlip: return "lane_flip";
    case FaultEvent::Kind::kSigFault: return "sig_fault";
    case FaultEvent::Kind::kLinkDown: return "link_down";
    case FaultEvent::Kind::kLinkUp: return "link_up";
    case FaultEvent::Kind::kHandoff: return "handoff";
  }
  return "?";
}

std::optional<FaultEvent::Kind> fault_event_kind_from_string(
    std::string_view name) {
  for (FaultEvent::Kind k : kAllFaultEventKinds) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

namespace {

/// Poisson arrivals of `kind` over the horizon; `margin` keeps events away
/// from the very start and end of the mission (the system needs a moment
/// to boot, and a crash in the last instants has nothing left to break).
void add_poisson(std::vector<FaultEvent>& out, Rng& rng, FaultEvent::Kind kind,
                 Duration mean_gap, TimePoint start, Duration horizon,
                 Duration margin, std::uint32_t n_targets, double drift,
                 Duration paired_duration, FaultEvent::Kind paired_kind) {
  if (mean_gap <= Duration::zero()) return;
  const TimePoint lo = start + margin;
  const TimePoint hi = start + horizon - margin;
  TimePoint t = lo + rng.exponential(mean_gap);
  while (t < hi) {
    FaultEvent ev;
    ev.kind = kind;
    ev.at = t;
    ev.target = n_targets > 0
                    ? static_cast<std::uint32_t>(rng.uniform_int(0, n_targets - 1))
                    : 0;
    ev.drift = drift;
    out.push_back(ev);
    if (paired_duration > Duration::zero()) {
      FaultEvent end;
      end.kind = paired_kind;
      end.at = t + paired_duration;
      end.target = ev.target;
      out.push_back(end);
    }
    t += rng.exponential(mean_gap);
  }
}

/// Poisson arrivals of per-lane faults: each event draws a target process,
/// an execution lane (modulo the scheme's lane count at injection time)
/// and a 64-bit noise word.
void add_lane_poisson(std::vector<FaultEvent>& out, Rng& rng,
                      FaultEvent::Kind kind, Duration mean_gap,
                      TimePoint start, Duration horizon, Duration margin,
                      std::uint32_t n_targets) {
  if (mean_gap <= Duration::zero()) return;
  const TimePoint lo = start + margin;
  const TimePoint hi = start + horizon - margin;
  TimePoint t = lo + rng.exponential(mean_gap);
  while (t < hi) {
    FaultEvent ev;
    ev.kind = kind;
    ev.at = t;
    ev.target = n_targets > 0
                    ? static_cast<std::uint32_t>(rng.uniform_int(0, n_targets - 1))
                    : 0;
    ev.lane = static_cast<std::uint32_t>(rng.uniform_int(0, 2));
    ev.noise = rng.next();
    out.push_back(ev);
    t += rng.exponential(mean_gap);
  }
}

/// Disconnection epochs: each arrival picks a node, an epoch length, a
/// direction (rx-only / tx-only / both — asymmetric link quality) and a
/// severity (full blackout vs. degraded bursty link), and emits the paired
/// kLinkDown / kLinkUp events. Epochs may overlap on one node; the link
/// state applies last-writer-wins and kLinkUp restores fully, which is the
/// chaos the family is after.
void add_disconnect_epochs(std::vector<FaultEvent>& out, Rng& rng,
                           const MobileFaultRates& mobile, TimePoint start,
                           Duration horizon, Duration margin,
                           std::uint32_t n_targets) {
  if (mobile.disconnect_mean_gap <= Duration::zero()) return;
  const TimePoint lo = start + margin;
  const TimePoint hi = start + horizon - margin;
  TimePoint t = lo + rng.exponential(mobile.disconnect_mean_gap);
  while (t < hi) {
    FaultEvent down;
    down.kind = FaultEvent::Kind::kLinkDown;
    down.at = t;
    down.target = n_targets > 0 ? static_cast<std::uint32_t>(
                                      rng.uniform_int(0, n_targets - 1))
                                : 0;
    const std::int64_t dir = rng.uniform_int(0, 2);  // 0=rx, 1=tx, 2=both
    down.noise = dir == 0 ? kLinkRx : dir == 1 ? kLinkTx : (kLinkRx | kLinkTx);
    if (rng.bernoulli(mobile.disconnect_full_fraction)) down.noise |= kLinkFull;
    down.drift = mobile.disconnect_burst_loss;
    const Duration len = rng.exponential(mobile.disconnect_mean_len);
    FaultEvent up;
    up.kind = FaultEvent::Kind::kLinkUp;
    up.at = t + len;
    up.target = down.target;
    out.push_back(down);
    out.push_back(up);
    t += rng.exponential(mobile.disconnect_mean_gap);
  }
}

}  // namespace

FaultSchedule FaultSchedule::generate(std::uint64_t seed,
                                      const InjectorRates& rates,
                                      TimePoint start, Duration horizon,
                                      double rho, std::uint32_t n_targets) {
  FaultSchedule s;
  s.seed_ = seed;
  s.rates_ = rates;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  const Duration margin =
      std::min(Duration::seconds(30), horizon / 10);

  add_poisson(s.events_, rng, FaultEvent::Kind::kHwFault,
              rates.timed.hw_fault_mean_gap, start, horizon, margin, n_targets,
              0.0, Duration::zero(), FaultEvent::Kind::kHwFault);
  add_poisson(s.events_, rng, FaultEvent::Kind::kDriftExcursion,
              rates.timed.drift_excursion_mean_gap, start, horizon, margin,
              n_targets, rho * rates.timed.drift_excursion_factor,
              rates.timed.drift_excursion_duration,
              FaultEvent::Kind::kDriftRestore);
  add_poisson(s.events_, rng, FaultEvent::Kind::kBlackoutStart,
              rates.timed.resync_blackout_mean_gap, start, horizon, margin, 0,
              0.0, rates.timed.resync_blackout_duration,
              FaultEvent::Kind::kBlackoutEnd);
  // Lane-fault classes ride *after* the original streams: with their
  // default zero rates they draw nothing, so every pre-existing schedule
  // stays bit-identical (the jobs-determinism contract).
  add_lane_poisson(s.events_, rng, FaultEvent::Kind::kLaneFlip,
                   rates.timed.lane_flip_mean_gap, start, horizon, margin,
                   n_targets);
  add_lane_poisson(s.events_, rng, FaultEvent::Kind::kSigFault,
                   rates.timed.sig_fault_mean_gap, start, horizon, margin,
                   n_targets);
  // The mobile family rides after everything above for the same reason:
  // with its default zero rates it draws nothing and pre-existing
  // schedules stay bit-identical.
  add_disconnect_epochs(s.events_, rng, rates.mobile, start, horizon, margin,
                        n_targets);
  add_poisson(s.events_, rng, FaultEvent::Kind::kHandoff,
              rates.mobile.handoff_mean_gap, start, horizon, margin, n_targets,
              0.0, Duration::zero(), FaultEvent::Kind::kHandoff);

  std::stable_sort(s.events_.begin(), s.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

std::string FaultSchedule::to_json() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof buf, "\"seed\":%llu,",
                static_cast<unsigned long long>(seed_));
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"net\":{\"drop\":%g,\"dup\":%g,\"reorder\":%g,\"delay\":%g,"
      "\"bitflip\":%g,\"delay_factor_max\":%g},",
      rates_.net.drop_probability, rates_.net.duplicate_probability,
      rates_.net.reorder_probability, rates_.net.delay_probability,
      rates_.net.bitflip_probability, rates_.net.delay_factor_max);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"storage\":{\"write_error\":%g,\"torn\":%g,\"latent\":%g,"
      "\"max_retries\":%zu},",
      rates_.storage.write_error_probability,
      rates_.storage.torn_write_probability,
      rates_.storage.latent_corruption_probability,
      rates_.storage.max_write_retries);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"timed\":{\"hw_gap_s\":%g,\"drift_gap_s\":%g,\"drift_factor\":%g,"
      "\"blackout_gap_s\":%g,\"lane_flip_gap_s\":%g,\"sig_fault_gap_s\":%g},",
      rates_.timed.hw_fault_mean_gap.to_seconds(),
      rates_.timed.drift_excursion_mean_gap.to_seconds(),
      rates_.timed.drift_excursion_factor,
      rates_.timed.resync_blackout_mean_gap.to_seconds(),
      rates_.timed.lane_flip_mean_gap.to_seconds(),
      rates_.timed.sig_fault_mean_gap.to_seconds());
  out += buf;
  // Mobile rates only when the family is armed: schedules without it keep
  // their pre-mobile JSON byte for byte.
  if (rates_.mobile.any()) {
    std::snprintf(
        buf, sizeof buf,
        "\"mobile\":{\"disconnect_gap_s\":%g,\"disconnect_len_s\":%g,"
        "\"burst_loss\":%g,\"full_fraction\":%g,\"handoff_gap_s\":%g},",
        rates_.mobile.disconnect_mean_gap.to_seconds(),
        rates_.mobile.disconnect_mean_len.to_seconds(),
        rates_.mobile.disconnect_burst_loss,
        rates_.mobile.disconnect_full_fraction,
        rates_.mobile.handoff_mean_gap.to_seconds());
    out += buf;
  }
  out += "\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& ev = events_[i];
    const bool lane_kind = ev.kind == FaultEvent::Kind::kLaneFlip ||
                           ev.kind == FaultEvent::Kind::kSigFault;
    const bool link_down = ev.kind == FaultEvent::Kind::kLinkDown;
    const bool closed = ev.kind != FaultEvent::Kind::kDriftExcursion &&
                        !lane_kind && !link_down;
    std::snprintf(buf, sizeof buf,
                  "%s{\"t\":%.6f,\"kind\":\"%s\",\"target\":%u%s",
                  i ? "," : "", ev.at.to_seconds(), to_string(ev.kind),
                  ev.target, closed ? "}" : "");
    out += buf;
    if (ev.kind == FaultEvent::Kind::kDriftExcursion) {
      std::snprintf(buf, sizeof buf, ",\"drift\":%g}", ev.drift);
      out += buf;
    } else if (lane_kind) {
      std::snprintf(buf, sizeof buf, ",\"lane\":%u,\"noise\":%llu}", ev.lane,
                    static_cast<unsigned long long>(ev.noise));
      out += buf;
    } else if (link_down) {
      std::snprintf(buf, sizeof buf, ",\"flags\":%llu,\"loss\":%g}",
                    static_cast<unsigned long long>(ev.noise), ev.drift);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

InjectorRates InjectorRates::scaled_by(double scale) const {
  InjectorRates out = *this;
  const auto prob = [scale](double p) { return std::min(1.0, p * scale); };
  const auto gap = [scale](Duration g) {
    if (g <= Duration::zero() || scale <= 0.0) return Duration::zero();
    return Duration::from_seconds(g.to_seconds() / scale);
  };
  out.net.drop_probability = prob(net.drop_probability);
  out.net.duplicate_probability = prob(net.duplicate_probability);
  out.net.reorder_probability = prob(net.reorder_probability);
  out.net.delay_probability = prob(net.delay_probability);
  out.net.bitflip_probability = prob(net.bitflip_probability);
  out.storage.write_error_probability = prob(storage.write_error_probability);
  out.storage.torn_write_probability = prob(storage.torn_write_probability);
  out.storage.latent_corruption_probability =
      prob(storage.latent_corruption_probability);
  out.timed.hw_fault_mean_gap = gap(timed.hw_fault_mean_gap);
  out.timed.drift_excursion_mean_gap = gap(timed.drift_excursion_mean_gap);
  out.timed.resync_blackout_mean_gap = gap(timed.resync_blackout_mean_gap);
  out.timed.lane_flip_mean_gap = gap(timed.lane_flip_mean_gap);
  out.timed.sig_fault_mean_gap = gap(timed.sig_fault_mean_gap);
  out.mobile.disconnect_mean_gap = gap(mobile.disconnect_mean_gap);
  out.mobile.handoff_mean_gap = gap(mobile.handoff_mean_gap);
  return out;
}

}  // namespace synergy
