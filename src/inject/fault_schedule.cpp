#include "inject/fault_schedule.hpp"

#include <algorithm>
#include <cstdio>

namespace synergy {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kHwFault: return "hw_fault";
    case FaultEvent::Kind::kDriftExcursion: return "drift_excursion";
    case FaultEvent::Kind::kDriftRestore: return "drift_restore";
    case FaultEvent::Kind::kBlackoutStart: return "blackout_start";
    case FaultEvent::Kind::kBlackoutEnd: return "blackout_end";
  }
  return "?";
}

namespace {

/// Poisson arrivals of `kind` over the horizon; `margin` keeps events away
/// from the very start and end of the mission (the system needs a moment
/// to boot, and a crash in the last instants has nothing left to break).
void add_poisson(std::vector<FaultEvent>& out, Rng& rng, FaultEvent::Kind kind,
                 Duration mean_gap, TimePoint start, Duration horizon,
                 Duration margin, std::uint32_t n_targets, double drift,
                 Duration paired_duration, FaultEvent::Kind paired_kind) {
  if (mean_gap <= Duration::zero()) return;
  const TimePoint lo = start + margin;
  const TimePoint hi = start + horizon - margin;
  TimePoint t = lo + rng.exponential(mean_gap);
  while (t < hi) {
    FaultEvent ev;
    ev.kind = kind;
    ev.at = t;
    ev.target = n_targets > 0
                    ? static_cast<std::uint32_t>(rng.uniform_int(0, n_targets - 1))
                    : 0;
    ev.drift = drift;
    out.push_back(ev);
    if (paired_duration > Duration::zero()) {
      FaultEvent end;
      end.kind = paired_kind;
      end.at = t + paired_duration;
      end.target = ev.target;
      out.push_back(end);
    }
    t += rng.exponential(mean_gap);
  }
}

}  // namespace

FaultSchedule FaultSchedule::generate(std::uint64_t seed,
                                      const InjectorRates& rates,
                                      TimePoint start, Duration horizon,
                                      double rho, std::uint32_t n_targets) {
  FaultSchedule s;
  s.seed_ = seed;
  s.rates_ = rates;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  const Duration margin =
      std::min(Duration::seconds(30), horizon / 10);

  add_poisson(s.events_, rng, FaultEvent::Kind::kHwFault,
              rates.timed.hw_fault_mean_gap, start, horizon, margin, n_targets,
              0.0, Duration::zero(), FaultEvent::Kind::kHwFault);
  add_poisson(s.events_, rng, FaultEvent::Kind::kDriftExcursion,
              rates.timed.drift_excursion_mean_gap, start, horizon, margin,
              n_targets, rho * rates.timed.drift_excursion_factor,
              rates.timed.drift_excursion_duration,
              FaultEvent::Kind::kDriftRestore);
  add_poisson(s.events_, rng, FaultEvent::Kind::kBlackoutStart,
              rates.timed.resync_blackout_mean_gap, start, horizon, margin, 0,
              0.0, rates.timed.resync_blackout_duration,
              FaultEvent::Kind::kBlackoutEnd);

  std::stable_sort(s.events_.begin(), s.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

std::string FaultSchedule::to_json() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof buf, "\"seed\":%llu,",
                static_cast<unsigned long long>(seed_));
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"net\":{\"drop\":%g,\"dup\":%g,\"reorder\":%g,\"delay\":%g,"
      "\"bitflip\":%g,\"delay_factor_max\":%g},",
      rates_.net.drop_probability, rates_.net.duplicate_probability,
      rates_.net.reorder_probability, rates_.net.delay_probability,
      rates_.net.bitflip_probability, rates_.net.delay_factor_max);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"storage\":{\"write_error\":%g,\"torn\":%g,\"latent\":%g,"
      "\"max_retries\":%zu},",
      rates_.storage.write_error_probability,
      rates_.storage.torn_write_probability,
      rates_.storage.latent_corruption_probability,
      rates_.storage.max_write_retries);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"timed\":{\"hw_gap_s\":%g,\"drift_gap_s\":%g,\"drift_factor\":%g,"
      "\"blackout_gap_s\":%g},",
      rates_.timed.hw_fault_mean_gap.to_seconds(),
      rates_.timed.drift_excursion_mean_gap.to_seconds(),
      rates_.timed.drift_excursion_factor,
      rates_.timed.resync_blackout_mean_gap.to_seconds());
  out += buf;
  out += "\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& ev = events_[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"t\":%.6f,\"kind\":\"%s\",\"target\":%u%s",
                  i ? "," : "", ev.at.to_seconds(), to_string(ev.kind),
                  ev.target, ev.kind == FaultEvent::Kind::kDriftExcursion
                                 ? "" : "}");
    out += buf;
    if (ev.kind == FaultEvent::Kind::kDriftExcursion) {
      std::snprintf(buf, sizeof buf, ",\"drift\":%g}", ev.drift);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

}  // namespace synergy
