#include "inject/faulty_network.hpp"

#include <algorithm>
#include <utility>

namespace synergy {

namespace {

/// Mean Gilbert-Elliott burst length in messages: long enough that a
/// degraded epoch loses *runs* of consecutive traffic (resend clusters,
/// whole checkpoint exchanges), not isolated messages.
constexpr double kMeanBurstMessages = 6.0;

}  // namespace

FaultyNetwork::FaultyNetwork(Simulator& sim, const NetworkParams& params,
                             const NetFaultParams& faults, Rng rng)
    : Network(sim, params, rng.split()), faults_(faults),
      fault_rng_(rng.split()) {}

void FaultyNetwork::set_link_down(ProcessId p, bool rx, bool tx, bool full,
                                  double burst_loss) {
  LinkState& link = links_[p];
  link.rx = LinkDirection{};
  link.tx = LinkDirection{};
  if (rx) (full ? link.rx.down : link.rx.degraded) = true;
  if (tx) (full ? link.tx.down : link.tx.degraded) = true;
  link.burst_loss = burst_loss;
  ++link_epochs_;
}

void FaultyNetwork::set_link_up(ProcessId p) {
  LinkState& link = links_[p];
  link.rx = LinkDirection{};
  link.tx = LinkDirection{};
  link.last_restored = sim().now();
}

bool FaultyNetwork::link_impaired(ProcessId p) const {
  const auto it = links_.find(p);
  return it != links_.end() && it->second.impaired();
}

TimePoint FaultyNetwork::link_last_restored(ProcessId p) const {
  const auto it = links_.find(p);
  return it != links_.end() ? it->second.last_restored : TimePoint::origin();
}

bool FaultyNetwork::burst_chain_drops(LinkDirection& dir, double burst_loss) {
  // Two-state Markov chain advanced per message: mean burst length L fixes
  // the exit probability; the entry probability is chosen so the
  // stationary loss fraction equals the epoch's target. Messages falling
  // while the chain is in the loss state are dropped — consecutive drops
  // in runs of mean length L, unlike any Bernoulli roll. High targets can
  // demand an entry probability above 1 (gaps shorter than one message);
  // clamping saturates the achievable loss at L/(L+1).
  const double p_exit = 1.0 / kMeanBurstMessages;
  const double p_enter =
      burst_loss >= 1.0
          ? 1.0
          : std::min(1.0, burst_loss * p_exit / (1.0 - burst_loss));
  if (dir.bursting) {
    if (fault_rng_.bernoulli(p_exit)) {
      dir.bursting = false;
      return false;  // the burst just ended: this message gets through
    }
    return true;
  }
  if (fault_rng_.bernoulli(p_enter)) {
    dir.bursting = true;
    return true;
  }
  return false;
}

bool FaultyNetwork::link_drops(const Message& m) {
  // Sender's transmit side first (the message never leaves the node), then
  // the receiver's side. The device is not a mobile node and never
  // has link state.
  if (auto it = links_.find(m.sender); it != links_.end()) {
    LinkState& link = it->second;
    if (link.tx.down) {
      ++disconnect_drops_;
      return true;
    }
    if (link.tx.degraded && burst_chain_drops(link.tx, link.burst_loss)) {
      ++burst_drops_;
      return true;
    }
  }
  if (auto it = links_.find(m.receiver); it != links_.end()) {
    LinkState& link = it->second;
    if (link.rx.down) {
      ++disconnect_drops_;
      return true;
    }
    if (link.rx.degraded && burst_chain_drops(link.rx, link.burst_loss)) {
      ++burst_drops_;
      return true;
    }
  }
  return false;
}

void FaultyNetwork::send(Message m) {
  // Link state is checked before the per-message fault rolls: a parked
  // link loses the message whatever the Bernoulli stream would have said,
  // and an empty link map draws nothing — missions without the mobile
  // family keep their fault streams bit-identical.
  if (!links_.empty() && link_drops(m)) {
    m.sent_at = sim().now();
    count_sent();
    count_dropped();
    return;
  }

  if (!faults_.any()) {
    Network::send(std::move(m));
    return;
  }

  // One roll decides the fault class (if any) for this message; the rolls
  // are sequential Bernoullis so each class keeps its configured marginal
  // probability regardless of the others.
  if (faults_.drop_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.drop_probability)) {
    ++drops_;
    m.sent_at = sim().now();
    count_sent();
    count_dropped();
    return;
  }

  if (faults_.bitflip_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.bitflip_probability)) {
    ++bitflips_;
    // Corrupt the encoded frame, then run the receiver-NIC integrity
    // check: CRC mismatch (guaranteed for a single-bit flip) or decode
    // failure discards the frame. The sender keeps the message in its
    // unacked log; recovery or retransmission restores it later.
    flip_writer_.clear();
    m.sent_at = sim().now();
    m.serialize(flip_writer_);
    const std::uint32_t sent_crc = crc32(flip_writer_.data());
    flip_frame_.assign(flip_writer_.data().begin(), flip_writer_.data().end());
    Bytes& frame = flip_frame_;
    const auto byte = static_cast<std::size_t>(fault_rng_.uniform_int(
        0, static_cast<std::int64_t>(frame.size()) - 1));
    const auto bit = static_cast<int>(fault_rng_.uniform_int(0, 7));
    frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
    ByteReader r(frame);
    auto decoded = Message::try_deserialize(r);
    count_sent();
    if (!decoded || crc32(frame) != sent_crc) {
      ++corrupt_dropped_;
      count_dropped();
      return;
    }
    // Unreachable for single-bit flips (CRC-32 Hamming distance), kept for
    // model honesty: an undetected-corrupt frame would be delivered as-is.
    Network::send(std::move(*decoded));
    return;
  }

  if (faults_.delay_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.delay_probability)) {
    ++delays_;
    m.sent_at = sim().now();
    count_sent();
    const double factor = fault_rng_.uniform(1.0, faults_.delay_factor_max);
    const auto extra = Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(params().tmax.count()) * factor));
    // Bypass FIFO: a delayed message arriving after its successors is the
    // whole point of the fault.
    inject(std::move(m), params().tmax + extra, /*respect_fifo=*/false);
    return;
  }

  if (faults_.reorder_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.reorder_probability)) {
    ++reorders_;
    m.sent_at = sim().now();
    count_sent();
    // A fresh in-bounds delay outside the FIFO map: the message may
    // overtake earlier traffic on the same channel (or be overtaken).
    inject(std::move(m), fault_rng_.uniform(params().tmin, params().tmax),
           /*respect_fifo=*/false);
    return;
  }

  if (faults_.duplicate_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.duplicate_probability)) {
    ++duplicates_;
    Message copy = m;
    Network::send(std::move(m));
    // The duplicate takes its own delay draw (and its own FIFO slot), so
    // the two copies can arrive in either order.
    Network::send(std::move(copy));
    return;
  }

  Network::send(std::move(m));
}

}  // namespace synergy
