#include "inject/faulty_network.hpp"

#include <utility>

namespace synergy {

FaultyNetwork::FaultyNetwork(Simulator& sim, const NetworkParams& params,
                             const NetFaultParams& faults, Rng rng)
    : Network(sim, params, rng.split()), faults_(faults),
      fault_rng_(rng.split()) {}

void FaultyNetwork::send(Message m) {
  if (!faults_.any()) {
    Network::send(std::move(m));
    return;
  }

  // One roll decides the fault class (if any) for this message; the rolls
  // are sequential Bernoullis so each class keeps its configured marginal
  // probability regardless of the others.
  if (faults_.drop_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.drop_probability)) {
    ++drops_;
    m.sent_at = sim().now();
    count_sent();
    count_dropped();
    return;
  }

  if (faults_.bitflip_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.bitflip_probability)) {
    ++bitflips_;
    // Corrupt the encoded frame, then run the receiver-NIC integrity
    // check: CRC mismatch (guaranteed for a single-bit flip) or decode
    // failure discards the frame. The sender keeps the message in its
    // unacked log; recovery or retransmission restores it later.
    ByteWriter w;
    m.sent_at = sim().now();
    m.serialize(w);
    const std::uint32_t sent_crc = crc32(w.data());
    Bytes frame = w.take();
    const auto byte = static_cast<std::size_t>(fault_rng_.uniform_int(
        0, static_cast<std::int64_t>(frame.size()) - 1));
    const auto bit = static_cast<int>(fault_rng_.uniform_int(0, 7));
    frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
    ByteReader r(frame);
    auto decoded = Message::try_deserialize(r);
    count_sent();
    if (!decoded || crc32(frame) != sent_crc) {
      ++corrupt_dropped_;
      count_dropped();
      return;
    }
    // Unreachable for single-bit flips (CRC-32 Hamming distance), kept for
    // model honesty: an undetected-corrupt frame would be delivered as-is.
    Network::send(std::move(*decoded));
    return;
  }

  if (faults_.delay_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.delay_probability)) {
    ++delays_;
    m.sent_at = sim().now();
    count_sent();
    const double factor = fault_rng_.uniform(1.0, faults_.delay_factor_max);
    const auto extra = Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(params().tmax.count()) * factor));
    // Bypass FIFO: a delayed message arriving after its successors is the
    // whole point of the fault.
    inject(std::move(m), params().tmax + extra, /*respect_fifo=*/false);
    return;
  }

  if (faults_.reorder_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.reorder_probability)) {
    ++reorders_;
    m.sent_at = sim().now();
    count_sent();
    // A fresh in-bounds delay outside the FIFO map: the message may
    // overtake earlier traffic on the same channel (or be overtaken).
    inject(std::move(m), fault_rng_.uniform(params().tmin, params().tmax),
           /*respect_fifo=*/false);
    return;
  }

  if (faults_.duplicate_probability > 0.0 &&
      fault_rng_.bernoulli(faults_.duplicate_probability)) {
    ++duplicates_;
    Message copy = m;
    Network::send(std::move(m));
    // The duplicate takes its own delay draw (and its own FIFO slot), so
    // the two copies can arrive in either order.
    Network::send(std::move(copy));
    return;
  }

  Network::send(std::move(m));
}

}  // namespace synergy
