// TB checkpointing engine — one per process.
//
// Implements createCKPT (paper Figure 5) in both variants. On each local
// timer expiry the engine:
//   1. increments Ndc and chooses the stable checkpoint contents
//      (original: current state; adapted: current state if the
//      contamination flag is clear, otherwise a copy of the most recent
//      volatile checkpoint);
//   2. begins the stable-storage write and starts a blocking period whose
//      length depends on the variant and the contamination flag;
//   3. (adapted) watches the contamination flag during the blocking
//      period: if it clears, the in-progress write is aborted and its
//      contents replaced with the current process state;
//   4. re-arms the timer for the next interval and requests a clock
//      resynchronization when the deviation bound has grown too large.
#pragma once

#include <cstdint>
#include <functional>

#include "clock/timer_service.hpp"
#include "mdcd/checkpointable.hpp"
#include "storage/stable_store.hpp"
#include "tb/config.hpp"
#include "trace/trace.hpp"

namespace synergy {

class TbEngine {
 public:
  /// `elapsed_since_resync` supplies eps, the time since the last clock
  /// resynchronization (from the ClockEnsemble).
  TbEngine(const TbParams& params, CheckpointableProcess& mdcd, StableStore& store,
           LocalTimerService& timers,
           std::function<Duration()> elapsed_since_resync, TraceLog* trace);
  ~TbEngine();

  TbEngine(const TbEngine&) = delete;
  TbEngine& operator=(const TbEngine&) = delete;

  /// Arm the first checkpoint timer at the next interval boundary on the
  /// local clock, and (adapted variant) hook the contamination observer.
  void start();

  /// Cancel pending timers (crash, shutdown).
  void stop();

  /// Current stable-checkpoint sequence number (paper: Ndc).
  StableSeq ndc() const { return ndc_; }

  /// Called by the system after a hardware recovery: adopt the restored
  /// Ndc and re-arm the timer one interval from the current local time.
  void reset_after_recovery(StableSeq restored_ndc);

  /// Wire the resynchronization requester (typically
  /// ClockEnsemble::resync_all, possibly via a latency model).
  void set_resync_requester(std::function<void()> fn);

  // ---- Assumption monitoring & graceful degradation --------------------
  /// Current parameters. tmax may have been widened by degradation.
  const TbParams& params() const { return params_; }

  /// Degradation hook: raise the assumed delivery-delay bound to at least
  /// `observed_tmax` (monotone — never narrows). Subsequent blocking
  /// periods use the widened tau(b), restoring the coverage guarantee
  /// after a delivery-bound violation. Returns true if the bound changed.
  bool widen_delay_bound(Duration observed_tmax);

  /// Observer fired when the true duration of a blocking period — or the
  /// true gap between consecutive checkpoint boundaries — falls outside
  /// its drift-allowance envelope (arguments: actual, allowed bound).
  /// Out-of-envelope cadence means a clock is drifting beyond rho.
  void set_overrun_observer(std::function<void(Duration, Duration)> fn);

  std::uint64_t overruns() const { return overruns_; }
  std::uint64_t tau_widenings() const { return tau_widenings_; }

  // ---- Statistics ------------------------------------------------------
  std::uint64_t checkpoints_taken() const { return ckpts_; }
  std::uint64_t copy_contents() const { return copies_; }
  std::uint64_t current_contents() const { return currents_; }
  std::uint64_t replacements() const { return replacements_; }
  std::uint64_t resync_requests() const { return resync_requests_; }
  Duration total_blocking() const { return total_blocking_; }
  Duration last_blocking() const { return last_blocking_; }
  bool blocking_active() const { return blocking_active_; }

  /// Blocking period for the given contamination flag at the current eps
  /// (exposed for Table 1 and the ablation benches).
  Duration blocking_period(bool contaminated) const;

 private:
  void create_ckpt();
  void end_blocking();
  void on_contamination_cleared();
  /// Permitted true-time deviation for a local-clock span of `span`:
  /// in-spec drift plus one resync offset jump plus timer granularity.
  Duration drift_allowance(Duration span) const;
  void report_overrun(Duration actual, Duration allowed);

  TbParams params_;
  CheckpointableProcess& mdcd_;
  StableStore& store_;
  LocalTimerService& timers_;
  std::function<Duration()> elapsed_since_resync_;
  TraceLog* trace_;
  std::function<void()> resync_requester_;
  std::function<void(Duration, Duration)> overrun_observer_;

  StableSeq ndc_ = 0;
  TimePoint next_ckpt_local_;
  LocalTimerService::TimerId ckpt_timer_ = 0;
  LocalTimerService::TimerId blocking_timer_ = 0;
  bool started_ = false;
  bool blocking_active_ = false;
  bool watching_confidence_ = false;

  TimePoint last_ckpt_true_;
  bool have_last_ckpt_true_ = false;
  TimePoint block_start_true_;
  Duration block_expected_ = Duration::zero();

  std::uint64_t ckpts_ = 0;
  std::uint64_t copies_ = 0;
  std::uint64_t currents_ = 0;
  std::uint64_t replacements_ = 0;
  std::uint64_t resync_requests_ = 0;
  std::uint64_t overruns_ = 0;
  std::uint64_t tau_widenings_ = 0;
  Duration total_blocking_ = Duration::zero();
  Duration last_blocking_ = Duration::zero();
};

}  // namespace synergy
