// Time-based checkpointing parameters (Neves & Fuchs; paper §2.2 / §4.2).
#pragma once

#include "common/time.hpp"

namespace synergy {

enum class TbVariant {
  /// Original protocol: checkpoint contents are always the current state;
  /// one blocking formula (delta + 2*rho*eps - tmin); every message —
  /// passed-AT notifications included — is blocked during blocking.
  kOriginal,
  /// Adapted protocol (paper Figure 5): contents chosen by the
  /// contamination flag (current state if clean, most recent volatile
  /// checkpoint if dirty); confidence-adaptive blocking
  /// tau(b) = delta + 2*rho*eps + Tm(b), Tm(b) = b*tmax - (1-b)*tmin;
  /// an in-progress write aborts and is replaced by the current state if
  /// the flag clears during the blocking period; passed-AT notifications
  /// are monitored during blocking (handled by the modified MDCD engine).
  kAdapted,
};

inline const char* to_string(TbVariant v) {
  return v == TbVariant::kOriginal ? "original" : "adapted";
}

/// Blocking-period ablations (Figure 2 and the blocking bench). The
/// protocol's own formulas are kProtocol; the others deliberately weaken
/// the protocol to demonstrate which guarantee each term buys.
enum class BlockingModel {
  kProtocol,           ///< tau per the (variant's) formula.
  kNone,               ///< No blocking at all: Figure 2(a) violations.
  kCleanFormulaAlways, ///< Dirty expiries also use delta+2*rho*eps - tmin:
                       ///< drops the +tmax term the adapted protocol needs
                       ///< to catch in-flight validations (paper §4.2).
};

inline const char* to_string(BlockingModel m) {
  switch (m) {
    case BlockingModel::kProtocol: return "protocol";
    case BlockingModel::kNone: return "none";
    case BlockingModel::kCleanFormulaAlways: return "clean_formula";
  }
  return "?";
}

struct TbParams {
  TbVariant variant = TbVariant::kAdapted;

  BlockingModel blocking_model = BlockingModel::kProtocol;

  /// Drop the unacked-message log from stable checkpoints (Figure 2(b)
  /// ablation: in-transit messages become unrecoverable).
  bool omit_unacked_log = false;

  /// Checkpoint interval Delta (measured on each process's local clock).
  Duration interval = Duration::seconds(60);

  /// Maximum pairwise clock deviation right after a resync (delta).
  Duration delta = Duration::millis(2);

  /// Maximum clock drift rate (rho).
  double rho = 1e-5;

  /// Network delivery-delay bounds.
  Duration tmin = Duration::millis(1);
  Duration tmax = Duration::millis(10);

  /// Request a timer resynchronization when the worst-case blocking period
  /// exceeds this fraction of the checkpoint interval. (The paper's Figure
  /// 5 resync condition compares the deviation-bound growth against the
  /// time base; we use the equivalent, explicitly-parameterized form.)
  double resync_threshold = 0.25;
};

}  // namespace synergy
