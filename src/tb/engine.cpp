#include "tb/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace synergy {

TbEngine::TbEngine(const TbParams& params, CheckpointableProcess& mdcd,
                   StableStore& store, LocalTimerService& timers,
                   std::function<Duration()> elapsed_since_resync,
                   TraceLog* trace)
    : params_(params), mdcd_(mdcd), store_(store), timers_(timers),
      elapsed_since_resync_(std::move(elapsed_since_resync)), trace_(trace) {
  SYNERGY_EXPECTS(elapsed_since_resync_ != nullptr);
  SYNERGY_EXPECTS(params_.interval > Duration::zero());
}

TbEngine::~TbEngine() { stop(); }

Duration TbEngine::blocking_period(bool contaminated) const {
  if (params_.blocking_model == BlockingModel::kNone) return Duration::zero();
  const Duration eps = elapsed_since_resync_();
  const auto drift_term = static_cast<std::int64_t>(
      std::ceil(2.0 * params_.rho * static_cast<double>(eps.count())));
  const Duration deviation = params_.delta + Duration::micros(drift_term);
  // tau(b) = delta + 2*rho*eps + Tm(b); original protocol always uses the
  // clean formula Tm(0) = -tmin, as does the clean-formula ablation.
  const bool b = params_.variant == TbVariant::kAdapted && contaminated &&
                 params_.blocking_model != BlockingModel::kCleanFormulaAlways;
  const Duration tau = b ? deviation + params_.tmax : deviation - params_.tmin;
  return std::max(tau, Duration::zero());
}

namespace {

// Checkpoint deadlines sit on the shared absolute schedule k * Delta of
// each process's local clock (dCKPT_time in the paper): processes aim for
// the same wall-clock instants, and their clock offsets — not their start
// times — determine the skew between their expirations.
TimePoint next_boundary(TimePoint local_now, Duration interval) {
  const std::int64_t k = local_now.count() / interval.count();
  return TimePoint{(k + 1) * interval.count()};
}

// The checkpoint index IS the boundary number (the paper's
// dCKPT_time = Ndc * Delta): deriving Ndc from the schedule keeps every
// process's indices aligned to the same wall-clock instants, across any
// number of recoveries that reset the timers mid-interval.
StableSeq boundary_index(TimePoint local, Duration interval) {
  return static_cast<StableSeq>(local.count() / interval.count());
}

}  // namespace

void TbEngine::start() {
  SYNERGY_EXPECTS(!started_);
  started_ = true;
  if (params_.variant == TbVariant::kAdapted) {
    mdcd_.set_contamination_cleared_observer(
        [this] { on_contamination_cleared(); });
  }
  next_ckpt_local_ = next_boundary(timers_.local_now(), params_.interval);
  ckpt_timer_ =
      timers_.schedule_at_local(next_ckpt_local_, [this] { create_ckpt(); });
}

void TbEngine::stop() {
  if (ckpt_timer_ != 0) {
    timers_.cancel(ckpt_timer_);
    ckpt_timer_ = 0;
  }
  if (blocking_timer_ != 0) {
    timers_.cancel(blocking_timer_);
    blocking_timer_ = 0;
  }
  // Blocking state in the MDCD engine is cleared by recovery/restart paths.
  blocking_active_ = false;
  watching_confidence_ = false;
  started_ = false;
  // A stop/restart (crash + recovery) makes the next boundary gap span the
  // outage; it is not evidence about the oscillator.
  have_last_ckpt_true_ = false;
}

void TbEngine::reset_after_recovery(StableSeq restored_ndc) {
  stop();
  // The schedule, not the restored record, dictates the index: queries
  // between now and the next boundary see the last completed boundary
  // (never below the restored line).
  ndc_ = std::max(restored_ndc,
                  boundary_index(timers_.local_now(), params_.interval));
  started_ = true;
  if (params_.variant == TbVariant::kAdapted) {
    mdcd_.set_contamination_cleared_observer(
        [this] { on_contamination_cleared(); });
  }
  next_ckpt_local_ = next_boundary(timers_.local_now(), params_.interval);
  ckpt_timer_ =
      timers_.schedule_at_local(next_ckpt_local_, [this] { create_ckpt(); });
}

void TbEngine::set_resync_requester(std::function<void()> fn) {
  resync_requester_ = std::move(fn);
}

void TbEngine::set_overrun_observer(std::function<void(Duration, Duration)> fn) {
  overrun_observer_ = std::move(fn);
}

bool TbEngine::widen_delay_bound(Duration observed_tmax) {
  if (observed_tmax <= params_.tmax) return false;
  params_.tmax = observed_tmax;
  ++tau_widenings_;
  if (trace_) {
    trace_->record(mdcd_.current_time(), mdcd_.self(),
                   TraceKind::kDegradation, "widen_tau",
                   static_cast<std::uint64_t>(observed_tmax.count()));
  }
  return true;
}

Duration TbEngine::drift_allowance(Duration span) const {
  const auto drift_term = static_cast<std::int64_t>(
      std::ceil(2.0 * params_.rho * static_cast<double>(span.count())));
  // A resync inside the span can jump the local clock by up to delta; the
  // +2us absorbs timer rounding to microsecond granularity.
  return Duration::micros(drift_term) + params_.delta + Duration::micros(2);
}

void TbEngine::report_overrun(Duration actual, Duration allowed) {
  ++overruns_;
  if (trace_) {
    trace_->record(mdcd_.current_time(), mdcd_.self(),
                   TraceKind::kBlockingOverrun, {},
                   static_cast<std::uint64_t>(actual.count()),
                   static_cast<std::uint64_t>(allowed.count()));
  }
  if (overrun_observer_) overrun_observer_(actual, allowed);
}

void TbEngine::create_ckpt() {
  ckpt_timer_ = 0;
  if (!mdcd_.alive()) return;  // crashed node: no checkpointing

  const bool contaminated = mdcd_.contamination_flag();
  ndc_ = boundary_index(next_ckpt_local_, params_.interval);

  // Checkpoint-cadence monitor: boundaries are one interval apart on the
  // local clock, so their true-time gap must sit inside the drift
  // allowance. A gap outside the envelope means the oscillator is running
  // beyond its rho spec (or resyncs have stopped compensating for it).
  const TimePoint now_true = mdcd_.current_time();
  if (have_last_ckpt_true_) {
    const Duration gap = now_true - last_ckpt_true_;
    const Duration allowance = drift_allowance(params_.interval);
    if (gap > params_.interval + allowance ||
        gap + allowance < params_.interval) {
      report_overrun(gap, params_.interval + allowance);
    }
  }
  last_ckpt_true_ = now_true;
  have_last_ckpt_true_ = true;

  // Choose contents (Figure 5: write_disk(current,0,null) vs
  // write_disk(rCKPT,1,current)).
  CheckpointRecord rec;
  const char* contents;
  if (params_.variant == TbVariant::kAdapted && contaminated) {
    const auto& v = mdcd_.latest_volatile();
    SYNERGY_ASSERT(v.has_value());  // dirty implies a Type-1/pseudo ckpt
    rec = *v;
    rec.kind = CkptKind::kStable;
    rec.established_at = mdcd_.current_time();
    // rec.state_time stays at the volatile checkpoint's instant: that is
    // the state a restoring process actually resumes from.
    ++copies_;
    contents = "copy_volatile";
  } else {
    rec = mdcd_.make_record(CkptKind::kStable);
    ++currents_;
    contents = "current_state";
  }
  rec.ndc = ndc_;
  if (params_.omit_unacked_log) rec.unacked.clear();  // Figure 2(b) ablation
  ++ckpts_;

  if (trace_) {
    trace_->record(mdcd_.current_time(), mdcd_.self(), TraceKind::kStableBegin,
                   contents, ndc_);
  }
  CheckpointableProcess* mdcd = &mdcd_;
  TraceLog* trace = trace_;
  store_.begin_write(std::move(rec),
                     [trace, mdcd](const CheckpointRecord& committed) {
                       if (trace) {
                         trace->record(mdcd->current_time(), mdcd->self(),
                                       TraceKind::kStableCommit, {},
                                       committed.ndc);
                       }
                     });

  // Blocking period.
  const Duration tau = blocking_period(contaminated);
  if (tau > Duration::zero()) {
    last_blocking_ = tau;
    total_blocking_ += tau;
    blocking_active_ = true;
    watching_confidence_ =
        params_.variant == TbVariant::kAdapted && contaminated;
    block_start_true_ = now_true;
    block_expected_ = tau;
    mdcd_.begin_blocking();
    blocking_timer_ =
        timers_.schedule_after_local(tau, [this] { end_blocking(); });
  }

  // Re-arm the checkpoint timer: dCKPT_time += Delta.
  next_ckpt_local_ += params_.interval;
  ckpt_timer_ =
      timers_.schedule_at_local(next_ckpt_local_, [this] { create_ckpt(); });

  // Resynchronization request when the deviation bound (and with it the
  // worst-case blocking period) has grown too large relative to Delta.
  const Duration worst = blocking_period(/*contaminated=*/true);
  const auto threshold = Duration::micros(static_cast<std::int64_t>(
      params_.resync_threshold * static_cast<double>(params_.interval.count())));
  if (worst > threshold && resync_requester_) {
    ++resync_requests_;
    if (trace_) {
      trace_->record(mdcd_.current_time(), mdcd_.self(),
                     TraceKind::kResyncRequest);
    }
    resync_requester_();
  }
}

void TbEngine::end_blocking() {
  blocking_timer_ = 0;
  blocking_active_ = false;
  watching_confidence_ = false;
  const Duration actual = mdcd_.current_time() - block_start_true_;
  const Duration allowed = block_expected_ + drift_allowance(block_expected_);
  if (actual > allowed) report_overrun(actual, allowed);
  if (mdcd_.in_blocking()) mdcd_.end_blocking();
}

void TbEngine::on_contamination_cleared() {
  if (!watching_confidence_ || !blocking_active_) return;
  watching_confidence_ = false;
  // The dirty bit cleared inside the blocking period: abort the copy and
  // replace the checkpoint contents with the current process state
  // (equivalent to the state at the moment the blocking period started —
  // application traffic is deferred while blocking).
  CheckpointRecord rec = mdcd_.make_record(CkptKind::kStable);
  rec.ndc = ndc_;
  ++replacements_;
  if (trace_) {
    trace_->record(rec.established_at, mdcd_.self(), TraceKind::kStableReplace,
                   {}, ndc_);
  }
  CheckpointableProcess* mdcd = &mdcd_;
  TraceLog* trace = trace_;
  auto on_commit = [trace, mdcd](const CheckpointRecord& committed) {
    if (trace) {
      trace->record(mdcd->current_time(), mdcd->self(),
                    TraceKind::kStableCommit, {}, committed.ndc);
    }
  };
  if (store_.write_in_progress()) {
    store_.replace_in_progress(std::move(rec));
  } else {
    // The copy already committed (fast disk): overwrite it outright.
    store_.begin_write(std::move(rec), on_commit);
  }
}

}  // namespace synergy
