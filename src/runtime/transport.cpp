// ThreadTransport is header-only; this translation unit anchors the
// library target.
#include "runtime/transport.hpp"
