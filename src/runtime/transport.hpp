// Transport implementation over the in-process bus.
//
// Thread confinement: every method is called from the owning process
// thread only (the engine and the ack routing both live in the runtime's
// mailbox loop), so no locking is needed beyond the bus's own.
#pragma once

#include "net/reliable.hpp"
#include "net/transport_core.hpp"
#include "runtime/bus.hpp"

namespace synergy {

class ThreadTransport final : public Transport {
 public:
  ThreadTransport(ThreadBus& bus, ProcessId self) : bus_(bus), core_(self) {}

  std::uint64_t send(Message m) override {
    const Message stamped = core_.prepare_send(std::move(m));
    const std::uint64_t seq = stamped.transport_seq;
    bus_.post(stamped);
    return seq;
  }

  bool already_consumed(const Message& m) const override {
    return core_.already_consumed(m);
  }
  void mark_consumed(const Message& m) override { core_.mark_consumed(m); }

  void ack(const Message& m) override {
    if (m.sender == kDeviceId) return;
    send(TransportCore::make_ack(m));
  }

  std::span<const Message> unacked() const override {
    return core_.unacked();
  }
  void restore_unacked(std::span<const Message> msgs) override {
    core_.restore_unacked(msgs);
  }
  std::size_t resend_unacked(std::uint32_t epoch) override {
    const auto msgs = core_.prepare_resend(epoch);
    for (const Message& m : msgs) bus_.post(m);
    return msgs.size();
  }
  Bytes snapshot_state() const override { return core_.snapshot_state(); }
  SharedBytes snapshot_state_shared() const override {
    return core_.snapshot_state_shared();
  }
  void restore_state(const Bytes& state) override {
    core_.restore_state(state);
  }

  /// Ack routing from the mailbox loop.
  void on_ack(const Message& m) { core_.on_ack(m.sender, m.ack_of); }

 private:
  ThreadBus& bus_;
  TransportCore core_;
};

}  // namespace synergy
