// GSU middleware — the MDCD protocol on real threads.
//
// The paper's concluding remarks describe a middleware prototype ("GSU
// Middleware") implementing the MDCD protocol; this module is our
// equivalent: the same protocol engines that run on the discrete-event
// simulator, hosted on one thread per process with an in-process message
// bus, real (steady_clock) time, and stop-the-world software error
// recovery. TB coordination — which needs the modelled clock/disk bounds —
// remains a simulator-side study; see DESIGN.md §3.
//
// Threading model: each process's engine, application state and transport
// are confined to its mailbox thread. A supervisor thread watches for
// acceptance-test failures, quiesces the process threads at a barrier,
// runs the software recovery manager, and resumes them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "app/acceptance_test.hpp"
#include "app/fault.hpp"
#include "app/state.hpp"
#include "mdcd/recovery.hpp"
#include "runtime/bus.hpp"
#include "runtime/transport.hpp"
#include "storage/volatile_store.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct MiddlewareConfig {
  MdcdConfig mdcd;  ///< variant defaults to the modified protocol
  AtParams at;
  SoftwareFaultParams sw_fault;  ///< P1act's design-fault model
  std::uint64_t seed = 1;
};

class GsuMiddleware {
 public:
  explicit GsuMiddleware(const MiddlewareConfig& config);
  ~GsuMiddleware();

  GsuMiddleware(const GsuMiddleware&) = delete;
  GsuMiddleware& operator=(const GsuMiddleware&) = delete;

  /// Launch the process threads and the supervisor.
  void start();

  /// Drain in-flight work and join all threads.
  void stop();

  // ---- Application interface (thread-safe) --------------------------------
  /// Drive one component-1 send (fans out to P1act and P1sdw).
  void component1_send(bool external, std::uint64_t input);
  /// Drive one P2 send.
  void p2_send(bool external, std::uint64_t input);
  /// Inject a design-fault manifestation into P1act.
  void inject_design_fault(std::uint64_t noise);

  // ---- Observability --------------------------------------------------------
  bool sw_recovered() const { return recovered_.load(); }
  std::optional<SwRecoveryStats> recovery_stats() const;
  std::vector<Message> device_log() const { return bus_.device_log(); }
  /// Merged trace (call after stop()).
  TraceLog merged_trace() const;
  /// Spin until the middleware has gone idle (all mailboxes drained) or
  /// the timeout elapses. Returns true when idle.
  bool wait_idle(std::chrono::milliseconds timeout);

  MdcdEngine& engine(ProcessId p);

 private:
  struct ProcessRuntime {
    ProcessId id;
    std::unique_ptr<ThreadTransport> transport;
    VolatileStore vstore;
    ApplicationState app;
    std::unique_ptr<AcceptanceTest> at;
    std::unique_ptr<SoftwareFaultModel> sw_fault;
    TraceLog trace;
    std::unique_ptr<MdcdEngine> engine;
    std::thread thread;
    std::atomic<bool> busy{false};
  };

  void run_process(ProcessRuntime& rt);
  void run_supervisor();
  TimePoint now() const;

  MiddlewareConfig config_;
  ThreadBus bus_;
  std::vector<std::unique_ptr<ProcessRuntime>> processes_;
  std::thread supervisor_;

  std::chrono::steady_clock::time_point epoch_start_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Stop-the-world recovery coordination.
  std::atomic<bool> pause_requested_{false};
  std::atomic<int> parked_{0};
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  std::condition_variable resume_cv_;

  std::atomic<bool> recovery_requested_{false};
  std::atomic<std::uint32_t> detector_{0};
  std::atomic<bool> recovered_{false};
  mutable std::mutex stats_mu_;
  std::optional<SwRecoveryStats> stats_;
  TraceLog supervisor_trace_;
  std::uint32_t epoch_counter_ = 0;
};

}  // namespace synergy
