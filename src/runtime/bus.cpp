#include "runtime/bus.hpp"

#include "common/assert.hpp"

namespace synergy {

void ThreadBus::register_process(ProcessId p) {
  std::lock_guard lock(registry_mu_);
  boxes_.emplace(p, std::make_unique<Mailbox>());
}

ThreadBus::Mailbox& ThreadBus::box(ProcessId p) {
  std::lock_guard lock(registry_mu_);
  auto it = boxes_.find(p);
  SYNERGY_EXPECTS(it != boxes_.end());
  return *it->second;
}

void ThreadBus::post(Message m) {
  if (m.receiver == kDeviceId) {
    std::lock_guard lock(device_mu_);
    device_.push_back(std::move(m));
    return;
  }
  {
    std::lock_guard lock(registry_mu_);
    auto it = boxes_.find(m.receiver);
    if (it == boxes_.end()) {
      std::lock_guard dev_lock(device_mu_);
      ++dropped_;
      return;
    }
  }
  Mailbox& mb = box(m.receiver);
  {
    std::lock_guard lock(mb.mu);
    MailboxItem item;
    item.kind = MailboxItem::Kind::kMessage;
    item.message = std::move(m);
    mb.q.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

void ThreadBus::post_command(ProcessId p, bool external,
                             std::uint64_t input) {
  Mailbox& mb = box(p);
  {
    std::lock_guard lock(mb.mu);
    MailboxItem item;
    item.kind = MailboxItem::Kind::kCommand;
    item.external = external;
    item.input = input;
    mb.q.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

void ThreadBus::post_corrupt(ProcessId p, std::uint64_t noise) {
  Mailbox& mb = box(p);
  {
    std::lock_guard lock(mb.mu);
    MailboxItem item;
    item.kind = MailboxItem::Kind::kCorrupt;
    item.input = noise;
    mb.q.push_back(std::move(item));
  }
  mb.cv.notify_one();
}

std::optional<MailboxItem> ThreadBus::poll(ProcessId p,
                                           std::chrono::milliseconds wait) {
  Mailbox& mb = box(p);
  std::unique_lock lock(mb.mu);
  if (!mb.cv.wait_for(lock, wait, [&] { return !mb.q.empty(); })) {
    return std::nullopt;
  }
  MailboxItem item = std::move(mb.q.front());
  mb.q.pop_front();
  return item;
}

std::vector<Message> ThreadBus::device_log() const {
  std::lock_guard lock(device_mu_);
  return device_;
}

std::size_t ThreadBus::dropped() const {
  std::lock_guard lock(device_mu_);
  return dropped_;
}

std::size_t ThreadBus::pending(ProcessId p) {
  Mailbox& mb = box(p);
  std::lock_guard lock(mb.mu);
  return mb.q.size();
}

}  // namespace synergy
