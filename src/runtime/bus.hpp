// In-process message bus for the threaded middleware.
//
// One mailbox per process, fed from any thread, drained by the owning
// process thread. Delivery is FIFO per mailbox (and therefore per sender
// pair). Messages to kDeviceId accumulate in the device log.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace synergy {

/// An item in a process mailbox: either a wire message or an application
/// command (the workload driver asking the engine to produce a send).
struct MailboxItem {
  enum class Kind { kMessage, kCommand, kCorrupt };
  Kind kind = Kind::kMessage;
  Message message;          // kMessage
  bool external = false;    // kCommand
  std::uint64_t input = 0;  // kCommand / kCorrupt noise
};

class ThreadBus {
 public:
  /// Register a mailbox. Must happen before any thread posts to it.
  void register_process(ProcessId p);

  /// Deliver `m` to its receiver's mailbox (or the device log).
  /// Unregistered receivers are counted as drops.
  void post(Message m);

  /// Enqueue an application command for `p`.
  void post_command(ProcessId p, bool external, std::uint64_t input);

  /// Enqueue a fault-injection corruption for `p`.
  void post_corrupt(ProcessId p, std::uint64_t noise);

  /// Blocking pop with timeout; empty optional on timeout.
  std::optional<MailboxItem> poll(ProcessId p,
                                  std::chrono::milliseconds wait);

  std::vector<Message> device_log() const;
  std::size_t dropped() const;

  /// Number of queued items in `p`'s mailbox (idle detection).
  std::size_t pending(ProcessId p);

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<MailboxItem> q;
  };

  Mailbox& box(ProcessId p);

  mutable std::mutex registry_mu_;
  std::map<ProcessId, std::unique_ptr<Mailbox>> boxes_;
  mutable std::mutex device_mu_;
  std::vector<Message> device_;
  std::size_t dropped_ = 0;
};

}  // namespace synergy
