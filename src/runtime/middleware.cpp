#include "runtime/middleware.hpp"

#include <utility>

#include "common/assert.hpp"
#include "mdcd/p1act.hpp"
#include "mdcd/p1sdw.hpp"
#include "mdcd/p2.hpp"

namespace synergy {

namespace {
constexpr auto kPollInterval = std::chrono::milliseconds(2);
}  // namespace

GsuMiddleware::GsuMiddleware(const MiddlewareConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  epoch_start_ = std::chrono::steady_clock::now();

  const std::uint64_t c1_seed = config.seed * 2654435761u + 1;
  const std::uint64_t p2_seed = config.seed * 2654435761u + 2;
  const Role roles[] = {Role::kP1Act, Role::kP1Sdw, Role::kP2};
  for (Role role : roles) {
    auto rt = std::make_unique<ProcessRuntime>();
    rt->id = role == Role::kP1Act   ? kP1Act
             : role == Role::kP1Sdw ? kP1Sdw
                                    : kP2;
    bus_.register_process(rt->id);
    rt->transport = std::make_unique<ThreadTransport>(bus_, rt->id);
    rt->app = ApplicationState(role == Role::kP2 ? p2_seed : c1_seed);
    rt->at = std::make_unique<AcceptanceTest>(config.at, rng.split());
    if (role == Role::kP1Act) {
      rt->sw_fault =
          std::make_unique<SoftwareFaultModel>(config.sw_fault, rng.split());
    }

    ProcessServices services;
    services.self = rt->id;
    services.now = [this] { return now(); };
    services.transport = rt->transport.get();
    services.vstore = &rt->vstore;
    services.app = &rt->app;
    services.at = rt->at.get();
    services.sw_fault = rt->sw_fault.get();
    services.trace = &rt->trace;
    services.request_sw_recovery = [this](ProcessId detector) {
      detector_.store(detector.value());
      recovery_requested_.store(true);
    };

    switch (role) {
      case Role::kP1Act:
        rt->engine =
            std::make_unique<P1ActEngine>(config.mdcd, std::move(services));
        break;
      case Role::kP1Sdw:
        rt->engine =
            std::make_unique<P1SdwEngine>(config.mdcd, std::move(services));
        break;
      case Role::kP2:
        rt->engine =
            std::make_unique<P2Engine>(config.mdcd, std::move(services));
        break;
    }
    processes_.push_back(std::move(rt));
  }
}

GsuMiddleware::~GsuMiddleware() { stop(); }

TimePoint GsuMiddleware::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_start_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()};
}

MdcdEngine& GsuMiddleware::engine(ProcessId p) {
  SYNERGY_EXPECTS(p.value() < processes_.size());
  return *processes_[p.value()]->engine;
}

void GsuMiddleware::start() {
  SYNERGY_EXPECTS(!running_.load());
  running_.store(true);
  stopping_.store(false);
  for (auto& rt : processes_) {
    rt->thread = std::thread([this, raw = rt.get()] { run_process(*raw); });
  }
  supervisor_ = std::thread([this] { run_supervisor(); });
}

void GsuMiddleware::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  {
    // Unblock anything parked at the recovery barrier.
    std::lock_guard lock(pause_mu_);
    resume_cv_.notify_all();
    pause_cv_.notify_all();
  }
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& rt : processes_) {
    if (rt->thread.joinable()) rt->thread.join();
  }
  running_.store(false);
}

void GsuMiddleware::component1_send(bool external, std::uint64_t input) {
  bus_.post_command(kP1Act, external, input);
  bus_.post_command(kP1Sdw, external, input);
}

void GsuMiddleware::p2_send(bool external, std::uint64_t input) {
  bus_.post_command(kP2, external, input);
}

void GsuMiddleware::inject_design_fault(std::uint64_t noise) {
  bus_.post_corrupt(kP1Act, noise);
}

std::optional<SwRecoveryStats> GsuMiddleware::recovery_stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

TraceLog GsuMiddleware::merged_trace() const {
  SYNERGY_EXPECTS(!running_.load());
  std::vector<TraceEvent> all;
  for (const auto& rt : processes_) {
    const auto& events = rt->trace.events();
    all.insert(all.end(), events.begin(), events.end());
  }
  const auto& sup = supervisor_trace_.events();
  all.insert(all.end(), sup.begin(), sup.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
  TraceLog merged;
  for (auto& e : all) merged.record(std::move(e));
  return merged;
}

bool GsuMiddleware::wait_idle(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int quiet_rounds = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    bool idle = !pause_requested_.load() &&
                (recovered_.load() || !recovery_requested_.load());
    for (const auto& rt : processes_) {
      if (bus_.pending(rt->id) > 0 || rt->busy.load()) idle = false;
    }
    quiet_rounds = idle ? quiet_rounds + 1 : 0;
    if (quiet_rounds >= 3) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

void GsuMiddleware::run_process(ProcessRuntime& rt) {
  while (!stopping_.load()) {
    if (pause_requested_.load()) {
      std::unique_lock lock(pause_mu_);
      parked_.fetch_add(1);
      pause_cv_.notify_all();
      resume_cv_.wait(lock, [this] {
        return !pause_requested_.load() || stopping_.load();
      });
      parked_.fetch_sub(1);
      continue;
    }
    auto item = bus_.poll(rt.id, kPollInterval);
    if (!item) continue;
    rt.busy.store(true);
    switch (item->kind) {
      case MailboxItem::Kind::kMessage:
        if (item->message.kind == MsgKind::kAck) {
          rt.transport->on_ack(item->message);
        } else {
          rt.engine->on_message(item->message);
        }
        break;
      case MailboxItem::Kind::kCommand:
        rt.engine->on_app_send(item->external, item->input);
        break;
      case MailboxItem::Kind::kCorrupt:
        rt.app.corrupt(item->input);
        break;
    }
    rt.busy.store(false);
  }
}

void GsuMiddleware::run_supervisor() {
  while (!stopping_.load()) {
    if (recovery_requested_.load() && !recovered_.load()) {
      // Stop the world.
      pause_requested_.store(true);
      {
        std::unique_lock lock(pause_mu_);
        pause_cv_.wait(lock, [this] {
          return parked_.load() ==
                     static_cast<int>(processes_.size()) ||
                 stopping_.load();
        });
      }
      if (stopping_.load()) return;

      // All process threads are parked: run the recovery on their engines.
      auto* p1act = static_cast<P1ActEngine*>(processes_[0]->engine.get());
      auto* p1sdw = static_cast<P1SdwEngine*>(processes_[1]->engine.get());
      auto* p2 = static_cast<P2Engine*>(processes_[2]->engine.get());
      SoftwareRecoveryManager manager(*p1act, *p1sdw, *p2,
                                      [this] { return now(); },
                                      &supervisor_trace_);
      const SwRecoveryStats result =
          manager.recover(ProcessId{detector_.load()}, ++epoch_counter_);
      {
        std::lock_guard lock(stats_mu_);
        stats_ = result;
      }
      recovered_.store(true);

      // Resume.
      {
        std::lock_guard lock(pause_mu_);
        pause_requested_.store(false);
        resume_cv_.notify_all();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace synergy
