#include "storage/stable_store.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace synergy {

Duration StableStore::write_latency_for(const CheckpointRecord& record) const {
  const auto kib =
      static_cast<std::int64_t>((record.encoded_size() + 1023) / 1024);
  return params_.write_base_latency + params_.write_per_kib * kib;
}

void StableStore::begin_write(CheckpointRecord record,
                              CommitCallback on_commit) {
  SYNERGY_EXPECTS(!in_progress_.has_value());
  const Duration latency = write_latency_for(record);
  in_progress_ = InProgress{std::move(record), std::move(on_commit), {}, 0,
                            sim_.now() + latency};
  in_progress_->handle = sim_.schedule_after(latency, [this] { commit(); });
}

void StableStore::replace_in_progress(CheckpointRecord record) {
  SYNERGY_EXPECTS(in_progress_.has_value());
  sim_.cancel(in_progress_->handle);
  ++replace_aborts_;
  const Duration latency = write_latency_for(record);
  in_progress_->record = std::move(record);
  in_progress_->attempt = 0;
  in_progress_->expected_commit = sim_.now() + latency;
  in_progress_->handle = sim_.schedule_after(latency, [this] { commit(); });
}

std::optional<TimePoint> StableStore::write_deadline() const {
  if (!in_progress_) return std::nullopt;
  return in_progress_->expected_commit;
}

void StableStore::retain(StableSeq ndc, Bytes encoded) {
  // Same-index re-commit (post-recovery line refresh) replaces in place.
  for (auto& c : history_) {
    if (c.ndc == ndc) {
      c.encoded = std::move(encoded);
      return;
    }
  }
  history_.push_back(Committed{ndc, std::move(encoded)});
  if (history_.size() > kHistoryDepth) {
    history_.erase(history_.begin());
  }
}

void StableStore::commit() {
  SYNERGY_ASSERT(in_progress_.has_value());

  // Transient write error: the device rejected the write. Retry with
  // doubling backoff (plus a full re-transfer) up to the budget, then
  // abandon the write — the record is lost exactly like a crash abort,
  // and the next checkpoint interval (or the write watchdog) makes up
  // for it.
  if (params_.faults.write_error_probability > 0.0 &&
      fault_rng_.bernoulli(params_.faults.write_error_probability)) {
    if (in_progress_->attempt < params_.faults.max_write_retries) {
      ++write_retries_;
      Duration backoff = params_.faults.retry_backoff;
      for (std::size_t i = 0; i < in_progress_->attempt; ++i) backoff = backoff * 2;
      ++in_progress_->attempt;
      const Duration latency = backoff + write_latency_for(in_progress_->record);
      in_progress_->expected_commit = sim_.now() + latency;
      in_progress_->handle = sim_.schedule_after(latency, [this] { commit(); });
      return;
    }
    ++failed_writes_;
    abandoned_ = std::move(in_progress_->record);
    in_progress_.reset();
    return;
  }

  ByteWriter w;
  in_progress_->record.serialize(w);
  bytes_written_ += w.data().size();
  const StableSeq ndc = in_progress_->record.ndc;
  Bytes encoded = w.take();

  // Torn write: only a prefix of the record reaches the platter, but the
  // writer is told the commit succeeded. The CRC inside the encoding makes
  // the damage detectable at the next read.
  if (params_.faults.torn_write_probability > 0.0 &&
      fault_rng_.bernoulli(params_.faults.torn_write_probability) &&
      encoded.size() > 1) {
    const auto keep = static_cast<std::size_t>(fault_rng_.uniform_int(
        1, static_cast<std::int64_t>(encoded.size()) - 1));
    encoded.resize(keep);
    ++torn_writes_;
  }

  retain(ndc, std::move(encoded));
  ++commits_;
  apply_post_commit_faults();
  CommitCallback cb = std::move(in_progress_->on_commit);
  CheckpointRecord rec = std::move(in_progress_->record);
  in_progress_.reset();
  if (cb) cb(rec);
}

void StableStore::apply_post_commit_faults() {
  if (params_.faults.latent_corruption_probability <= 0.0 ||
      history_.empty() ||
      !fault_rng_.bernoulli(params_.faults.latent_corruption_probability)) {
    return;
  }
  auto& victim = history_[static_cast<std::size_t>(fault_rng_.uniform_int(
      0, static_cast<std::int64_t>(history_.size()) - 1))];
  if (victim.encoded.empty()) return;
  const auto byte = static_cast<std::size_t>(fault_rng_.uniform_int(
      0, static_cast<std::int64_t>(victim.encoded.size()) - 1));
  const auto bit = static_cast<int>(fault_rng_.uniform_int(0, 7));
  victim.encoded[byte] ^= static_cast<std::uint8_t>(1u << bit);
  ++latent_corruptions_;
}

void StableStore::commit_now(CheckpointRecord record) {
  crash_abort_in_progress();
  ByteWriter w;
  record.serialize(w);
  bytes_written_ += w.data().size();
  retain(record.ndc, w.take());
  ++commits_;
}

std::optional<CheckpointRecord> StableStore::decode(
    const Bytes& encoded) const {
  ByteReader r(encoded);
  auto rec = CheckpointRecord::try_deserialize(r);
  // Record-boundary check: a stored blob is exactly one record. Trailing
  // bytes mean the blob is not what the writer produced (overlong torn
  // read, appended garbage) even when the record's own CRC happens to
  // pass — treat it as corrupt, never hand back state plus junk.
  if (rec && !r.exhausted()) rec.reset();
  if (!rec) ++corrupt_reads_;
  return rec;
}

std::optional<CheckpointRecord> StableStore::latest_committed() const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (auto rec = decode(it->encoded)) return rec;
  }
  return std::nullopt;
}

StableSeq StableStore::latest_ndc() const {
  return history_.empty() ? 0 : history_.back().ndc;
}

StableSeq StableStore::latest_valid_ndc() const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    ByteReader r(it->encoded);
    if (CheckpointRecord::try_deserialize(r) && r.exhausted()) return it->ndc;
  }
  return 0;
}

std::optional<CheckpointRecord> StableStore::committed_for(
    StableSeq ndc) const {
  for (const auto& c : history_) {
    if (c.ndc == ndc) return decode(c.encoded);
  }
  return std::nullopt;
}

std::optional<CheckpointRecord> StableStore::best_valid_at_most(
    StableSeq ndc) const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->ndc > ndc) continue;
    if (auto rec = decode(it->encoded)) return rec;
  }
  return std::nullopt;
}

bool StableStore::has_valid(StableSeq ndc) const {
  for (const auto& c : history_) {
    if (c.ndc == ndc) {
      ByteReader r(c.encoded);
      return CheckpointRecord::try_deserialize(r).has_value() && r.exhausted();
    }
  }
  return false;
}

std::vector<StableSeq> StableStore::retained_ndcs() const {
  std::vector<StableSeq> out;
  out.reserve(history_.size());
  for (const auto& c : history_) out.push_back(c.ndc);
  return out;
}

void StableStore::discard_above(StableSeq ndc) {
  std::erase_if(history_,
                [ndc](const Committed& c) { return c.ndc > ndc; });
}

StableStore::HandoffOutcome StableStore::handoff(std::size_t keep_depth,
                                                 Duration drain_window) {
  HandoffOutcome out;
  ++handoffs_;
  if (in_progress_) {
    if (in_progress_->expected_commit <= sim_.now() + drain_window) {
      // The write finishes before the old station goes out of reach:
      // leave it running (its commit lands in the migrated history, since
      // retention below only truncates what exists *now*).
      out.write_drained = true;
    } else {
      // Too slow to drain: abandon it and park the record for the write
      // watchdog, which forces the same contents through at the new home
      // — the checkpoint built at the interval boundary is preserved, not
      // re-fabricated from a later state.
      sim_.cancel(in_progress_->handle);
      ++failed_writes_;
      abandoned_ = std::move(in_progress_->record);
      in_progress_.reset();
      out.write_abandoned = true;
    }
  }
  // Migrate newest-first up to the transfer budget; older records stay at
  // the old station and are lost to this process.
  if (history_.size() > keep_depth) {
    out.dropped = history_.size() - keep_depth;
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(out.dropped));
  }
  out.migrated = history_.size();
  return out;
}

void StableStore::crash_abort_in_progress() {
  if (!in_progress_) return;
  sim_.cancel(in_progress_->handle);
  in_progress_.reset();
  ++crash_aborts_;
}

bool StableStore::corrupt_retained(StableSeq ndc) {
  for (auto& c : history_) {
    if (c.ndc == ndc && !c.encoded.empty()) {
      c.encoded[c.encoded.size() / 2] ^= 0x10;
      ++latent_corruptions_;
      return true;
    }
  }
  return false;
}

bool StableStore::pad_retained(StableSeq ndc, std::size_t extra) {
  for (auto& c : history_) {
    if (c.ndc == ndc) {
      c.encoded.insert(c.encoded.end(), extra, std::uint8_t{0xA5});
      ++latent_corruptions_;
      return true;
    }
  }
  return false;
}

bool StableStore::truncate_retained(StableSeq ndc, std::size_t keep) {
  for (auto& c : history_) {
    if (c.ndc == ndc && keep < c.encoded.size()) {
      c.encoded.resize(keep);
      ++torn_writes_;
      return true;
    }
  }
  return false;
}

}  // namespace synergy
