#include "storage/stable_store.hpp"

#include <utility>

#include "common/assert.hpp"

namespace synergy {

Duration StableStore::write_latency_for(const CheckpointRecord& record) const {
  const auto kib =
      static_cast<std::int64_t>((record.encoded_size() + 1023) / 1024);
  return params_.write_base_latency + params_.write_per_kib * kib;
}

void StableStore::begin_write(CheckpointRecord record,
                              CommitCallback on_commit) {
  SYNERGY_EXPECTS(!in_progress_.has_value());
  const Duration latency = write_latency_for(record);
  in_progress_ = InProgress{std::move(record), std::move(on_commit), {}};
  in_progress_->handle = sim_.schedule_after(latency, [this] { commit(); });
}

void StableStore::replace_in_progress(CheckpointRecord record) {
  SYNERGY_EXPECTS(in_progress_.has_value());
  sim_.cancel(in_progress_->handle);
  ++aborts_;
  const Duration latency = write_latency_for(record);
  in_progress_->record = std::move(record);
  in_progress_->handle = sim_.schedule_after(latency, [this] { commit(); });
}

void StableStore::retain(StableSeq ndc, Bytes encoded) {
  // Same-index re-commit (post-recovery line refresh) replaces in place.
  for (auto& c : history_) {
    if (c.ndc == ndc) {
      c.encoded = std::move(encoded);
      return;
    }
  }
  history_.push_back(Committed{ndc, std::move(encoded)});
  if (history_.size() > kHistoryDepth) {
    history_.erase(history_.begin());
  }
}

void StableStore::commit() {
  SYNERGY_ASSERT(in_progress_.has_value());
  ByteWriter w;
  in_progress_->record.serialize(w);
  bytes_written_ += w.data().size();
  const StableSeq ndc = in_progress_->record.ndc;
  retain(ndc, w.take());
  ++commits_;
  CommitCallback cb = std::move(in_progress_->on_commit);
  CheckpointRecord rec = std::move(in_progress_->record);
  in_progress_.reset();
  if (cb) cb(rec);
}

void StableStore::commit_now(CheckpointRecord record) {
  crash_abort_in_progress();
  ByteWriter w;
  record.serialize(w);
  bytes_written_ += w.data().size();
  retain(record.ndc, w.take());
  ++commits_;
}

std::optional<CheckpointRecord> StableStore::latest_committed() const {
  if (history_.empty()) return std::nullopt;
  ByteReader r(history_.back().encoded);
  return CheckpointRecord::deserialize(r);
}

StableSeq StableStore::latest_ndc() const {
  return history_.empty() ? 0 : history_.back().ndc;
}

std::optional<CheckpointRecord> StableStore::committed_for(
    StableSeq ndc) const {
  for (const auto& c : history_) {
    if (c.ndc == ndc) {
      ByteReader r(c.encoded);
      return CheckpointRecord::deserialize(r);
    }
  }
  return std::nullopt;
}

void StableStore::discard_above(StableSeq ndc) {
  std::erase_if(history_,
                [ndc](const Committed& c) { return c.ndc > ndc; });
}

void StableStore::crash_abort_in_progress() {
  if (!in_progress_) return;
  sim_.cancel(in_progress_->handle);
  in_progress_.reset();
  ++aborts_;
}

}  // namespace synergy
