// File-backed stable storage for the threaded runtime and the CLI.
//
// Persists committed checkpoint records as files in a directory, one file
// per retained index, written via temp-file + atomic rename (the classic
// crash-consistent commit). Shares the simulated StableStore's retention
// semantics (a short per-index history for common-index recovery lines)
// but performs real I/O — a restarted *process* (not just a simulated
// node) can recover its state from disk.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "storage/checkpoint.hpp"

namespace synergy {

class FileStableStore {
 public:
  /// Uses (and creates) `directory` for this process's checkpoints.
  FileStableStore(std::filesystem::path directory, ProcessId owner);

  /// Synchronously persist `record` (temp file + rename). Replaces any
  /// prior record with the same Ndc; prunes beyond the retention depth.
  void commit(const CheckpointRecord& record);

  /// Latest committed record on disk, if any (highest Ndc).
  std::optional<CheckpointRecord> latest_committed() const;

  StableSeq latest_ndc() const;

  /// Record with the given Ndc, if retained.
  std::optional<CheckpointRecord> committed_for(StableSeq ndc) const;

  /// Indices currently on disk, ascending.
  std::vector<StableSeq> retained() const;

  /// Remove every checkpoint file (tests / fresh deployments).
  void wipe();

  const std::filesystem::path& directory() const { return dir_; }

 private:
  static constexpr std::size_t kHistoryDepth = 8;

  std::filesystem::path path_for(StableSeq ndc) const;

  std::filesystem::path dir_;
  ProcessId owner_;
  ByteWriter scratch_;  // reused across commits; clear() keeps capacity
};

}  // namespace synergy
