// Simulated stable storage (disk) with abortable in-progress writes.
//
// The adapted TB protocol's write_disk(contents, match, alternative) needs
// a disk on which an in-progress checkpoint write can be *aborted and its
// contents replaced* while the blocking period is still running (paper
// §4.2, Figure 6(b)). We model:
//   - a write latency (base + per-byte), after which the record commits;
//   - replace_in_progress(): restarts the in-progress write with new
//     contents (the paper's abort-the-copy-and-save-current-state action);
//   - crash semantics: an uncommitted write is lost, the last committed
//     record survives.
// Committed records persist encoded (byte blobs), so restore() exercises
// real (de)serialization exactly like a disk would.
//
// The paper assumes stable storage never fails; the chaos campaigns break
// that assumption on purpose. StorageFaultParams injects three failure
// modes — transient write errors (retried with bounded backoff), torn
// writes (a truncated blob committed as if whole), and latent corruption
// of an already-committed record. Every read decodes through the record
// checksum, so a damaged record is *detected* (counted in corrupt_reads)
// and skipped in favour of the previous retained record, never returned
// as data and never allowed to crash the process.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/checkpoint.hpp"

namespace synergy {

/// Adversarial failure modes for the simulated disk. All probabilities are
/// per write attempt (write_error), per commit (torn_write, latent
/// corruption). Zero everywhere = the paper's ideal stable storage.
struct StorageFaultParams {
  /// A write attempt fails outright and is retried after a backoff.
  double write_error_probability = 0.0;
  /// A commit persists only a prefix of the record (power-cut model); the
  /// writer is *not* told — detection happens at read time via the CRC.
  double torn_write_probability = 0.0;
  /// After a commit, one random bit of one random retained record flips.
  double latent_corruption_probability = 0.0;
  /// Retry budget for failed write attempts before the write is abandoned.
  std::size_t max_write_retries = 4;
  /// Backoff before the first retry; doubles on each further retry.
  Duration retry_backoff = Duration::millis(2);

  bool any() const {
    return write_error_probability > 0.0 || torn_write_probability > 0.0 ||
           latent_corruption_probability > 0.0;
  }
};

struct StableStoreParams {
  Duration write_base_latency = Duration::millis(5);
  /// Additional latency per KiB written (models transfer time).
  Duration write_per_kib = Duration::micros(100);
  StorageFaultParams faults;
};

class StableStore {
 public:
  using CommitCallback = std::function<void(const CheckpointRecord&)>;

  StableStore(Simulator& sim, const StableStoreParams& params)
      : sim_(sim), params_(params), fault_rng_(0) {}

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  /// Seed the fault-injection stream (campaigns); without this, injected
  /// faults draw from a fixed default stream.
  void seed_faults(Rng rng) { fault_rng_ = rng; }

  /// Begin writing `record`; it commits after the modelled latency, then
  /// `on_commit` (if any) fires. Only one write may be in progress.
  void begin_write(CheckpointRecord record, CommitCallback on_commit = {});

  /// Abort the in-progress write and restart it with `record`. The write
  /// latency restarts (the new contents must be fully written). Requires a
  /// write in progress.
  void replace_in_progress(CheckpointRecord record);

  bool write_in_progress() const { return in_progress_.has_value(); }

  /// When a write is in progress: the instant it is expected to commit
  /// (includes pending retry backoffs). The stable-write watchdog compares
  /// this against now + slack.
  std::optional<TimePoint> write_deadline() const;

  /// Commit `record` immediately, aborting any in-progress write. Used at
  /// deployment time (initial checkpoint before the mission starts) and by
  /// recovery managers establishing a fresh recovery line; not part of the
  /// modelled steady-state write path. Never fault-injected (the recovery
  /// path is modelled as a verified write-through).
  void commit_now(CheckpointRecord record);

  /// The most recently committed checkpoint that decodes cleanly. A
  /// corrupted newest record is skipped (counted in corrupt_reads) and the
  /// previous retained record is returned instead. Empty if none decodes.
  std::optional<CheckpointRecord> latest_committed() const;

  /// Ndc of the most recently committed checkpoint (0 if none). Recovery
  /// uses this to find the last *common* checkpoint index across nodes.
  StableSeq latest_ndc() const;

  /// Ndc of the newest retained record that decodes cleanly (0 if none).
  /// This is what recovery-line selection must use when storage may lie.
  StableSeq latest_valid_ndc() const;

  /// The committed checkpoint with the given Ndc, if still retained and
  /// intact. The store keeps a short history (kHistoryDepth) precisely so
  /// that a recovery can roll back to the last common index when a fault
  /// lands in the timer-skew window and nodes' latest indices differ.
  /// Returns nullopt (never aborts) when the record is corrupted.
  std::optional<CheckpointRecord> committed_for(StableSeq ndc) const;

  /// Newest intact record with index <= `ndc` — the checksum-mismatch
  /// fallback path: when the record at the recovery line fails to decode,
  /// recovery proceeds from the previous retained record.
  std::optional<CheckpointRecord> best_valid_at_most(StableSeq ndc) const;

  /// True iff a retained record with this index decodes cleanly.
  bool has_valid(StableSeq ndc) const;

  /// Indices of all retained records, oldest first.
  std::vector<StableSeq> retained_ndcs() const;

  /// Drop every retained record with index > `ndc`. Recovery calls this on
  /// all survivors: records committed during the repair window belong to
  /// the undone incarnation and must not shadow the restored line.
  void discard_above(StableSeq ndc);

  /// Node crash: the in-progress write (if any) is lost; committed data
  /// survives.
  void crash_abort_in_progress();

  /// Outcome of a base-station handoff re-homing this store.
  struct HandoffOutcome {
    /// An in-progress write was close enough to completion to drain.
    bool write_drained = false;
    /// An in-progress write could not drain within the gap and was
    /// abandoned (claimable via take_abandoned(), like a retry-exhausted
    /// write — the watchdog forces it through post-handoff).
    bool write_abandoned = false;
    std::size_t migrated = 0;  ///< Checkpoint records copied to the new home.
    std::size_t dropped = 0;   ///< Old records not worth migrating.
  };

  /// Base-station handoff (mobile missions): the process re-homes its
  /// stable store to a new station mid-mission. An in-progress write is
  /// *drained* — left to finish — iff it would commit within
  /// `drain_window` (the handoff gap the old station stays reachable);
  /// otherwise it is abandoned and parked for the write watchdog, which
  /// forces the very record through at the new home. The checkpoint
  /// history migrates newest-first up to `keep_depth` records; older ones
  /// are dropped (the transfer budget), which is what can force the
  /// post-handoff recovery line to be re-derived.
  HandoffOutcome handoff(std::size_t keep_depth, Duration drain_window);

  std::uint64_t handoffs() const { return handoffs_; }

  /// The record of the most recently abandoned write (retry budget
  /// exhausted), handed over at most once. The stable-write watchdog
  /// claims it and degrades to a forced write-through commit, so the
  /// checkpoint content — built at the interval boundary — is preserved
  /// rather than re-fabricated from a later state.
  std::optional<CheckpointRecord> take_abandoned() {
    auto out = std::move(abandoned_);
    abandoned_.reset();
    return out;
  }

  // ---- Deterministic damage (tests / targeted injection) -----------------
  /// Flip one bit near the middle of the retained record with index `ndc`.
  bool corrupt_retained(StableSeq ndc);
  /// Truncate the retained record with index `ndc` to `keep` bytes.
  bool truncate_retained(StableSeq ndc, std::size_t keep);
  /// Append `extra` garbage bytes after the retained record with index
  /// `ndc` (overlong blob: record decodes, boundary check must reject).
  bool pad_retained(StableSeq ndc, std::size_t extra);

  Duration write_latency_for(const CheckpointRecord& record) const;

  // ---- Statistics --------------------------------------------------------
  std::uint64_t commits() const { return commits_; }
  /// Every way a write in progress can end without committing its
  /// contents: crash aborts + replacements + abandoned (retries exhausted).
  std::uint64_t aborts() const {
    return crash_aborts_ + replace_aborts_ + failed_writes_;
  }
  std::uint64_t crash_aborts() const { return crash_aborts_; }
  std::uint64_t replace_aborts() const { return replace_aborts_; }
  std::uint64_t failed_writes() const { return failed_writes_; }
  std::uint64_t write_retries() const { return write_retries_; }
  std::uint64_t torn_writes() const { return torn_writes_; }
  std::uint64_t latent_corruptions() const { return latent_corruptions_; }
  /// Reads that hit a record failing its checksum/decode.
  std::uint64_t corrupt_reads() const { return corrupt_reads_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr std::size_t kHistoryDepth = 8;

  void commit();
  void retain(StableSeq ndc, Bytes encoded);
  void apply_post_commit_faults();
  std::optional<CheckpointRecord> decode(const Bytes& encoded) const;

  struct InProgress {
    CheckpointRecord record;
    CommitCallback on_commit;
    EventHandle handle;
    std::size_t attempt = 0;
    TimePoint expected_commit;
  };
  struct Committed {
    StableSeq ndc;
    Bytes encoded;
  };

  Simulator& sim_;
  StableStoreParams params_;
  Rng fault_rng_;
  std::optional<InProgress> in_progress_;
  std::optional<CheckpointRecord> abandoned_;
  std::vector<Committed> history_;  // oldest first, capped at kHistoryDepth
  std::uint64_t commits_ = 0;
  std::uint64_t crash_aborts_ = 0;
  std::uint64_t replace_aborts_ = 0;
  std::uint64_t failed_writes_ = 0;
  std::uint64_t write_retries_ = 0;
  std::uint64_t torn_writes_ = 0;
  std::uint64_t latent_corruptions_ = 0;
  mutable std::uint64_t corrupt_reads_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t handoffs_ = 0;
};

}  // namespace synergy
