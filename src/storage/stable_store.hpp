// Simulated stable storage (disk) with abortable in-progress writes.
//
// The adapted TB protocol's write_disk(contents, match, alternative) needs
// a disk on which an in-progress checkpoint write can be *aborted and its
// contents replaced* while the blocking period is still running (paper
// §4.2, Figure 6(b)). We model:
//   - a write latency (base + per-byte), after which the record commits;
//   - replace_in_progress(): restarts the in-progress write with new
//     contents (the paper's abort-the-copy-and-save-current-state action);
//   - crash semantics: an uncommitted write is lost, the last committed
//     record survives.
// Committed records persist encoded (byte blobs), so restore() exercises
// real (de)serialization exactly like a disk would.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "storage/checkpoint.hpp"

namespace synergy {

struct StableStoreParams {
  Duration write_base_latency = Duration::millis(5);
  /// Additional latency per KiB written (models transfer time).
  Duration write_per_kib = Duration::micros(100);
};

class StableStore {
 public:
  using CommitCallback = std::function<void(const CheckpointRecord&)>;

  StableStore(Simulator& sim, const StableStoreParams& params)
      : sim_(sim), params_(params) {}

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  /// Begin writing `record`; it commits after the modelled latency, then
  /// `on_commit` (if any) fires. Only one write may be in progress.
  void begin_write(CheckpointRecord record, CommitCallback on_commit = {});

  /// Abort the in-progress write and restart it with `record`. The write
  /// latency restarts (the new contents must be fully written). Requires a
  /// write in progress.
  void replace_in_progress(CheckpointRecord record);

  bool write_in_progress() const { return in_progress_.has_value(); }

  /// Commit `record` immediately, aborting any in-progress write. Used at
  /// deployment time (initial checkpoint before the mission starts) and by
  /// recovery managers establishing a fresh recovery line; not part of the
  /// modelled steady-state write path.
  void commit_now(CheckpointRecord record);

  /// The most recently committed checkpoint, decoded. Empty if none.
  std::optional<CheckpointRecord> latest_committed() const;

  /// Ndc of the most recently committed checkpoint (0 if none). Recovery
  /// uses this to find the last *common* checkpoint index across nodes.
  StableSeq latest_ndc() const;

  /// The committed checkpoint with the given Ndc, if still retained. The
  /// store keeps a short history (kHistoryDepth) precisely so that a
  /// recovery can roll back to the last common index when a fault lands in
  /// the timer-skew window and nodes' latest indices differ.
  std::optional<CheckpointRecord> committed_for(StableSeq ndc) const;

  /// Drop every retained record with index > `ndc`. Recovery calls this on
  /// all survivors: records committed during the repair window belong to
  /// the undone incarnation and must not shadow the restored line.
  void discard_above(StableSeq ndc);

  /// Node crash: the in-progress write (if any) is lost; committed data
  /// survives.
  void crash_abort_in_progress();

  Duration write_latency_for(const CheckpointRecord& record) const;

  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr std::size_t kHistoryDepth = 8;

  void commit();
  void retain(StableSeq ndc, Bytes encoded);

  struct InProgress {
    CheckpointRecord record;
    CommitCallback on_commit;
    EventHandle handle;
  };
  struct Committed {
    StableSeq ndc;
    Bytes encoded;
  };

  Simulator& sim_;
  StableStoreParams params_;
  std::optional<InProgress> in_progress_;
  std::vector<Committed> history_;  // oldest first, capped at kHistoryDepth
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace synergy
