#include "storage/volatile_store.hpp"

#include <utility>

namespace synergy {

void VolatileStore::save(CheckpointRecord record) {
  latest_ = std::move(record);
  ++saves_;
}

void VolatileStore::crash_erase() { latest_.reset(); }

}  // namespace synergy
