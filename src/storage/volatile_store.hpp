// Volatile (RAM) checkpoint store.
//
// The MDCD protocol keeps exactly one checkpoint per process in volatile
// storage — "a process will not roll back any further than its most recent
// checkpoint; therefore, a process keeps only its most recent checkpoint
// in volatile storage" (paper §4.1, footnote 1). The store's contents are
// lost when the hosting node crashes.
#pragma once

#include <cstdint>
#include <optional>

#include "storage/checkpoint.hpp"

namespace synergy {

class VolatileStore {
 public:
  /// Save a checkpoint, replacing any previous one.
  void save(CheckpointRecord record);

  /// The most recent checkpoint, if one exists (and the node hasn't
  /// crashed since it was taken).
  const std::optional<CheckpointRecord>& latest() const { return latest_; }

  /// Node crash: volatile contents vanish.
  void crash_erase();

  std::uint64_t saves() const { return saves_; }

 private:
  std::optional<CheckpointRecord> latest_;
  std::uint64_t saves_ = 0;
};

}  // namespace synergy
