// Checkpoint records.
//
// The paper distinguishes checkpoints by *trigger*:
//   Type-1  — taken immediately before a process state becomes potentially
//             contaminated (volatile storage, MDCD);
//   Type-2  — taken right after a potentially contaminated state is
//             validated by an acceptance test (volatile storage, original
//             MDCD; eliminated by the modified protocol);
//   Pseudo  — P1act's checkpoint under the modified protocol, driven by
//             pseudo_dirty_bit (volatile storage);
//   Stable  — written to stable storage by a TB protocol on timer expiry
//             (or, under the write-through baseline, on passed-AT).
//
// A record carries everything needed to resume the owning process: the
// serialized application state, the serialized protocol-engine state
// (dirty bits, SN counters, message logs, VR), and — for stable
// checkpoints — the unacked-send log used for re-send on recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serialize.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace synergy {

enum class CkptKind : std::uint8_t { kType1, kType2, kPseudo, kStable };

const char* to_string(CkptKind kind);

struct CheckpointRecord {
  CkptKind kind = CkptKind::kType1;
  ProcessId owner;

  /// True time at which the record was established (bookkeeping).
  TimePoint established_at;

  /// True time at which the *contained state* was current. For a stable
  /// checkpoint that copies an older volatile checkpoint, this is the
  /// volatile checkpoint's state_time — the basis of rollback-distance
  /// measurement: distance = fault_time - restored.state_time.
  TimePoint state_time;

  /// Dirty bit captured with the state (a restored process resumes with
  /// the contamination knowledge it had at the checkpointed instant).
  bool dirty_bit = false;

  /// Stable-checkpoint sequence number (Ndc) at establishment.
  StableSeq ndc = 0;

  /// Encoded snapshots are refcounted and immutable: copying a record
  /// (volatile → stable promotion, retained-history reads) bumps reference
  /// counts instead of deep-copying blobs, and the per-source snapshot
  /// caches hand the same buffer to every record established while the
  /// source's version stamp is unchanged.
  SharedBytes app_state;
  SharedBytes protocol_state;

  /// Transport bookkeeping captured at the same instant as the state:
  /// duplicate-suppression sets and the send-sequence counter. A restored
  /// process must suppress exactly the messages its restored state already
  /// reflects, and must not reuse live sequence numbers.
  SharedBytes transport_state;

  /// Unacknowledged application-purpose messages to re-send on hardware
  /// recovery (stable checkpoints only; empty for volatile records).
  std::vector<Message> unacked;

  /// Encoding ends with a CRC-32 over the record's own bytes, so storage
  /// corruption (torn writes, latent bit rot, truncation) is detectable at
  /// decode time.
  void serialize(ByteWriter& w) const;
  /// Trusted-path decode: asserts integrity (in-memory volatile records,
  /// test fixtures). For bytes read back from storage use try_deserialize.
  static CheckpointRecord deserialize(ByteReader& r);
  /// Checked decode: nullopt on truncated input or checksum mismatch.
  /// Never aborts — a corrupted stable blob must be detected and reported
  /// so recovery can fall back to an older retained record.
  static std::optional<CheckpointRecord> try_deserialize(ByteReader& r);

  /// Encoded size in bytes (what a stable write actually persists).
  /// Computed arithmetically — no serialization happens — so the stable
  /// store's latency model and exact-size buffer reservations are free.
  std::size_t encoded_size() const;
};

}  // namespace synergy
