#include "storage/checkpoint.hpp"

namespace synergy {

const char* to_string(CkptKind kind) {
  switch (kind) {
    case CkptKind::kType1: return "type1";
    case CkptKind::kType2: return "type2";
    case CkptKind::kPseudo: return "pseudo";
    case CkptKind::kStable: return "stable";
  }
  return "?";
}

void CheckpointRecord::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(owner.value());
  w.i64(established_at.count());
  w.i64(state_time.count());
  w.u8(dirty_bit ? 1 : 0);
  w.u64(ndc);
  w.bytes(app_state);
  w.bytes(protocol_state);
  w.bytes(transport_state);
  w.u32(static_cast<std::uint32_t>(unacked.size()));
  for (const auto& m : unacked) m.serialize(w);
}

CheckpointRecord CheckpointRecord::deserialize(ByteReader& r) {
  CheckpointRecord c;
  c.kind = static_cast<CkptKind>(r.u8());
  c.owner = ProcessId{r.u32()};
  c.established_at = TimePoint{r.i64()};
  c.state_time = TimePoint{r.i64()};
  c.dirty_bit = r.u8() != 0;
  c.ndc = r.u64();
  c.app_state = r.bytes();
  c.protocol_state = r.bytes();
  c.transport_state = r.bytes();
  const std::uint32_t n = r.u32();
  c.unacked.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    c.unacked.push_back(Message::deserialize(r));
  }
  return c;
}

std::size_t CheckpointRecord::encoded_size() const {
  ByteWriter w;
  serialize(w);
  return w.data().size();
}

}  // namespace synergy
