#include "storage/checkpoint.hpp"

#include "common/assert.hpp"

namespace synergy {

const char* to_string(CkptKind kind) {
  switch (kind) {
    case CkptKind::kType1: return "type1";
    case CkptKind::kType2: return "type2";
    case CkptKind::kPseudo: return "pseudo";
    case CkptKind::kStable: return "stable";
  }
  return "?";
}

void CheckpointRecord::serialize(ByteWriter& w) const {
  const std::size_t start = w.data().size();
  w.reserve(start + encoded_size());  // one exact-size allocation
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(owner.value());
  w.i64(established_at.count());
  w.i64(state_time.count());
  w.u8(dirty_bit ? 1 : 0);
  w.u64(ndc);
  w.bytes(app_state);
  w.bytes(protocol_state);
  w.bytes(transport_state);
  w.u32(static_cast<std::uint32_t>(unacked.size()));
  for (const auto& m : unacked) m.serialize(w);
  // Trailing checksum over this record's own bytes: the decode side
  // recomputes it to detect torn writes and latent corruption.
  w.u32(crc32(w.data().data() + start, w.data().size() - start));
}

CheckpointRecord CheckpointRecord::deserialize(ByteReader& r) {
  auto c = try_deserialize(r);
  SYNERGY_ASSERT(c.has_value());  // trusted path: bytes we produced ourselves
  return *c;
}

std::optional<CheckpointRecord> CheckpointRecord::try_deserialize(
    ByteReader& r) {
  const std::size_t start = r.position();
  CheckpointRecord c;
  const std::uint8_t kind = r.u8();
  c.kind = static_cast<CkptKind>(kind);
  c.owner = ProcessId{r.u32()};
  c.established_at = TimePoint{r.i64()};
  c.state_time = TimePoint{r.i64()};
  c.dirty_bit = r.u8() != 0;
  c.ndc = r.u64();
  c.app_state = r.bytes();
  c.protocol_state = r.bytes();
  c.transport_state = r.bytes();
  const std::uint32_t n = r.u32();
  // A corrupted count would otherwise drive a near-infinite decode loop;
  // every logged message occupies >= 1 byte, so cap by the input size.
  if (n > r.underlying().size()) {
    r.fail();
    return std::nullopt;
  }
  c.unacked.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto m = Message::try_deserialize(r);
    if (!m) return std::nullopt;
    c.unacked.push_back(std::move(*m));
  }
  const std::size_t body_end = r.position();
  const std::uint32_t stored_crc = r.u32();
  if (!r.ok() || kind > static_cast<std::uint8_t>(CkptKind::kStable)) {
    return std::nullopt;
  }
  const std::uint32_t computed =
      crc32(r.underlying().data() + start, body_end - start);
  if (computed != stored_crc) {
    r.fail();
    return std::nullopt;
  }
  return c;
}

std::size_t CheckpointRecord::encoded_size() const {
  // Mirrors serialize() field for field; the round-trip test in
  // storage_test asserts the two never drift apart.
  std::size_t n = 1 + 4 + 8 + 8 + 1 + 8;                    // header fields
  n += 4 + app_state.size();                                // length-prefixed
  n += 4 + protocol_state.size();
  n += 4 + transport_state.size();
  n += 4;                                                   // unacked count
  for (const auto& m : unacked) n += m.encoded_size();
  n += 4;                                                   // trailing CRC
  return n;
}

}  // namespace synergy
