#include "storage/file_store.hpp"

#include <algorithm>
#include <fstream>

#include "common/assert.hpp"

namespace synergy {

namespace fs = std::filesystem;

FileStableStore::FileStableStore(fs::path directory, ProcessId owner)
    : dir_(std::move(directory)), owner_(owner) {
  fs::create_directories(dir_);
}

fs::path FileStableStore::path_for(StableSeq ndc) const {
  return dir_ / ("ckpt-" + std::to_string(owner_.value()) + "-" +
                 std::to_string(ndc) + ".bin");
}

void FileStableStore::commit(const CheckpointRecord& record) {
  // The encoded bytes only feed the stream write, so the scratch writer's
  // capacity is reusable across commits (clear() keeps it).
  scratch_.clear();
  record.serialize(scratch_);
  const ByteWriter& w = scratch_;
  const fs::path target = path_for(record.ndc);
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SYNERGY_ASSERT(out.good());
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.data().size()));
    out.flush();
    SYNERGY_ASSERT(out.good());
  }
  fs::rename(tmp, target);  // atomic commit

  // Prune beyond the retention depth.
  auto indices = retained();
  while (indices.size() > kHistoryDepth) {
    fs::remove(path_for(indices.front()));
    indices.erase(indices.begin());
  }
}

std::vector<StableSeq> FileStableStore::retained() const {
  std::vector<StableSeq> out;
  const std::string prefix = "ckpt-" + std::to_string(owner_.value()) + "-";
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || entry.path().extension() != ".bin") {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 4);
    out.push_back(static_cast<StableSeq>(std::stoull(digits)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<CheckpointRecord> FileStableStore::committed_for(
    StableSeq ndc) const {
  const fs::path p = path_for(ndc);
  std::ifstream in(p, std::ios::binary);
  if (!in.good()) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  ByteReader r(data);
  // Checked decode: a truncated or bit-rotted checkpoint file is reported
  // as absent (caller falls back to an older retained file), never fatal.
  // The file must hold exactly one record — trailing garbage after a
  // CRC-clean record is still a damaged file.
  auto rec = CheckpointRecord::try_deserialize(r);
  if (rec && !r.exhausted()) rec.reset();
  return rec;
}

StableSeq FileStableStore::latest_ndc() const {
  const auto indices = retained();
  return indices.empty() ? 0 : indices.back();
}

std::optional<CheckpointRecord> FileStableStore::latest_committed() const {
  // Newest intact checkpoint wins; a corrupted newest file falls back to
  // the previous retained one.
  const auto indices = retained();
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    if (auto rec = committed_for(*it)) return rec;
  }
  return std::nullopt;
}

void FileStableStore::wipe() {
  for (StableSeq ndc : retained()) fs::remove(path_for(ndc));
}

}  // namespace synergy
