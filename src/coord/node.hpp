// ProcessNode — one computing node hosting one protocol participant.
//
// Bundles everything that lives and dies with the node: the application
// state, volatile and stable stores, the reliable transport endpoint, the
// MDCD engine for the node's role, and (scheme-dependent) the TB engine.
// Provides the crash / restore lifecycle the hardware-fault machinery
// drives.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "app/acceptance_test.hpp"
#include "app/fault.hpp"
#include "app/state.hpp"
#include "clock/ensemble.hpp"
#include "coord/scheme.hpp"
#include "mdcd/p1act.hpp"
#include "mdcd/p1sdw.hpp"
#include "mdcd/p2.hpp"
#include "net/reliable.hpp"
#include "redundant/lanes.hpp"
#include "sim/simulator.hpp"
#include "storage/stable_store.hpp"
#include "storage/volatile_store.hpp"
#include "tb/config.hpp"
#include "tb/engine.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct NodeConfig {
  MdcdConfig mdcd;
  AtParams at;
  /// Application-state variant. In ABFT mode the AT verdict is computed
  /// from the node's checksum-encoded block instead of drawn from `at`.
  WorkloadKind workload = WorkloadKind::kRegisters;
  /// Design-fault model; only applied when the node hosts P1act.
  SoftwareFaultParams sw_fault;
  StableStoreParams sstore;
  TbParams tb;
  Scheme scheme = Scheme::kCoordinated;
};

class ProcessNode {
 public:
  /// Builds the node for `role` under `config.scheme`. `ensemble` supplies
  /// the node's local clock/timers; `request_sw_recovery` is the system
  /// hook invoked on AT failure.
  /// `request_lane_rollback` is invoked when the redundant-lane voter
  /// detects an unmaskable divergence (lane schemes only; may be empty).
  ProcessNode(Role role, Simulator& sim, Network& net, ClockEnsemble& ensemble,
              const NodeConfig& config, std::uint64_t app_seed, Rng rng,
              TraceLog* trace,
              std::function<void(ProcessId)> request_sw_recovery,
              std::function<void(ProcessId)> request_lane_rollback = {});

  ProcessNode(const ProcessNode&) = delete;
  ProcessNode& operator=(const ProcessNode&) = delete;

  Role role() const { return role_; }
  ProcessId id() const { return id_; }
  NodeId node_id() const { return NodeId{id_.value()}; }

  MdcdEngine& engine() { return *engine_; }
  const MdcdEngine& engine() const { return *engine_; }
  P1ActEngine* p1act() { return p1act_; }
  P1SdwEngine* p1sdw() { return p1sdw_; }
  P2Engine* p2() { return p2_; }

  ApplicationState& app() { return app_; }
  /// Redundant-execution lanes (null for single-lane schemes).
  LaneSet* lanes() { return lanes_.get(); }
  VolatileStore& vstore() { return vstore_; }
  StableStore& sstore() { return *sstore_; }
  bool has_stable_storage() const { return sstore_ != nullptr; }
  ReliableEndpoint& endpoint() { return *endpoint_; }
  TbEngine* tb() { return tb_.get(); }
  /// Design-fault model (non-null only on P1act's node).
  SoftwareFaultModel* sw_fault() { return sw_fault_.get(); }
  AcceptanceTest& at() { return *at_; }

  /// Start protocol operation (arms the TB timer where the scheme has one).
  void start();

  /// Retired: the process left service permanently (P1act after takeover).
  /// A retired node ignores crashes and is skipped by recovery.
  void retire();
  bool retired() const { return retired_; }

  /// Node crash: volatile contents lost, in-progress stable write lost,
  /// process terminated, in-transit messages to it dropped.
  void crash();
  bool crashed() const { return crashed_; }

  /// Restart from a committed stable checkpoint with the given recovery
  /// epoch: the record with index `line_ndc` when given (the recovery
  /// line's common index), else the latest. Aborts any in-progress stable
  /// write (its content predates the rollback), re-seeds the volatile
  /// store with the restored state, fences stale messages and re-arms the
  /// TB timer. Returns the restored record.
  CheckpointRecord restore_from_stable(std::uint32_t new_epoch,
                                       std::optional<StableSeq> line_ndc =
                                           std::nullopt);

  /// Re-send the restored unacked log (call after *all* nodes restored).
  std::size_t resend_unacked();

 private:
  Role role_;
  ProcessId id_;
  Simulator& sim_;
  Network& net_;
  TraceLog* trace_;

  ApplicationState app_;
  std::unique_ptr<LaneSet> lanes_;
  VolatileStore vstore_;
  std::unique_ptr<StableStore> sstore_;
  std::unique_ptr<AcceptanceTest> at_;
  std::unique_ptr<SoftwareFaultModel> sw_fault_;
  std::unique_ptr<ReliableEndpoint> endpoint_;
  std::unique_ptr<MdcdEngine> engine_;
  P1ActEngine* p1act_ = nullptr;
  P1SdwEngine* p1sdw_ = nullptr;
  P2Engine* p2_ = nullptr;
  std::unique_ptr<TbEngine> tb_;

  bool retired_ = false;
  bool crashed_ = false;
  /// Pristine copy of the deployment-time boot checkpoint — conceptually
  /// the ROM/firmware image, beyond the reach of the storage injectors.
  /// Last-resort restore source when every retained stable record is
  /// damaged (reachable only under extreme injected corruption rates):
  /// maximal rollback instead of an unrecoverable node.
  CheckpointRecord boot_image_;
};

}  // namespace synergy
