#include "coord/write_through.hpp"

#include "common/assert.hpp"

namespace synergy {

WriteThroughCoordinator::WriteThroughCoordinator(
    std::vector<ProcessNode*> nodes, TraceLog* trace)
    : nodes_(std::move(nodes)), trace_(trace) {}

void WriteThroughCoordinator::install() {
  for (ProcessNode* node : nodes_) {
    SYNERGY_EXPECTS(node->has_stable_storage());
    node->engine().set_validation_observer(
        [this, node] { on_validation(*node); });
  }
}

void WriteThroughCoordinator::on_validation(ProcessNode& node) {
  // The validated state is clean by construction (the validation event just
  // cleared the dirty bit); write it through as the process's recovery
  // point. A still-running earlier write is superseded.
  CheckpointRecord rec = node.engine().make_record(CkptKind::kStable);
  ++writes_;
  if (trace_) {
    trace_->record(node.engine().current_time(), node.id(),
                   TraceKind::kStableBegin, "write_through");
  }
  if (node.sstore().write_in_progress()) {
    node.sstore().replace_in_progress(std::move(rec));
  } else {
    node.sstore().begin_write(std::move(rec));
  }
}

}  // namespace synergy
