#include "coord/write_through.hpp"

#include "common/assert.hpp"

namespace synergy {

WriteThroughCoordinator::WriteThroughCoordinator(
    std::vector<ProcessNode*> nodes, TraceLog* trace)
    : nodes_(std::move(nodes)), trace_(trace) {}

void WriteThroughCoordinator::install() {
  for (ProcessNode* node : nodes_) {
    SYNERGY_EXPECTS(node->has_stable_storage());
    node->engine().set_validation_observer(
        [this, node] { on_validation(*node); });
  }
}

void WriteThroughCoordinator::on_validation(ProcessNode& node) {
  // An unmaskable lane divergence means the primary state is suspect and
  // cannot be repaired from a majority: committing it would make the
  // corruption the recovery point the voter's own rollback then restores.
  // Skip the write; the next send boundary votes again and rolls back to
  // the previous (intact) record.
  if (LaneSet* lanes = node.lanes()) {
    const VoteOutcome v = lanes->vote();
    if (v == VoteOutcome::kDiverged || v == VoteOutcome::kSplit) return;
  }
  // The validated state is clean by construction (the validation event just
  // cleared the dirty bit); write it through as the process's recovery
  // point. A still-running earlier write is superseded.
  CheckpointRecord rec = node.engine().make_record(CkptKind::kStable);
  // Write-through has no TB index space, so the engine stamps every record
  // ndc=0 — which would make each commit replace the previous one in the
  // store's single slot, and one torn write could then leave the node with
  // no decodable record at all (recovery asserts). Advance the index per
  // commit instead: recovery reads latest_committed(), which walks the
  // retained history newest-first and falls back past damaged records.
  rec.ndc = node.sstore().latest_ndc() + 1;
  ++writes_;
  if (trace_) {
    trace_->record(node.engine().current_time(), node.id(),
                   TraceKind::kStableBegin, "write_through");
  }
  if (node.sstore().write_in_progress()) {
    node.sstore().replace_in_progress(std::move(rec));
  } else {
    node.sstore().begin_write(std::move(rec));
  }
}

}  // namespace synergy
