#include "coord/node.hpp"

#include <utility>

#include "common/assert.hpp"

namespace synergy {
namespace {

ProcessId id_for(Role role) {
  switch (role) {
    case Role::kP1Act: return kP1Act;
    case Role::kP1Sdw: return kP1Sdw;
    case Role::kP2: return kP2;
  }
  SYNERGY_UNREACHABLE("bad role");
}

MdcdConfig mdcd_config_for(const NodeConfig& config) {
  MdcdConfig c = config.mdcd;
  // The scheme decides the MDCD variant: only the TB-coordinated schemes
  // run the modified algorithms.
  c.variant = scheme_uses_modified_mdcd(config.scheme)
                  ? MdcdVariant::kModified
                  : MdcdVariant::kOriginal;
  return c;
}

TbParams tb_params_for(const NodeConfig& config) {
  TbParams p = config.tb;
  p.variant = scheme_uses_modified_mdcd(config.scheme) ? TbVariant::kAdapted
                                                       : TbVariant::kOriginal;
  return p;
}

}  // namespace

ProcessNode::ProcessNode(Role role, Simulator& sim, Network& net,
                         ClockEnsemble& ensemble, const NodeConfig& config,
                         std::uint64_t app_seed, Rng rng, TraceLog* trace,
                         std::function<void(ProcessId)> request_sw_recovery,
                         std::function<void(ProcessId)> request_lane_rollback)
    : role_(role), id_(id_for(role)), sim_(sim), net_(net), trace_(trace),
      app_(app_seed, config.workload) {
  if (config.scheme != Scheme::kMdcdOnly) {
    sstore_ = std::make_unique<StableStore>(sim, config.sstore);
  }
  if (const std::size_t n_lanes = scheme_lane_count(config.scheme);
      n_lanes > 1) {
    lanes_ = std::make_unique<LaneSet>(
        app_, n_lanes, trace, id_, [&sim] { return sim.now(); });
  }
  at_ = std::make_unique<AcceptanceTest>(config.at, rng.split());
  if (config.workload == WorkloadKind::kAbft) {
    // ABFT: the AT verdict is computed from the encoded block state, not
    // drawn from assumed coverage. The rng split above still happens, so
    // sibling streams (sw_fault, storage) keep their draws either way.
    at_->set_checker([this] { return app_.abft_check_ok(); });
  }
  if (role == Role::kP1Act) {
    sw_fault_ = std::make_unique<SoftwareFaultModel>(config.sw_fault,
                                                     rng.split());
  }

  // The endpoint forwards every non-ack delivery into the MDCD engine.
  endpoint_ = std::make_unique<ReliableEndpoint>(
      net, id_, [this](const Message& m) { engine_->on_message(m); });

  ProcessServices services;
  services.self = id_;
  services.now = [&sim] { return sim.now(); };
  services.transport = endpoint_.get();
  services.vstore = &vstore_;
  services.app = &app_;
  services.at = at_.get();
  services.sw_fault = sw_fault_.get();
  services.trace = trace;
  services.request_sw_recovery = std::move(request_sw_recovery);
  services.lanes = lanes_.get();
  services.request_lane_rollback = request_lane_rollback;

  const MdcdConfig mdcd = mdcd_config_for(config);
  switch (role) {
    case Role::kP1Act: {
      auto e = std::make_unique<P1ActEngine>(mdcd, std::move(services));
      p1act_ = e.get();
      engine_ = std::move(e);
      break;
    }
    case Role::kP1Sdw: {
      auto e = std::make_unique<P1SdwEngine>(mdcd, std::move(services));
      p1sdw_ = e.get();
      engine_ = std::move(e);
      break;
    }
    case Role::kP2: {
      auto e = std::make_unique<P2Engine>(mdcd, std::move(services));
      p2_ = e.get();
      engine_ = std::move(e);
      break;
    }
  }

  if (lanes_) {
    // Voter/CFCSS events feed the coordination layer: signature mismatches
    // become MDCD confidence-loss events; unmaskable divergences roll back
    // to the recovery line.
    lanes_->set_confidence_loss_handler(
        [this] { engine_->on_confidence_loss(); });
    if (request_lane_rollback) {
      lanes_->set_rollback_handler(
          [this, cb = std::move(request_lane_rollback)] { cb(id_); });
    }
  }

  if (scheme_has_tb(config.scheme)) {
    tb_ = std::make_unique<TbEngine>(
        tb_params_for(config), *engine_, *sstore_, ensemble.timers(id_),
        [&ensemble] { return ensemble.elapsed_since_resync(); }, trace);
    engine_->set_ndc_provider([this] { return tb_->ndc(); });
  }

  // Seeded last so the storage-fault stream rides after the splits above:
  // enabling injection never perturbs the AT / software-fault streams.
  if (sstore_) sstore_->seed_faults(rng.split());
}

void ProcessNode::start() {
  if (sstore_) {
    // Deployment-time initial checkpoint: every recoverable system boots
    // with a committed stable state. Keep a pristine in-memory copy (the
    // ROM image) as the restore source of last resort.
    boot_image_ = engine_->make_record(CkptKind::kStable);
    sstore_->commit_now(boot_image_);
  }
  if (tb_) tb_->start();
}

void ProcessNode::retire() {
  retired_ = true;
  engine_->kill();
  if (tb_) tb_->stop();
  endpoint_->detach_network();
}

void ProcessNode::crash() {
  SYNERGY_EXPECTS(!retired_);
  crashed_ = true;
  engine_->kill();
  if (tb_) tb_->stop();
  endpoint_->detach_network();
  net_.drop_in_transit_to(id_);
  vstore_.crash_erase();
  if (sstore_) sstore_->crash_abort_in_progress();
  if (trace_) trace_->record(sim_.now(), id_, TraceKind::kHwFault);
}

CheckpointRecord ProcessNode::restore_from_stable(
    std::uint32_t new_epoch, std::optional<StableSeq> line_ndc) {
  SYNERGY_EXPECTS(!retired_);
  SYNERGY_EXPECTS(sstore_ != nullptr);
  // A write begun before the fault carries pre-rollback content: it must
  // not commit into the post-recovery world.
  sstore_->crash_abort_in_progress();
  auto rec = line_ndc ? sstore_->committed_for(*line_ndc)
                      : sstore_->latest_committed();
  if (!rec && line_ndc) {
    // Checksum-mismatch fallback: the record at the recovery line is
    // damaged (torn or corrupted). Restore the newest intact earlier
    // record instead of crashing — a deeper rollback, not a failure.
    if (trace_) {
      trace_->record(sim_.now(), id_, TraceKind::kCorruptRecord, "fallback",
                     *line_ndc);
    }
    rec = sstore_->best_valid_at_most(*line_ndc);
  }
  if (!rec) {
    // Every retained record is damaged — the initial commit_now checkpoint
    // makes that an all-corrupt history, reachable only under extreme
    // injected corruption rates (high fault-scale sweep cells). Restore
    // the pristine boot image: the deepest possible rollback, surfaced to
    // the oracles as such, never an unrecoverable node.
    if (trace_) {
      trace_->record(sim_.now(), id_, TraceKind::kCorruptRecord, "boot-image",
                     boot_image_.ndc);
    }
    rec = boot_image_;
  }
  // Records above the line were committed by the undone incarnation
  // (survivors checkpointing through the repair window): purge them.
  sstore_->discard_above(rec->ndc);

  if (tb_) tb_->stop();
  engine_->revive();
  engine_->restore_from_record(*rec);
  engine_->set_epoch(new_epoch);
  engine_->fence_all_below(new_epoch);
  endpoint_->reattach_network();
  crashed_ = false;

  // A restarted node re-checkpoints its boot state so the "dirty implies a
  // volatile checkpoint exists" invariant holds from the first instant.
  CheckpointRecord baseline = engine_->make_record(CkptKind::kType1);
  baseline.state_time = rec->state_time;  // boot state is the restored state
  vstore_.save(std::move(baseline));

  if (tb_) tb_->reset_after_recovery(rec->ndc);
  if (trace_) {
    trace_->record(sim_.now(), id_, TraceKind::kHwRestore,
                   to_string(rec->kind), rec->ndc);
  }
  return *rec;
}

std::size_t ProcessNode::resend_unacked() {
  const std::size_t n = endpoint_->resend_unacked(engine_->epoch());
  if (trace_ && n > 0) {
    trace_->record(sim_.now(), id_, TraceKind::kResendUnacked, {}, n);
  }
  return n;
}

}  // namespace synergy
