// Write-through baseline (paper §3).
//
// The straight extension of MDCD for hardware faults: every validation
// event (own AT pass or received passed-AT notification) makes the process
// write its Type-2 checkpoint through to stable storage. No timers, no
// blocking. The frequency and spacing of stable checkpoints is therefore
// tied to the *external* message rate, which is what makes the rollback
// distance E[Dwt] large (Figure 7).
#pragma once

#include <cstdint>
#include <vector>

#include "coord/node.hpp"

namespace synergy {

class WriteThroughCoordinator {
 public:
  WriteThroughCoordinator(std::vector<ProcessNode*> nodes, TraceLog* trace);

  /// Hook the validation observers. Call once, before the run starts.
  void install();

  std::uint64_t stable_writes() const { return writes_; }

 private:
  void on_validation(ProcessNode& node);

  std::vector<ProcessNode*> nodes_;
  TraceLog* trace_;
  std::uint64_t writes_ = 0;
};

}  // namespace synergy
