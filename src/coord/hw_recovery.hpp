// Hardware fault injection and recovery.
//
// A hardware fault crashes one node: volatile storage and the in-progress
// stable write are lost, the process terminates, in-transit messages to it
// vanish. Recovery (after a configurable repair latency) rolls *every*
// non-retired process back to its last committed stable checkpoint — the
// TB recovery line — then re-sends all unacked messages from the restored
// logs (paper §2.2). The per-process rollback distance
// (fault time − restored state_time) is the Figure 7 metric.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "app/fault.hpp"
#include "coord/node.hpp"

namespace synergy {

struct HwRecoveryStats {
  TimePoint fault_time;
  NodeId faulty_node;
  /// Rollback distance per restored process, indexed like `nodes`.
  /// Retired nodes contribute Duration::zero().
  std::vector<Duration> rollback_distance;
  /// Dirty bits of the restored states (a naive-combination hazard:
  /// restoring dirty states loses software recoverability, Figure 4(a)).
  std::vector<bool> restored_dirty;
  std::size_t resent_messages = 0;
};

/// Last checkpoint index that every non-retired node in `nodes` has
/// committed *and can still decode*. Storage faults can damage the record
/// at the naive line (min of latest indices); selection walks down through
/// the retained history until an index is intact everywhere. Empty when no
/// common intact index survives (each node then restores its own newest
/// valid record — a degraded, best-effort line).
std::optional<StableSeq> common_valid_line(
    const std::vector<ProcessNode*>& nodes);

/// Like common_valid_line, but the chosen index must also pass the paper's
/// oracles (consistency, recoverability, software recoverability) over the
/// record set it would restore. Protects recovery from adopting a line cut
/// while an injector had split the processes' validation knowledge (e.g. a
/// dropped passed_AT): restoring such a pair bakes the asymmetry into the
/// live states, where no later repair can reach it. Empty when no retained
/// index is clean everywhere — callers fall back to common_valid_line, so
/// schemes whose lines are *expected* to violate the oracles (ablations,
/// the naive combination) behave exactly as before.
std::optional<StableSeq> common_restorable_line(
    const std::vector<ProcessNode*>& nodes);

/// Per-node record selection for the index-less (write-through) schemes.
/// Write-through commits are per-node validation events, so a fault inside
/// one node's write-latency window (or a torn newest record) leaves the
/// nodes' newest intact records straddling in-flight traffic: the receiver
/// remembers messages the rolled-back sender never sent. Starting from
/// every node's newest decodable record, the node whose current record has
/// the newest state time is rolled back one record at a time until the
/// paper's oracles accept the cut (the classic rollback-propagation
/// descent; it terminates because every step strictly shrinks the cut).
/// Returns the chosen index per node, aligned with `nodes` (nullopt for
/// retired / storage-less entries); empty when no retained combination is
/// clean — callers then fall back to per-node latest_committed() exactly
/// as before.
std::vector<std::optional<StableSeq>> consistent_write_through_cut(
    const std::vector<ProcessNode*>& nodes);

class HardwareRecoveryManager {
 public:
  /// `repair_latency`: downtime between the fault and the coordinated
  /// restart of the system. With `oracle_filter`, line selection prefers
  /// common_restorable_line (hardened mode); otherwise the paper's naive
  /// common_valid_line selection is used unchanged.
  HardwareRecoveryManager(Simulator& sim, std::vector<ProcessNode*> nodes,
                          Duration repair_latency, TraceLog* trace,
                          bool oracle_filter = false);

  /// Crash the process on `node` now and schedule the global recovery.
  /// `new_epoch` is the recovery incarnation for fencing and re-sends.
  /// `on_recovered` (optional) fires with the stats once restarted.
  void inject_fault(NodeId node, std::uint32_t new_epoch,
                    std::function<void(const HwRecoveryStats&)> on_recovered);

  /// Install a whole fault plan; epochs are drawn from `next_epoch`.
  void install_plan(const HardwareFaultPlan& plan,
                    std::function<std::uint32_t()> next_epoch,
                    std::function<void(const HwRecoveryStats&)> on_recovered);

  std::uint64_t faults_injected() const { return faults_; }
  bool recovery_pending() const { return pending_; }

 private:
  HwRecoveryStats recover_all(TimePoint fault_time, NodeId faulty,
                              std::uint32_t epoch);

  Simulator& sim_;
  std::vector<ProcessNode*> nodes_;
  Duration repair_latency_;
  TraceLog* trace_;
  bool oracle_filter_;
  std::uint64_t faults_ = 0;
  bool pending_ = false;
};

}  // namespace synergy
