// Hardware fault injection and recovery.
//
// A hardware fault crashes one node: volatile storage and the in-progress
// stable write are lost, the process terminates, in-transit messages to it
// vanish. Recovery (after a configurable repair latency) rolls *every*
// non-retired process back to its last committed stable checkpoint — the
// TB recovery line — then re-sends all unacked messages from the restored
// logs (paper §2.2). The per-process rollback distance
// (fault time − restored state_time) is the Figure 7 metric.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "app/fault.hpp"
#include "coord/node.hpp"

namespace synergy {

struct HwRecoveryStats {
  TimePoint fault_time;
  NodeId faulty_node;
  /// Rollback distance per restored process, indexed like `nodes`.
  /// Retired nodes contribute Duration::zero().
  std::vector<Duration> rollback_distance;
  /// Dirty bits of the restored states (a naive-combination hazard:
  /// restoring dirty states loses software recoverability, Figure 4(a)).
  std::vector<bool> restored_dirty;
  std::size_t resent_messages = 0;
};

class HardwareRecoveryManager {
 public:
  /// `repair_latency`: downtime between the fault and the coordinated
  /// restart of the system.
  HardwareRecoveryManager(Simulator& sim, std::vector<ProcessNode*> nodes,
                          Duration repair_latency, TraceLog* trace);

  /// Crash the process on `node` now and schedule the global recovery.
  /// `new_epoch` is the recovery incarnation for fencing and re-sends.
  /// `on_recovered` (optional) fires with the stats once restarted.
  void inject_fault(NodeId node, std::uint32_t new_epoch,
                    std::function<void(const HwRecoveryStats&)> on_recovered);

  /// Install a whole fault plan; epochs are drawn from `next_epoch`.
  void install_plan(const HardwareFaultPlan& plan,
                    std::function<std::uint32_t()> next_epoch,
                    std::function<void(const HwRecoveryStats&)> on_recovered);

  std::uint64_t faults_injected() const { return faults_; }
  bool recovery_pending() const { return pending_; }

 private:
  HwRecoveryStats recover_all(TimePoint fault_time, NodeId faulty,
                              std::uint32_t epoch);

  Simulator& sim_;
  std::vector<ProcessNode*> nodes_;
  Duration repair_latency_;
  TraceLog* trace_;
  std::uint64_t faults_ = 0;
  bool pending_ = false;
};

}  // namespace synergy
