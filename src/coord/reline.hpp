// Coordinated recovery-line re-establishment.
//
// Shared by the AssumptionMonitor (line repair after latent corruption or
// a detected inconsistency) and the System's base-station handoff path
// (after a node's stable store migrated, the surviving history may no
// longer intersect the other nodes' at a consistent cut). Both need the
// same maneuver: every participant commits a checkpoint of its state at
// this same instant under a fresh common index and fast-forwards its TB
// schedule to it.
#pragma once

#include <optional>
#include <vector>

#include "coord/node.hpp"
#include "sim/simulator.hpp"

namespace synergy {

/// Commit a same-instant write-through checkpoint on every live node under
/// a fresh common stable index (strictly above every node's current ndc
/// and above the current boundary), and fast-forward the TB schedules to
/// it. Same-instant records form a consistent cut — in-flight messages
/// live in the senders' unacked logs — so the new line is restorable and
/// consistent by construction. Contents follow the adapted protocol's
/// rule: a contaminated process persists its last validated volatile
/// checkpoint, never its current state.
///
/// Returns the new common index, or nullopt when the nodes share no
/// common index space (some live node has no TB engine) — the caller must
/// treat that as "cannot reline here".
std::optional<StableSeq> reestablish_recovery_line(
    Simulator& sim, const std::vector<ProcessNode*>& nodes);

}  // namespace synergy
