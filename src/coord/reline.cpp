#include "coord/reline.hpp"

#include <algorithm>
#include <utility>

namespace synergy {

std::optional<StableSeq> reestablish_recovery_line(
    Simulator& sim, const std::vector<ProcessNode*>& nodes) {
  // All participants commit a checkpoint of their state at this same
  // instant under a fresh common index and fast-forward their TB schedules
  // to it. Same-instant records form a consistent cut (in-flight messages
  // live in the senders' unacked logs), and any damaged or abandoned older
  // record can no longer be selected: every future line is at or above the
  // new index.
  Duration interval = Duration::zero();
  for (ProcessNode* n : nodes) {
    if (n->retired()) continue;
    if (n->tb() == nullptr) return std::nullopt;  // no common index space
    interval = n->tb()->params().interval;
  }
  if (interval <= Duration::zero()) return std::nullopt;  // no live nodes
  StableSeq line =
      static_cast<StableSeq>(sim.now().count() / interval.count()) + 1;
  for (ProcessNode* n : nodes) {
    if (n->retired()) continue;
    line = std::max(line, n->tb()->ndc() + 1);
  }
  for (ProcessNode* n : nodes) {
    if (n->retired() || !n->has_stable_storage()) continue;
    if (n->engine().in_blocking()) n->engine().end_blocking();
    // Contents follow the adapted protocol's rule (TbEngine::create_ckpt):
    // a contaminated process persists its last validated volatile
    // checkpoint, never its current state — a dirty record on the line
    // would forfeit software recoverability for every future rollback.
    CheckpointRecord rec;
    if (n->engine().contamination_flag() &&
        n->engine().latest_volatile().has_value()) {
      rec = *n->engine().latest_volatile();
      rec.kind = CkptKind::kStable;
      rec.established_at = n->engine().current_time();
    } else {
      rec = n->engine().make_record(CkptKind::kStable);
    }
    rec.ndc = line;
    n->sstore().commit_now(std::move(rec));
    n->tb()->reset_after_recovery(line);
  }
  return line;
}

}  // namespace synergy
