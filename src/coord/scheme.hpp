// The fault-tolerance schemes the library can run (paper §3–§4).
#pragma once

namespace synergy {

enum class Scheme {
  /// Original MDCD alone: software fault tolerance only, volatile
  /// checkpoints, no stable storage. Hardware faults are not survivable.
  kMdcdOnly,

  /// The "write-through" straight extension (paper §3): original MDCD,
  /// with every process — P1act included — writing a Type-2 checkpoint to
  /// stable storage on each validation event. No timers, no blocking.
  /// Baseline for Figure 7 (E[Dwt]).
  kWriteThrough,

  /// Naive combination (paper §4.1, Figure 4): original MDCD and original
  /// TB running concurrently with no coordination. Demonstrably loses
  /// non-contaminated states and violates recoverability.
  kNaive,

  /// The paper's contribution (§3–§4.2): modified MDCD + adapted TB,
  /// synergistically coordinated. Figure 7's E[Dco].
  kCoordinated,
};

inline const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kMdcdOnly: return "mdcd_only";
    case Scheme::kWriteThrough: return "write_through";
    case Scheme::kNaive: return "naive";
    case Scheme::kCoordinated: return "coordinated";
  }
  return "?";
}

}  // namespace synergy
