// The fault-tolerance schemes the library can run (paper §3–§4, plus the
// redundant-execution protection family layered on top of MDCD).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace synergy {

enum class Scheme {
  /// Original MDCD alone: software fault tolerance only, volatile
  /// checkpoints, no stable storage. Hardware faults are not survivable.
  kMdcdOnly,

  /// The "write-through" straight extension (paper §3): original MDCD,
  /// with every process — P1act included — writing a Type-2 checkpoint to
  /// stable storage on each validation event. No timers, no blocking.
  /// Baseline for Figure 7 (E[Dwt]).
  kWriteThrough,

  /// Naive combination (paper §4.1, Figure 4): original MDCD and original
  /// TB running concurrently with no coordination. Demonstrably loses
  /// non-contaminated states and violates recoverability.
  kNaive,

  /// The paper's contribution (§3–§4.2): modified MDCD + adapted TB,
  /// synergistically coordinated. Figure 7's E[Dco].
  kCoordinated,

  /// MDCD + duplication-with-compare: every process runs two replicated
  /// application lanes whose outputs are compared at each send boundary.
  /// A divergence aborts the suspect send and triggers a recovery-line
  /// rollback (stable storage is populated write-through style, so there
  /// is always a line to roll to). Catches hardware state corruption the
  /// acceptance tests were never designed for.
  kMdcdDwc,

  /// MDCD + triple modular redundancy: three lanes and a majority voter.
  /// Single-lane corruption is *masked* (outvoted and repaired in place);
  /// losing a lane degrades to DWC-style compare-and-rollback until the
  /// parked lane is re-synced from the surviving majority at the next
  /// validation event.
  kMdcdTmr,

  /// The full three-family stack: modified MDCD + adapted TB (as in
  /// kCoordinated) with TMR lanes underneath — the arbiter coordinating
  /// software, checkpointing, and redundant-execution protection at once.
  kMdcdTbTmr,
};

/// All schemes, in declaration order (sweep matrices, parsers).
inline constexpr Scheme kAllSchemes[] = {
    Scheme::kMdcdOnly,  Scheme::kWriteThrough, Scheme::kNaive,
    Scheme::kCoordinated, Scheme::kMdcdDwc,    Scheme::kMdcdTmr,
    Scheme::kMdcdTbTmr,
};

constexpr const char* to_string(Scheme s) {
  // Exhaustive: a new enumerator without a name is a compile error under
  // -Werror=switch, and the trailing path is unreachable by construction.
  switch (s) {
    case Scheme::kMdcdOnly: return "mdcd_only";
    case Scheme::kWriteThrough: return "write_through";
    case Scheme::kNaive: return "naive";
    case Scheme::kCoordinated: return "coordinated";
    case Scheme::kMdcdDwc: return "mdcd+dwc";
    case Scheme::kMdcdTmr: return "mdcd+tmr";
    case Scheme::kMdcdTbTmr: return "mdcd+tb+tmr";
  }
  return "";  // unreachable: all enumerators handled above
}

/// Parse a scheme name as printed by to_string (plus the "mdcd+tb" alias
/// for the coordinated scheme, completing the combination grammar).
/// Returns nullopt for unknown names — CLI and JSON readers must reject
/// stale spellings loudly instead of defaulting.
inline std::optional<Scheme> scheme_from_string(std::string_view name) {
  for (Scheme s : kAllSchemes) {
    if (name == to_string(s)) return s;
  }
  if (name == "mdcd+tb") return Scheme::kCoordinated;
  return std::nullopt;
}

/// Number of replicated application-state lanes each process runs.
constexpr std::size_t scheme_lane_count(Scheme s) {
  switch (s) {
    case Scheme::kMdcdDwc: return 2;
    case Scheme::kMdcdTmr:
    case Scheme::kMdcdTbTmr: return 3;
    case Scheme::kMdcdOnly:
    case Scheme::kWriteThrough:
    case Scheme::kNaive:
    case Scheme::kCoordinated: return 1;
  }
  return 1;
}

/// Does the scheme run time-based checkpoint timers (blocking periods)?
constexpr bool scheme_has_tb(Scheme s) {
  return s == Scheme::kNaive || s == Scheme::kCoordinated ||
         s == Scheme::kMdcdTbTmr;
}

/// Does the scheme run the modified MDCD variant (pseudo checkpoints, Ndc
/// gate, passed-AT during blocking)? Exactly the TB-coordinated schemes.
constexpr bool scheme_uses_modified_mdcd(Scheme s) {
  return s == Scheme::kCoordinated || s == Scheme::kMdcdTbTmr;
}

/// Does the scheme commit stable checkpoints on validation events instead
/// of timers? (The write-through baseline, and the timer-less lane schemes
/// which need *some* stable line for divergence rollbacks to land on.)
constexpr bool scheme_writes_through(Scheme s) {
  return s == Scheme::kWriteThrough || s == Scheme::kMdcdDwc ||
         s == Scheme::kMdcdTmr;
}

}  // namespace synergy
