#include "coord/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "analysis/checkers.hpp"
#include "analysis/global_state.hpp"
#include "common/assert.hpp"
#include "coord/hw_recovery.hpp"
#include "coord/reline.hpp"

namespace synergy {

AssumptionMonitor::AssumptionMonitor(Simulator& sim, Network& net,
                                     ClockEnsemble& clocks,
                                     std::vector<ProcessNode*> nodes,
                                     const MonitorParams& params,
                                     TraceLog* trace)
    : sim_(sim), net_(net), clocks_(clocks), nodes_(std::move(nodes)),
      params_(params), trace_(trace) {
  SYNERGY_EXPECTS(params_.sweep_interval > Duration::zero());
}

void AssumptionMonitor::install() {
  SYNERGY_EXPECTS(!installed_);
  installed_ = true;
  net_.set_delivery_bound_observer(
      [this](const Message& m, Duration lateness) {
        on_late_delivery(m, lateness);
      });
  for (ProcessNode* n : nodes_) {
    if (TbEngine* tb = n->tb()) {
      const ProcessId p = n->id();
      tb->set_overrun_observer([this, p](Duration actual, Duration allowed) {
        on_overrun(p, actual, allowed);
      });
    }
  }
  sim_.schedule_after(params_.sweep_interval, [this] { sweep(); });
}

bool AssumptionMonitor::quiescent() const {
  for (ProcessNode* n : nodes_) {
    if (!n->retired() && n->crashed()) return false;
  }
  return true;
}

bool AssumptionMonitor::link_excuses(ProcessId p, TimePoint sent_at) const {
  if (!link_oracle_.impaired) return false;
  // Impaired right now, or the traffic predates the link's return to
  // service: lateness (or loss) is the declared epoch's doing, not a
  // broken delivery-bound assumption.
  return link_oracle_.impaired(p) || sent_at < link_oracle_.last_restored(p);
}

void AssumptionMonitor::on_late_delivery(const Message& m, Duration lateness) {
  if (link_excuses(m.sender, m.sent_at) || link_excuses(m.receiver, m.sent_at)) {
    ++stats_.disconnect_deferrals;
    if (trace_) {
      trace_->record(sim_.now(), m.receiver, TraceKind::kDisconnectDeferral,
                     "late_delivery",
                     static_cast<std::uint64_t>(lateness.count()));
    }
    return;
  }
  ++stats_.bound_violations;
  if (trace_) {
    trace_->record(sim_.now(), m.receiver, TraceKind::kBoundViolation, {},
                   static_cast<std::uint64_t>(lateness.count()));
  }
  if (!params_.degrade) return;
  // The delivery took tmax + lateness; widen every engine's assumed bound
  // past that so future tau(b) windows cover deliveries this slow. The
  // widening is monotone, so repeated reports of the same slowdown settle
  // after the first.
  const Duration observed = net_.params().tmax + lateness;
  const auto widened = Duration::micros(static_cast<std::int64_t>(
      std::ceil(static_cast<double>(observed.count()) * params_.widen_margin)));
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (TbEngine* tb = n->tb()) {
      if (tb->widen_delay_bound(widened)) ++stats_.tau_widenings;
    }
  }
}

void AssumptionMonitor::on_overrun(ProcessId p, Duration actual,
                                   Duration allowed) {
  (void)p;
  (void)actual;
  (void)allowed;  // already traced by the engine
  ++stats_.blocking_overruns;
  if (!params_.degrade) return;
  // A span outside the drift envelope means some clock is running beyond
  // rho. Re-anchoring the offsets is the only in-protocol remedy: it
  // restores the delta bound now and resets every engine's eps term.
  // (During a resync blackout the request is recorded as missed.)
  ++stats_.forced_resyncs;
  if (trace_) {
    trace_->record(sim_.now(), p, TraceKind::kDegradation, "force_resync");
  }
  clocks_.resync_all();
}

void AssumptionMonitor::sweep() {
  bool need_reline = false;
  if (quiescent()) {
    // CFCSS sweep: catch a broken signature chain *between* vote
    // boundaries, so a control-flow fault on an idle lane does not wait
    // for the next send/capture to be noticed. LaneSet repairs in place
    // (park the replica / restore the primary from a healthy donor) and
    // raises the confidence-loss event into the MDCD engine itself.
    for (ProcessNode* n : nodes_) {
      if (n->retired() || n->crashed()) continue;
      if (LaneSet* lanes = n->lanes()) {
        const std::size_t found = lanes->scan_signatures();
        if (found == 0) continue;
        stats_.signature_mismatches += found;
        stats_.lane_repairs += found;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                         "lane_repair", found);
        }
      }
    }
    // Undelivered-message watchdog: a message still unacked a full sweep
    // after it was first seen has been dropped (or its ack has) — in-spec
    // delivery plus validation-gated acknowledgment settles far faster.
    // Resending is always safe (receivers suppress duplicates and re-ack),
    // and it is what closes a validation-knowledge gap: a lost passed_AT
    // leaves the sender believing a segment is still unvalidated while the
    // receivers have moved on.
    if (prev_unacked_.size() != nodes_.size()) {
      prev_unacked_.assign(nodes_.size(), {});
      was_impaired_.assign(nodes_.size(), 0);
      unacked_over_.assign(nodes_.size(), 0);
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      ProcessNode* n = nodes_[i];
      if (n->retired()) {
        prev_unacked_[i].clear();
        continue;
      }
      const bool impaired =
          link_oracle_.impaired && link_oracle_.impaired(n->id());
      if (impaired) {
        // Declared disconnection epoch: traffic parked unacked behind the
        // link is expected, not a violation. Defer (once per node per
        // sweep), restart the staleness clock, and remember to drain the
        // backlog as soon as the link returns.
        ++stats_.disconnect_deferrals;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kDisconnectDeferral,
                         "undelivered", n->endpoint().unacked_count());
        }
        prev_unacked_[i].clear();
        was_impaired_[i] = 1;
        continue;
      }
      if (was_impaired_[i]) {
        // First sweep after reconnection: resend proactively instead of
        // waiting a further staleness round. Not a violation — the epoch
        // explained the backlog.
        was_impaired_[i] = 0;
        if (params_.degrade && n->endpoint().unacked_count() > 0) {
          ++stats_.forced_resends;
          if (trace_) {
            trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                           "reconnect_resend", n->endpoint().unacked_count());
          }
          n->resend_unacked();
        }
        prev_unacked_[i].clear();
        continue;
      }
      const std::unordered_set<std::uint64_t> prev(prev_unacked_[i].begin(),
                                                   prev_unacked_[i].end());
      std::vector<std::uint64_t> current;
      std::size_t stale = 0;
      for (const Message& m : n->endpoint().unacked()) {
        current.push_back(m.transport_seq);
        if (prev.contains(m.transport_seq)) ++stale;
      }
      const std::size_t unacked_now = current.size();
      prev_unacked_[i] = std::move(current);

      // Unacked-log bound: multi-epoch partitions (or a peer that stopped
      // acking) grow the log without limit; count the excursion once and
      // try to drain it. The resend either clears entries (peer alive) or
      // confirms the drop for the staleness watchdog.
      if (unacked_now > params_.unacked_bound) {
        if (!unacked_over_[i]) {
          unacked_over_[i] = 1;
          ++stats_.unacked_overflows;
          if (trace_) {
            trace_->record(sim_.now(), n->id(), TraceKind::kBoundViolation,
                           "unacked_overflow", unacked_now);
          }
          if (params_.degrade) {
            ++stats_.forced_resends;
            if (trace_) {
              trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                             "drain_unacked", unacked_now);
            }
            n->resend_unacked();
            prev_unacked_[i].clear();
            continue;
          }
        }
      } else {
        unacked_over_[i] = 0;  // excursion over: re-arm the latch
      }

      if (stale == 0) continue;
      stats_.undelivered_messages += stale;
      if (trace_) {
        trace_->record(sim_.now(), n->id(), TraceKind::kBoundViolation,
                       "undelivered", stale);
      }
      if (params_.degrade) {
        ++stats_.forced_resends;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                         "resend_unacked", stale);
        }
        n->resend_unacked();
        prev_unacked_[i].clear();  // resent just now: restart the clock
      }
    }

    // ABFT scrub: recompute the block checksums between AT runs so a
    // latent flip is noticed before the next external message would carry
    // its taint out. A damaged encoding feeds the MDCD confidence
    // machinery exactly like a failed signature check; the latch keeps one
    // episode from re-counting every sweep until an AT-triggered recovery
    // clears it.
    if (abft_flagged_.size() != nodes_.size()) {
      abft_flagged_.assign(nodes_.size(), 0);
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      ProcessNode* n = nodes_[i];
      if (n->retired() || n->crashed() ||
          n->app().mode() != WorkloadKind::kAbft) {
        continue;
      }
      if (n->app().abft_check_ok()) {
        abft_flagged_[i] = 0;
        continue;
      }
      if (abft_flagged_[i]) continue;
      abft_flagged_[i] = 1;
      ++stats_.abft_scrub_detections;
      if (trace_) {
        trace_->record(sim_.now(), n->id(), TraceKind::kAbftScrub, {},
                       n->id().value());
      }
      if (params_.degrade) n->engine().on_confidence_loss();
    }

    for (ProcessNode* n : nodes_) {
      if (n->retired() || !n->has_stable_storage()) continue;
      StableStore& store = n->sstore();

      // Stable-write deadline watchdog: a write whose retry budget ran out
      // was silently dropped; the checkpoint it carried would be a hole in
      // the node's history. Degrade by forcing the very record that failed
      // through as a write-through commit.
      if (auto abandoned = store.take_abandoned()) {
        ++stats_.write_timeouts;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kStableTimeout, {},
                         abandoned->ndc);
        }
        if (params_.degrade) {
          ++stats_.forced_write_throughs;
          if (trace_) {
            trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                           "write_through", abandoned->ndc);
          }
          store.commit_now(std::move(*abandoned));
        }
      }

      // Latent-corruption scan: the newest record no longer decodes, so a
      // recovery through this node would roll deeper than the line says.
      if (store.latest_valid_ndc() < store.latest_ndc()) {
        ++stats_.corrupt_records;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kCorruptRecord, {},
                         store.latest_ndc());
        }
        need_reline = true;
      }
    }
  }

  if (need_reline && params_.degrade && quiescent()) reestablish_line();

  // Line self-audit: run the paper's consistency theorem over the records
  // a recovery would actually restore. Catches what the local detectors
  // cannot see — records cut while validation knowledge was split.
  if (quiescent() && !repair_pending_) {
    if (const std::size_t v = line_violations(); v > 0) {
      stats_.line_inconsistencies += v;
      if (trace_) {
        trace_->record(sim_.now(), ProcessId{0}, TraceKind::kLineInconsistent,
                       {}, v);
      }
      if (params_.degrade) start_line_repair();
    }
  }

  sim_.schedule_after(params_.sweep_interval, [this] { sweep(); });
}

std::size_t AssumptionMonitor::resend_all() {
  std::size_t resent = 0;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    resent += n->resend_unacked();
  }
  return resent;
}

std::size_t AssumptionMonitor::line_violations() {
  std::vector<ProcessNode*> participants;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (!n->has_stable_storage() || n->tb() == nullptr) return 0;
    participants.push_back(n);
  }
  if (participants.empty()) return 0;
  const auto line = common_valid_line(participants);
  if (!line) return 0;
  std::vector<CheckpointRecord> records;
  for (ProcessNode* n : participants) {
    auto rec = n->sstore().committed_for(*line);
    if (!rec) return 0;  // mid-commit: skip this audit
    records.push_back(std::move(*rec));
  }
  const GlobalState state = global_state_from_records(records);
  return check_consistency(state).size();
}

void AssumptionMonitor::start_line_repair() {
  // Step 1: resend every unacked message. If the inconsistency came from a
  // dropped validation notification, the duplicate delivers it and the
  // sender's contamination flag settles to the receivers' view.
  repair_pending_ = true;
  ++stats_.forced_resends;
  const std::size_t resent = resend_all();
  if (trace_) {
    trace_->record(sim_.now(), ProcessId{0}, TraceKind::kDegradation,
                   "repair_resend", resent);
  }
  // Step 2 after the resent messages (and any acks they trigger) settle:
  // well past a round trip even at injector-delayed latencies.
  const Duration settle =
      Duration::micros(net_.params().tmax.count() * 8) + Duration::millis(10);
  sim_.schedule_after(settle, [this] { finish_line_repair(); });
}

void AssumptionMonitor::finish_line_repair() {
  repair_pending_ = false;
  // A crash/recovery got in between: the recovery refreshes the line
  // itself, and the next sweep re-audits.
  if (!quiescent()) return;
  if (line_violations() == 0) return;  // healed by resend + later boundary
  reestablish_line();
  // If the reline still leaves an inconsistency (a repair resend was itself
  // dropped), the next sweep detects it and starts over.
}

void AssumptionMonitor::reestablish_line() {
  // Shared with the System's handoff path (coord/reline.hpp): the same
  // coordinated same-instant write-through maneuver serves line repair and
  // post-migration re-anchoring alike.
  const auto line = reestablish_recovery_line(sim_, nodes_);
  if (!line) return;  // no common index space to re-line in
  ++stats_.relines;
  if (trace_) {
    trace_->record(sim_.now(), ProcessId{0}, TraceKind::kDegradation, "reline",
                   *line);
  }
}

}  // namespace synergy
