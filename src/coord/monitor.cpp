#include "coord/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "analysis/checkers.hpp"
#include "analysis/global_state.hpp"
#include "common/assert.hpp"
#include "coord/hw_recovery.hpp"

namespace synergy {

AssumptionMonitor::AssumptionMonitor(Simulator& sim, Network& net,
                                     ClockEnsemble& clocks,
                                     std::vector<ProcessNode*> nodes,
                                     const MonitorParams& params,
                                     TraceLog* trace)
    : sim_(sim), net_(net), clocks_(clocks), nodes_(std::move(nodes)),
      params_(params), trace_(trace) {
  SYNERGY_EXPECTS(params_.sweep_interval > Duration::zero());
}

void AssumptionMonitor::install() {
  SYNERGY_EXPECTS(!installed_);
  installed_ = true;
  net_.set_delivery_bound_observer(
      [this](const Message& m, Duration lateness) {
        on_late_delivery(m, lateness);
      });
  for (ProcessNode* n : nodes_) {
    if (TbEngine* tb = n->tb()) {
      const ProcessId p = n->id();
      tb->set_overrun_observer([this, p](Duration actual, Duration allowed) {
        on_overrun(p, actual, allowed);
      });
    }
  }
  sim_.schedule_after(params_.sweep_interval, [this] { sweep(); });
}

bool AssumptionMonitor::quiescent() const {
  for (ProcessNode* n : nodes_) {
    if (!n->retired() && n->crashed()) return false;
  }
  return true;
}

void AssumptionMonitor::on_late_delivery(const Message& m, Duration lateness) {
  ++stats_.bound_violations;
  if (trace_) {
    trace_->record(sim_.now(), m.receiver, TraceKind::kBoundViolation, {},
                   static_cast<std::uint64_t>(lateness.count()));
  }
  if (!params_.degrade) return;
  // The delivery took tmax + lateness; widen every engine's assumed bound
  // past that so future tau(b) windows cover deliveries this slow. The
  // widening is monotone, so repeated reports of the same slowdown settle
  // after the first.
  const Duration observed = net_.params().tmax + lateness;
  const auto widened = Duration::micros(static_cast<std::int64_t>(
      std::ceil(static_cast<double>(observed.count()) * params_.widen_margin)));
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (TbEngine* tb = n->tb()) {
      if (tb->widen_delay_bound(widened)) ++stats_.tau_widenings;
    }
  }
}

void AssumptionMonitor::on_overrun(ProcessId p, Duration actual,
                                   Duration allowed) {
  (void)p;
  (void)actual;
  (void)allowed;  // already traced by the engine
  ++stats_.blocking_overruns;
  if (!params_.degrade) return;
  // A span outside the drift envelope means some clock is running beyond
  // rho. Re-anchoring the offsets is the only in-protocol remedy: it
  // restores the delta bound now and resets every engine's eps term.
  // (During a resync blackout the request is recorded as missed.)
  ++stats_.forced_resyncs;
  if (trace_) {
    trace_->record(sim_.now(), p, TraceKind::kDegradation, "force_resync");
  }
  clocks_.resync_all();
}

void AssumptionMonitor::sweep() {
  bool need_reline = false;
  if (quiescent()) {
    // CFCSS sweep: catch a broken signature chain *between* vote
    // boundaries, so a control-flow fault on an idle lane does not wait
    // for the next send/capture to be noticed. LaneSet repairs in place
    // (park the replica / restore the primary from a healthy donor) and
    // raises the confidence-loss event into the MDCD engine itself.
    for (ProcessNode* n : nodes_) {
      if (n->retired() || n->crashed()) continue;
      if (LaneSet* lanes = n->lanes()) {
        const std::size_t found = lanes->scan_signatures();
        if (found == 0) continue;
        stats_.signature_mismatches += found;
        stats_.lane_repairs += found;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                         "lane_repair", found);
        }
      }
    }
    // Undelivered-message watchdog: a message still unacked a full sweep
    // after it was first seen has been dropped (or its ack has) — in-spec
    // delivery plus validation-gated acknowledgment settles far faster.
    // Resending is always safe (receivers suppress duplicates and re-ack),
    // and it is what closes a validation-knowledge gap: a lost passed_AT
    // leaves the sender believing a segment is still unvalidated while the
    // receivers have moved on.
    if (prev_unacked_.size() != nodes_.size()) {
      prev_unacked_.assign(nodes_.size(), {});
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      ProcessNode* n = nodes_[i];
      if (n->retired()) {
        prev_unacked_[i].clear();
        continue;
      }
      const std::unordered_set<std::uint64_t> prev(prev_unacked_[i].begin(),
                                                   prev_unacked_[i].end());
      std::vector<std::uint64_t> current;
      std::size_t stale = 0;
      for (const Message& m : n->endpoint().unacked()) {
        current.push_back(m.transport_seq);
        if (prev.contains(m.transport_seq)) ++stale;
      }
      prev_unacked_[i] = std::move(current);
      if (stale == 0) continue;
      stats_.undelivered_messages += stale;
      if (trace_) {
        trace_->record(sim_.now(), n->id(), TraceKind::kBoundViolation,
                       "undelivered", stale);
      }
      if (params_.degrade) {
        ++stats_.forced_resends;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                         "resend_unacked", stale);
        }
        n->resend_unacked();
        prev_unacked_[i].clear();  // resent just now: restart the clock
      }
    }

    for (ProcessNode* n : nodes_) {
      if (n->retired() || !n->has_stable_storage()) continue;
      StableStore& store = n->sstore();

      // Stable-write deadline watchdog: a write whose retry budget ran out
      // was silently dropped; the checkpoint it carried would be a hole in
      // the node's history. Degrade by forcing the very record that failed
      // through as a write-through commit.
      if (auto abandoned = store.take_abandoned()) {
        ++stats_.write_timeouts;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kStableTimeout, {},
                         abandoned->ndc);
        }
        if (params_.degrade) {
          ++stats_.forced_write_throughs;
          if (trace_) {
            trace_->record(sim_.now(), n->id(), TraceKind::kDegradation,
                           "write_through", abandoned->ndc);
          }
          store.commit_now(std::move(*abandoned));
        }
      }

      // Latent-corruption scan: the newest record no longer decodes, so a
      // recovery through this node would roll deeper than the line says.
      if (store.latest_valid_ndc() < store.latest_ndc()) {
        ++stats_.corrupt_records;
        if (trace_) {
          trace_->record(sim_.now(), n->id(), TraceKind::kCorruptRecord, {},
                         store.latest_ndc());
        }
        need_reline = true;
      }
    }
  }

  if (need_reline && params_.degrade && quiescent()) reestablish_line();

  // Line self-audit: run the paper's consistency theorem over the records
  // a recovery would actually restore. Catches what the local detectors
  // cannot see — records cut while validation knowledge was split.
  if (quiescent() && !repair_pending_) {
    if (const std::size_t v = line_violations(); v > 0) {
      stats_.line_inconsistencies += v;
      if (trace_) {
        trace_->record(sim_.now(), ProcessId{0}, TraceKind::kLineInconsistent,
                       {}, v);
      }
      if (params_.degrade) start_line_repair();
    }
  }

  sim_.schedule_after(params_.sweep_interval, [this] { sweep(); });
}

std::size_t AssumptionMonitor::resend_all() {
  std::size_t resent = 0;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    resent += n->resend_unacked();
  }
  return resent;
}

std::size_t AssumptionMonitor::line_violations() {
  std::vector<ProcessNode*> participants;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (!n->has_stable_storage() || n->tb() == nullptr) return 0;
    participants.push_back(n);
  }
  if (participants.empty()) return 0;
  const auto line = common_valid_line(participants);
  if (!line) return 0;
  std::vector<CheckpointRecord> records;
  for (ProcessNode* n : participants) {
    auto rec = n->sstore().committed_for(*line);
    if (!rec) return 0;  // mid-commit: skip this audit
    records.push_back(std::move(*rec));
  }
  const GlobalState state = global_state_from_records(records);
  return check_consistency(state).size();
}

void AssumptionMonitor::start_line_repair() {
  // Step 1: resend every unacked message. If the inconsistency came from a
  // dropped validation notification, the duplicate delivers it and the
  // sender's contamination flag settles to the receivers' view.
  repair_pending_ = true;
  ++stats_.forced_resends;
  const std::size_t resent = resend_all();
  if (trace_) {
    trace_->record(sim_.now(), ProcessId{0}, TraceKind::kDegradation,
                   "repair_resend", resent);
  }
  // Step 2 after the resent messages (and any acks they trigger) settle:
  // well past a round trip even at injector-delayed latencies.
  const Duration settle =
      Duration::micros(net_.params().tmax.count() * 8) + Duration::millis(10);
  sim_.schedule_after(settle, [this] { finish_line_repair(); });
}

void AssumptionMonitor::finish_line_repair() {
  repair_pending_ = false;
  // A crash/recovery got in between: the recovery refreshes the line
  // itself, and the next sweep re-audits.
  if (!quiescent()) return;
  if (line_violations() == 0) return;  // healed by resend + later boundary
  reestablish_line();
  // If the reline still leaves an inconsistency (a repair resend was itself
  // dropped), the next sweep detects it and starts over.
}

void AssumptionMonitor::reestablish_line() {
  // Mirror of the post-takeover line refresh (System::on_at_failure): all
  // participants commit a checkpoint of their state at this same instant
  // under a fresh common index and fast-forward their TB schedules to it.
  // Same-instant records form a consistent cut (in-flight messages live in
  // the senders' unacked logs), and the damaged record can no longer be
  // selected: every future line is at or above the new index.
  Duration interval = Duration::zero();
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (n->tb() == nullptr) return;  // no common index space to re-line in
    interval = n->tb()->params().interval;
  }
  StableSeq line =
      static_cast<StableSeq>(sim_.now().count() / interval.count()) + 1;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    line = std::max(line, n->tb()->ndc() + 1);
  }
  for (ProcessNode* n : nodes_) {
    if (n->retired() || !n->has_stable_storage()) continue;
    if (n->engine().in_blocking()) n->engine().end_blocking();
    // Contents follow the adapted protocol's rule (TbEngine::create_ckpt):
    // a contaminated process persists its last validated volatile
    // checkpoint, never its current state — a dirty record on the line
    // would forfeit software recoverability for every future rollback.
    CheckpointRecord rec;
    if (n->engine().contamination_flag() &&
        n->engine().latest_volatile().has_value()) {
      rec = *n->engine().latest_volatile();
      rec.kind = CkptKind::kStable;
      rec.established_at = n->engine().current_time();
    } else {
      rec = n->engine().make_record(CkptKind::kStable);
    }
    rec.ndc = line;
    n->sstore().commit_now(std::move(rec));
    n->tb()->reset_after_recovery(line);
  }
  ++stats_.relines;
  if (trace_) {
    trace_->record(sim_.now(), ProcessId{0}, TraceKind::kDegradation, "reline",
                   line);
  }
}

}  // namespace synergy
