// AssumptionMonitor — detects violated environment assumptions and
// degrades gracefully instead of letting the protocol's guarantees rot
// silently.
//
// The coordinated scheme's correctness argument leans on three modelled
// bounds: message delivery within [tmin, tmax], clock drift within rho
// (re-anchored by resyncs), and stable storage that always commits what it
// was given. The chaos campaigns break each on purpose; this monitor is
// the hardening half of that bargain. It watches for
//   - delivery-bound violations (reported by the network on arrival),
//   - blocking-period / checkpoint-cadence overruns (reported by the TB
//     engines from true-time measurements),
//   - stable-write deadline misses (writes abandoned after the retry
//     budget) and undecodable newest records (latent corruption / torn
//     writes),
//   - undelivered messages (still unacknowledged a full sweep after being
//     sent: a drop is a delivery-bound violation with infinite lateness),
//   - recovery-line inconsistency (the paper's consistency theorem run as
//     a standing self-audit over the committed line: a dropped passed_AT
//     splits validation knowledge between sender and receivers, and their
//     boundary records then disagree about unvalidated traffic),
// and responds with the matching degradations:
//   - widen the assumed tmax, so future tau(b) windows cover the slower
//     network (conservative: longer blocking, intact guarantees);
//   - force an immediate clock resynchronization;
//   - force the abandoned record through as a write-through commit;
//   - re-send the unacked log (duplicates are suppressed at the receiver,
//     so this is always safe; it closes any validation-knowledge gap);
//   - re-establish the recovery line: a coordinated same-instant
//     write-through checkpoint at a fresh common index on every node, so
//     the damaged record can never be selected by a future recovery. The
//     line repair always runs a resend first and relines only after the
//     resent messages settle: relining while validation knowledge is still
//     split would cut the same inconsistency at the new index.
// Every clean run stays silent: each detector's threshold includes the
// in-spec drift/latency envelope, so zero violations is the expected
// steady state — and what the campaign checkers assert.
//
// Mobile missions add a twist: a *declared* disconnection epoch is an
// expected outage, not a broken assumption. When a link oracle is
// installed (set_link_oracle), violations attributable to an impaired
// link — late deliveries to/from it, traffic parked unacked behind it —
// are *deferred* (counted separately, never tripping degradations), and
// the first sweep after a link returns proactively resends its unacked
// backlog instead of waiting for the staleness watchdog. The monitor also
// bounds each node's unacked log (a multi-epoch partition grows it
// without limit otherwise) and, for ABFT workloads, scrubs each node's
// block encoding between AT runs, feeding a damaged encoding into the
// MDCD confidence machinery the way a failed signature check would.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "clock/ensemble.hpp"
#include "coord/node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct MonitorParams {
  /// Cadence of the storage sweep (watchdog + corruption scan).
  Duration sweep_interval = Duration::seconds(5);
  /// Late deliveries widen the assumed tmax to observed * this factor.
  double widen_margin = 1.25;
  /// Per-node unacked-log bound: above this the sweep counts an overflow
  /// and (degrading, link permitting) forces a resend to drain it.
  std::size_t unacked_bound = 256;
  /// Apply degradations (false = detect and count only).
  bool degrade = true;
};

struct MonitorStats {
  // Detections.
  std::uint64_t bound_violations = 0;
  std::uint64_t blocking_overruns = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t corrupt_records = 0;
  std::uint64_t undelivered_messages = 0;
  std::uint64_t line_inconsistencies = 0;
  std::uint64_t signature_mismatches = 0;  ///< CFCSS breaks found by sweeps.
  std::uint64_t unacked_overflows = 0;  ///< Unacked log exceeded its bound.
  std::uint64_t abft_scrub_detections = 0;  ///< Damaged encodings found.
  // Deferred (neither violation nor degradation): detections suppressed
  // because a declared disconnection epoch explains them.
  std::uint64_t disconnect_deferrals = 0;
  // Degradations applied.
  std::uint64_t tau_widenings = 0;
  std::uint64_t forced_resyncs = 0;
  std::uint64_t forced_write_throughs = 0;
  std::uint64_t forced_resends = 0;
  std::uint64_t relines = 0;
  std::uint64_t lane_repairs = 0;  ///< Lanes parked/restored by sweep scans.

  std::uint64_t violations() const {
    return bound_violations + blocking_overruns + write_timeouts +
           corrupt_records + undelivered_messages + line_inconsistencies +
           signature_mismatches + unacked_overflows + abft_scrub_detections;
  }
  std::uint64_t degradations() const {
    return tau_widenings + forced_resyncs + forced_write_throughs +
           forced_resends + relines + lane_repairs;
  }
};

class AssumptionMonitor {
 public:
  AssumptionMonitor(Simulator& sim, Network& net, ClockEnsemble& clocks,
                    std::vector<ProcessNode*> nodes,
                    const MonitorParams& params, TraceLog* trace);

  /// Hook the network / TB observers and arm the periodic storage sweep.
  void install();

  /// Declared-disconnection oracle (mobile missions): while `impaired(p)`
  /// is true, violations attributable to p's link defer instead of
  /// tripping; `last_restored(p)` lets deliveries of traffic sent before
  /// the link returned be excused too.
  struct LinkOracle {
    std::function<bool(ProcessId)> impaired;
    std::function<TimePoint(ProcessId)> last_restored;
  };
  void set_link_oracle(LinkOracle oracle) { link_oracle_ = std::move(oracle); }

  const MonitorStats& stats() const { return stats_; }

 private:
  /// True iff p's link state (or its recent restoration) explains traffic
  /// sent at `sent_at` arriving late or not at all.
  bool link_excuses(ProcessId p, TimePoint sent_at) const;
  void on_late_delivery(const Message& m, Duration lateness);
  void on_overrun(ProcessId p, Duration actual, Duration allowed);
  void sweep();
  /// Resend every node's unacked log (safe: receivers suppress duplicates).
  std::size_t resend_all();
  /// Line inconsistency was detected: resend now, then reline once the
  /// resent messages have settled (if the line is still inconsistent).
  void start_line_repair();
  void finish_line_repair();
  /// Consistency violations in the currently committed recovery line, or 0
  /// when the line cannot be audited (no common index space).
  std::size_t line_violations();
  void reestablish_line();
  bool quiescent() const;  ///< No node crashed / recovery in flight.

  Simulator& sim_;
  Network& net_;
  ClockEnsemble& clocks_;
  std::vector<ProcessNode*> nodes_;
  MonitorParams params_;
  TraceLog* trace_;
  MonitorStats stats_;
  LinkOracle link_oracle_;
  bool installed_ = false;
  bool repair_pending_ = false;
  /// Unacked transport seqs per node as of the previous sweep: a message
  /// still unacked one full sweep after being seen was dropped (or its ack
  /// was), far outside any in-spec delivery + validation latency.
  std::vector<std::vector<std::uint64_t>> prev_unacked_;
  /// Node was link-impaired at the previous sweep: the first sweep after
  /// reconnection proactively resends instead of counting staleness.
  std::vector<char> was_impaired_;
  /// Latch per node: an unacked-bound excursion is counted once, not once
  /// per sweep it persists.
  std::vector<char> unacked_over_;
  /// Latch per node: a damaged ABFT encoding is counted once per episode.
  std::vector<char> abft_flagged_;
};

}  // namespace synergy
