// AssumptionMonitor — detects violated environment assumptions and
// degrades gracefully instead of letting the protocol's guarantees rot
// silently.
//
// The coordinated scheme's correctness argument leans on three modelled
// bounds: message delivery within [tmin, tmax], clock drift within rho
// (re-anchored by resyncs), and stable storage that always commits what it
// was given. The chaos campaigns break each on purpose; this monitor is
// the hardening half of that bargain. It watches for
//   - delivery-bound violations (reported by the network on arrival),
//   - blocking-period / checkpoint-cadence overruns (reported by the TB
//     engines from true-time measurements),
//   - stable-write deadline misses (writes abandoned after the retry
//     budget) and undecodable newest records (latent corruption / torn
//     writes),
//   - undelivered messages (still unacknowledged a full sweep after being
//     sent: a drop is a delivery-bound violation with infinite lateness),
//   - recovery-line inconsistency (the paper's consistency theorem run as
//     a standing self-audit over the committed line: a dropped passed_AT
//     splits validation knowledge between sender and receivers, and their
//     boundary records then disagree about unvalidated traffic),
// and responds with the matching degradations:
//   - widen the assumed tmax, so future tau(b) windows cover the slower
//     network (conservative: longer blocking, intact guarantees);
//   - force an immediate clock resynchronization;
//   - force the abandoned record through as a write-through commit;
//   - re-send the unacked log (duplicates are suppressed at the receiver,
//     so this is always safe; it closes any validation-knowledge gap);
//   - re-establish the recovery line: a coordinated same-instant
//     write-through checkpoint at a fresh common index on every node, so
//     the damaged record can never be selected by a future recovery. The
//     line repair always runs a resend first and relines only after the
//     resent messages settle: relining while validation knowledge is still
//     split would cut the same inconsistency at the new index.
// Every clean run stays silent: each detector's threshold includes the
// in-spec drift/latency envelope, so zero violations is the expected
// steady state — and what the campaign checkers assert.
#pragma once

#include <cstdint>
#include <vector>

#include "clock/ensemble.hpp"
#include "coord/node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace synergy {

struct MonitorParams {
  /// Cadence of the storage sweep (watchdog + corruption scan).
  Duration sweep_interval = Duration::seconds(5);
  /// Late deliveries widen the assumed tmax to observed * this factor.
  double widen_margin = 1.25;
  /// Apply degradations (false = detect and count only).
  bool degrade = true;
};

struct MonitorStats {
  // Detections.
  std::uint64_t bound_violations = 0;
  std::uint64_t blocking_overruns = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t corrupt_records = 0;
  std::uint64_t undelivered_messages = 0;
  std::uint64_t line_inconsistencies = 0;
  std::uint64_t signature_mismatches = 0;  ///< CFCSS breaks found by sweeps.
  // Degradations applied.
  std::uint64_t tau_widenings = 0;
  std::uint64_t forced_resyncs = 0;
  std::uint64_t forced_write_throughs = 0;
  std::uint64_t forced_resends = 0;
  std::uint64_t relines = 0;
  std::uint64_t lane_repairs = 0;  ///< Lanes parked/restored by sweep scans.

  std::uint64_t violations() const {
    return bound_violations + blocking_overruns + write_timeouts +
           corrupt_records + undelivered_messages + line_inconsistencies +
           signature_mismatches;
  }
  std::uint64_t degradations() const {
    return tau_widenings + forced_resyncs + forced_write_throughs +
           forced_resends + relines + lane_repairs;
  }
};

class AssumptionMonitor {
 public:
  AssumptionMonitor(Simulator& sim, Network& net, ClockEnsemble& clocks,
                    std::vector<ProcessNode*> nodes,
                    const MonitorParams& params, TraceLog* trace);

  /// Hook the network / TB observers and arm the periodic storage sweep.
  void install();

  const MonitorStats& stats() const { return stats_; }

 private:
  void on_late_delivery(const Message& m, Duration lateness);
  void on_overrun(ProcessId p, Duration actual, Duration allowed);
  void sweep();
  /// Resend every node's unacked log (safe: receivers suppress duplicates).
  std::size_t resend_all();
  /// Line inconsistency was detected: resend now, then reline once the
  /// resent messages have settled (if the line is still inconsistent).
  void start_line_repair();
  void finish_line_repair();
  /// Consistency violations in the currently committed recovery line, or 0
  /// when the line cannot be audited (no common index space).
  std::size_t line_violations();
  void reestablish_line();
  bool quiescent() const;  ///< No node crashed / recovery in flight.

  Simulator& sim_;
  Network& net_;
  ClockEnsemble& clocks_;
  std::vector<ProcessNode*> nodes_;
  MonitorParams params_;
  TraceLog* trace_;
  MonitorStats stats_;
  bool installed_ = false;
  bool repair_pending_ = false;
  /// Unacked transport seqs per node as of the previous sweep: a message
  /// still unacked one full sweep after being seen was dropped (or its ack
  /// was), far outside any in-spec delivery + validation latency.
  std::vector<std::vector<std::uint64_t>> prev_unacked_;
};

}  // namespace synergy
