#include "coord/hw_recovery.hpp"

#include <algorithm>
#include <utility>

#include "analysis/checkers.hpp"
#include "analysis/global_state.hpp"
#include "common/assert.hpp"

namespace synergy {

std::optional<StableSeq> common_valid_line(
    const std::vector<ProcessNode*>& nodes) {
  StableSeq hi = ~StableSeq{0};
  StableSeq lo = 0;
  bool any = false;
  for (ProcessNode* n : nodes) {
    if (n->retired() || !n->has_stable_storage()) continue;
    any = true;
    hi = std::min(hi, n->sstore().latest_valid_ndc());
    const auto retained = n->sstore().retained_ndcs();
    if (!retained.empty()) lo = std::max(lo, retained.front());
  }
  if (!any) return std::nullopt;
  for (StableSeq cand = hi; cand + 1 > lo; --cand) {
    bool ok = true;
    for (ProcessNode* n : nodes) {
      if (n->retired() || !n->has_stable_storage()) continue;
      if (!n->sstore().has_valid(cand)) {
        ok = false;
        break;
      }
    }
    if (ok) return cand;
    if (cand == 0) break;  // unsigned: don't wrap below zero
  }
  return std::nullopt;
}

std::optional<StableSeq> common_restorable_line(
    const std::vector<ProcessNode*>& nodes) {
  StableSeq hi = ~StableSeq{0};
  StableSeq lo = 0;
  bool any = false;
  for (ProcessNode* n : nodes) {
    if (n->retired() || !n->has_stable_storage()) continue;
    any = true;
    hi = std::min(hi, n->sstore().latest_valid_ndc());
    const auto retained = n->sstore().retained_ndcs();
    if (!retained.empty()) lo = std::max(lo, retained.front());
  }
  if (!any) return std::nullopt;
  for (StableSeq cand = hi; cand + 1 > lo; --cand) {
    std::vector<CheckpointRecord> records;
    bool ok = true;
    for (ProcessNode* n : nodes) {
      if (n->retired() || !n->has_stable_storage()) continue;
      auto rec = n->sstore().committed_for(cand);
      if (!rec || !n->sstore().has_valid(cand)) {
        ok = false;
        break;
      }
      records.push_back(std::move(*rec));
    }
    if (ok && check_all(global_state_from_records(records)).empty()) {
      return cand;
    }
    if (cand == 0) break;  // unsigned: don't wrap below zero
  }
  return std::nullopt;
}

std::vector<std::optional<StableSeq>> consistent_write_through_cut(
    const std::vector<ProcessNode*>& nodes) {
  const std::size_t n = nodes.size();
  std::vector<std::vector<StableSeq>> ndcs(n);        // newest first
  std::vector<std::vector<CheckpointRecord>> recs(n);  // parallel to ndcs
  std::vector<std::size_t> idx(n, 0);
  std::size_t steps = 1;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessNode* node = nodes[i];
    if (node->retired() || !node->has_stable_storage()) continue;
    const auto retained = node->sstore().retained_ndcs();
    for (auto it = retained.rbegin(); it != retained.rend(); ++it) {
      if (auto rec = node->sstore().committed_for(*it)) {
        ndcs[i].push_back(*it);
        recs[i].push_back(std::move(*rec));
      }
    }
    if (ndcs[i].empty()) return {};  // nothing decodable: degraded fallback
    steps += recs[i].size();
  }

  while (steps-- > 0) {
    std::vector<CheckpointRecord> cut;
    for (std::size_t i = 0; i < n; ++i) {
      if (!recs[i].empty()) cut.push_back(recs[i][idx[i]]);
    }
    if (cut.empty()) return {};
    if (check_all(global_state_from_records(cut)).empty()) {
      std::vector<std::optional<StableSeq>> out(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (!ndcs[i].empty()) out[i] = ndcs[i][idx[i]];
      }
      return out;
    }
    // Orphan receipts only exist while some node's cut runs ahead of a
    // peer's: rolling the newest-state node back one record is the only
    // monotone repair.
    std::size_t victim = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (recs[i].empty() || idx[i] + 1 >= recs[i].size()) continue;
      if (victim == n ||
          recs[i][idx[i]].state_time > recs[victim][idx[victim]].state_time) {
        victim = i;
      }
    }
    if (victim == n) return {};  // descent exhausted: degraded fallback
    ++idx[victim];
  }
  return {};
}

HardwareRecoveryManager::HardwareRecoveryManager(
    Simulator& sim, std::vector<ProcessNode*> nodes, Duration repair_latency,
    TraceLog* trace, bool oracle_filter)
    : sim_(sim), nodes_(std::move(nodes)), repair_latency_(repair_latency),
      trace_(trace), oracle_filter_(oracle_filter) {
  SYNERGY_EXPECTS(repair_latency >= Duration::zero());
}

void HardwareRecoveryManager::inject_fault(
    NodeId node, std::uint32_t new_epoch,
    std::function<void(const HwRecoveryStats&)> on_recovered) {
  SYNERGY_EXPECTS(!pending_);  // single-fault-at-a-time model
  ProcessNode* victim = nullptr;
  for (ProcessNode* n : nodes_) {
    if (n->node_id() == node) victim = n;
  }
  SYNERGY_EXPECTS(victim != nullptr);
  if (victim->retired()) return;  // empty node: fault has no effect

  ++faults_;
  pending_ = true;
  const TimePoint fault_time = sim_.now();
  victim->crash();

  // A global recovery is under way: freeze checkpoint establishment on
  // the survivors (stop timers, abort in-progress writes). Otherwise a
  // survivor could re-commit the current line index with post-fault
  // content the victim can never match — a mixed-time recovery line.
  for (ProcessNode* n : nodes_) {
    if (n == victim || n->retired()) continue;
    if (TbEngine* tb = n->tb()) tb->stop();
    if (n->has_stable_storage()) n->sstore().crash_abort_in_progress();
  }

  sim_.schedule_after(
      repair_latency_,
      [this, fault_time, node, new_epoch,
       on_recovered = std::move(on_recovered)] {
        HwRecoveryStats stats = recover_all(fault_time, node, new_epoch);
        pending_ = false;
        if (on_recovered) on_recovered(stats);
      });
}

HwRecoveryStats HardwareRecoveryManager::recover_all(TimePoint fault_time,
                                                     NodeId faulty,
                                                     std::uint32_t epoch) {
  HwRecoveryStats stats;
  stats.fault_time = fault_time;
  stats.faulty_node = faulty;
  stats.rollback_distance.resize(nodes_.size(), Duration::zero());
  stats.restored_dirty.resize(nodes_.size(), false);

  // The recovery line is the last checkpoint index *every* process has
  // committed: a fault inside the timer-skew window leaves some processes
  // one index ahead, and TB's guarantees hold per-index, not across
  // indices. (Write-through has no indices; each process restores its
  // latest validated checkpoint, which the paper argues form a consistent
  // global state by construction.)
  std::optional<StableSeq> line_ndc;
  bool timered = true;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (n->tb() == nullptr) timered = false;
  }
  std::vector<std::optional<StableSeq>> wt_cut;
  if (timered) {
    // Storage faults can leave the record at the naive line (min of latest
    // indices) undecodable on some node, and injector-era lines can fail
    // the paper's oracles outright: hardened mode prefers the newest index
    // that is intact everywhere AND restores a clean global state, then
    // degrades to merely intact, then to per-node fallbacks.
    if (oracle_filter_) line_ndc = common_restorable_line(nodes_);
    if (!line_ndc) line_ndc = common_valid_line(nodes_);
    if (!line_ndc) {
      StableSeq min_ndc = ~StableSeq{0};
      for (ProcessNode* n : nodes_) {
        if (n->retired()) continue;
        min_ndc = std::min(min_ndc, n->sstore().latest_valid_ndc());
      }
      line_ndc = min_ndc;
    }
  } else if (oracle_filter_) {
    // Hardened index-less recovery: per-node newest records rolled back
    // into a cut the oracles accept (write-latency skew / torn newest
    // records otherwise restore orphan receipts).
    wt_cut = consistent_write_through_cut(nodes_);
  }

  // Phase 1: every non-retired process rolls back to the line.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ProcessNode* n = nodes_[i];
    if (n->retired()) continue;
    const CheckpointRecord rec = n->restore_from_stable(
        epoch, i < wt_cut.size() && wt_cut[i] ? wt_cut[i] : line_ndc);
    // Rollback distance counts undone *computation*: work done between the
    // restored state and the fault. Repair downtime is not part of it.
    stats.rollback_distance[i] = fault_time - rec.state_time;
    stats.restored_dirty[i] = rec.dirty_bit;
  }

  // Phase 2: re-send unacked messages from the restored logs (after every
  // process is back, so nothing is delivered into a dead node).
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    stats.resent_messages += n->resend_unacked();
  }

  if (trace_) {
    trace_->record(sim_.now(), ProcessId{faulty.value()},
                   TraceKind::kHwRecoveryDone);
  }
  return stats;
}

void HardwareRecoveryManager::install_plan(
    const HardwareFaultPlan& plan, std::function<std::uint32_t()> next_epoch,
    std::function<void(const HwRecoveryStats&)> on_recovered) {
  for (const auto& ev : plan.events()) {
    SYNERGY_EXPECTS(ev.at >= sim_.now());
    sim_.schedule_at(ev.at, [this, ev, next_epoch, on_recovered] {
      if (pending_) return;  // still repairing the previous fault: skip
      inject_fault(ev.node, next_epoch(), on_recovered);
    });
  }
}

}  // namespace synergy
