#include "coord/hw_recovery.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace synergy {

HardwareRecoveryManager::HardwareRecoveryManager(
    Simulator& sim, std::vector<ProcessNode*> nodes, Duration repair_latency,
    TraceLog* trace)
    : sim_(sim), nodes_(std::move(nodes)), repair_latency_(repair_latency),
      trace_(trace) {
  SYNERGY_EXPECTS(repair_latency >= Duration::zero());
}

void HardwareRecoveryManager::inject_fault(
    NodeId node, std::uint32_t new_epoch,
    std::function<void(const HwRecoveryStats&)> on_recovered) {
  SYNERGY_EXPECTS(!pending_);  // single-fault-at-a-time model
  ProcessNode* victim = nullptr;
  for (ProcessNode* n : nodes_) {
    if (n->node_id() == node) victim = n;
  }
  SYNERGY_EXPECTS(victim != nullptr);
  if (victim->retired()) return;  // empty node: fault has no effect

  ++faults_;
  pending_ = true;
  const TimePoint fault_time = sim_.now();
  victim->crash();

  // A global recovery is under way: freeze checkpoint establishment on
  // the survivors (stop timers, abort in-progress writes). Otherwise a
  // survivor could re-commit the current line index with post-fault
  // content the victim can never match — a mixed-time recovery line.
  for (ProcessNode* n : nodes_) {
    if (n == victim || n->retired()) continue;
    if (TbEngine* tb = n->tb()) tb->stop();
    if (n->has_stable_storage()) n->sstore().crash_abort_in_progress();
  }

  sim_.schedule_after(
      repair_latency_,
      [this, fault_time, node, new_epoch,
       on_recovered = std::move(on_recovered)] {
        HwRecoveryStats stats = recover_all(fault_time, node, new_epoch);
        pending_ = false;
        if (on_recovered) on_recovered(stats);
      });
}

HwRecoveryStats HardwareRecoveryManager::recover_all(TimePoint fault_time,
                                                     NodeId faulty,
                                                     std::uint32_t epoch) {
  HwRecoveryStats stats;
  stats.fault_time = fault_time;
  stats.faulty_node = faulty;
  stats.rollback_distance.resize(nodes_.size(), Duration::zero());
  stats.restored_dirty.resize(nodes_.size(), false);

  // The recovery line is the last checkpoint index *every* process has
  // committed: a fault inside the timer-skew window leaves some processes
  // one index ahead, and TB's guarantees hold per-index, not across
  // indices. (Write-through has no indices; each process restores its
  // latest validated checkpoint, which the paper argues form a consistent
  // global state by construction.)
  std::optional<StableSeq> line_ndc;
  bool timered = true;
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    if (n->tb() == nullptr) timered = false;
  }
  if (timered) {
    StableSeq min_ndc = ~StableSeq{0};
    for (ProcessNode* n : nodes_) {
      if (n->retired()) continue;
      min_ndc = std::min(min_ndc, n->sstore().latest_ndc());
    }
    line_ndc = min_ndc;
  }

  // Phase 1: every non-retired process rolls back to the line.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ProcessNode* n = nodes_[i];
    if (n->retired()) continue;
    const CheckpointRecord rec = n->restore_from_stable(epoch, line_ndc);
    // Rollback distance counts undone *computation*: work done between the
    // restored state and the fault. Repair downtime is not part of it.
    stats.rollback_distance[i] = fault_time - rec.state_time;
    stats.restored_dirty[i] = rec.dirty_bit;
  }

  // Phase 2: re-send unacked messages from the restored logs (after every
  // process is back, so nothing is delivered into a dead node).
  for (ProcessNode* n : nodes_) {
    if (n->retired()) continue;
    stats.resent_messages += n->resend_unacked();
  }

  if (trace_) {
    trace_->record(sim_.now(), ProcessId{faulty.value()},
                   TraceKind::kHwRecoveryDone);
  }
  return stats;
}

void HardwareRecoveryManager::install_plan(
    const HardwareFaultPlan& plan, std::function<std::uint32_t()> next_epoch,
    std::function<void(const HwRecoveryStats&)> on_recovered) {
  for (const auto& ev : plan.events()) {
    SYNERGY_EXPECTS(ev.at >= sim_.now());
    sim_.schedule_at(ev.at, [this, ev, next_epoch, on_recovered] {
      if (pending_) return;  // still repairing the previous fault: skip
      inject_fault(ev.node, next_epoch(), on_recovered);
    });
  }
}

}  // namespace synergy
