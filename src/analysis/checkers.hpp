// Executable oracles for the paper's correctness properties (§2.1).
//
// Consistency: if a global state reflects m as received, it must reflect m
// as sent, and sender and receiver must agree on m's validity.
//
// Recoverability: if a global state reflects m as sent (to a process that
// is part of the state), m must be reflected as received with an agreeing
// validity view, or be restorable — present in the sender's saved
// unacked-message log.
//
// A third check targets the naive-combination hazard of Figure 4(a):
// software recoverability — a restored state flagged potentially
// contaminated has lost the volatile checkpoint that software error
// recovery would need.
#pragma once

#include <string>
#include <vector>

#include "analysis/global_state.hpp"

namespace synergy {

struct Violation {
  enum class Kind {
    kReceivedNotSent,       ///< recv entry without matching sent entry
    kValidityMismatch,      ///< sender and receiver views disagree
    kLostMessage,           ///< sent entry neither received nor restorable
    kDirtyRestoredState,    ///< restored state is potentially contaminated
  };
  Kind kind;
  ProcessId a;  ///< Process whose log triggered the finding.
  ProcessId b;  ///< The peer.
  std::uint64_t transport_seq = 0;
  std::string describe() const;
};

/// Both directions of the paper's consistency property.
std::vector<Violation> check_consistency(const GlobalState& state);

/// The paper's recoverability property (internal messages only; external
/// messages go to the device and are outside the recoverable world).
std::vector<Violation> check_recoverability(const GlobalState& state);

/// Figure 4(a) hazard: any process restored with dirty == 1 can no longer
/// perform software error recovery (its volatile checkpoint died with the
/// node).
std::vector<Violation> check_software_recoverability(const GlobalState& state);

/// All three checks.
std::vector<Violation> check_all(const GlobalState& state);

}  // namespace synergy
