// Closed-form rollback-distance model (Figure 7 cross-validation).
//
// Contamination of a high-confidence process alternates between clean
// intervals (ended by the arrival of a suspect message; rate lambda_d) and
// potentially-contaminated intervals (ended by a validation event — an AT
// pass somewhere in the system; rate lambda_v), both approximated as
// exponential. A hardware fault strikes at a random instant.
//
// Write-through: the last stable checkpoint is the last *validation*
// event. Validation events only happen at the tail of dirty episodes, so a
// mostly-clean process keeps no recent recovery point and the expected
// rollback distance is the mean age of the alternating-renewal cycle:
//
//   E[Dwt] = (1/ld^2 + 1/(ld*lv) + 1/lv^2) / (1/ld + 1/lv)
//
// Coordinated: a stable checkpoint is established every Delta regardless.
// If the process is clean at its timer expiry the checkpoint carries the
// current state (loss ~ U(0,Delta)); if dirty (probability q =
// ld/(ld+lv)) it carries the pre-contamination volatile checkpoint, adding
// the mean dirty age 1/lv:
//
//   E[Dco] = Delta/2 + q/lv
//
// The same mechanism the paper describes: coordination "maximizes the
// likelihood that a process will roll back to its most recent
// non-contaminated state".
#pragma once

#include "common/time.hpp"

namespace synergy {

struct RollbackModelParams {
  /// Rate at which a clean process becomes potentially contaminated
  /// (suspect-message arrival rate), per second.
  double lambda_dirty = 1e-3;
  /// Rate of validation events (AT passes reaching the process), per
  /// second.
  double lambda_valid = 1e-2;
  /// TB checkpoint interval Delta.
  Duration interval = Duration::seconds(60);
};

/// Expected rollback distance (seconds) under the coordinated scheme.
double expected_rollback_coordinated(const RollbackModelParams& p);

/// Expected rollback distance (seconds) under the write-through baseline.
double expected_rollback_write_through(const RollbackModelParams& p);

/// Long-run fraction of time a process is potentially contaminated.
double dirty_fraction(const RollbackModelParams& p);

}  // namespace synergy
