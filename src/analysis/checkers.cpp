#include "analysis/checkers.hpp"

#include <sstream>

#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"

namespace synergy {
namespace {

// Composite (peer, transport_seq) key. Transport sequences stay far below
// 2^48 in any realistic run; assert rather than silently collide.
std::uint64_t view_key(ProcessId peer, std::uint64_t transport_seq) {
  SYNERGY_ASSERT(transport_seq < (1ULL << 48));
  return (static_cast<std::uint64_t>(peer.value()) << 48) | transport_seq;
}

using ViewIndex = std::unordered_map<std::uint64_t, const MsgView*>;

ViewIndex index_views(const ViewLog& log) {
  ViewIndex index;
  index.reserve(log.size());
  for (const auto& v : log.entries()) {
    index.emplace(view_key(v.peer, v.transport_seq), &v);
  }
  return index;
}

const MsgView* find_view(const ViewIndex& index, std::uint64_t transport_seq,
                         ProcessId peer) {
  auto it = index.find(view_key(peer, transport_seq));
  return it == index.end() ? nullptr : it->second;
}

std::unordered_set<std::uint64_t> unacked_seqs(const ProcessFacts& sender) {
  std::unordered_set<std::uint64_t> seqs;
  seqs.reserve(sender.unacked.size());
  for (const auto& m : sender.unacked) seqs.insert(m.transport_seq);
  return seqs;
}

}  // namespace

std::string Violation::describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kReceivedNotSent:
      out << to_string(a) << " reflects receipt of seq " << transport_seq
          << " from " << to_string(b) << ", which does not reflect sending it";
      break;
    case Kind::kValidityMismatch:
      out << to_string(a) << " and " << to_string(b)
          << " disagree on the validity of seq " << transport_seq;
      break;
    case Kind::kLostMessage:
      out << to_string(a) << " reflects sending seq " << transport_seq
          << " to " << to_string(b)
          << ", which neither reflects it nor can it be re-sent";
      break;
    case Kind::kDirtyRestoredState:
      out << to_string(a)
          << " restored a potentially contaminated state: software error "
             "recovery is no longer possible";
      break;
  }
  return out.str();
}

std::vector<Violation> check_consistency(const GlobalState& state) {
  std::vector<Violation> violations;
  std::unordered_map<std::uint32_t, ViewIndex> sent_index;
  for (const auto& p : state.processes) {
    sent_index.emplace(p.id.value(), index_views(p.sent));
  }
  for (const auto& receiver : state.processes) {
    for (const auto& e : receiver.recv.entries()) {
      if (e.kind != MsgKind::kInternal) continue;
      const ProcessFacts* sender = state.find(e.peer);
      if (sender == nullptr) continue;  // peer outside the examined state
      const MsgView* sent = find_view(sent_index.at(sender->id.value()),
                                      e.transport_seq, receiver.id);
      if (sent == nullptr) {
        violations.push_back(Violation{Violation::Kind::kReceivedNotSent,
                                       receiver.id, sender->id,
                                       e.transport_seq});
      } else if (sent->suspect != e.suspect) {
        violations.push_back(Violation{Violation::Kind::kValidityMismatch,
                                       receiver.id, sender->id,
                                       e.transport_seq});
      }
    }
  }
  return violations;
}

std::vector<Violation> check_recoverability(const GlobalState& state) {
  std::vector<Violation> violations;
  std::unordered_map<std::uint32_t, ViewIndex> recv_index;
  for (const auto& p : state.processes) {
    recv_index.emplace(p.id.value(), index_views(p.recv));
  }
  for (const auto& sender : state.processes) {
    const auto unacked = unacked_seqs(sender);
    for (const auto& e : sender.sent.entries()) {
      if (e.kind != MsgKind::kInternal) continue;
      const ProcessFacts* receiver = state.find(e.peer);
      if (receiver == nullptr) continue;
      const MsgView* recv = find_view(recv_index.at(receiver->id.value()),
                                      e.transport_seq, sender.id);
      if (recv != nullptr) {
        if (recv->suspect != e.suspect) {
          violations.push_back(Violation{Violation::Kind::kValidityMismatch,
                                         sender.id, receiver->id,
                                         e.transport_seq});
        }
        continue;
      }
      if (!unacked.contains(e.transport_seq)) {
        violations.push_back(Violation{Violation::Kind::kLostMessage,
                                       sender.id, receiver->id,
                                       e.transport_seq});
      }
    }
  }
  return violations;
}

std::vector<Violation> check_software_recoverability(const GlobalState& state) {
  std::vector<Violation> violations;
  for (const auto& p : state.processes) {
    // P1act is invariably regarded as potentially contaminated while
    // guarded; software recovery replaces it wholesale, so a "dirty"
    // restored P1act is not a hazard. Under the modified protocol its
    // contamination flag is the pseudo dirty bit and participates fully.
    if (p.id == kP1Act) continue;
    if (p.dirty) {
      violations.push_back(
          Violation{Violation::Kind::kDirtyRestoredState, p.id, p.id, 0});
    }
  }
  return violations;
}

std::vector<Violation> check_all(const GlobalState& state) {
  std::vector<Violation> all = check_consistency(state);
  auto rec = check_recoverability(state);
  all.insert(all.end(), rec.begin(), rec.end());
  auto sw = check_software_recoverability(state);
  all.insert(all.end(), sw.begin(), sw.end());
  return all;
}

}  // namespace synergy
