#include "analysis/global_state.hpp"

#include "app/state.hpp"
#include "common/assert.hpp"

namespace synergy {

const ProcessFacts* GlobalState::find(ProcessId id) const {
  for (const auto& p : processes) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

ProcessFacts facts_from_record(const CheckpointRecord& record) {
  ProcessFacts facts;
  facts.id = record.owner;
  facts.state_time = record.state_time;
  facts.unacked = record.unacked;

  // The record's dirty_bit is the *contamination flag* the checkpointing
  // layer consulted (pseudo_dirty_bit for P1act under the modified
  // protocol): exactly the right notion for recovery-line analysis.
  facts.dirty = record.dirty_bit;

  // Engine-independent prefix of the protocol state (see
  // MdcdEngine::snapshot_protocol_state): dirty, msg_SN, guarded, views.
  ByteReader r(record.protocol_state);
  (void)r.u8();   // raw dirty bit (P1act: constant 1 while guarded)
  (void)r.u64();  // msg_SN
  (void)r.u8();   // guarded
  (void)r.u64();  // validated watermark
  (void)r.u64();  // dirty contamination watermark
  facts.sent = ViewLog::deserialize(r);
  facts.recv = ViewLog::deserialize(r);

  ApplicationState app;
  app.restore(record.app_state);
  facts.app_tainted = app.tainted();
  return facts;
}

ProcessFacts facts_from_engine(const MdcdEngine& engine,
                               TimePoint state_time) {
  ProcessFacts facts = facts_from_record(engine.make_record(CkptKind::kType1));
  facts.state_time = state_time;
  return facts;
}

GlobalState global_state_from_records(
    const std::vector<CheckpointRecord>& records) {
  GlobalState state;
  state.processes.reserve(records.size());
  for (const auto& rec : records) {
    state.processes.push_back(facts_from_record(rec));
  }
  return state;
}

}  // namespace synergy
