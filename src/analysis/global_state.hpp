// Global states for property checking.
//
// A GlobalState is a set of per-process facts extracted either from live
// engines ("what the system believes right now", used after recoveries) or
// from a set of checkpoint records ("what a recovery line would restore",
// used to audit stable checkpoints without disturbing the run). The
// checkers in checkers.hpp evaluate the paper's validity-concerned
// consistency and recoverability properties over it.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "mdcd/engine.hpp"
#include "mdcd/views.hpp"
#include "net/message.hpp"
#include "storage/checkpoint.hpp"

namespace synergy {

struct ProcessFacts {
  ProcessId id;
  bool dirty = false;
  bool app_tainted = false;
  TimePoint state_time;
  ViewLog sent;
  ViewLog recv;
  std::vector<Message> unacked;
};

struct GlobalState {
  std::vector<ProcessFacts> processes;

  const ProcessFacts* find(ProcessId id) const;
};

/// Extract facts from a checkpoint record. Decodes the engine-independent
/// prefix of protocol_state (dirty bit, msg_SN, guarded flag, view logs)
/// and the application snapshot's taint flag.
ProcessFacts facts_from_record(const CheckpointRecord& record);

/// Extract facts from a live engine (post-recovery audits).
ProcessFacts facts_from_engine(const MdcdEngine& engine, TimePoint state_time);

/// Assemble a global state from one record per process.
GlobalState global_state_from_records(
    const std::vector<CheckpointRecord>& records);

}  // namespace synergy
