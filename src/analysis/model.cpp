#include "analysis/model.hpp"

#include "common/assert.hpp"

namespace synergy {

double dirty_fraction(const RollbackModelParams& p) {
  SYNERGY_EXPECTS(p.lambda_dirty > 0.0 && p.lambda_valid > 0.0);
  // Alternating renewal: clean ~ Exp(ld), dirty ~ Exp(lv).
  const double mean_clean = 1.0 / p.lambda_dirty;
  const double mean_dirty = 1.0 / p.lambda_valid;
  return mean_dirty / (mean_clean + mean_dirty);
}

double expected_rollback_coordinated(const RollbackModelParams& p) {
  SYNERGY_EXPECTS(p.lambda_dirty > 0.0 && p.lambda_valid > 0.0);
  const double q = p.lambda_dirty / (p.lambda_dirty + p.lambda_valid);
  return p.interval.to_seconds() / 2.0 + q / p.lambda_valid;
}

double expected_rollback_write_through(const RollbackModelParams& p) {
  SYNERGY_EXPECTS(p.lambda_dirty > 0.0 && p.lambda_valid > 0.0);
  const double ld = p.lambda_dirty;
  const double lv = p.lambda_valid;
  // Mean age of the renewal cycle (time since the last validation event)
  // at a uniformly random fault instant: E[X^2] / (2 E[X]) for
  // X = Exp(ld) + Exp(lv).
  const double ex = 1.0 / ld + 1.0 / lv;
  const double ex2 = 2.0 / (ld * ld) + 2.0 / (ld * lv) + 2.0 / (lv * lv);
  return ex2 / (2.0 * ex);
}

}  // namespace synergy
