// Deterministic discrete-event simulator.
//
// The simulator owns the global (true) timeline. Everything in the modelled
// distributed system — message deliveries, local timer expirations, disk
// write completions, fault injections — is an event scheduled here.
// Execution is single-threaded and fully deterministic: events at equal
// times fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace synergy {

/// Opaque handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;  // 0 = invalid
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated (true) time.
  TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  EventHandle schedule_at(TimePoint t, Callback fn);

  /// Schedule `fn` after `d` elapses (d >= 0).
  EventHandle schedule_after(Duration d, Callback fn);

  /// Cancel a pending event. Cancelling an already-fired or invalid handle
  /// is a no-op and returns false.
  bool cancel(EventHandle h);

  /// Fire the next pending event, if any. Returns false when idle.
  bool step();

  /// Run until the event queue drains or `deadline` is reached, whichever
  /// comes first. Time advances to the deadline if events remain beyond it.
  void run_until(TimePoint deadline);

  /// Run until the event queue drains completely.
  void run();

  /// Number of events executed so far (for sanity checks in tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return callbacks_.size(); }

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tiebreak at equal times
    std::uint64_t id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace synergy
