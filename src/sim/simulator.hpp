// Deterministic discrete-event simulator.
//
// The simulator owns the global (true) timeline. Everything in the modelled
// distributed system — message deliveries, local timer expirations, disk
// write completions, fault injections — is an event scheduled here.
// Execution is single-threaded and fully deterministic: events at equal
// times fire in scheduling order.
//
// Internals are allocation-lean, sized for chaos campaigns that schedule
// and cancel millions of events (TB checkpoint timers, watchdogs, resend
// timers all re-arm constantly):
//
//   * Callbacks live in a generation-tagged slot map. Cancel is an O(1)
//     generation bump; a fired or cancelled slot is recycled through a free
//     list, so steady-state scheduling performs no per-event allocation.
//   * The time-ordered queue is a 4-ary min-heap of plain (time, seq, slot,
//     gen) entries with lazy deletion: cancel leaves the heap entry behind
//     as a tombstone, and the heap compacts whenever tombstones outnumber
//     live events — queue_depth() stays <= 2x pending() (+ a small floor),
//     where the previous engine grew without bound under cancel churn.
//   * Callbacks are SmallFn (small-buffer optimized), so typical capture
//     lists never touch the heap at all.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/small_fn.hpp"

namespace synergy {

/// Opaque handle for cancelling a scheduled event. Generation-tagged: a
/// handle whose event already fired (or was cancelled) stays safely inert
/// even after its slot is recycled for a new event.
class EventHandle {
 public:
  EventHandle() = default;

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // 0 = invalid (slot generations are never 0)
};

class Simulator {
 public:
  using Callback = SmallFn;

  /// Current simulated (true) time.
  TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  EventHandle schedule_at(TimePoint t, Callback fn);

  /// Schedule `fn` after `d` elapses (d >= 0).
  EventHandle schedule_after(Duration d, Callback fn);

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a no-op and returns false.
  bool cancel(EventHandle h);

  /// Fire the next pending event, if any. Returns false when idle.
  bool step();

  /// Run until the event queue drains or `deadline` is reached, whichever
  /// comes first. Time advances to the deadline if events remain beyond it.
  void run_until(TimePoint deadline);

  /// Run until the event queue drains completely.
  void run();

  /// Number of events executed so far (for sanity checks in tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Monotone count of schedule_at/schedule_after calls ever made. Two
  /// reads returning the same value bracket a window in which *nothing*
  /// entered the event queue — the network's same-tick delivery batching
  /// uses this to prove an appended message cannot be overtaken by an
  /// intervening event at the same timestamp.
  std::uint64_t schedules() const { return next_seq_; }

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return live_; }

  /// Heap-array occupancy: live events plus cancelled entries awaiting
  /// lazy deletion. The compaction invariant keeps this bounded by
  /// max(2 * pending(), compaction floor) — tests assert on it to prove
  /// cancel churn cannot leak memory.
  std::size_t queue_depth() const { return heap_.size(); }

 private:
  static constexpr std::size_t kArity = 4;  // d-ary heap fan-out
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  // Below this heap size tombstones are too cheap to chase; avoids
  // compacting tiny heaps every other cancel.
  static constexpr std::size_t kCompactFloor = 64;

  struct Entry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tiebreak at equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    SmallFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  bool entry_live(const Entry& e) const {
    return slots_[e.slot].gen == e.gen;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_entry(const Entry& e);
  void pop_root();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void maybe_compact();
  void compact();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // armed events (heap_.size() - live_ = tombstones)
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace synergy
