// Small-buffer-optimized move-only `void()` callable.
//
// The simulator's hot path schedules and cancels millions of short-lived
// lambdas (timer re-arms, message deliveries, write completions). Wrapping
// each one in std::function costs a heap allocation whenever the capture
// exceeds the implementation's tiny inline buffer; SmallFn sizes its buffer
// so every callback the protocols actually create stays inline. Callables
// larger than the buffer (or not nothrow-movable) fall back to the heap, so
// correctness never depends on fitting.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace synergy {

class SmallFn {
 public:
  /// Inline capacity in bytes. 48 holds a `this` pointer plus several
  /// captured words — every callback in src/ fits without allocating.
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(std::move(o)); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(std::move(o));
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the wrapped callable lives in the inline buffer (test hook).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* src, void* dst) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* src, void* dst) {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) { delete *static_cast<D**>(p); },
      false,
  };

  void move_from(SmallFn&& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) ops_->relocate(o.buf_, buf_);
    o.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace synergy
