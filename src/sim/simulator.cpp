#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace synergy {

EventHandle Simulator::schedule_at(TimePoint t, Callback fn) {
  SYNERGY_EXPECTS(t >= now_);
  SYNERGY_EXPECTS(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(Duration d, Callback fn) {
  SYNERGY_EXPECTS(d >= Duration::zero());
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (h.id_ == 0) return false;
  return callbacks_.erase(h.id_) > 0;  // heap entry becomes a tombstone
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    SYNERGY_ASSERT(e.time >= now_);
    now_ = e.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    // Skip tombstones without advancing time.
    if (callbacks_.find(queue_.top().id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace synergy
