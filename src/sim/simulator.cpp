#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace synergy {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  SYNERGY_ASSERT(slots_.size() < kNoSlot);
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  if (++s.gen == 0) s.gen = 1;  // generation 0 means "invalid handle"
  s.next_free = free_head_;
  free_head_ = slot;
}

EventHandle Simulator::schedule_at(TimePoint t, Callback fn) {
  SYNERGY_EXPECTS(t >= now_);
  SYNERGY_EXPECTS(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  push_entry(Entry{t, next_seq_++, slot, s.gen});
  ++live_;
  return EventHandle{slot, s.gen};
}

EventHandle Simulator::schedule_after(Duration d, Callback fn) {
  SYNERGY_EXPECTS(d >= Duration::zero());
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (h.gen_ == 0 || h.slot_ >= slots_.size()) return false;
  if (slots_[h.slot_].gen != h.gen_) return false;  // fired/cancelled/reused
  release_slot(h.slot_);  // heap entry stays behind as a tombstone
  --live_;
  maybe_compact();
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.front();
    pop_root();
    if (!entry_live(e)) continue;  // tombstone from a cancel
    Callback fn = std::move(slots_[e.slot].fn);
    release_slot(e.slot);
    --live_;
    SYNERGY_ASSERT(e.time >= now_);
    now_ = e.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Skip tombstones without advancing time.
    if (!entry_live(heap_.front())) {
      pop_root();
      continue;
    }
    if (heap_.front().time > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::push_entry(const Entry& e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void Simulator::pop_root() {
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
}

void Simulator::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::maybe_compact() {
  // Invariant: tombstones never outnumber live events (above a small
  // floor), so queue_depth() <= max(2 * pending(), kCompactFloor).
  if (heap_.size() >= kCompactFloor && heap_.size() - live_ > live_) {
    compact();
  }
}

void Simulator::compact() {
  std::size_t kept = 0;
  for (const Entry& e : heap_) {
    if (entry_live(e)) heap_[kept++] = e;
  }
  heap_.resize(kept);
  SYNERGY_ASSERT(kept == live_);
  // Floyd heapify; (time, seq) keys are unique, so pop order — the only
  // externally visible ordering — is unchanged by rebuilding the heap.
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
}

}  // namespace synergy
