// Mergeable streaming statistics for the sweep driver.
//
// A sweep cell folds 10^4+ mission reports into O(1) state: Welford
// moments for mean/variance/CI and a fixed-capacity reservoir for
// distribution quantiles. Both are *mergeable* so per-shard fragments can
// be combined into exactly the aggregate a single process would have
// produced:
//
//   - Moments merge with Chan's parallel-variance update. The operands
//     are canonically ordered inside merge(), so merge(a, b) and
//     merge(b, a) are bit-for-bit identical — shard order cannot perturb
//     the result.
//   - The reservoir keeps the capacity samples with the highest seeded
//     64-bit priority (a hash of the cell seed and the sample ordinal,
//     assigned at fold time). "Top-K by a total order over per-item
//     priorities" is insertion-order independent, and the union of
//     per-cell top-Ks contains the global top-K, so merging reservoirs is
//     exact, not approximate.
//
// This is the cross-shard analogue of the campaign executor's
// `--jobs N == --jobs 1` contract: same samples, same bytes, regardless
// of how the work was partitioned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace synergy::sweep {

/// SplitMix64 finalizer: the seed-stable hash behind cell seeds, shard
/// assignment, and reservoir priorities.
std::uint64_t mix64(std::uint64_t x);

/// Welford/Chan mergeable moment accumulator.
struct Moments {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double x);

  double variance() const;  ///< Sample variance (n-1); 0 for n < 2.
  double stddev() const;
  /// Half-width of the ~95% normal-approximation CI on the mean.
  double ci95_halfwidth() const;
};

/// Chan parallel-variance combine. Commutative bit-for-bit: the operands
/// are ordered canonically before the update, so fragment merge order is
/// irrelevant. (Associativity holds mathematically; across different
/// *groupings* the floating-point rounding may differ, which is why the
/// sweep always folds cells in cell-index order — see fragment.cpp.)
Moments merge(const Moments& a, const Moments& b);

/// One retained distribution sample. `priority` decides survival;
/// (cell, ordinal) break the (astronomically unlikely) priority ties and
/// identify the sample's origin for deterministic re-merging.
struct WeightedSample {
  double value = 0.0;
  std::uint64_t priority = 0;
  std::uint64_t cell = 0;
  std::uint64_t ordinal = 0;
};

/// Strict total order: higher priority survives; ties fall back to
/// origin. No dependence on insertion order anywhere.
bool sample_outranks(const WeightedSample& a, const WeightedSample& b);

/// Bounded sample set keeping the top-`capacity` samples by priority.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity);

  void add(double value, std::uint64_t priority, std::uint64_t cell,
           std::uint64_t ordinal);
  void add(const WeightedSample& s);

  /// Union with another reservoir (top-K of the combined sample set).
  void merge(const Reservoir& other);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return samples_.size(); }

  /// Retained samples in descending rank order (highest priority first) —
  /// the canonical serialization order.
  const std::vector<WeightedSample>& ranked() const { return samples_; }

  /// Approximate quantile over the retained values (nearest-rank with
  /// linear interpolation); 0 when empty.
  double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::vector<WeightedSample> samples_;  ///< kept sorted by sample_outranks
};

}  // namespace synergy::sweep
