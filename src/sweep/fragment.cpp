#include "sweep/fragment.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "sweep/json.hpp"
#include "sweep/jsonfmt.hpp"

namespace synergy::sweep {

namespace {

using jsonfmt::g17;
using jsonfmt::g6;
using jsonfmt::quoted;
using jsonfmt::u64;

// ---- Emit ------------------------------------------------------------------

/// The overall rollup: cells folded in cell-index order. Every emitter
/// (shard fragment, merged document, single-process run) derives it the
/// same way from per-cell state, which is what makes merged output
/// byte-identical to the full run.
struct Overall {
  CellTallies tallies;
  Moments rollback;
  Reservoir rollback_samples{kReservoirCapacity};
  Moments blocking;
  Reservoir blocking_samples{kReservoirCapacity};
};

Overall rollup(const std::vector<CellStats>& cells) {
  Overall o;
  for (const CellStats& c : cells) {
    o.tallies.accumulate(c.tallies);
    o.rollback = merge(o.rollback, c.rollback);
    o.rollback_samples.merge(c.rollback_samples);
    o.blocking = merge(o.blocking, c.blocking);
    o.blocking_samples.merge(c.blocking_samples);
  }
  return o;
}

void append_metric(std::string& out, const char* name, const Moments& m,
                   const Reservoir& r, const char* indent) {
  out += indent;
  out += quoted(name);
  out += ": {\"n\": " + u64(m.n);
  out += ", \"mean\": " + g17(m.mean);
  out += ", \"m2\": " + g17(m.m2);
  out += ", \"min\": " + g17(m.min);
  out += ", \"max\": " + g17(m.max);
  out += ", \"ci95\": " + g6(m.ci95_halfwidth());
  out += ", \"p50\": " + g6(r.quantile(0.50));
  out += ", \"p90\": " + g6(r.quantile(0.90));
  out += ", \"p99\": " + g6(r.quantile(0.99));
  out += ", \"samples\": [";
  const auto& samples = r.ranked();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i) out += ", ";
    out += "[" + g17(samples[i].value) + ", " + u64(samples[i].priority) +
           ", " + u64(samples[i].cell) + ", " + u64(samples[i].ordinal) + "]";
  }
  out += "]}";
}

void append_tallies(std::string& out, const CellTallies& t,
                    const char* indent) {
  out += indent;
  out += "\"missions\": " + u64(t.missions);
  out += ", \"ok\": " + u64(t.ok);
  out += ", \"oracle_violations\": " + u64(t.oracle_violations);
  out += ",\n";
  out += indent;
  out += "\"detections\": " + u64(t.detections);
  out += ", \"degradations\": " + u64(t.degradations);
  out += ", \"hw_faults\": " + u64(t.hw_faults);
  out += ", \"sw_recoveries\": " + u64(t.sw_recoveries);
  out += ", \"injected_net\": " + u64(t.injected_net);
  out += ",\n";
  out += indent;
  out += "\"at\": {\"exposures\": " + u64(t.at_exposures) +
         ", \"detected\": " + u64(t.at_detected) +
         ", \"missed\": " + u64(t.at_missed) +
         ", \"false_alarms\": " + u64(t.at_false_alarms) + "}";
  out += ",\n";
  out += indent;
  out += "\"lanes\": {\"injected\": " + u64(t.lane_injected) +
         ", \"masked\": " + u64(t.lane_masked) +
         ", \"detected\": " + u64(t.lane_detected) +
         ", \"silent\": " + u64(t.lane_silent) + "}";
}

template <class T, class F>
std::string list_json(const std::vector<T>& xs, F&& fmt) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += fmt(xs[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string to_json(const ShardResult& shard) {
  const SweepConfig& cfg = shard.config;
  std::string out = "{\n  \"schema\": \"synergy-sweep-v1\",\n";

  out += "  \"sweep\": {\n";
  out += "    \"seed\": " + u64(cfg.seed);
  out += ", \"reps\": " + u64(cfg.reps);
  out += ", \"duration_s\": " + g17(cfg.mission.to_seconds());
  out += ", \"workload\": " + quoted(to_string(cfg.workload));
  out += ",\n    \"schemes\": " +
         list_json(cfg.axes.schemes,
                   [](Scheme s) { return quoted(to_string(s)); });
  out += ",\n    \"fault_scales\": " +
         list_json(cfg.axes.fault_scales, [](double v) { return g17(v); });
  out += ",\n    \"coverages\": " +
         list_json(cfg.axes.coverages, [](double v) { return g17(v); });
  out += ",\n    \"intervals_s\": " +
         list_json(cfg.axes.intervals_s, [](double v) { return g17(v); });
  out += ",\n    \"lane_flip_gap_s\": " + g17(cfg.lane_flip_gap.to_seconds());
  out += ", \"sig_fault_gap_s\": " + g17(cfg.sig_fault_gap.to_seconds());
  out += ", \"mobile\": ";
  out += cfg.mobile ? "true" : "false";
  out += ",\n    \"cells_total\": " + u64(shard.cells_total);
  out += ", \"shard\": " + u64(cfg.shard_index + 1);
  out += ", \"shards\": " + u64(cfg.shard_count);
  out += ", \"cells_in_shard\": " + u64(shard.cells.size());
  out += "\n  },\n";

  out += "  \"cells\": [";
  for (std::size_t i = 0; i < shard.cells.size(); ++i) {
    const CellStats& c = shard.cells[i];
    out += i ? ",\n    {\n" : "\n    {\n";
    out += "      \"index\": " + u64(c.cell.index);
    out += ", \"seed\": " + u64(c.cell.seed);
    out += ", \"scheme\": " + quoted(to_string(c.cell.scheme));
    out += ",\n      \"fault_scale\": " + g17(c.cell.fault_scale);
    out += ", \"coverage\": " + g17(c.cell.coverage);
    out += ", \"interval_s\": " + g17(c.cell.interval.to_seconds());
    out += ",\n";
    append_tallies(out, c.tallies, "      ");
    out += ",\n      \"dependability\": " + g6(c.dependability());
    out += ", \"cov_computed\": " + g6(c.coverage_computed());
    out += ",\n";
    append_metric(out, "rollback_s", c.rollback, c.rollback_samples, "      ");
    out += ",\n";
    append_metric(out, "blocking_s", c.blocking, c.blocking_samples, "      ");
    out += "\n    }";
  }
  out += shard.cells.empty() ? "],\n" : "\n  ],\n";

  const Overall o = rollup(shard.cells);
  out += "  \"overall\": {\n";
  append_tallies(out, o.tallies, "    ");
  out += ",\n";
  append_metric(out, "rollback_s", o.rollback, o.rollback_samples, "    ");
  out += ",\n";
  append_metric(out, "blocking_s", o.blocking, o.blocking_samples, "    ");
  out += "\n  }\n}\n";
  return out;
}

std::string to_csv(const ShardResult& shard) {
  std::string out =
      "index,scheme,fault_scale,coverage,interval_s,missions,ok,"
      "dependability,oracle_violations,detections,degradations,hw_faults,"
      "sw_recoveries,cov_computed,rollback_n,rollback_mean_s,"
      "rollback_ci95_s,rollback_p50_s,rollback_p90_s,rollback_p99_s,"
      "blocking_mean_s,blocking_ci95_s,blocking_p99_s\n";
  for (const CellStats& c : shard.cells) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%zu,%s,%g,%g,%g,%" PRIu64 ",%" PRIu64 ",%.6f,%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%.6f,%" PRIu64 ",%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
        c.cell.index, to_string(c.cell.scheme), c.cell.fault_scale,
        c.cell.coverage, c.cell.interval.to_seconds(), c.tallies.missions,
        c.tallies.ok, c.dependability(), c.tallies.oracle_violations,
        c.tallies.detections, c.tallies.degradations, c.tallies.hw_faults,
        c.tallies.sw_recoveries, c.coverage_computed(), c.rollback.n,
        c.rollback.mean, c.rollback.ci95_halfwidth(),
        c.rollback_samples.quantile(0.50), c.rollback_samples.quantile(0.90),
        c.rollback_samples.quantile(0.99), c.blocking.mean,
        c.blocking.ci95_halfwidth(), c.blocking_samples.quantile(0.99));
    out += buf;
  }
  return out;
}

// ---- Parse -----------------------------------------------------------------

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("synergy-sweep-v1: " + what);
}

Moments parse_moments(const JsonValue& v) {
  Moments m;
  m.n = v.at("n").as_u64();
  m.mean = v.at("mean").as_double();
  m.m2 = v.at("m2").as_double();
  m.min = v.at("min").as_double();
  m.max = v.at("max").as_double();
  return m;
}

Reservoir parse_reservoir(const JsonValue& v) {
  Reservoir r(kReservoirCapacity);
  for (const JsonValue& s : v.at("samples").items()) {
    if (!s.is_array() || s.items().size() != 4) bad("malformed sample");
    r.add(s.items()[0].as_double(), s.items()[1].as_u64(),
          s.items()[2].as_u64(), s.items()[3].as_u64());
  }
  return r;
}

CellTallies parse_tallies(const JsonValue& v) {
  CellTallies t;
  t.missions = v.at("missions").as_u64();
  t.ok = v.at("ok").as_u64();
  t.oracle_violations = v.at("oracle_violations").as_u64();
  t.detections = v.at("detections").as_u64();
  t.degradations = v.at("degradations").as_u64();
  t.hw_faults = v.at("hw_faults").as_u64();
  t.sw_recoveries = v.at("sw_recoveries").as_u64();
  t.injected_net = v.at("injected_net").as_u64();
  const JsonValue& at = v.at("at");
  t.at_exposures = at.at("exposures").as_u64();
  t.at_detected = at.at("detected").as_u64();
  t.at_missed = at.at("missed").as_u64();
  t.at_false_alarms = at.at("false_alarms").as_u64();
  const JsonValue& lanes = v.at("lanes");
  t.lane_injected = lanes.at("injected").as_u64();
  t.lane_masked = lanes.at("masked").as_u64();
  t.lane_detected = lanes.at("detected").as_u64();
  t.lane_silent = lanes.at("silent").as_u64();
  return t;
}

Scheme parse_scheme_or_die(const std::string& name) {
  if (const auto s = scheme_from_string(name)) return *s;
  bad("unknown scheme: " + name);
}

}  // namespace

ShardResult parse_fragment(const std::string& json_text) {
  const JsonValue doc = JsonValue::parse(json_text);
  const JsonValue* schema = doc.find("schema");
  if (!schema || schema->as_string() != "synergy-sweep-v1") {
    bad("expected schema \"synergy-sweep-v1\"");
  }

  ShardResult out;
  const JsonValue& sweep = doc.at("sweep");
  SweepConfig& cfg = out.config;
  cfg.seed = sweep.at("seed").as_u64();
  cfg.reps = static_cast<std::size_t>(sweep.at("reps").as_u64());
  cfg.mission = Duration::from_seconds(sweep.at("duration_s").as_double());
  const std::string workload = sweep.at("workload").as_string();
  if (const auto kind = workload_kind_from_string(workload)) {
    cfg.workload = *kind;
  } else {
    bad("unknown workload: " + workload);
  }
  cfg.axes.schemes.clear();
  for (const JsonValue& s : sweep.at("schemes").items()) {
    cfg.axes.schemes.push_back(parse_scheme_or_die(s.as_string()));
  }
  cfg.axes.fault_scales.clear();
  for (const JsonValue& v : sweep.at("fault_scales").items()) {
    cfg.axes.fault_scales.push_back(v.as_double());
  }
  cfg.axes.coverages.clear();
  for (const JsonValue& v : sweep.at("coverages").items()) {
    cfg.axes.coverages.push_back(v.as_double());
  }
  cfg.axes.intervals_s.clear();
  for (const JsonValue& v : sweep.at("intervals_s").items()) {
    cfg.axes.intervals_s.push_back(v.as_double());
  }
  cfg.lane_flip_gap =
      Duration::from_seconds(sweep.at("lane_flip_gap_s").as_double());
  cfg.sig_fault_gap =
      Duration::from_seconds(sweep.at("sig_fault_gap_s").as_double());
  cfg.mobile = sweep.at("mobile").as_bool();
  const std::uint64_t shard = sweep.at("shard").as_u64();
  const std::uint64_t shards = sweep.at("shards").as_u64();
  if (shard < 1 || shards < 1 || shard > shards) bad("bad shard/shards");
  cfg.shard_index = static_cast<std::uint32_t>(shard - 1);
  cfg.shard_count = static_cast<std::uint32_t>(shards);
  out.cells_total = static_cast<std::size_t>(sweep.at("cells_total").as_u64());
  if (out.cells_total != grid_size(cfg.axes)) {
    bad("cells_total disagrees with the axis lengths");
  }

  // Rebuild the grid the header implies; every parsed cell must match it.
  const std::vector<SweepCell> grid = build_grid(cfg);
  for (const JsonValue& cv : doc.at("cells").items()) {
    const std::size_t index =
        static_cast<std::size_t>(cv.at("index").as_u64());
    if (index >= grid.size()) bad("cell index out of range");
    CellStats c(grid[index]);
    if (cv.at("seed").as_u64() != c.cell.seed) {
      bad("cell " + std::to_string(index) +
          ": seed disagrees with the sweep header");
    }
    if (parse_scheme_or_die(cv.at("scheme").as_string()) != c.cell.scheme) {
      bad("cell " + std::to_string(index) +
          ": scheme disagrees with the sweep header");
    }
    c.tallies = parse_tallies(cv);
    const JsonValue& rb = cv.at("rollback_s");
    c.rollback = parse_moments(rb);
    c.rollback_samples = parse_reservoir(rb);
    const JsonValue& bl = cv.at("blocking_s");
    c.blocking = parse_moments(bl);
    c.blocking_samples = parse_reservoir(bl);
    out.missions_run += c.tallies.missions;
    out.cells.push_back(std::move(c));
  }
  return out;
}

// ---- Merge -----------------------------------------------------------------

namespace {

bool same_doubles(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](double x, double y) { return g17(x) == g17(y); });
}

/// Mission-defining header equality (executor knobs excluded).
void check_compatible(const SweepConfig& a, const SweepConfig& b) {
  if (a.seed != b.seed) bad("fragments disagree on seed");
  if (a.reps != b.reps) bad("fragments disagree on reps");
  if (a.mission != b.mission) bad("fragments disagree on duration");
  if (a.workload != b.workload) bad("fragments disagree on workload");
  if (a.axes.schemes != b.axes.schemes) {
    bad("fragments disagree on the scheme axis");
  }
  if (!same_doubles(a.axes.fault_scales, b.axes.fault_scales)) {
    bad("fragments disagree on the fault-scale axis");
  }
  if (!same_doubles(a.axes.coverages, b.axes.coverages)) {
    bad("fragments disagree on the coverage axis");
  }
  if (!same_doubles(a.axes.intervals_s, b.axes.intervals_s)) {
    bad("fragments disagree on the interval axis");
  }
  if (a.lane_flip_gap != b.lane_flip_gap || a.sig_fault_gap != b.sig_fault_gap) {
    bad("fragments disagree on the lane-fault gaps");
  }
  if (a.mobile != b.mobile) bad("fragments disagree on the mobile family");
}

}  // namespace

ShardResult merge_fragments(const std::vector<ShardResult>& fragments) {
  if (fragments.empty()) bad("nothing to merge");
  for (std::size_t i = 1; i < fragments.size(); ++i) {
    check_compatible(fragments[0].config, fragments[i].config);
    if (fragments[0].cells_total != fragments[i].cells_total) {
      bad("fragments disagree on cells_total");
    }
  }

  ShardResult merged;
  merged.config = fragments[0].config;
  merged.config.shard_index = 0;
  merged.config.shard_count = 1;
  merged.cells_total = fragments[0].cells_total;

  std::vector<const CellStats*> by_index(merged.cells_total, nullptr);
  for (const ShardResult& frag : fragments) {
    for (const CellStats& c : frag.cells) {
      if (c.cell.index >= merged.cells_total) bad("cell index out of range");
      if (by_index[c.cell.index]) {
        bad("cell " + std::to_string(c.cell.index) +
            " appears in more than one fragment");
      }
      by_index[c.cell.index] = &c;
    }
  }
  std::string missing;
  std::size_t missing_count = 0;
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    if (by_index[i]) continue;
    ++missing_count;
    if (missing_count <= 8) {
      if (!missing.empty()) missing += ", ";
      missing += std::to_string(i);
    }
  }
  if (missing_count > 0) {
    bad("incomplete fragment set: " + std::to_string(missing_count) +
        " cell(s) missing (indices " + missing +
        (missing_count > 8 ? ", ..." : "") +
        "); re-run the lost shard(s) and merge again");
  }

  for (const CellStats* c : by_index) {
    merged.cells.push_back(*c);
    merged.missions_run += c->tallies.missions;
  }
  return merged;
}

}  // namespace synergy::sweep
