// Byte-stable JSON formatting primitives shared by every synergy JSON
// emitter (`synergy-bench-v1` in bench/bench_common.hpp and
// `synergy-sweep-v1` in src/sweep/fragment.cpp).
//
// The sweep's shard/merge contract is *byte identity*: fragments parsed
// from disk and re-emitted must reproduce the single-process run exactly.
// That works only if every double is printed with enough digits to
// round-trip (IEEE-754 doubles survive "%.17g" -> strtod bit-for-bit) and
// every string is escaped the same way everywhere. Centralizing the
// formatting here makes "same value => same bytes" a property of the
// helpers instead of a per-emitter convention.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace synergy::jsonfmt {

/// Full-round-trip double: parsing the output with strtod yields the
/// original bit pattern. Used for aggregate *state* (means, M2, samples)
/// where merge determinism depends on exact values.
inline std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Display-precision double for *derived* quantities (CIs, quantiles,
/// ratios) that are recomputed from g17 state on every emit — lossy but
/// deterministic, since the inputs are bit-identical by construction.
inline std::string g6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Fixed-point display double (`%.Nf`) for human-tuned emitters such as
/// the synergy-bench-v1 writer, where the committed baselines settled on
/// fixed precision. Not round-trip safe; never use for merge state.
inline std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Append `s` JSON-escaped (quotes, backslashes, control characters).
inline void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// `"s"` with escaping applied.
inline std::string quoted(std::string_view s) {
  std::string out = "\"";
  append_escaped(out, s);
  out += '"';
  return out;
}

}  // namespace synergy::jsonfmt
