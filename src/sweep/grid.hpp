// The sweep's deterministic cell grid.
//
// A sweep crosses fault-rate scale × AT coverage × TB checkpoint interval
// × scheme into a flat, deterministically ordered list of cells
// (scheme-major, then fault scale, coverage, interval). Each cell owns:
//
//   - a stable linear index (its identity in fragments and merges),
//   - a cell seed derived from the sweep seed + index by SplitMix64, from
//     which the cell's mission seeds derive exactly the way
//     run_campaign derives them from a campaign seed,
//   - a shard assignment: hash(seed, index) % shard_count. The hash is
//     seed-stable, so "which cells does shard i/N run" is a pure function
//     of the sweep header — any machine can compute its share without
//     coordination, and a lost shard is re-runnable in isolation (the
//     resumability story).
//
// Because every cell runs entirely inside one shard, per-cell aggregates
// are bit-identical between a sharded and a single-process execution; the
// merge step only reassembles the full grid and re-derives the cross-cell
// rollup in cell-index order (see fragment.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "app/workload.hpp"
#include "common/time.hpp"
#include "coord/scheme.hpp"
#include "core/campaign.hpp"

namespace synergy::sweep {

/// The swept axes, in nesting order (outermost first).
struct SweepAxes {
  std::vector<Scheme> schemes = {Scheme::kCoordinated};
  /// Multiplier on every default injector rate: per-message probabilities
  /// scale up (clamped to 1), timed mean gaps scale down. 0 = fault-free.
  std::vector<double> fault_scales = {1.0};
  std::vector<double> coverages = {1.0};
  std::vector<double> intervals_s = {10.0};
};

/// Everything that determines a sweep's missions (and therefore its
/// fragment contents). Executor knobs (jobs, shard) are deliberately
/// outside the mission-defining set.
struct SweepConfig {
  std::uint64_t seed = 1;
  std::size_t reps = 100;             ///< Missions per cell.
  Duration mission = Duration::seconds(60);
  SweepAxes axes;
  WorkloadKind workload = WorkloadKind::kRegisters;
  /// Per-lane fault gaps, armed for sweeps over the redundant schemes
  /// (scaled per cell like the other timed rates; 0 = off).
  Duration lane_flip_gap = Duration::zero();
  Duration sig_fault_gap = Duration::zero();
  /// Arm the mobile mission family (disconnection epochs + handoffs) with
  /// the chaos-smoke defaults, scaled per cell.
  bool mobile = false;

  // ---- Executor knobs (no effect on mission results) ----
  std::size_t jobs = 1;          ///< Per-cell mission fan-out; 0 = all cores.
  std::uint32_t shard_index = 0; ///< 0-based; CLI speaks 1-based "i/N".
  std::uint32_t shard_count = 1;
};

struct SweepCell {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  Scheme scheme = Scheme::kCoordinated;
  double fault_scale = 1.0;
  double coverage = 1.0;
  Duration interval = Duration::seconds(10);
};

/// Total cell count (product of the axis lengths).
std::size_t grid_size(const SweepAxes& axes);

/// The full grid in canonical order. Cell seeds derive from config.seed.
std::vector<SweepCell> build_grid(const SweepConfig& config);

/// Seed-stable cell seed / shard assignment for cell `index`.
std::uint64_t cell_seed(std::uint64_t sweep_seed, std::size_t index);
std::uint32_t cell_shard(std::uint64_t sweep_seed, std::size_t index,
                         std::uint32_t shard_count);

/// The campaign configuration a cell's missions run under: the chaos
/// defaults with the cell's scheme/coverage/interval applied and every
/// injector rate scaled by the cell's fault scale.
CampaignConfig cell_campaign_config(const SweepConfig& config,
                                    const SweepCell& cell);

}  // namespace synergy::sweep
