#include "sweep/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace synergy::sweep {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json parse error at byte " + std::to_string(pos) +
                           ": " + what);
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(key.scalar_, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.scalar_ += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': v.scalar_ += '"'; break;
        case '\\': v.scalar_ += '\\'; break;
        case '/': v.scalar_ += '/'; break;
        case 'n': v.scalar_ += '\n'; break;
        case 'r': v.scalar_ += '\r'; break;
        case 't': v.scalar_ += '\t'; break;
        case 'b': v.scalar_ += '\b'; break;
        case 'f': v.scalar_ += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad \\u escape digit");
          }
          // Our emitter only writes \u00xx control characters; reject the
          // rest rather than mis-decode surrogate pairs.
          if (code > 0xFF) fail(pos_, "unsupported \\u escape > 0xFF");
          v.scalar_ += static_cast<char>(code);
          break;
        }
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.bool_ = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.bool_ = false;
      pos_ += 5;
    } else {
      fail(pos_, "bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail(pos_, "bad literal");
    pos_ += 4;
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNull;
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.scalar_ = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::runtime_error("missing json member: " + key);
  return *v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return scalar_;
}

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace synergy::sweep
