// Minimal JSON reader for the sweep's own emitted documents.
//
// `synergy sweep --merge` must reload `synergy-sweep-v1` fragments with
// *exact* fidelity: unsigned 64-bit integers (seeds, reservoir
// priorities) cannot detour through a double, and doubles printed with
// %.17g must come back bit-for-bit. Numbers therefore keep their raw
// token and convert on demand (as_u64 via strtoull, as_double via strtod
// — both exact for our emitters' output). This is a reader for
// machine-written JSON, not a general validator: it accepts the full
// JSON grammar but only the escapes our emitter produces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace synergy::sweep {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Object member that must exist (throws std::runtime_error).
  const JsonValue& at(const std::string& key) const;

  const std::vector<JsonValue>& items() const { return items_; }

  bool as_bool() const;
  double as_double() const;          ///< strtod over the raw token.
  std::uint64_t as_u64() const;      ///< strtoull over the raw token.
  const std::string& as_string() const;

  /// Parse a complete document; throws std::runtime_error with a byte
  /// offset on malformed input.
  static JsonValue parse(const std::string& text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< raw number token, or decoded string
  std::vector<JsonValue> items_;               ///< array elements
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< object
};

}  // namespace synergy::sweep
