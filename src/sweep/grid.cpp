#include "sweep/grid.hpp"

#include "sweep/stats.hpp"

namespace synergy::sweep {

namespace {

// Distinct salt streams so the cell-seed sequence, the shard hash, and
// the reservoir priorities never alias each other.
constexpr std::uint64_t kCellSeedSalt = 0x5157454550534545ull;  // "QWEEPSEE"
constexpr std::uint64_t kShardSalt = 0x5348415244484153ull;     // "SHARDHAS"

}  // namespace

std::size_t grid_size(const SweepAxes& axes) {
  return axes.schemes.size() * axes.fault_scales.size() *
         axes.coverages.size() * axes.intervals_s.size();
}

std::uint64_t cell_seed(std::uint64_t sweep_seed, std::size_t index) {
  return mix64(mix64(sweep_seed ^ kCellSeedSalt) ^
               static_cast<std::uint64_t>(index + 1));
}

std::uint32_t cell_shard(std::uint64_t sweep_seed, std::size_t index,
                         std::uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  const std::uint64_t h = mix64(mix64(sweep_seed ^ kShardSalt) ^
                                static_cast<std::uint64_t>(index + 1));
  return static_cast<std::uint32_t>(h % shard_count);
}

std::vector<SweepCell> build_grid(const SweepConfig& config) {
  std::vector<SweepCell> grid;
  grid.reserve(grid_size(config.axes));
  std::size_t index = 0;
  for (Scheme scheme : config.axes.schemes) {
    for (double scale : config.axes.fault_scales) {
      for (double coverage : config.axes.coverages) {
        for (double interval : config.axes.intervals_s) {
          SweepCell cell;
          cell.index = index;
          cell.seed = cell_seed(config.seed, index);
          cell.scheme = scheme;
          cell.fault_scale = scale;
          cell.coverage = coverage;
          cell.interval = Duration::from_seconds(interval);
          grid.push_back(cell);
          ++index;
        }
      }
    }
  }
  return grid;
}

CampaignConfig cell_campaign_config(const SweepConfig& config,
                                    const SweepCell& cell) {
  CampaignConfig cc;  // chaos-soak workload + default injector rates
  cc.seed = cell.seed;
  cc.reps = config.reps;
  cc.mission = config.mission;
  cc.scheme = cell.scheme;
  cc.jobs = 1;  // the sweep runner owns the fan-out
  cc.base.at.coverage = cell.coverage;
  cc.base.tb.interval = cell.interval;
  cc.base.workload.kind = config.workload;

  InjectorRates rates = default_injector_rates();
  rates.timed.lane_flip_mean_gap = config.lane_flip_gap;
  rates.timed.sig_fault_mean_gap = config.sig_fault_gap;
  if (config.mobile) {
    // The chaos-smoke mobile profile (see ci.yml's mobile steps).
    rates.mobile.disconnect_mean_gap = Duration::seconds(80);
    rates.mobile.disconnect_mean_len = Duration::seconds(12);
    rates.mobile.handoff_mean_gap = Duration::seconds(150);
  }
  cc.rates = rates.scaled_by(cell.fault_scale);
  return cc;
}

}  // namespace synergy::sweep
