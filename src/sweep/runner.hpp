// The sweep executor: cells → missions → streaming aggregates.
//
// Cells run sequentially (their identity and seeds are position-free);
// inside a cell, missions fan out over the work-stealing ThreadPool —
// the same executor the chaos campaign uses — with seeds derived
// up-front. Completed reports are folded strictly in mission-index order
// through a bounded reorder buffer, so the accumulator sees the exact
// fold sequence of a sequential run whatever the pool's completion order
// was: streaming Welford is order-sensitive in its low bits, and the
// shard/merge byte-identity contract leaves no room for "close enough".
//
// Memory is O(cells) + O(out-of-order window), never O(missions): a
// mission report is folded and dropped the moment its prefix completes.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "sweep/grid.hpp"
#include "sweep/stats.hpp"

namespace synergy::sweep {

/// Number of distribution samples each cell retains per metric. Small on
/// purpose: 10^5-mission sweeps must stay O(cells) resident.
inline constexpr std::size_t kReservoirCapacity = 64;

/// Summed per-cell mission outcomes (exact counts, trivially mergeable).
struct CellTallies {
  std::uint64_t missions = 0;
  std::uint64_t ok = 0;
  std::uint64_t oracle_violations = 0;
  std::uint64_t detections = 0;
  std::uint64_t degradations = 0;
  std::uint64_t hw_faults = 0;
  std::uint64_t sw_recoveries = 0;
  std::uint64_t injected_net = 0;
  std::uint64_t at_exposures = 0;
  std::uint64_t at_detected = 0;
  std::uint64_t at_missed = 0;
  std::uint64_t at_false_alarms = 0;
  std::uint64_t lane_injected = 0;
  std::uint64_t lane_masked = 0;
  std::uint64_t lane_detected = 0;
  std::uint64_t lane_silent = 0;

  void accumulate(const CellTallies& other);
};

/// Streaming aggregate of one cell's missions.
struct CellStats {
  SweepCell cell;
  CellTallies tallies;
  /// Per hardware-recovery rollback distance (seconds): the Figure-7 axis.
  Moments rollback;
  Reservoir rollback_samples{kReservoirCapacity};
  /// Per-mission total TB blocking time (seconds): the tau(b) axis.
  Moments blocking;
  Reservoir blocking_samples{kReservoirCapacity};

  CellStats() = default;
  explicit CellStats(const SweepCell& c) : cell(c) {}

  /// Fold mission `index`'s report. MUST be called in mission-index
  /// order (the runner's reorder buffer guarantees it).
  void fold(std::size_t index, const MissionReport& report);

  double dependability() const;  ///< ok / missions (1 when empty).
  double coverage_computed() const;  ///< at_detected / at_exposures.

 private:
  std::uint64_t rollback_ordinal_ = 0;
};

/// One shard's worth of cells, in cell-index order.
struct ShardResult {
  SweepConfig config;
  std::size_t cells_total = 0;
  std::vector<CellStats> cells;
  std::uint64_t missions_run = 0;
  double wall_seconds = 0.0;  ///< Host clock; never serialized.
};

/// Run every cell this shard owns. Progress lines (one per cell) go to
/// `progress` when non-null; they carry host timing and are never part
/// of the deterministic JSON.
ShardResult run_sweep(const SweepConfig& config, std::ostream* progress);

}  // namespace synergy::sweep
