#include "sweep/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace synergy::sweep {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void Moments::add(double x) {
  if (n == 0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++n;
  const double delta = x - mean;
  mean += delta / static_cast<double>(n);
  m2 += delta * (x - mean);
}

double Moments::variance() const {
  if (n < 2) return 0.0;
  return m2 / static_cast<double>(n - 1);
}

double Moments::stddev() const { return std::sqrt(variance()); }

double Moments::ci95_halfwidth() const {
  if (n < 2) return 0.0;
  return 1.96 * std::sqrt(variance() / static_cast<double>(n));
}

namespace {

/// Total order over accumulator states by raw bit patterns (not values:
/// -0.0 vs 0.0 and NaN payloads must not collapse). Used only to pick a
/// canonical operand order inside merge().
std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

bool state_less(const Moments& a, const Moments& b) {
  if (a.n != b.n) return a.n < b.n;
  if (bits(a.mean) != bits(b.mean)) return bits(a.mean) < bits(b.mean);
  if (bits(a.m2) != bits(b.m2)) return bits(a.m2) < bits(b.m2);
  if (bits(a.min) != bits(b.min)) return bits(a.min) < bits(b.min);
  return bits(a.max) < bits(b.max);
}

}  // namespace

Moments merge(const Moments& a, const Moments& b) {
  if (a.n == 0) return b;
  if (b.n == 0) return a;
  // Canonical operand order makes the combine commutative bit-for-bit:
  // merge(a, b) and merge(b, a) execute the identical float sequence.
  const Moments& lo = state_less(a, b) ? a : b;
  const Moments& hi = state_less(a, b) ? b : a;

  Moments out;
  out.n = lo.n + hi.n;
  const double na = static_cast<double>(lo.n);
  const double nb = static_cast<double>(hi.n);
  const double nn = static_cast<double>(out.n);
  const double delta = hi.mean - lo.mean;
  out.mean = lo.mean + delta * (nb / nn);
  out.m2 = lo.m2 + hi.m2 + delta * delta * (na * nb / nn);
  out.min = std::min(lo.min, hi.min);
  out.max = std::max(lo.max, hi.max);
  return out;
}

bool sample_outranks(const WeightedSample& a, const WeightedSample& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.cell != b.cell) return a.cell < b.cell;
  if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
  return bits(a.value) < bits(b.value);
}

Reservoir::Reservoir(std::size_t capacity) : capacity_(capacity) {
  samples_.reserve(capacity);
}

void Reservoir::add(const WeightedSample& s) {
  // Insertion sort into rank order; capacity is small (tens), and the
  // deterministic total order means the retained set is exactly the
  // top-K of everything ever offered, however it arrived.
  auto pos = std::lower_bound(samples_.begin(), samples_.end(), s,
                              sample_outranks);
  if (pos == samples_.end() && samples_.size() >= capacity_) return;
  samples_.insert(pos, s);
  if (samples_.size() > capacity_) samples_.pop_back();
}

void Reservoir::add(double value, std::uint64_t priority, std::uint64_t cell,
                    std::uint64_t ordinal) {
  add(WeightedSample{value, priority, cell, ordinal});
}

void Reservoir::merge(const Reservoir& other) {
  for (const WeightedSample& s : other.samples_) add(s);
}

double Reservoir::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const WeightedSample& s : samples_) values.push_back(s.value);
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace synergy::sweep
