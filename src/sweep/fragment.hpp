// `synergy-sweep-v1` fragments: serialize, reload, merge.
//
// A fragment is one shard's complete aggregate state — per-cell tallies,
// raw Welford state (n, mean, M2, min, max) printed at full %.17g
// round-trip precision, and the reservoir samples with their priorities.
// Reloading a fragment therefore reconstructs the aggregates
// *bit-for-bit*, and merging the full fragment set reproduces the
// single-process run byte-for-byte:
//
//   - per-cell state is untouched by the merge (a cell runs entirely
//     inside one shard, so its aggregate never needs combining);
//   - the cross-cell "overall" rollup is recomputed on every emit by
//     folding cells in cell-index order — Chan merges for the moments,
//     top-K priority union for the reservoirs — the same fold the
//     single-process emitter performs;
//   - derived display values (CI half-widths, quantiles, dependability)
//     are recomputed from the bit-identical state, never parsed.
//
// Merge is strict: fragments must agree on the mission-defining header
// (seed, reps, duration, axes, workload, fault-family knobs), cover
// every cell exactly once, and match the grid the header implies. A
// missing cell aborts with the indices to re-run — that, plus
// seed-stable shard assignment, is the resume story: re-run the lost
// shard, merge again.
#pragma once

#include <string>
#include <vector>

#include "sweep/runner.hpp"

namespace synergy::sweep {

/// The deterministic fragment document. Identical shard state yields
/// identical bytes on every host (no timestamps, no host timing).
std::string to_json(const ShardResult& shard);

/// Plot-ready per-cell CSV (derived values; one row per cell).
std::string to_csv(const ShardResult& shard);

/// Reload a fragment. Throws std::runtime_error on malformed input,
/// schema mismatch, or state inconsistent with the embedded header.
ShardResult parse_fragment(const std::string& json_text);

/// Combine the complete fragment set into the single-process result
/// (shard 1/1). Throws std::runtime_error when headers disagree, a cell
/// appears twice, or cells are missing (message lists what to re-run).
ShardResult merge_fragments(const std::vector<ShardResult>& fragments);

}  // namespace synergy::sweep
