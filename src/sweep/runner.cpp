#include "sweep/runner.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "core/pool.hpp"

namespace synergy::sweep {

namespace {

// Priority streams for the two reservoirs; distinct salts keep them
// independent of each other and of the cell-seed/shard hashes.
constexpr std::uint64_t kRollbackSalt = 0x524F4C4C4241434Bull;  // "ROLLBACK"
constexpr std::uint64_t kBlockingSalt = 0x424C4F434B494E47ull;  // "BLOCKING"

std::uint64_t sample_priority(std::uint64_t cell_seed, std::uint64_t salt,
                              std::uint64_t ordinal) {
  return mix64((cell_seed ^ salt) + ordinal);
}

/// Releases mission reports to the fold callback strictly in index
/// order, buffering only the out-of-order suffix (≈jobs entries), so a
/// parallel cell folds the exact sequence a sequential one would.
class OrderedFold {
 public:
  explicit OrderedFold(CellStats& stats) : stats_(stats) {}

  void publish(std::size_t index, MissionReport report) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.emplace(index, std::move(report));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      stats_.fold(next_, pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

 private:
  CellStats& stats_;
  std::mutex mu_;
  std::map<std::size_t, MissionReport> pending_;
  std::size_t next_ = 0;
};

}  // namespace

void CellTallies::accumulate(const CellTallies& other) {
  missions += other.missions;
  ok += other.ok;
  oracle_violations += other.oracle_violations;
  detections += other.detections;
  degradations += other.degradations;
  hw_faults += other.hw_faults;
  sw_recoveries += other.sw_recoveries;
  injected_net += other.injected_net;
  at_exposures += other.at_exposures;
  at_detected += other.at_detected;
  at_missed += other.at_missed;
  at_false_alarms += other.at_false_alarms;
  lane_injected += other.lane_injected;
  lane_masked += other.lane_masked;
  lane_detected += other.lane_detected;
  lane_silent += other.lane_silent;
}

void CellStats::fold(std::size_t index, const MissionReport& report) {
  ++tallies.missions;
  if (report.ok) ++tallies.ok;
  tallies.oracle_violations += report.failures.size();
  tallies.detections += report.monitor.violations();
  tallies.degradations += report.monitor.degradations();
  tallies.hw_faults += report.hw_faults;
  tallies.sw_recoveries += report.sw_recoveries;
  tallies.injected_net += report.injected_net;
  tallies.at_exposures += report.at_exposures;
  tallies.at_detected += report.at_detected;
  tallies.at_missed += report.at_missed;
  tallies.at_false_alarms += report.at_false_alarms;
  tallies.lane_injected += report.lane_injected;
  tallies.lane_masked += report.lane_masked;
  tallies.lane_detected += report.lane_detected;
  tallies.lane_silent += report.lane_silent;

  blocking.add(report.blocking_seconds);
  blocking_samples.add(report.blocking_seconds,
                       sample_priority(cell.seed, kBlockingSalt, index),
                       cell.index, index);
  for (double d : report.rollback_seconds) {
    rollback.add(d);
    rollback_samples.add(
        d, sample_priority(cell.seed, kRollbackSalt, rollback_ordinal_),
        cell.index, rollback_ordinal_);
    ++rollback_ordinal_;
  }
}

double CellStats::dependability() const {
  if (tallies.missions == 0) return 1.0;
  return static_cast<double>(tallies.ok) /
         static_cast<double>(tallies.missions);
}

double CellStats::coverage_computed() const {
  if (tallies.at_exposures == 0) return 1.0;
  return static_cast<double>(tallies.at_detected) /
         static_cast<double>(tallies.at_exposures);
}

ShardResult run_sweep(const SweepConfig& config, std::ostream* progress) {
  using Clock = std::chrono::steady_clock;
  const auto wall0 = Clock::now();

  ShardResult result;
  result.config = config;
  const std::vector<SweepCell> grid = build_grid(config);
  result.cells_total = grid.size();

  std::size_t jobs = config.jobs == 0 ? ThreadPool::default_jobs()
                                      : config.jobs;
  jobs = std::min(jobs, std::max<std::size_t>(1, config.reps));
  std::optional<ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);

  for (const SweepCell& cell : grid) {
    if (cell_shard(config.seed, cell.index, config.shard_count) !=
        config.shard_index) {
      continue;
    }
    const auto cell0 = Clock::now();
    CellStats stats(cell);
    const CampaignConfig cc = cell_campaign_config(config, cell);

    // Mission seeds derive from the cell seed up-front, exactly like
    // run_campaign derives them from a campaign seed: the executor can
    // reorder execution but never the adversary.
    std::vector<std::uint64_t> seeds(config.reps);
    Rng seeder(cell.seed);
    for (auto& s : seeds) s = seeder.next();

    OrderedFold folder(stats);
    auto run_one = [&](std::size_t i) {
      folder.publish(i, run_mission(cc, seeds[i]));
    };
    if (pool) {
      pool->run_indexed(config.reps, run_one);
    } else {
      for (std::size_t i = 0; i < config.reps; ++i) run_one(i);
    }

    result.missions_run += stats.tallies.missions;
    if (progress) {
      const double secs =
          std::chrono::duration<double>(Clock::now() - cell0).count();
      *progress << "cell " << cell.index << "/" << grid.size()
                << " scheme=" << to_string(cell.scheme)
                << " fault_scale=" << cell.fault_scale
                << " coverage=" << cell.coverage
                << " interval=" << cell.interval.to_seconds() << "s: "
                << stats.tallies.ok << "/" << stats.tallies.missions
                << " ok, " << stats.tallies.detections << " detections, "
                << secs << "s\n";
      progress->flush();
    }
    result.cells.push_back(std::move(stats));
  }

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  return result;
}

}  // namespace synergy::sweep
