#include "common/log.hpp"

#include <cstdio>
#include <utility>

namespace synergy {
namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty -> stderr

void default_sink(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[%s] %.*s\n", to_string(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel level) { g_level = level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, std::string_view msg) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, msg);
  } else {
    default_sink(level, msg);
  }
}

}  // namespace synergy
