#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace synergy {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  SYNERGY_EXPECTS(n_ > 0);  // min of an empty sample is meaningless
  return min_;
}

double RunningStats::max() const {
  SYNERGY_EXPECTS(n_ > 0);  // max of an empty sample is meaningless
  return max_;
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SYNERGY_EXPECTS(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  if (!std::isfinite(x)) {
    // floor(NaN/inf) followed by an integer cast is UB; count and drop so
    // a poisoned sample stream is visible instead of corrupting a bin.
    ++rejected_;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / w));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  SYNERGY_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  // q == 1.0 (or rounding pushed target past the last count): clamp to the
  // upper edge of the last non-empty bin, not hi_ — with a bottom-heavy
  // histogram the top bins are empty and hi_ overstates the extreme.
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] > 0) return bin_hi(i);
  }
  return lo_;  // unreachable: total_ > 0 implies a non-empty bin
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    for (std::size_t j = 0; j < bar; ++j) out << '#';
    out << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace synergy
