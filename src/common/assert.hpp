// Lightweight contract-checking macros (Core Guidelines I.6/I.8 style).
//
// These are always on, including release builds: the protocols in this
// library encode distributed-systems invariants whose silent violation
// would invalidate every experiment downstream, so we prefer a loud abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace synergy::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "synergy: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace synergy::detail

#define SYNERGY_EXPECTS(cond)                                             \
  ((cond) ? static_cast<void>(0)                                          \
          : ::synergy::detail::contract_failure("precondition", #cond,    \
                                                __FILE__, __LINE__))

#define SYNERGY_ENSURES(cond)                                             \
  ((cond) ? static_cast<void>(0)                                          \
          : ::synergy::detail::contract_failure("postcondition", #cond,   \
                                                __FILE__, __LINE__))

#define SYNERGY_ASSERT(cond)                                              \
  ((cond) ? static_cast<void>(0)                                          \
          : ::synergy::detail::contract_failure("invariant", #cond,       \
                                                __FILE__, __LINE__))

#define SYNERGY_UNREACHABLE(msg)                                          \
  ::synergy::detail::contract_failure("unreachable", msg, __FILE__, __LINE__)
