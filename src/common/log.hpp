// Minimal leveled logger.
//
// Protocol engines never log directly (they are pure state machines); hosts
// and experiment harnesses use this for diagnostics. Output goes to a
// swappable sink so tests can capture it.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace synergy {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

/// Process-wide logging configuration. Not thread-safe to reconfigure while
/// logging concurrently; configure once at startup.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  /// Replace the sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view msg);
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace synergy

#define SYNERGY_LOG(level)                                  \
  if (::synergy::LogLevel::level < ::synergy::Log::level()) \
    ;                                                       \
  else                                                      \
    ::synergy::detail::LogLine(::synergy::LogLevel::level)
