#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace synergy {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high-order bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SYNERGY_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SYNERGY_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) {
  SYNERGY_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  SYNERGY_EXPECTS(mean > 0.0);
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Duration Rng::exponential(Duration mean) {
  return Duration::from_seconds(exponential(mean.to_seconds()));
}

Duration Rng::uniform(Duration lo, Duration hi) {
  return Duration::micros(uniform_int(lo.count(), hi.count()));
}

Rng Rng::split() { return Rng{next()}; }

}  // namespace synergy
