// PCLMUL-folded CRC-32 (IEEE 0xEDB88320, reflected) — the hardware fast
// path behind crc32() in serialize.cpp.
//
// Method: carry-less-multiply folding (Gopal et al., "Fast CRC Computation
// for Generic Polynomials Using PCLMULQDQ Instruction", Intel 2009). Four
// 128-bit accumulators advance 64 input bytes per iteration by multiplying
// each accumulator with x^512/x^576 mod P and xoring in the next block;
// the accumulators then fold to one register, to 64 bits, and a Barrett
// reduction produces the 32-bit remainder. The folding constants below are
// the standard ones for the IEEE polynomial (the same values zlib's SIMD
// path uses); the dispatch fuzz test cross-checks the whole path against
// the bit-at-a-time reference, so a wrong constant cannot survive CI.
//
// Built without -march flags: the kernel carries a function-level target
// attribute and callers must gate on crc32_pclmul_supported(), so the
// binary still runs on pre-PCLMUL hardware (portable slicing-by-8 path).

#include "common/crc32_hw.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace synergy::detail {

bool crc32_pclmul_supported() {
  static const bool supported =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return supported;
}

namespace {

// x^(64*8+64) and x^(64*8) mod P (four-accumulator stride), x^(2*64+64)
// and x^(2*64) mod P (single-register stride), x^96 mod P, and the
// Barrett pair (floor(x^64/P), P) — all bit-reflected.
alignas(16) constexpr std::uint64_t kK1K2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) constexpr std::uint64_t kK3K4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) constexpr std::uint64_t kK5K0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) constexpr std::uint64_t kPoly[2] = {0x01db710641, 0x01f7011641};

}  // namespace

__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_pclmul(
    std::uint32_t state, const std::uint8_t* data, std::size_t n) {
  const __m128i* buf = reinterpret_cast<const __m128i*>(data);

  __m128i x1 = _mm_loadu_si128(buf + 0);
  __m128i x2 = _mm_loadu_si128(buf + 1);
  __m128i x3 = _mm_loadu_si128(buf + 2);
  __m128i x4 = _mm_loadu_si128(buf + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));

  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(kK1K2));
  buf += 4;
  n -= 64;

  // Fold 64 bytes per iteration across the four accumulators.
  while (n >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, k, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, k, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, k, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(buf + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), _mm_loadu_si128(buf + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), _mm_loadu_si128(buf + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), _mm_loadu_si128(buf + 3));
    buf += 4;
    n -= 64;
  }

  // Fold the four accumulators into one.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kK3K4));
  __m128i t = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x2);
  t = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x3);
  t = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, t), x4);

  // Single-register folds over the remaining 16-byte blocks.
  while (n >= 16) {
    t = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), _mm_loadu_si128(buf));
    buf += 1;
    n -= 16;
  }

  // Fold 128 -> 64 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  t = _mm_clmulepi64_si128(x1, k, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, t);

  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kK5K0));
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_xor_si128(x1, t);

  // Barrett reduction 64 -> 32 bits.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kPoly));
  t = _mm_and_si128(x1, mask32);
  t = _mm_clmulepi64_si128(t, k, 0x10);
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, k, 0x00);
  x1 = _mm_xor_si128(x1, t);

  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace synergy::detail

#else  // non-x86: no hardware kernel; the dispatcher never calls it.

namespace synergy::detail {

bool crc32_pclmul_supported() { return false; }

std::uint32_t crc32_pclmul(std::uint32_t state, const std::uint8_t*,
                           std::size_t) {
  return state;
}

}  // namespace synergy::detail

#endif
