// Streaming statistics for experiment harnesses: Welford mean/variance,
// normal-approximation confidence intervals, and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace synergy {

/// Single-pass accumulator (Welford). Numerically stable; O(1) memory.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;  ///< Precondition: count() > 0.
  double max() const;  ///< Precondition: count() > 0.
  /// Half-width of the ~95% confidence interval on the mean
  /// (normal approximation; returns 0 for n < 2).
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals always match the number of finite samples added.
/// Non-finite samples (NaN/inf) are rejected and counted separately —
/// binning them would be undefined behavior, not data.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  /// Number of non-finite samples dropped by add().
  std::size_t rejected() const { return rejected_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Approximate quantile (q in [0,1]) by linear interpolation within bins.
  double quantile(double q) const;
  /// Render a compact ASCII bar chart (for bench output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace synergy
