// Byte-level serialization for checkpoint records.
//
// Stable-storage checkpoints survive node crashes, so they must be real
// byte blobs, not in-memory object graphs: the simulated stable store and
// the file-backed store of the threaded runtime both persist the encoded
// form produced here. Encoding is little-endian, fixed-width, versioned by
// the caller.
//
// The checkpoint pipeline is the steady-state hot path of the coordinated
// scheme (every Type-1/pseudo/stable checkpoint encodes state), so this
// header also carries the allocation-lean machinery it leans on:
// SharedBytes (a refcounted immutable blob, so records copy by reference
// count instead of deep copy) and SnapshotCache (re-encode only when the
// source's version stamp moved).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace synergy {

using Bytes = std::vector<std::uint8_t>;

/// Borrowed view into encoded bytes (no ownership, no copy). Valid only
/// while the underlying buffer lives — the trusted in-memory decode paths
/// use these to inspect without copying.
using ByteView = std::span<const std::uint8_t>;

/// Refcounted immutable byte blob. Copying a SharedBytes bumps a reference
/// count; the underlying buffer is never mutated after construction, so a
/// checkpoint record, the snapshot cache, and the volatile store can all
/// hold the same encoded state without deep copies. Converts implicitly
/// from/to `Bytes` so decode/restore call sites keep their signatures
/// (conversion to `const Bytes&` borrows; it never copies).
class SharedBytes {
 public:
  SharedBytes() = default;
  SharedBytes(Bytes b)  // NOLINT(google-explicit-constructor)
      : data_(b.empty() ? nullptr
                        : std::make_shared<const Bytes>(std::move(b))) {}

  const Bytes& get() const { return data_ ? *data_ : empty_bytes(); }
  operator const Bytes&() const { return get(); }  // NOLINT
  ByteView view() const { return ByteView{get()}; }

  bool empty() const { return !data_ || data_->empty(); }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  const std::uint8_t* data() const { return get().data(); }
  void clear() { data_.reset(); }

  /// True iff both refer to the *same* underlying buffer (not just equal
  /// contents) — the cache-hit observability hook the snapshot-cache tests
  /// assert on.
  bool shares_buffer_with(const SharedBytes& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  // Deep (content) equality, including against plain Bytes.
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.data_ == b.data_ || a.get() == b.get();
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.get() == b;
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) {
    return a == b.get();
  }

 private:
  static const Bytes& empty_bytes();

  std::shared_ptr<const Bytes> data_;
};

/// Appends primitive values to a growing byte buffer. Reusable: clear()
/// keeps the allocated capacity, so a long-lived scratch writer encodes
/// record after record without reallocating; reserve() plus the record's
/// encoded_size() turns an encode into a single exact-size allocation.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& s);
  void bytes(const Bytes& b);
  /// Append raw bytes without a length prefix.
  void bytes_raw(const Bytes& b);
  void bytes_raw(ByteView b);

  /// Drop contents, keep capacity (scratch-buffer reuse on hot paths).
  void clear() { buf_.clear(); }
  /// Pre-reserve for a known encoded size (see encoded_size() providers).
  void reserve(std::size_t n) { buf_.reserve(n); }
  std::size_t size() const { return buf_.size(); }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  std::uint8_t* grow(std::size_t n);

  std::vector<std::uint8_t> buf_;
};

/// Reads primitive values back. Corruption-safe: a read past the end of the
/// input does not abort — it sets a sticky failure flag and returns a
/// zero/empty value, so a corrupted stable blob is *detected* (check ok()
/// after decoding, or use the record-level try_deserialize paths, which
/// do) rather than killing the process.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  Bytes bytes();

  /// View-based reads for the trusted in-memory decode path: no copy, the
  /// returned span/view borrows from the reader's underlying buffer and is
  /// valid only while that buffer lives. Callers that merely inspect
  /// (trace rendering, oracle checks, re-encode passes) use these.
  ByteView bytes_view();
  std::string_view str_view();

  /// Skip `n` bytes (inspection paths that ignore a field's content).
  void skip(std::size_t n);

  bool exhausted() const { return pos_ == data_.size(); }

  /// False once any read overran the input (truncated/corrupted blob).
  bool ok() const { return !failed_; }
  /// Mark the stream as corrupted (record-level checks, e.g. a checksum
  /// mismatch, funnel through the same failure state).
  void fail() { failed_ = true; }

  /// Current read offset (used to delimit checksummed spans).
  std::size_t position() const { return pos_; }
  const Bytes& underlying() const { return data_; }

  /// All remaining bytes (copy-through of trailing extension fields).
  Bytes rest();
  /// All remaining bytes as a borrowed view (no copy).
  ByteView rest_view();

 private:
  bool require(std::size_t n);

  const Bytes& data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Caches the encoded form of a version-stamped snapshot source. get()
/// returns the shared blob unchanged while `version` matches the cached
/// stamp; any version movement re-encodes. Sources bump their version on
/// *every* mutation of snapshotted state — an over-bump costs one wasted
/// re-encode, an under-bump would hand out a stale checkpoint, so sources
/// bump conservatively and the cache-invalidation tests treat a stale hit
/// as failure.
class SnapshotCache {
 public:
  template <typename Fn>
  const SharedBytes& get(std::uint64_t version, Fn&& encode) {
    if (!valid_ || version_ != version) {
      blob_ = SharedBytes(encode());
      version_ = version;
      valid_ = true;
      ++misses_;
      bytes_encoded_ += blob_.size();
    } else {
      ++hits_;
    }
    return blob_;
  }

  void invalidate() {
    valid_ = false;
    blob_.clear();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Total bytes actually serialized (cache misses only) — the
  /// checkpoint-volume counter campaigns report.
  std::uint64_t bytes_encoded() const { return bytes_encoded_; }

 private:
  SharedBytes blob_;
  std::uint64_t version_ = 0;
  bool valid_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_encoded_ = 0;
};

/// FNV-1a fingerprint, used to compare application states cheaply.
std::uint64_t fingerprint(const Bytes& data);

/// CRC-32 (IEEE 802.3, reflected) over a byte span. Guards stable
/// checkpoint records and injected-fault detection paths. Dispatches at
/// runtime: on x86 hosts with PCLMULQDQ, buffers of 64+ bytes go through
/// a carry-less-multiply folding kernel (~10x the table throughput);
/// everything else — short buffers, tails, non-x86 — uses slicing-by-8
/// (eight 256-entry tables generated at startup from the same 0xEDB88320
/// polynomial). Both paths are bit-identical to the byte-at-a-time
/// reference below, so existing stable blobs and torn-write detection are
/// unaffected.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);
std::uint32_t crc32(const Bytes& data);

/// Test hook: force the portable slicing-by-8 path even where the PCLMUL
/// kernel is available, so CI keeps the fallback covered on hardware that
/// would otherwise never execute it. Not thread-safe; tests only.
void crc32_force_portable(bool force);

/// True iff crc32() will use the hardware kernel for large inputs right
/// now (CPU support present and not forced portable).
bool crc32_hw_active();

/// Byte-at-a-time reference implementation. Kept as the equivalence-test
/// oracle for the sliced hot-path crc32 above; not for production use.
std::uint32_t crc32_reference(const std::uint8_t* data, std::size_t n);

}  // namespace synergy
