// Byte-level serialization for checkpoint records.
//
// Stable-storage checkpoints survive node crashes, so they must be real
// byte blobs, not in-memory object graphs: the simulated stable store and
// the file-backed store of the threaded runtime both persist the encoded
// form produced here. Encoding is little-endian, fixed-width, versioned by
// the caller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace synergy {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& s);
  void bytes(const Bytes& b);
  /// Append raw bytes without a length prefix.
  void bytes_raw(const Bytes& b);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads primitive values back; hard-fails (contract violation) on
/// truncated input, since a short checkpoint blob means corrupted storage.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  Bytes bytes();

  bool exhausted() const { return pos_ == data_.size(); }

  /// All remaining bytes (copy-through of trailing extension fields).
  Bytes rest();

 private:
  const Bytes& data_;
  std::size_t pos_ = 0;
};

/// FNV-1a fingerprint, used to compare application states cheaply.
std::uint64_t fingerprint(const Bytes& data);

}  // namespace synergy
